"""DFA-tier speed: the table lookup must beat the fused NFA mask stack.

The cost model's pitch for the DFA tier is that one ``translated[i] ->
next_state`` lookup per byte replaces the NFA's per-live-state gather
union.  This gate pins that pitch on the regime where it matters: a
64-keyword low-activity ruleset whose patterns overlap heavily (long
keywords over a tiny sub-alphabet), so the forced-NFA scan carries
several live states per byte while the forced-DFA scan still does one
lookup.  Both sides run on the fused backend; forced modes keep the
comparison honest (auto mode would route plain keywords to LNFA).
The floor is regression-gated at 1.5x.
"""

import dataclasses
import random
import time

import pytest

from repro.compiler import CompiledMode, CompilerConfig, compile_ruleset
from repro.core import available_backends, use_backend
from repro.hardware.config import DEFAULT_CONFIG
from repro.simulators.rap import RAPSimulator

requires_numpy = pytest.mark.skipif(
    "numpy" not in available_backends(), reason="NumPy backend not available"
)


def _keywords(count: int = 64, seed: int = 7) -> list[str]:
    """Distinct keywords of length 10-16 over a two-letter alphabet.

    The tiny alphabet is the point: nearly every input byte extends some
    partial match, so the NFA's live-state loop runs several iterations
    per byte — the worst case the DFA's constant-time lookup flattens.
    Per-label density is still 1/256: a *low-activity* ruleset in the
    cost model's sense.
    """
    rng = random.Random(seed)
    words: set[str] = set()
    while len(words) < count:
        length = rng.randint(10, 16)
        words.add("".join(rng.choice("ab") for _ in range(length)))
    return sorted(words)


PATTERNS = _keywords()

_rng = random.Random(20260809)
STREAM = bytes(_rng.choice(b"ab") for _ in range(400_000))


@pytest.fixture(scope="module")
def workload():
    dfa_rs = compile_ruleset(
        PATTERNS, CompilerConfig(forced_mode=CompiledMode.DFA)
    )
    nfa_rs = compile_ruleset(
        PATTERNS, CompilerConfig(forced_mode=CompiledMode.NFA)
    )
    assert not dfa_rs.rejected and not nfa_rs.rejected
    assert all(r.mode is CompiledMode.DFA for r in dfa_rs)
    assert all(r.mode is CompiledMode.NFA for r in nfa_rs)
    sim = RAPSimulator(DEFAULT_CONFIG)
    return (
        sim,
        (dfa_rs, sim.build_mapping(dfa_rs)),
        (nfa_rs, sim.build_mapping(nfa_rs)),
    )


def _timed(fn, *args):
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


def _modeless(activity):
    """Per-regex activities with the mode tag erased (it legitimately
    differs between the forced rulesets; everything else must not)."""
    return {
        rid: dataclasses.replace(act, mode=CompiledMode.NFA)
        for rid, act in activity.regex.items()
    }


@requires_numpy
def test_dfa_ruleset_scan_speed(benchmark, workload):
    sim, (dfa_rs, mapping), _ = workload
    with use_backend("fused"):
        activity = benchmark(sim.collect_activities, dfa_rs, STREAM, mapping)
    assert activity.input_symbols == len(STREAM)


@requires_numpy
def test_dfa_beats_forced_nfa(benchmark, workload):
    """The regression-gated 1.5x floor from the DFA-tier issue."""
    sim, (dfa_rs, dfa_map), (nfa_rs, nfa_map) = workload

    def dfa_scan():
        with use_backend("fused"):
            return sim.collect_activities(dfa_rs, STREAM, dfa_map)

    def nfa_scan():
        with use_backend("fused"):
            return sim.collect_activities(nfa_rs, STREAM, nfa_map)

    # Exactness before speed: same matches, same integer counters.
    assert _modeless(dfa_scan()) == _modeless(nfa_scan())
    dfa_time = min(_timed(dfa_scan) for _ in range(3))
    nfa_time = min(_timed(nfa_scan) for _ in range(3))
    benchmark.pedantic(dfa_scan, rounds=1, iterations=1)
    assert dfa_time * 1.5 <= nfa_time, (
        f"DFA scan {dfa_time:.4f}s is not 1.5x faster than forced-NFA "
        f"{nfa_time:.4f}s on a {len(STREAM)}-byte stream with "
        f"{len(PATTERNS)} patterns"
    )
