"""Fused-backend speed: one ruleset-wide pass must beat per-unit NumPy.

The fused backend's pitch is that a multi-pattern ruleset reads the
input *once* — shared alphabet classes, all LNFA bins lane-packed into
one machine, cold stretches skipped via the union literal prefilter —
instead of once per bin.  This gate pins that pitch on the regime the
paper cares about: a synthetic 64-keyword ruleset over >= 1 MB of
mostly-cold network traffic, where the fused scan must be at least 2x
faster than stepping the same bins one at a time on the NumPy backend.
"""

import random
import time

import pytest

from repro.compiler import CompiledMode, compile_ruleset
from repro.core import available_backends, use_backend
from repro.hardware.config import DEFAULT_CONFIG
from repro.simulators.rap import RAPSimulator
from repro.workloads.inputs import generate_input

requires_numpy = pytest.mark.skipif(
    "numpy" not in available_backends(), reason="NumPy backend not available"
)


def _keywords(count: int = 64, seed: int = 5) -> list[str]:
    """Distinct literal keywords (forced LNFA mode) of length 5-8."""
    rng = random.Random(seed)
    words: set[str] = set()
    while len(words) < count:
        length = rng.randint(5, 8)
        words.add(
            "".join(rng.choice("abcdefghijklmnopqrstuvwxyz") for _ in range(length))
        )
    return sorted(words)


PATTERNS = _keywords()

# >= 1 MB of traffic, a witness planted every ~50 KB: mostly cold.
STREAM = generate_input(
    "network", 1_200_000, seed=13, patterns=PATTERNS, plant_every=50_000
)


@pytest.fixture(scope="module")
def workload():
    ruleset = compile_ruleset(PATTERNS)
    assert len(ruleset.regexes) == len(PATTERNS)
    assert all(r.mode is CompiledMode.LNFA for r in ruleset)
    sim = RAPSimulator(DEFAULT_CONFIG)
    return sim, ruleset, sim.build_mapping(ruleset)


def _timed(fn, *args):
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


@requires_numpy
def test_fused_ruleset_scan_speed(benchmark, workload):
    sim, ruleset, mapping = workload
    with use_backend("fused"):
        activity = benchmark(sim.collect_activities, ruleset, STREAM, mapping)
    assert activity.input_symbols == len(STREAM)


@requires_numpy
def test_fused_beats_per_pattern_numpy(benchmark, workload):
    """The regression-gated 2x floor from the fused-backend issue."""
    sim, ruleset, mapping = workload

    def numpy_scan():
        with use_backend("numpy"):
            return sim.collect_activities(ruleset, STREAM, mapping)

    def fused_scan():
        with use_backend("fused"):
            return sim.collect_activities(ruleset, STREAM, mapping)

    assert fused_scan() == numpy_scan()  # exactness before speed
    numpy_time = min(_timed(numpy_scan) for _ in range(3))
    fused_time = min(_timed(fused_scan) for _ in range(3))
    benchmark.pedantic(fused_scan, rounds=1, iterations=1)
    assert fused_time * 2 <= numpy_time, (
        f"fused scan {fused_time:.4f}s is not 2x faster than per-unit "
        f"numpy {numpy_time:.4f}s on a {len(STREAM)}-byte stream with "
        f"{len(PATTERNS)} patterns"
    )
