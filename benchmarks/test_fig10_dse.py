"""Bench: regenerate Fig. 10 (design-space exploration).

Paper shape expectations: deeper BVs trade throughput (longer
bit-vector-processing stalls) for area/energy (higher compression);
larger bins trade padding area for power-gating energy.
"""

from repro.experiments import fig10_dse

from benchmarks.conftest import run_once


def test_fig10_dse(benchmark, config):
    result = run_once(benchmark, fig10_dse.run, config)
    print()
    print(result.to_table())

    # Fig. 10a: throughput never improves with depth; on the large-bound
    # suites, depth buys area.
    for sweep in result.nbva_sweeps:
        norm = sweep.normalized()
        throughputs = [t for _, _, _, t in norm]
        assert all(
            later <= earlier + 1e-9
            for earlier, later in zip(throughputs, throughputs[1:])
        ), f"{sweep.benchmark}: throughput must fall with depth"
    for name in ("ClamAV", "Snort", "Yara"):
        sweep = result.sweep("nbva", name)
        assert sweep.point(32).area_mm2 < sweep.point(4).area_mm2, name
    clamav = result.sweep("nbva", "ClamAV")
    assert clamav.point(32).area_mm2 < 0.6 * clamav.point(4).area_mm2

    # Small-bound suites are insensitive to depth (nothing to compress).
    for name in ("RegexLib", "SpamAssassin"):
        sweep = result.sweep("nbva", name)
        assert sweep.point(32).area_mm2 <= sweep.point(4).area_mm2 * 1.05

    # Fig. 10b: big bins concentrate initial states -> lower energy;
    # throughput is untouched by binning.
    for sweep in result.lnfa_sweeps:
        big = sweep.point(32)
        small = sweep.point(1)
        assert big.energy_uj < small.energy_uj, sweep.benchmark
        assert abs(big.throughput - small.throughput) < 1e-9

    # The chosen parameters are recorded and legal.
    for sweep in result.nbva_sweeps:
        assert sweep.chosen in (4, 8, 16, 32)
    for sweep in result.lnfa_sweeps:
        assert sweep.chosen in (1, 2, 4, 8, 16, 32)
