"""Bench: regenerate Fig. 11 (per-mode share of STEs, energy, area).

Paper shape expectation: the specialized modes punch above their
weight — LNFA's energy share sits well below its STE share, and the
plain-NFA share of energy/area is at least its share of STEs.
"""

from repro.experiments import fig11_breakdown

from benchmarks.conftest import run_once


def test_fig11_breakdown(benchmark, config):
    result = run_once(benchmark, fig11_breakdown.run, config)
    print()
    print(result.to_table())

    # All three modes are present in the mixture.
    for mode in ("NFA", "NBVA", "LNFA"):
        assert result.shares[mode].states > 0
        assert result.shares[mode].energy_uj > 0
        assert result.shares[mode].area_mm2 > 0

    # LNFA mode is the efficiency star: its energy share is far below
    # its STE share (power-gated tiles, no routing switches).
    assert result.fraction("LNFA", "energy_uj") < 0.7 * result.fraction(
        "LNFA", "states"
    )

    # NFA mode never consumes less energy than its state share warrants
    # (it is the uncompressed fallback).
    assert result.fraction("NFA", "energy_uj") > 0.6 * result.fraction(
        "NFA", "states"
    )

    # Shares are distributions.
    for metric in ("states", "energy_uj", "area_mm2"):
        total = sum(
            result.fraction(mode, metric) for mode in ("NFA", "NBVA", "LNFA")
        )
        assert abs(total - 1.0) < 1e-9
