"""Step-kernel speed: the NumPy backend must beat pure Python at scale.

The NumPy kernel's advantage is the vectorized cold-skip: when the
machine's bitset is empty it jumps straight to the next byte that can
inject a state, so mostly-idle streams (the realistic regime — network
traffic rarely matches a signature) cost one ``searchsorted`` per idle
run instead of one Python-level step per byte.  These benchmarks pin
that advantage on a >= 1 MB stream and record both kernels' absolute
speeds for the regression gate.
"""

import time

import pytest

from repro.automata.glushkov import build_automaton
from repro.automata.nfa import NFASimulator
from repro.core import available_backends, get_kernel
from repro.regex.parser import parse
from repro.workloads.inputs import generate_input

requires_numpy = pytest.mark.skipif(
    "numpy" not in available_backends(), reason="NumPy backend not available"
)

# >= 1 MB of realistic traffic with sparse planted witnesses.
STREAM = generate_input(
    "network", 1_200_000, seed=7, patterns=["abcdef"], plant_every=50_000
)


def _program():
    sim = NFASimulator(
        build_automaton(parse("ab(?:c|d)*ef"), counters=False)
    )
    return sim.program()


def _timed(fn, *args):
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


def test_python_kernel_speed(benchmark):
    program = _program()
    kernel = get_kernel("python")
    _, stats = benchmark(kernel.scan, program, STREAM)
    assert stats.cycles == len(STREAM)


@requires_numpy
def test_numpy_kernel_speed(benchmark):
    program = _program()
    kernel = get_kernel("numpy")
    _, stats = benchmark(kernel.scan, program, STREAM)
    assert stats.cycles == len(STREAM)


@requires_numpy
def test_numpy_beats_python_on_megabyte_stream(benchmark):
    """The capability flag must buy actual speed, not just pass tests."""
    program = _program()
    py, np_ = get_kernel("python"), get_kernel("numpy")
    assert np_.scan(program, STREAM) == py.scan(program, STREAM)
    py_time = min(_timed(py.scan, program, STREAM) for _ in range(3))
    np_time = min(_timed(np_.scan, program, STREAM) for _ in range(3))
    benchmark.pedantic(
        np_.scan, args=(program, STREAM), rounds=1, iterations=1
    )
    assert np_time < py_time, (
        f"numpy kernel {np_time:.4f}s did not beat python {py_time:.4f}s "
        f"on a {len(STREAM)}-byte stream"
    )
