"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation isolates one RAP mechanism and measures its contribution:

* Shift-And vector transfer vs crossbar transfer for linear patterns
  (Section 3.2's Theta(n) vs Theta(n^2) argument);
* multi-LNFA binning on vs off (Fig. 7's power gating);
* the NBVA unfolding threshold (Section 4.1's compiler knob);
* the single-column set1 optimization (Section 3.1).
"""

import pytest

from repro.compiler import CompiledMode, CompilerConfig, compile_ruleset
from repro.experiments.common import ExperimentConfig, build_mode_workload
from repro.simulators import RAPSimulator

from benchmarks.conftest import run_once


@pytest.fixture(scope="module")
def lnfa_workload():
    return build_mode_workload(
        "Prosite", CompiledMode.LNFA, ExperimentConfig.scaled()
    )


@pytest.fixture(scope="module")
def nbva_workload():
    return build_mode_workload(
        "Snort", CompiledMode.NBVA, ExperimentConfig.scaled()
    )


def test_ablation_lnfa_vector_vs_crossbar(benchmark, lnfa_workload):
    """Linear patterns on the LNFA path (active-vector shift) vs the NFA
    path (full crossbar transfer): the vector path must win on energy."""
    patterns = list(lnfa_workload.benchmark.patterns)
    data = lnfa_workload.data
    lnfa_rs = compile_ruleset(patterns, CompilerConfig())
    nfa_rs = compile_ruleset(
        patterns, CompilerConfig(forced_mode=CompiledMode.NFA)
    )
    sim = RAPSimulator()

    def run_both():
        return (
            sim.run(lnfa_rs, data, bin_size=16),
            sim.run(nfa_rs, data),
        )

    vector, crossbar = run_once(benchmark, run_both)
    assert vector.matches == crossbar.matches
    assert vector.energy_uj < crossbar.energy_uj
    # the crossbar path pays for state-transition switch accesses the
    # vector path does not perform at all
    assert crossbar.energy_breakdown_pj.get("state-transition", 0) > 0
    assert vector.energy_breakdown_pj.get("state-transition", 0) == 0
    print(
        f"\nvector {vector.energy_uj:.3f} uJ vs crossbar "
        f"{crossbar.energy_uj:.3f} uJ "
        f"({crossbar.energy_uj / vector.energy_uj:.2f}x)"
    )


def test_ablation_binning(benchmark, lnfa_workload):
    """Binning concentrates initial states: energy falls, matches don't."""
    patterns = list(lnfa_workload.benchmark.patterns)
    data = lnfa_workload.data
    ruleset = compile_ruleset(patterns, CompilerConfig())
    sim = RAPSimulator()

    def run_both():
        return (
            sim.run(ruleset, data, bin_size=1),
            sim.run(ruleset, data, bin_size=32),
        )

    unbinned, binned = run_once(benchmark, run_both)
    assert binned.matches == unbinned.matches
    assert binned.energy_uj < unbinned.energy_uj
    print(
        f"\nbinning saves "
        f"{(1 - binned.energy_uj / unbinned.energy_uj) * 100:.1f}% energy"
    )


def test_ablation_unfold_threshold(benchmark, nbva_workload):
    """Raising the threshold unfolds more repetitions: more states, fewer
    counters; the language (matches) never changes."""
    patterns = list(nbva_workload.benchmark.patterns)
    data = nbva_workload.data
    sim = RAPSimulator()

    def sweep():
        out = {}
        for threshold in (4, 16, 64):
            ruleset = compile_ruleset(
                patterns,
                CompilerConfig(unfold_threshold=threshold, bv_depth=8),
            )
            out[threshold] = (ruleset, sim.run(ruleset, data))
        return out

    results = run_once(benchmark, sweep)
    match_sets = [r.matches for _, r in results.values()]
    assert all(m == match_sets[0] for m in match_sets)
    states = {t: rs.total_states for t, (rs, _) in results.items()}
    assert states[4] <= states[16] <= states[64], states
    nbva_counts = {
        t: len(rs.by_mode(CompiledMode.NBVA))
        for t, (rs, _) in results.items()
    }
    assert nbva_counts[64] <= nbva_counts[4]
    print(f"\nstates per threshold: {states}; NBVA regexes: {nbva_counts}")


def test_ablation_set1_single_column(benchmark, nbva_workload):
    """The set1 optimization stores one initial-vector column per entry
    state instead of a full-width vector; measure the columns it saves."""
    patterns = list(nbva_workload.benchmark.patterns)
    ruleset = compile_ruleset(patterns, CompilerConfig(bv_depth=8))

    def accounting():
        optimized = 0
        unoptimized = 0
        for regex in ruleset.by_mode(CompiledMode.NBVA):
            for request in regex.tile_requests:
                optimized += request.set1_columns
                # without the optimization, every entry stores a vector
                # as wide as the BV it initializes
                if request.set1_columns:
                    per_group_width = request.bv_columns
                    unoptimized += per_group_width
        return optimized, unoptimized

    optimized, unoptimized = run_once(benchmark, accounting)
    assert optimized < unoptimized
    print(
        f"\nset1 columns: {optimized} optimized vs {unoptimized} full-width "
        f"({unoptimized - optimized} CAM columns saved)"
    )
