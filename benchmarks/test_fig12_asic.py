"""Bench: regenerate Fig. 12 (overall RAP vs BVAP / CAMA / CA).

Paper shape expectations: RAP leads CAMA and CA on energy efficiency
(1.5x and 1.2x) and compute density (1.3x and 2.5x); it at least matches
BVAP's compute density (1.6x at paper scale) at comparable energy
efficiency; CAMA burns the most power; RegexLib is RAP's worst case
(pure-NFA work pays the reconfiguration controller).
"""

from repro.experiments import fig12_asic

from benchmarks.conftest import run_once


def test_fig12_asic(benchmark, config):
    result = run_once(benchmark, fig12_asic.run, config)
    print()
    print(result.ratio_table())

    # Energy efficiency: RAP beats CAMA and CA on average.
    assert result.mean_ratio("CAMA", "energy_eff") < 0.8
    assert result.mean_ratio("CA", "energy_eff") < 0.9

    # Compute density: RAP at least matches every baseline on average
    # and clearly beats CA.
    for arch in ("BVAP", "CAMA", "CA"):
        assert result.mean_ratio(arch, "compute_density") < 1.1, arch
    assert result.mean_ratio("CA", "compute_density") < 0.65

    # Power: CAMA is the hungriest (no compression, fastest clock).
    assert result.mean_ratio("CAMA", "power_w") > 1.5

    # Per-benchmark highlights of Section 5.5.
    for name in ("Yara", "ClamAV"):
        row = result.row(name)
        assert row.ratio("CAMA", "energy_eff") < 0.75, (
            f"{name}: NBVA-dominated suites favour RAP strongly"
        )
    regexlib = result.row("RegexLib")
    others = [r for r in result.rows if r.benchmark != "RegexLib"]
    assert regexlib.ratio("CAMA", "energy_eff") > min(
        r.ratio("CAMA", "energy_eff") for r in others
    ), "RegexLib (pure NFA) is among RAP's weakest wins vs CAMA"

    # Every architecture reports physically sane numbers.
    for row in result.rows:
        for point in row.points.values():
            assert point.energy_uj > 0
            assert point.area_mm2 > 0
            assert 0 < point.throughput <= 2.15
            assert point.power_w > 0
