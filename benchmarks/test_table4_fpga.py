"""Bench: regenerate Table 4 (RAP vs the hAP FPGA on ANMLZoo).

Paper shape expectations: RAP sustains >10x hAP's throughput on every
suite; hAP's published throughput is nearly flat across suites; RAP
remains more energy-efficient.  (The paper's 1.7-5.5x power ratios
assume full-size rule sets; scaled-down workloads draw proportionally
less power, so only the ordering is asserted.)
"""

from repro.experiments import table4_fpga

from benchmarks.conftest import run_once


def test_table4_fpga(benchmark, config):
    result = run_once(benchmark, table4_fpga.run, config)
    print()
    print(result.to_table())

    for row in result.rows:
        assert row.throughput_ratio > 10, row.benchmark
        assert row.rap_power_w < row.fpga_power_w
        rap_eff = row.rap_throughput / row.rap_power_w
        fpga_eff = row.fpga_throughput / row.fpga_power_w
        assert rap_eff > fpga_eff, row.benchmark

    # Snort is hAP's slowest published point, so RAP's lead peaks there.
    snort = result.row("Snort")
    assert snort.throughput_ratio == max(
        r.throughput_ratio for r in result.rows
    )
