"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at a
scaled-down workload size (override with REPRO_BENCH_SCALE=2, 4, ... for
closer-to-paper populations) and asserts the DESIGN.md shape
expectations: who wins, in which direction, and roughly by how much.
"""

import pytest

from repro.experiments.common import ExperimentConfig


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    return ExperimentConfig.scaled()


def run_once(benchmark, fn, *args):
    """Time one full experiment run (they are minutes-scale at large
    REPRO_BENCH_SCALE, so a single round is appropriate)."""
    return benchmark.pedantic(fn, args=args, rounds=1, iterations=1)
