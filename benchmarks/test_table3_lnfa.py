"""Bench: regenerate Table 3 (LNFA mode vs NFA mode and SotA ASICs).

Paper shape expectations: LNFA mode has the lowest energy of the RAP
modes on every benchmark (79% average saving at paper scale — smaller
here, where per-array constants weigh more); its area is at worst on par
with NFA mode (the paper's 1.5x win needs full-size rule sets to
amortize bin padding); LNFA and NFA modes share the same throughput
(one symbol per cycle, no stalls).
"""

from repro.experiments import table3_lnfa

from benchmarks.conftest import run_once


def test_table3_lnfa(benchmark, config):
    result = run_once(benchmark, table3_lnfa.run, config)
    print()
    print(result.to_table())
    norm = result.normalized_averages()

    # LNFA mode is the cheapest way RAP can run these regexes.
    for row in result.rows:
        assert row.energy_uj["LNFA"] < row.energy_uj["NFA"], row.benchmark

    # Average energy advantage over the NFA mode and the baselines.
    assert norm["energy_uj"]["NFA"] > 1.5
    assert norm["energy_uj"]["CAMA"] > 1.1
    assert norm["energy_uj"]["BVAP"] > 1.1

    # BVAP drags its provisioned BVMs along for plain NFAs.
    assert norm["area_mm2"]["BVAP"] > 1.2

    # Area: parity or better on average vs a dedicated NFA run.
    assert norm["area_mm2"]["NFA"] > 0.8

    # LNFA mode keeps NFA-mode throughput: one input symbol per cycle.
    for row in result.rows:
        assert abs(row.throughput["LNFA"] - row.throughput["NFA"]) < 1e-9
        assert abs(row.throughput["LNFA"] - 2.08) < 0.01
