"""Native-backend speed: runtime-compiled C must beat the fused tier.

The native backend exists purely for throughput: the codegen bakes one
ruleset's lane masks, label rows, and DFA tables into specialized C,
trading a one-time ``cc`` invocation (cached as a shared object in the
compile cache) for a scan loop with no interpreter in it.  This gate
pins the payoff on the same regime as the fused gate — a 64-keyword
ruleset over >= 1 MB of mostly-cold network traffic — where the native
scan must be at least 5x faster than the fused lockstep pass, after
asserting the two are exactly equal (speed never buys divergence).
"""

import random
import time

import pytest

from repro.compiler import CompiledMode, compile_ruleset
from repro.core import available_backends, use_backend
from repro.core.native import native_available
from repro.hardware.config import DEFAULT_CONFIG
from repro.simulators.rap import RAPSimulator
from repro.workloads.inputs import generate_input

requires_native = pytest.mark.skipif(
    not (native_available() and "numpy" in available_backends()),
    reason="native backend not available (no C toolchain?)",
)


def _keywords(count: int = 64, seed: int = 5) -> list[str]:
    """Distinct literal keywords (forced LNFA mode) of length 5-8."""
    rng = random.Random(seed)
    words: set[str] = set()
    while len(words) < count:
        length = rng.randint(5, 8)
        words.add(
            "".join(rng.choice("abcdefghijklmnopqrstuvwxyz") for _ in range(length))
        )
    return sorted(words)


PATTERNS = _keywords()

# >= 1 MB of traffic, a witness planted every ~50 KB: mostly cold.
STREAM = generate_input(
    "network", 1_200_000, seed=13, patterns=PATTERNS, plant_every=50_000
)


@pytest.fixture(scope="module")
def workload():
    ruleset = compile_ruleset(PATTERNS)
    assert len(ruleset.regexes) == len(PATTERNS)
    assert all(r.mode is CompiledMode.LNFA for r in ruleset)
    sim = RAPSimulator(DEFAULT_CONFIG)
    return sim, ruleset, sim.build_mapping(ruleset)


def _timed(fn, *args):
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


@requires_native
def test_native_ruleset_scan_speed(benchmark, workload):
    sim, ruleset, mapping = workload
    with use_backend("native"):
        # Warm outside the timed region: the first scan may invoke cc.
        sim.collect_activities(ruleset, STREAM, mapping)
        activity = benchmark(sim.collect_activities, ruleset, STREAM, mapping)
    assert activity.input_symbols == len(STREAM)


@requires_native
def test_native_beats_fused(benchmark, workload):
    """The regression-gated 5x floor from the native-backend issue."""
    sim, ruleset, mapping = workload

    def fused_scan():
        with use_backend("fused"):
            return sim.collect_activities(ruleset, STREAM, mapping)

    def native_scan():
        with use_backend("native"):
            return sim.collect_activities(ruleset, STREAM, mapping)

    native_scan()  # warm: build (or load) the cached shared object
    assert native_scan() == fused_scan()  # exactness before speed
    fused_time = min(_timed(fused_scan) for _ in range(3))
    native_time = min(_timed(native_scan) for _ in range(3))
    benchmark.pedantic(native_scan, rounds=1, iterations=1)
    assert native_time * 5 <= fused_time, (
        f"native scan {native_time:.4f}s is not 5x faster than fused "
        f"{fused_time:.4f}s on a {len(STREAM)}-byte stream with "
        f"{len(PATTERNS)} patterns"
    )
