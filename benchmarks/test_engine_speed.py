"""Simulator-throughput benchmarks (host characters per second).

Not a paper artifact — these track the speed of the functional engines
themselves, which bounds how large a workload the harness can sweep.
The paper's artifact quotes ~72 hours on 40 cores for full-size runs;
these numbers calibrate what `REPRO_BENCH_SCALE` costs here.

``test_calibration_loop`` anchors the regression gate: CI normalizes
every mean by it before comparing against ``BENCH_baseline.json`` (see
``check_regression.py``), so the committed baseline transfers across
machines of different absolute speed.
"""

import os
import time

from repro.automata.glushkov import build_automaton
from repro.automata.nbva import NBVASimulator
from repro.automata.nfa import NFASimulator
from repro.automata.shift_and import MultiShiftAnd
from repro.compiler import CompiledMode, CompilerConfig, compile_ruleset
from repro.engine import BatchEngine, BatchTask, CompileCache, EngineConfig
from repro.engine.cache import cached_compile_ruleset
from repro.experiments.common import (
    ALL_BENCHMARK_NAMES,
    ExperimentConfig,
    build_workload,
    compile_decided,
)
from repro.regex.parser import parse
from repro.simulators import RAPSimulator
from repro.workloads.datasets import generate_benchmark
from repro.workloads.inputs import generate_input

INPUT = generate_input("network", 30_000, seed=1, patterns=["abcd"])


def test_calibration_loop(benchmark):
    """Pure-python busy loop: the machine-speed anchor for the gate."""

    def spin() -> int:
        acc = 0
        for i in range(300_000):
            acc += i * i
        return acc

    assert benchmark(spin) > 0


def test_nfa_engine_speed(benchmark):
    engine = NFASimulator(build_automaton(parse("ab(?:c|d)*ef"), counters=False))
    count = benchmark(engine.count_matches, INPUT)
    assert count >= 0


def test_nbva_engine_speed(benchmark):
    engine = NBVASimulator(
        build_automaton(parse("abcd[^\\n]{64}e"))
    )
    count = benchmark(engine.count_matches, INPUT)
    assert count >= 0


def test_multi_shift_and_speed(benchmark):
    ruleset = compile_ruleset(
        [p for p in generate_benchmark("Prosite", size=24, seed=1).patterns],
        CompilerConfig(),
    )
    lnfas = [s for r in ruleset.by_mode(CompiledMode.LNFA) for s in r.lnfas]
    packed = MultiShiftAnd(lnfas)
    data = generate_input("protein", 30_000, seed=2)
    hits = benchmark(packed.find_matches, data)
    assert isinstance(hits, list)


def test_full_rap_simulation_speed(benchmark):
    bench = generate_benchmark("Snort", size=16, seed=3)
    ruleset = compile_ruleset(bench.patterns, CompilerConfig(bv_depth=8))
    data = generate_input(
        "network", 8000, seed=3, patterns=bench.patterns, plant_every=900
    )
    sim = RAPSimulator()
    result = benchmark.pedantic(
        sim.run, args=(ruleset, data), rounds=1, iterations=1
    )
    assert result.energy_uj > 0


def test_compile_cache_warm_speed(benchmark, tmp_path):
    """A warm cache hit must be >= 10x faster than a cold compile."""
    bench = generate_benchmark("Snort", size=48, seed=5)
    config = CompilerConfig(bv_depth=8)
    cache = CompileCache(tmp_path)

    start = time.perf_counter()
    cold_ruleset = cached_compile_ruleset(bench.patterns, config, cache)
    cold = time.perf_counter() - start

    warm = min(
        _timed(cached_compile_ruleset, bench.patterns, config, cache)[1]
        for _ in range(3)
    )
    warm_ruleset = benchmark(
        cached_compile_ruleset, bench.patterns, config, cache
    )
    assert [r.pattern for r in warm_ruleset] == [
        r.pattern for r in cold_ruleset
    ]
    assert cache.hits > 0 and cache.misses == 1
    assert warm * 10 <= cold, f"warm {warm:.4f}s vs cold {cold:.4f}s"


def test_parallel_batch_speedup(benchmark):
    """The fig12-style batch at --jobs 4; >= 2x is asserted on >= 4 cores."""
    config = ExperimentConfig(benchmark_size=12, input_length=3000)
    tasks = []
    for name in ALL_BENCHMARK_NAMES[:4]:
        workload = build_workload(name, config)
        ruleset = compile_decided(
            workload.benchmark.patterns, config, workload.chosen_depth
        )
        tasks.append(
            BatchTask(
                data=workload.data,
                ruleset=ruleset,
                bin_size=workload.chosen_bin_size,
            )
        )
    sequential = BatchEngine(EngineConfig(jobs=1, use_cache=False))
    parallel = BatchEngine(EngineConfig(jobs=4, use_cache=False))

    seq_results, seq_time = _timed(sequential.run_batch, tasks)
    par_results, par_time = _timed(parallel.run_batch, tasks)
    benchmark.pedantic(
        parallel.run_batch, args=(tasks,), rounds=1, iterations=1
    )
    assert par_results == seq_results  # bit-identical, any job count
    if (os.cpu_count() or 1) >= 4:
        assert seq_time >= 2 * par_time, (
            f"jobs=4 speedup only {seq_time / par_time:.2f}x"
        )


def _timed(fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - start
