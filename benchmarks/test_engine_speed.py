"""Simulator-throughput benchmarks (host characters per second).

Not a paper artifact — these track the speed of the functional engines
themselves, which bounds how large a workload the harness can sweep.
The paper's artifact quotes ~72 hours on 40 cores for full-size runs;
these numbers calibrate what `REPRO_BENCH_SCALE` costs here.
"""

from repro.automata.glushkov import build_automaton
from repro.automata.nbva import NBVASimulator
from repro.automata.nfa import NFASimulator
from repro.automata.shift_and import MultiShiftAnd
from repro.compiler import CompiledMode, CompilerConfig, compile_ruleset
from repro.regex.parser import parse
from repro.simulators import RAPSimulator
from repro.workloads.datasets import generate_benchmark
from repro.workloads.inputs import generate_input

INPUT = generate_input("network", 30_000, seed=1, patterns=["abcd"])


def test_nfa_engine_speed(benchmark):
    engine = NFASimulator(build_automaton(parse("ab(?:c|d)*ef"), counters=False))
    count = benchmark(engine.count_matches, INPUT)
    assert count >= 0


def test_nbva_engine_speed(benchmark):
    engine = NBVASimulator(
        build_automaton(parse("abcd[^\\n]{64}e"))
    )
    count = benchmark(engine.count_matches, INPUT)
    assert count >= 0


def test_multi_shift_and_speed(benchmark):
    ruleset = compile_ruleset(
        [p for p in generate_benchmark("Prosite", size=24, seed=1).patterns],
        CompilerConfig(),
    )
    lnfas = [l for r in ruleset.by_mode(CompiledMode.LNFA) for l in r.lnfas]
    packed = MultiShiftAnd(lnfas)
    data = generate_input("protein", 30_000, seed=2)
    hits = benchmark(packed.find_matches, data)
    assert isinstance(hits, list)


def test_full_rap_simulation_speed(benchmark):
    bench = generate_benchmark("Snort", size=16, seed=3)
    ruleset = compile_ruleset(bench.patterns, CompilerConfig(bv_depth=8))
    data = generate_input(
        "network", 8000, seed=3, patterns=bench.patterns, plant_every=900
    )
    sim = RAPSimulator()
    result = benchmark.pedantic(
        sim.run, args=(ruleset, data), rounds=1, iterations=1
    )
    assert result.energy_uj > 0
