"""Input-parallel scan speed: SFA stitching must beat serial fused.

The split engine's pitch is that one long stream fans out across
cores with *zero* accuracy cost: every chunk scans from its warm-up
window (or composes a frontier table), and the stitched activity is
bit-identical to the serial fused pass.  This gate pins both halves of
that pitch on the regime the input-parallel issue names — a synthetic
64-keyword ruleset over tens of megabytes of mostly-cold traffic:

* exactness is asserted unconditionally (`SimulationResult` equality
  between serial fused and ``input_jobs=4``), and
* on hosts with >= 4 cores the split scan must be at least 2.5x faster.

``RAP_SPLIT_BENCH_MB`` sizes the stream (the scheduled CI leg sets it
to 50; the default keeps local runs in seconds).  The stream tiles one
generated block because the pure-Python input generator would dominate
a 50 MB setup otherwise; tiling changes nothing about the scan itself.
"""

import os
import random
import time

import pytest

from repro.compiler import CompiledMode, compile_ruleset
from repro.core import available_backends
from repro.engine import BatchEngine, EngineConfig
from repro.workloads.inputs import generate_input

requires_numpy = pytest.mark.skipif(
    "numpy" not in available_backends(), reason="NumPy backend not available"
)


def _keywords(count: int = 64, seed: int = 5) -> list[str]:
    """Distinct literal keywords (forced LNFA mode) of length 5-8."""
    rng = random.Random(seed)
    words: set[str] = set()
    while len(words) < count:
        length = rng.randint(5, 8)
        words.add(
            "".join(rng.choice("abcdefghijklmnopqrstuvwxyz") for _ in range(length))
        )
    return sorted(words)


PATTERNS = _keywords()

STREAM_MB = max(1, int(os.environ.get("RAP_SPLIT_BENCH_MB", "8")))
_BLOCK = generate_input(
    "network", 1 << 20, seed=13, patterns=PATTERNS, plant_every=50_000
)
STREAM = (_BLOCK * STREAM_MB)[: STREAM_MB << 20]

INPUT_JOBS = 4
SPEEDUP_FLOOR = 2.5
# The floor is defined on the long-input regime (the scheduled CI leg
# runs at 50 MB); short default streams record timings and assert
# exactness but don't gate speedup — pool spawn overhead dominates.
FLOOR_MIN_MB = 50


@pytest.fixture(scope="module")
def workload():
    ruleset = compile_ruleset(PATTERNS)
    assert all(r.mode is CompiledMode.LNFA for r in ruleset)
    serial = BatchEngine(EngineConfig(jobs=1, backend="fused"))
    split = BatchEngine(
        EngineConfig(jobs=1, input_jobs=INPUT_JOBS, backend="fused")
    )
    return ruleset, serial, split


def _timed(fn, *args):
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


@requires_numpy
def test_split_scan_speed(benchmark, workload):
    ruleset, _, split = workload
    result = benchmark.pedantic(
        split.scan, args=(ruleset, STREAM), rounds=1, iterations=1
    )
    assert result.matches


@requires_numpy
def test_split_matches_serial_and_beats_it(benchmark, workload):
    """The regression-gated floor from the input-parallel issue."""
    ruleset, serial, split = workload

    serial_result = serial.scan(ruleset, STREAM)
    split_result = split.scan(ruleset, STREAM)
    # Exactness gates unconditionally — a fast wrong answer is a bug.
    assert split_result == serial_result

    benchmark.pedantic(
        split.scan, args=(ruleset, STREAM), rounds=1, iterations=1
    )
    if (os.cpu_count() or 1) < INPUT_JOBS:
        pytest.skip(
            f"speedup floor needs >= {INPUT_JOBS} cores "
            f"(host has {os.cpu_count()}); exactness was still asserted"
        )
    if STREAM_MB < FLOOR_MIN_MB:
        pytest.skip(
            f"speedup floor gates at RAP_SPLIT_BENCH_MB >= {FLOOR_MIN_MB} "
            f"(ran at {STREAM_MB}); exactness was still asserted"
        )
    serial_time = min(_timed(serial.scan, ruleset, STREAM) for _ in range(2))
    split_time = min(_timed(split.scan, ruleset, STREAM) for _ in range(2))
    assert split_time * SPEEDUP_FLOOR <= serial_time, (
        f"input-parallel scan {split_time:.3f}s is not {SPEEDUP_FLOOR}x "
        f"faster than serial fused {serial_time:.3f}s on a "
        f"{len(STREAM)}-byte stream with input_jobs={INPUT_JOBS}"
    )
