"""Bench: regenerate Fig. 13 (RAP vs GPU and CPU software engines).

Paper shape expectations: RAP's throughput is roughly an order of
magnitude above the GPU engine and far above the CPU, at a small
fraction of their power, for >100x / >1000x energy-efficiency leads.
"""

from repro.experiments import fig13_cpu_gpu

from benchmarks.conftest import run_once


def test_fig13_cpu_gpu(benchmark, config):
    result = run_once(benchmark, fig13_cpu_gpu.run, config)
    print()
    print(result.to_table())

    for row in result.rows:
        assert row.rap_throughput > 5 * row.gpu_throughput, row.benchmark
        assert row.rap_throughput > 25 * row.cpu_throughput, row.benchmark
        assert row.rap_power_w < row.gpu_power_w / 10
        assert row.efficiency_vs_gpu > 100, row.benchmark
        assert row.efficiency_vs_cpu > 1000, row.benchmark
        # the GPU beats the CPU on both axes (HybridSA's result)
        assert row.gpu_throughput > row.cpu_throughput
        assert row.gpu_power_w < row.cpu_power_w
