"""Bench: regenerate Table 2 (NBVA mode vs NFA mode and SotA ASICs).

Paper shape expectations (Section 5.4 / DESIGN.md): NFA mode costs
~3-4x the energy and area of NBVA mode on repetition-heavy suites and
~1x on RegexLib; BVAP is the only design cheaper in energy but pays
more area; CA is the largest; counting stalls make NBVA throughput <=
NFA throughput, with ClamAV slowest.
"""

from repro.experiments import table2_nbva

from benchmarks.conftest import run_once

REP_HEAVY = ["Snort", "Suricata", "Yara", "ClamAV"]


def test_table2_nbva(benchmark, config):
    result = run_once(benchmark, table2_nbva.run, config)
    print()
    print(result.to_table())
    norm = result.normalized_averages()

    # NFA mode pays heavily for unfolding on repetition-heavy suites.
    for name in REP_HEAVY:
        row = result.row(name)
        assert row.energy_uj["NFA"] > 2.5 * row.energy_uj["NBVA"], name
        assert row.area_mm2["NFA"] > 2.0 * row.area_mm2["NBVA"], name

    # RegexLib gains little from counting (small, rare repetitions) —
    # far less than the repetition-heavy suites do.
    regexlib = result.row("RegexLib")
    regexlib_gain = regexlib.energy_uj["NFA"] / regexlib.energy_uj["NBVA"]
    assert regexlib_gain < 2.0
    for name in REP_HEAVY:
        row = result.row(name)
        assert row.energy_uj["NFA"] / row.energy_uj["NBVA"] > regexlib_gain

    # Average ordering across designs (geometric mean vs NBVA baseline).
    assert norm["energy_uj"]["NFA"] > norm["energy_uj"]["CAMA"] > 1.5
    assert norm["energy_uj"]["BVAP"] < 1.0, "BVAP's dedicated BVM is cheaper"
    assert norm["area_mm2"]["BVAP"] > 1.0, "BVAP's fixed slots waste area"
    assert norm["area_mm2"]["CA"] == max(
        norm["area_mm2"].values()
    ), "CA is the largest design"
    assert norm["area_mm2"]["NFA"] > 2.0

    # Throughput: NBVA stalls; the clock ordering holds elsewhere.
    for row in result.rows:
        assert row.throughput["NBVA"] <= row.throughput["NFA"] + 1e-9
        assert abs(row.throughput["NFA"] - 2.08) < 0.01
        assert abs(row.throughput["CAMA"] - 2.14) < 0.01
        assert abs(row.throughput["CA"] - 1.82) < 0.01
    clamav = result.row("ClamAV")
    assert clamav.throughput["NBVA"] == min(
        r.throughput["NBVA"] for r in result.rows
    ), "ClamAV's deep BVs stall the most"
