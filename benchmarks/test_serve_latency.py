"""Scan-service latency benchmarks: segment turnaround under load.

Not a paper artifact — these track the streaming front end
(:mod:`repro.serve`) end to end: N concurrent sessions stream segments
over real sockets on the loopback interface and the per-segment
turnaround (send to events-frame) is aggregated into p50/p99.

Recorded but NOT gated by ``check_regression.py`` (``test_serve_`` is in
its ``UNGATED`` set): loopback round-trips and asyncio scheduling jitter
vary far more across machines than the compute-bound means the gate is
calibrated for.  The benchmark still asserts correctness — every session
must complete and the aggregate totals must equal the uninterrupted
serial golden.
"""

import asyncio
import random

from repro.serve.client import LoadGenerator, serial_totals
from repro.serve.registry import TenantRegistry
from repro.serve.server import ScanServer, ServeConfig

PATTERNS = ["abc", "a.c", "end$", "hello|world", "xy*z"]
ALPHABET = b"abcxyz endhello world"
SESSIONS = 8
PAYLOAD_BYTES = 20_000
SEGMENT_BYTES = 2_048


def _make_payloads():
    payloads = []
    for i in range(SESSIONS):
        rng = random.Random(100 + i)
        payloads.append(
            bytes(rng.choice(ALPHABET) for _ in range(PAYLOAD_BYTES))
            + b" helloend"
        )
    return payloads


def test_serve_segment_latency(benchmark, tmp_path):
    """p50/p99 segment turnaround with 8 concurrent streaming sessions."""
    registry = TenantRegistry()
    payloads = _make_payloads()
    golden = serial_totals(PATTERNS, payloads, registry)

    async def drive():
        config = ServeConfig(port=0, checkpoint_dir=str(tmp_path / "ck"))
        server = ScanServer(config, registry)
        await server.start()
        try:
            generator = LoadGenerator(
                "127.0.0.1",
                server.port,
                PATTERNS,
                tenant="bench",
                sessions=SESSIONS,
                segment_bytes=SEGMENT_BYTES,
            )
            return await generator.run(payloads)
        finally:
            await server.stop()

    report = benchmark.pedantic(
        lambda: asyncio.run(drive()), rounds=1, iterations=1
    )
    assert report.failed == 0
    assert report.completed == SESSIONS
    assert (report.total_matches, report.total_energy_uj) == golden
    benchmark.extra_info["sessions"] = SESSIONS
    benchmark.extra_info["segments"] = len(report.latencies_ms)
    benchmark.extra_info["p50_ms"] = report.latency_percentile(50)
    benchmark.extra_info["p99_ms"] = report.latency_percentile(99)
