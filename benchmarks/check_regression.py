#!/usr/bin/env python
"""Benchmark regression gate for CI.

Compares a fresh ``pytest-benchmark`` JSON run against the committed
baseline (``benchmarks/BENCH_baseline.json``).  Raw means don't transfer
across machines, so every mean is first normalized by the run's own
``test_calibration_loop`` mean (a pure-python busy loop that tracks host
speed); the gate then fails if any benchmark's normalized mean grew more
than ``--threshold`` (default 25%) over the baseline.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/test_engine_speed.py \
        --benchmark-json=bench.json
    python benchmarks/check_regression.py bench.json

Refresh the baseline by re-running the first command with
``--benchmark-json=benchmarks/BENCH_baseline.json`` on a quiet machine.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

CALIBRATION = "test_calibration_loop"

# Recorded but not gated: multiprocess wall-clock depends on pool spawn
# latency and core count, which vary far more than compute-bound means.
# The benchmark itself still asserts correctness and (on >= 4 cores) the
# 2x speedup floor.  Serve latency rides on loopback round-trips and
# asyncio scheduling jitter, which are just as machine-bound.
UNGATED = {"test_parallel_batch_speedup", "test_split_", "test_serve_"}


def normalized_means(path: Path) -> dict[str, float]:
    """Benchmark name -> mean normalized by the calibration loop."""
    with open(path) as f:
        doc = json.load(f)
    means = {b["name"]: b["stats"]["mean"] for b in doc["benchmarks"]}
    calibration = next(
        (mean for name, mean in means.items() if CALIBRATION in name), None
    )
    if not calibration:
        raise SystemExit(f"{path}: no {CALIBRATION} benchmark to anchor on")
    return {
        name: mean / calibration
        for name, mean in means.items()
        if CALIBRATION not in name
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path, help="fresh benchmark JSON")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path(__file__).parent / "BENCH_baseline.json",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum allowed normalized-mean growth (0.25 = +25%%)",
    )
    args = parser.parse_args(argv)

    baseline = normalized_means(args.baseline)
    current = normalized_means(args.current)
    failures = []
    for name, ratio in sorted(current.items()):
        if any(name.startswith(skip) for skip in UNGATED):
            print(f"skip  {name}: {ratio:.3f} (ungated: multiprocess noise)")
            continue
        if name not in baseline:
            print(f"NEW   {name}: {ratio:.3f} (no baseline; recorded only)")
            continue
        delta = ratio / baseline[name] - 1.0
        status = "FAIL" if delta > args.threshold else "ok"
        print(
            f"{status:5} {name}: {baseline[name]:.3f} -> {ratio:.3f} "
            f"({delta:+.1%})"
        )
        if status == "FAIL":
            failures.append(name)
    for name in sorted(set(baseline) - set(current)):
        print(f"GONE  {name}: in baseline but not in this run")
    if failures:
        print(
            f"{len(failures)} benchmark(s) regressed more than "
            f"{args.threshold:.0%}",
            file=sys.stderr,
        )
        return 1
    print("benchmark regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
