"""Ablation bench: the two-level I/O buffering of Section 3.3.

Quantifies how much NBVA stall latency the bank's buffer hierarchy hides
for the sibling arrays, and what match storms beyond the 10%-match-rate
design point cost through output-buffer interrupts.
"""

from repro.compiler import CompiledMode
from repro.experiments.common import ExperimentConfig, build_mode_workload
from repro.experiments.common import compile_forced
from repro.simulators.activity import collect_regex_activity
from repro.simulators.bank import ArrayStream, BankSimulator, streams_from_activities

from benchmarks.conftest import run_once


def test_ablation_io_buffer_hiding(benchmark):
    """Replay a real NBVA workload's stall schedule through the bank:
    the buffered siblings lose far less throughput than the stalling
    array itself."""
    config = ExperimentConfig.scaled()
    workload = build_mode_workload("Yara", CompiledMode.NBVA, config)
    ruleset = compile_forced(
        list(workload.benchmark.patterns),
        CompiledMode.NBVA,
        config,
        bv_depth=workload.chosen_depth,
    )

    def build_and_run():
        activities = [
            collect_regex_activity(r, workload.data) for r in ruleset
        ]
        nbva_stream = streams_from_activities(
            [("nbva", activities)], {"nbva": workload.chosen_depth}
        )[0]
        sibling = ArrayStream(name="sibling")
        sim = BankSimulator()
        together = sim.run([nbva_stream, sibling], len(workload.data))
        alone = sim.run([nbva_stream], len(workload.data))
        return together, alone

    together, alone = run_once(benchmark, build_and_run)

    # The shared window tethers the sibling to the stalling array, but
    # the buffering hides part of the stall time.
    stall_total = sum(
        v for v in together.array_starved_cycles.values()
    )
    assert (
        together.array_finish_cycles["sibling"]
        <= together.array_finish_cycles["nbva"]
    )
    assert together.total_cycles <= alone.total_cycles + 8
    finish = together.array_finish_cycles
    print(
        f"\nNBVA array finished at {finish['nbva']} cycles; buffered "
        f"sibling at {finish['sibling']} (window hid "
        f"{finish['nbva'] - finish['sibling']} cycles of exposure)"
    )


def test_ablation_output_path_sizing(benchmark):
    """The 64-entry output buffer absorbs the paper's <10% match rate;
    storms above it trip CPU interrupts and cost real throughput."""

    def sweep():
        out = {}
        for rate_every in (64, 16, 4, 2):
            reports = frozenset(range(0, 4000, rate_every))
            result = BankSimulator().run(
                [ArrayStream("a0", reports_at=reports)], 4000
            )
            out[rate_every] = result
        return out

    results = run_once(benchmark, sweep)
    assert results[64].output_interrupts <= results[2].output_interrupts
    assert results[2].effective_throughput < results[64].effective_throughput
    # no reports are ever lost, whatever the rate
    for rate_every, result in results.items():
        assert result.reports_delivered == len(range(0, 4000, rate_every))
    print(
        "\nmatch-rate sweep (1/N symbols): "
        + ", ".join(
            f"1/{k}: {v.effective_throughput:.2f} sym/cyc, "
            f"{v.output_interrupts} IRQs"
            for k, v in sorted(results.items(), reverse=True)
        )
    )
