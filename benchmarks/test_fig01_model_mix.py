"""Bench: regenerate Fig. 1 (model mix per benchmark)."""

from repro.experiments import fig01_model_mix

from benchmarks.conftest import run_once


def test_fig01_model_mix(benchmark, config):
    result = run_once(benchmark, fig01_model_mix.run, config)
    print()
    print(result.to_table())

    # Shape: the paper's explicit qualitative statements about Fig. 1.
    assert result.row("RegexLib").nfa > 0.5, "RegexLib is NFA-dominated"
    assert result.row("ClamAV").nbva > 0.8, "ClamAV is >80% NBVA"
    assert result.row("Prosite").nbva == 0.0, "Prosite has no NBVA regexes"
    assert result.row("Prosite").lnfa > 0.5, "Prosite is LNFA-majority"
    assert result.row("SpamAssassin").lnfa > 0.5, "SpamAssassin LNFA-majority"
    assert result.row("Yara").nbva > 0.5, "Yara is NBVA-dominated"
    for name in ("Snort", "Suricata"):
        row = result.row(name)
        # mixed NFA/NBVA workloads with similar shares
        assert abs(row.nfa - row.nbva) < 0.25
    # fractions are proper distributions
    for row in result.rows:
        assert abs(row.nfa + row.nbva + row.lnfa - 1.0) < 1e-9
