"""Self-checking: validate simulator output against the reference oracle.

The paper "performed consistency checks ... to verify the functionality
of RAP under all modes and the correctness of the hardware simulator by
comparing matching results of the simulator against a production software
matcher" (Section 5.2).  This module ships that methodology as a public
API: run any compiled ruleset's matches past the independent
Thompson-construction oracle and get a structured report of every
deviation.  The CLI exposes it as ``repro scan --verify``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.automata.reference import ReferenceMatcher
from repro.compiler.program import CompiledRegex, CompiledRuleset
from repro.regex.parser import parse_anchored


@dataclass(frozen=True)
class Mismatch:
    """One regex whose simulated matches deviate from the oracle."""

    regex_id: int
    pattern: str
    missing: tuple[int, ...]  # oracle-only end positions
    spurious: tuple[int, ...]  # simulator-only end positions

    def describe(self) -> str:
        """Human-readable summary."""
        parts = [f"regex {self.regex_id} ({self.pattern!r}):"]
        if self.missing:
            parts.append(f"missing {list(self.missing)}")
        if self.spurious:
            parts.append(f"spurious {list(self.spurious)}")
        return " ".join(parts)


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of one consistency check."""

    regexes_checked: int
    input_length: int
    total_matches: int
    mismatches: tuple[Mismatch, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        """True iff no mismatches were found."""
        return not self.mismatches

    def describe(self) -> str:
        """Human-readable summary."""
        if self.ok:
            return (
                f"OK: {self.total_matches} matches from "
                f"{self.regexes_checked} regexes over "
                f"{self.input_length} bytes verified against the oracle"
            )
        lines = [
            f"FAILED: {len(self.mismatches)} of {self.regexes_checked} "
            "regexes deviate from the oracle"
        ]
        lines += ["  " + m.describe() for m in self.mismatches]
        return "\n".join(lines)


def oracle_matches(regex: CompiledRegex, data: bytes) -> list[int]:
    """Ground-truth end positions for one compiled regex's pattern."""
    parsed = parse_anchored(regex.pattern)
    return ReferenceMatcher(
        parsed.regex,
        anchored_start=parsed.anchored_start,
        anchored_end=parsed.anchored_end,
    ).find_matches(data)


def verify_matches(
    ruleset: CompiledRuleset,
    data: bytes,
    matches: dict[int, list[int]],
) -> VerificationReport:
    """Compare simulator-reported ``matches`` against the oracle."""
    mismatches: list[Mismatch] = []
    total = 0
    for regex in ruleset:
        got = matches.get(regex.regex_id, [])
        total += len(got)
        expected = oracle_matches(regex, data)
        if got != expected:
            got_set, expected_set = set(got), set(expected)
            mismatches.append(
                Mismatch(
                    regex_id=regex.regex_id,
                    pattern=regex.pattern,
                    missing=tuple(sorted(expected_set - got_set)),
                    spurious=tuple(sorted(got_set - expected_set)),
                )
            )
    return VerificationReport(
        regexes_checked=len(ruleset),
        input_length=len(data),
        total_matches=total,
        mismatches=tuple(mismatches),
    )


def self_check(
    ruleset: CompiledRuleset,
    data: bytes,
    *,
    bin_size: int | None = None,
) -> VerificationReport:
    """Run the RAP simulator on ``data`` and verify it against the oracle."""
    from repro.simulators import RAPSimulator

    result = RAPSimulator().run(ruleset, data, bin_size=bin_size)
    return verify_matches(ruleset, data, result.matches)
