"""Architectural configuration of RAP (Section 3.3).

All geometry and capacity parameters of the bank / array / tile hierarchy
live here so the compiler, mapper, and simulators share one source of
truth.  Defaults reproduce the paper's design point:

* tile: 32x128 8T-CAM (128 STE columns, 32-bit CC codes) + 128x128 FCB
  local switch + local controller, clocked at 2.08 GHz;
* array: 16 tiles + one 256x256 FCB global switch + global controller;
* bank: 4 arrays + two-level input buffering (128-entry ping-pong bank
  buffer, 8-entry array FIFOs) and output buffering (64-entry bank
  buffer, 2-entry array FIFOs).

One published tension is parameterized rather than resolved: Section 3.3
says each tile lets 32 STEs reach the global switch, yet a 256-port global
switch shared by 16 tiles leaves 16 ports per tile.  ``global_ports_per_
tile`` defaults to the value consistent with the switch size; the mapper
treats it as the inter-tile fan-out budget.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.hardware.circuits import RAP_CLOCK_GHZ


class TileMode(enum.Enum):
    """Operating mode of a RAP tile; each tile is configured independently."""

    NFA = "nfa"
    NBVA = "nbva"
    LNFA = "lnfa"


@dataclass(frozen=True)
class HardwareConfig:
    """Geometry and capacity of the simulated RAP design point."""

    # -- tile ------------------------------------------------------------
    cam_rows: int = 32  # also the CC code width in bits
    cam_cols: int = 128  # STE / BV columns per tile
    local_switch_dim: int = 128  # FCB: local_switch_dim x local_switch_dim

    # -- array -----------------------------------------------------------
    tiles_per_array: int = 16
    global_switch_dim: int = 256

    # -- bank ------------------------------------------------------------
    arrays_per_bank: int = 4
    bank_input_buffer_entries: int = 128  # ping-pong
    array_input_fifo_entries: int = 8
    bank_output_buffer_entries: int = 64  # ping-pong
    array_output_fifo_entries: int = 2

    # -- mode-specific capacities -----------------------------------------
    max_bin_size: int = 32  # LNFAs per bin (Section 3.3)
    ring_width_bits: int = 64  # LNFA ring network width
    bv_depth_choices: tuple[int, ...] = (4, 8, 16, 32)

    # -- timing -----------------------------------------------------------
    clock_ghz: float = RAP_CLOCK_GHZ

    # -- estimated physical layout ----------------------------------------
    # Average global-wire span charged per inter-tile transition; RAP's
    # tile pitch matches CAMA's, whose reported wire delay corresponds to
    # sub-millimetre hops.
    mean_global_wire_mm: float = 0.5
    ring_hop_wire_mm: float = 0.1  # adjacent-tile ring hop (short wires)

    def __post_init__(self) -> None:
        if self.cam_cols != self.local_switch_dim:
            raise ValueError(
                "the local switch must span exactly the CAM columns "
                f"({self.cam_cols} vs {self.local_switch_dim})"
            )
        if self.global_switch_dim % self.tiles_per_array:
            raise ValueError(
                "global switch ports must divide evenly across tiles"
            )

    # -- derived capacities (Section 3.3 quotes these) ---------------------

    @property
    def global_ports_per_tile(self) -> int:
        """Inter-tile connections available to each tile."""
        return self.global_switch_dim // self.tiles_per_array

    @property
    def stes_per_tile(self) -> int:
        """STE columns available per tile."""
        return self.cam_cols

    @property
    def stes_per_array(self) -> int:
        """STE columns available per array."""
        return self.cam_cols * self.tiles_per_array

    @property
    def max_regex_states(self) -> int:
        """Largest NFA/LNFA regex: one full array (no inter-array routing)."""
        return self.stes_per_array

    @property
    def max_bv_bits(self) -> int:
        """Largest single bit vector: all CAM columns but one CC column and
        one set1 column, at the deepest setting (127 columns x 32 rows =
        4064 bits in the default geometry)."""
        return (self.cam_cols - 1) * self.cam_rows

    @property
    def max_nbva_unfolded_states(self) -> int:
        """Largest regex supported in NBVA mode, measured in unfolded STEs
        (the paper quotes 64528 for the default geometry)."""
        # Per tile: one CC column and one set1 column leave cam_cols - 2
        # columns of cam_rows bits of counting, plus the CC state itself;
        # 16 tiles x (126 x 32 + 1) = 64528 in the default geometry.
        per_tile = (self.cam_cols - 2) * self.cam_rows + 1
        return per_tile * self.tiles_per_array

    @property
    def cycle_ns(self) -> float:
        """Clock period in nanoseconds."""
        return 1.0 / self.clock_ghz

    # -- (de)serialization for custom design points -----------------------

    def to_json(self) -> dict:
        """All configuration fields as a plain dict (CLI ``--hw`` files)."""
        import dataclasses

        doc = dataclasses.asdict(self)
        doc["bv_depth_choices"] = list(self.bv_depth_choices)
        return doc

    @classmethod
    def from_json(cls, doc: dict) -> "HardwareConfig":
        """Inverse of :meth:`to_json`; unknown keys are rejected loudly."""
        import dataclasses

        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise ValueError(f"unknown hardware-config keys: {sorted(unknown)}")
        kwargs = dict(doc)
        if "bv_depth_choices" in kwargs:
            kwargs["bv_depth_choices"] = tuple(kwargs["bv_depth_choices"])
        return cls(**kwargs)

    def bv_columns(self, bv_bits: int, depth: int) -> int:
        """CAM columns (width) needed for a ``bv_bits``-long vector at the
        given depth (rows per column), per the row-first mapping."""
        if depth not in self.bv_depth_choices:
            raise ValueError(
                f"depth {depth} not in supported choices {self.bv_depth_choices}"
            )
        if bv_bits < 1:
            raise ValueError(f"bit vector needs at least one bit, got {bv_bits}")
        return -(-bv_bits // depth)  # ceil division


DEFAULT_CONFIG = HardwareConfig()
