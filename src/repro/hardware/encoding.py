"""Character-class encodings for the CAM and the local switches.

Two schemes appear in the paper (Section 3.2):

* **Multi-zero prefix encoding** (inherited from CAMA): a character class
  is compressed into one or more 32-bit column codes.  Our model follows
  the CAM geometry: an input byte activates one of the 32 CAM rows with
  its low 5 bits, and a single column code can cover an arbitrary subset
  of one aligned 32-symbol block selected by the byte's high 3 bits.  A
  class therefore needs one code per aligned block it touches — except
  that an all-zero column matches *everything* (the wildcard trick), and
  a class that is the complement of few blocks can be stored negatively.
  The cost model is ``codes = max(1, min(blocks(cc), blocks(~cc)))``,
  which gives 1 for singletons, ranges inside a block, ``.``, and the
  ``[^x]``-style classes that dominate real rule sets — matching the
  paper's observation that 84% of LNFAs need only single-code classes.

* **One-hot encoding** into local switches: 256 bits per class stored
  across two 128-row switch columns; the input byte's MSB selects the
  column and the remaining 7 bits one-hot-activate a row.
"""

from __future__ import annotations

from repro.regex.charclass import CharClass

CODE_BITS = 32  # one CAM column
BLOCK_SHIFT = 5  # low 5 bits select the CAM row
ONEHOT_SWITCH_COLUMNS = 2  # 256-bit one-hot across two 128-bit columns


def blocks_touched(cc: CharClass) -> int:
    """Number of aligned 32-symbol blocks containing at least one member."""
    return len({b >> BLOCK_SHIFT for b in cc})


def codes_needed(cc: CharClass) -> int:
    """CAM columns needed to store ``cc`` under multi-zero prefix encoding."""
    if cc.is_empty():
        raise ValueError("cannot encode an empty character class")
    if cc.is_any():
        return 1  # the all-zero wildcard column
    positive = blocks_touched(cc)
    negative = blocks_touched(~cc)
    return max(1, min(positive, negative))


def single_code(cc: CharClass) -> bool:
    """True iff ``cc`` fits one 32-bit code — the LNFA CAM-mode
    eligibility test of Section 3.2."""
    return codes_needed(cc) == 1


def lnfa_cam_eligible(labels) -> bool:
    """Can this whole LNFA run in the CAM (every class single-code)?"""
    return all(single_code(cc) for cc in labels)


def onehot_switch_columns(state_count: int) -> int:
    """Local-switch columns consumed by ``state_count`` one-hot-encoded
    LNFA states (2 columns of the 128x128 FCB per state)."""
    return ONEHOT_SWITCH_COLUMNS * state_count
