"""Buffer primitives for the I/O streaming path (Section 3.3).

The bank interfaces the host CPU through a two-level input hierarchy — a
128-entry ping-pong Bank Input Buffer fed by DMA and an 8-entry FIFO per
array — and a mirrored output path (2-entry array FIFOs, a 64-entry
ping-pong Bank Output Buffer, and a CPU interrupt when it fills).  These
primitives model occupancy, back-pressure, and hand-off so the bank
simulator can quantify how much of the NBVA stall latency the buffering
actually hides.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass
class BufferStats:
    """Occupancy and back-pressure counters for one buffer."""

    pushes: int = 0
    pops: int = 0
    rejected: int = 0  # push attempts against a full buffer
    occupancy_sum: int = 0  # integrated over observed cycles
    observations: int = 0
    max_occupancy: int = 0

    @property
    def mean_occupancy(self) -> float:
        """Average observed occupancy."""
        return self.occupancy_sum / self.observations if self.observations else 0.0


class Fifo:
    """A bounded FIFO (the per-array input/output buffers)."""

    def __init__(self, capacity: int, name: str = "fifo"):
        if capacity < 1:
            raise ValueError(f"FIFO capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._items: deque = deque()
        self.stats = BufferStats()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        """True iff no more items can be accepted."""
        return len(self._items) >= self.capacity

    @property
    def empty(self) -> bool:
        """True iff the buffer holds no items."""
        return not self._items

    def push(self, item) -> bool:
        """True if accepted; a full FIFO rejects (back-pressure)."""
        if self.full:
            self.stats.rejected += 1
            return False
        self._items.append(item)
        self.stats.pushes += 1
        return True

    def pop(self):
        """Remove and return the oldest item."""
        if not self._items:
            raise IndexError(f"{self.name}: pop from empty FIFO")
        self.stats.pops += 1
        return self._items.popleft()

    def peek(self):
        """The oldest item, without consuming it."""
        if not self._items:
            raise IndexError(f"{self.name}: peek at empty FIFO")
        return self._items[0]

    def observe(self) -> None:
        """Record the current occupancy (call once per simulated cycle)."""
        occ = len(self._items)
        self.stats.occupancy_sum += occ
        self.stats.observations += 1
        self.stats.max_occupancy = max(self.stats.max_occupancy, occ)


class PingPongBuffer:
    """A double-buffered staging memory (bank input/output buffers).

    One half drains toward the consumer while the other half fills from
    the producer; the halves swap only when the filling half is full and
    the draining half is empty.  This is how the Bank Input Buffer hides
    DMA latency: the DMA engine writes whole halves in the background.
    """

    def __init__(self, entries: int, name: str = "pingpong"):
        if entries < 2 or entries % 2:
            raise ValueError(
                f"ping-pong buffer needs an even capacity >= 2, got {entries}"
            )
        self.half_capacity = entries // 2
        self.name = name
        self._front: deque = deque()  # draining half
        self._back: deque = deque()  # filling half
        self.stats = BufferStats()
        self.swaps = 0

    @property
    def front_available(self) -> int:
        """Items ready on the draining half."""
        return len(self._front)

    @property
    def back_free(self) -> int:
        """Free slots on the filling half."""
        return self.half_capacity - len(self._back)

    def fill(self, items) -> int:
        """Producer side: append into the filling half; returns accepted."""
        accepted = 0
        for item in items:
            if len(self._back) >= self.half_capacity:
                self.stats.rejected += 1
                break
            self._back.append(item)
            self.stats.pushes += 1
            accepted += 1
        return accepted

    def drain(self):
        """Consumer side: pop from the draining half (None when empty)."""
        if not self._front:
            self.try_swap()
            if not self._front:
                return None
        self.stats.pops += 1
        return self._front.popleft()

    def try_swap(self) -> bool:
        """Swap halves when the front is drained and the back has data."""
        if self._front or not self._back:
            return False
        self._front, self._back = self._back, self._front
        self.swaps += 1
        return True

    def observe(self) -> None:
        """Record current occupancy into the statistics."""
        occ = len(self._front) + len(self._back)
        self.stats.occupancy_sum += occ
        self.stats.observations += 1
        self.stats.max_occupancy = max(self.stats.max_occupancy, occ)
