"""Energy, area, and time accounting shared by every simulator.

Simulators translate activity events (CAM searches, switch traversals,
BV-word updates, wire toggles...) into charges against an
:class:`EnergyLedger`.  The ledger keeps a per-component breakdown so the
experiments can reproduce the paper's Fig. 11-style decompositions, and it
derives the four system metrics of Section 5.2:

* throughput (Gch/s)   = input symbols / elapsed time
* power (W)            = total energy / elapsed time (incl. leakage)
* energy efficiency    = throughput / power  (Gch/s per W = Gch/J)
* compute density      = throughput / area   (Gch/s per mm^2)
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Metrics:
    """The system-level results reported for one simulated run."""

    energy_uj: float
    area_mm2: float
    cycles: int
    input_symbols: int
    clock_ghz: float
    leakage_w: float = 0.0

    @property
    def time_s(self) -> float:
        """Elapsed wall time of the run in seconds."""
        return self.cycles / (self.clock_ghz * 1e9) if self.clock_ghz else 0.0

    @property
    def throughput_gchps(self) -> float:
        """Gigacharacters per second actually sustained."""
        if self.cycles == 0:
            return 0.0
        return self.input_symbols / self.cycles * self.clock_ghz

    @property
    def power_w(self) -> float:
        """Average power in watts (dynamic + leakage)."""
        if self.time_s == 0:
            return self.leakage_w
        return self.energy_uj * 1e-6 / self.time_s + self.leakage_w

    @property
    def energy_efficiency_gch_per_j(self) -> float:
        """Throughput per watt (Gch/J)."""
        return self.throughput_gchps / self.power_w if self.power_w else 0.0

    @property
    def compute_density_gchps_per_mm2(self) -> float:
        """Throughput per square millimetre."""
        return self.throughput_gchps / self.area_mm2 if self.area_mm2 else 0.0

    def merge(self, other: "Metrics") -> "Metrics":
        """Associative combination of two disjoint slices of work run on
        the same hardware: energy, cycles, and input symbols accumulate;
        area and leakage describe the (shared) hardware, so the larger
        footprint wins.  Both operands must share a clock."""
        if self.clock_ghz != other.clock_ghz:
            raise ValueError(
                f"cannot merge metrics at different clocks "
                f"({self.clock_ghz} vs {other.clock_ghz} GHz)"
            )
        return Metrics(
            energy_uj=self.energy_uj + other.energy_uj,
            area_mm2=max(self.area_mm2, other.area_mm2),
            cycles=self.cycles + other.cycles,
            input_symbols=self.input_symbols + other.input_symbols,
            clock_ghz=self.clock_ghz,
            leakage_w=max(self.leakage_w, other.leakage_w),
        )

    __add__ = merge


class EnergyLedger:
    """Accumulates dynamic energy (pJ) and area (um^2) per component."""

    def __init__(self) -> None:
        self._energy_pj: dict[str, float] = {}
        self._area_um2: dict[str, float] = {}
        self._leakage_uw: dict[str, float] = {}

    # -- charging ----------------------------------------------------------

    def charge(self, component: str, energy_pj: float, count: float = 1.0) -> None:
        """Add ``count`` events of ``energy_pj`` each to ``component``."""
        if energy_pj < 0 or count < 0:
            raise ValueError("energy charges must be non-negative")
        if count:
            self._energy_pj[component] = (
                self._energy_pj.get(component, 0.0) + energy_pj * count
            )

    def add_area(self, component: str, area_um2: float, count: float = 1.0) -> None:
        """Add area for ``count`` instances of a component."""
        if area_um2 < 0 or count < 0:
            raise ValueError("area must be non-negative")
        if count:
            self._area_um2[component] = (
                self._area_um2.get(component, 0.0) + area_um2 * count
            )

    def add_leakage(self, component: str, power_uw: float, count: float = 1.0) -> None:
        """Add static power for ``count`` instances."""
        if power_uw < 0 or count < 0:
            raise ValueError("leakage must be non-negative")
        if count:
            self._leakage_uw[component] = (
                self._leakage_uw.get(component, 0.0) + power_uw * count
            )

    def merge(self, other: "EnergyLedger") -> None:
        """Fold another ledger into this one (bank <- arrays <- tiles)."""
        for comp, pj in other._energy_pj.items():
            self._energy_pj[comp] = self._energy_pj.get(comp, 0.0) + pj
        for comp, um2 in other._area_um2.items():
            self._area_um2[comp] = self._area_um2.get(comp, 0.0) + um2
        for comp, uw in other._leakage_uw.items():
            self._leakage_uw[comp] = self._leakage_uw.get(comp, 0.0) + uw

    def __add__(self, other: "EnergyLedger") -> "EnergyLedger":
        """Associative out-of-place :meth:`merge`: charges, areas, and
        leakage accumulate per component, operands untouched."""
        if not isinstance(other, EnergyLedger):
            return NotImplemented
        merged = EnergyLedger()
        merged.merge(self)
        merged.merge(other)
        return merged

    # -- totals and breakdowns ---------------------------------------------

    @property
    def energy_pj(self) -> float:
        """Total dynamic energy in picojoules."""
        return sum(self._energy_pj.values())

    @property
    def energy_uj(self) -> float:
        """Total dynamic energy in microjoules."""
        return self.energy_pj * 1e-6

    @property
    def area_um2(self) -> float:
        """Total area in square microns."""
        return sum(self._area_um2.values())

    @property
    def area_mm2(self) -> float:
        """Total area in square millimetres."""
        return self.area_um2 * 1e-6

    @property
    def leakage_w(self) -> float:
        """Total static power in watts."""
        return sum(self._leakage_uw.values()) * 1e-6

    def energy_breakdown(self) -> dict[str, float]:
        """Energy per component in pJ (a copy)."""
        return dict(self._energy_pj)

    def area_breakdown(self) -> dict[str, float]:
        """Area per component in um^2 (a copy)."""
        return dict(self._area_um2)

    def metrics(self, cycles: int, input_symbols: int, clock_ghz: float) -> Metrics:
        """Bundle the totals into a Metrics record."""
        return Metrics(
            energy_uj=self.energy_uj,
            area_mm2=self.area_mm2,
            cycles=cycles,
            input_symbols=input_symbols,
            clock_ghz=clock_ghz,
            leakage_w=self.leakage_w,
        )
