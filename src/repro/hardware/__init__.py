"""Hardware models of the RAP microarchitecture (Section 3).

This subpackage holds everything below the simulator: the published 28nm
circuit models (Table 1), the architectural configuration (tile / array /
bank geometry, Section 3.3), character-class encodings for the CAM and the
local switches, resource bookkeeping for the three tile modes, and the
energy/area ledger the simulators write their event counts into.
"""

from repro.hardware.circuits import CircuitModel, CircuitLibrary, TABLE1
from repro.hardware.config import HardwareConfig, TileMode
from repro.hardware.energy import EnergyLedger

__all__ = [
    "CircuitLibrary",
    "CircuitModel",
    "EnergyLedger",
    "HardwareConfig",
    "TABLE1",
    "TileMode",
]
