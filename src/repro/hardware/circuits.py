"""Circuit models in 28nm CMOS — the published Table 1 of the paper.

The paper's evaluation never re-runs SPICE: it consumes scalar per-access
models (energy range, delay, area, leakage) extracted from custom-designed
circuits in TSMC 28nm.  We encode those published numbers verbatim and let
every simulator share them, exactly as the paper simulates RAP and all
ASIC baselines with the same circuit model (Section 5.2).

Energies are ranges because access energy depends on switching activity;
:meth:`CircuitModel.energy` interpolates linearly between the published
minimum (idle-ish access) and maximum (fully active access).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CircuitModel:
    """One row of Table 1."""

    name: str
    size: str
    energy_min_pj: float
    energy_max_pj: float
    delay_ps: float
    area_um2: float
    leakage_ua: float

    def energy(self, activity: float = 1.0) -> float:
        """Access energy in pJ at the given switching activity in [0, 1]."""
        if not 0.0 <= activity <= 1.0:
            raise ValueError(f"activity out of range: {activity}")
        return self.energy_min_pj + (self.energy_max_pj - self.energy_min_pj) * activity

    @property
    def leakage_power_uw(self) -> float:
        """Static power in microwatts at the nominal 0.9 V supply."""
        return self.leakage_ua * _SUPPLY_VOLTAGE_V


_SUPPLY_VOLTAGE_V = 0.9


@dataclass(frozen=True)
class CircuitLibrary:
    """The complete component library shared by all simulated designs."""

    sram_128: CircuitModel  # 128x128 8T SRAM, used as an FCB local switch
    sram_256: CircuitModel  # 256x256 8T SRAM, used as an FCB global switch
    cam: CircuitModel  # 32x128 8T CAM (state matching / BV storage)
    local_controller: CircuitModel
    global_controller: CircuitModel
    global_wire_mm: CircuitModel  # per millimetre of global wire

    def components(self) -> tuple[CircuitModel, ...]:
        """All circuit models as a tuple."""
        return (
            self.sram_128,
            self.sram_256,
            self.cam,
            self.local_controller,
            self.global_controller,
            self.global_wire_mm,
        )


TABLE1 = CircuitLibrary(
    sram_128=CircuitModel(
        name="8T SRAM",
        size="128x128",
        energy_min_pj=1.0,
        energy_max_pj=14.0,
        delay_ps=298.0,
        area_um2=5655.0,
        leakage_ua=57.0,
    ),
    sram_256=CircuitModel(
        name="8T SRAM",
        size="256x256",
        energy_min_pj=2.0,
        energy_max_pj=55.0,
        delay_ps=410.0,
        area_um2=18153.0,
        leakage_ua=228.0,
    ),
    cam=CircuitModel(
        name="8T CAM",
        size="32x128",
        energy_min_pj=4.0,
        energy_max_pj=4.0,
        delay_ps=325.0,
        area_um2=2626.0,
        leakage_ua=14.0,
    ),
    local_controller=CircuitModel(
        name="Local Controller",
        size="N/A",
        energy_min_pj=2.0,
        energy_max_pj=2.0,
        delay_ps=90.0,
        area_um2=2900.0,
        leakage_ua=18.0,
    ),
    global_controller=CircuitModel(
        name="Global Controller",
        size="N/A",
        energy_min_pj=2.0,
        energy_max_pj=2.0,
        delay_ps=400.0,
        area_um2=1400.0,
        leakage_ua=9.0,
    ),
    global_wire_mm=CircuitModel(
        name="Global wire",
        size="1 mm",
        energy_min_pj=0.07,
        energy_max_pj=0.07,
        delay_ps=66.0,
        area_um2=50.0,
        leakage_ua=0.0,
    ),
)

# Timing facts quoted in Section 5.2 (used to set clock frequencies).
RAP_PIPELINE_STAGE_PS = 436.1  # largest RAP pipeline stage delay
RAP_CLOCK_GHZ = 2.08  # with the 10% safety margin applied
CAMA_CLOCK_GHZ = 2.14
CA_CLOCK_GHZ = 1.82
BVAP_CLOCK_GHZ = 2.0
CAMA_GLOBAL_WIRE_DELAY_PS = 26.1
