"""Command-line interface: ``python -m repro <command>``.

Mirrors the paper artifact's driver script (``main_gap.py --data ...
--task ...``): compile rule files, scan inputs, and run the evaluation
experiments from the shell.

Commands
--------
``compile``     compile a pattern file to a JSON ruleset
``scan``        match an input file against patterns or a compiled ruleset
``experiment``  run one of the paper's tables/figures
``inspect``     summarize a compiled JSON ruleset
``workload``    emit a synthetic benchmark's patterns
``serve``       run the streaming multi-tenant scan service
``fleet``       supervise a pool of serve workers behind one endpoint
``loadgen``     drive fault-injected sessions against a running server
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.compiler import CompiledMode, CompilerConfig, compile_ruleset
from repro.compiler.costmodel import MODE_CHOICES, mode_override
from repro.core import backend_names
from repro.errors import ON_ERROR_POLICIES, ReproError
from repro.io.serialize import load_ruleset, save_ruleset

EXPERIMENTS = {
    "all": ("repro.experiments.summary", "full evaluation run"),
    "fig1": ("repro.experiments.fig01_model_mix", "Fig. 1 model mix"),
    "fig10": ("repro.experiments.fig10_dse", "Fig. 10 DSE"),
    "table2": ("repro.experiments.table2_nbva", "Table 2 NBVA comparison"),
    "table3": ("repro.experiments.table3_lnfa", "Table 3 LNFA comparison"),
    "fig11": ("repro.experiments.fig11_breakdown", "Fig. 11 breakdown"),
    "fig12": ("repro.experiments.fig12_asic", "Fig. 12 ASIC comparison"),
    "fig13": ("repro.experiments.fig13_cpu_gpu", "Fig. 13 CPU/GPU"),
    "table4": ("repro.experiments.table4_fpga", "Table 4 FPGA comparison"),
}

# Zero-padded spellings matching the results/ artifact filenames.
EXPERIMENT_ALIASES = {"fig01": "fig1"}


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI parser (exposed for shell completion)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RAP (ISCA 2025) reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser(
        "compile", help="compile a pattern file into a JSON ruleset"
    )
    p_compile.add_argument(
        "patterns", type=Path, help="file with one regex per line"
    )
    p_compile.add_argument("-o", "--output", type=Path, required=True)
    p_compile.add_argument("--bv-depth", type=int, default=16)
    p_compile.add_argument("--unfold-threshold", type=int, default=8)
    p_compile.add_argument(
        "--force-mode",
        choices=[m.value for m in CompiledMode],
        default=None,
        help="compile every regex to one mode (experiment methodology)",
    )
    p_compile.add_argument(
        "--mode",
        choices=list(MODE_CHOICES),
        default="auto",
        help="soft execution-mode preference: eligible regexes take it, "
        "the rest keep the cost model's choice (auto defers to RAP_MODE "
        "and then the cost model; --force-mode stays the strict variant)",
    )
    p_compile.add_argument(
        "--hw",
        type=Path,
        default=None,
        help="JSON hardware-config file for a custom design point",
    )

    p_scan = sub.add_parser(
        "scan", help="match an input file on the simulated RAP"
    )
    source = p_scan.add_mutually_exclusive_group(required=True)
    source.add_argument("--ruleset", type=Path, help="compiled JSON ruleset")
    source.add_argument("--patterns", type=Path, help="regex file")
    p_scan.add_argument("input", type=Path, help="binary input stream")
    p_scan.add_argument("--bv-depth", type=int, default=16)
    p_scan.add_argument("--bin-size", type=int, default=None)
    p_scan.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker processes (0 = one per CPU); parallel output is "
        "bit-identical to --jobs 1",
    )
    p_scan.add_argument(
        "--input-jobs",
        type=int,
        default=None,
        help="split the input stream across this many chunks and stitch "
        "them with simultaneous-automata state maps (fused backend "
        "only; other backends scan serially); output is bit-identical "
        "at every level (default: RAP_INPUT_JOBS or 1)",
    )
    p_scan.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="reuse compiled rulesets from the on-disk compile cache "
        "(keyed by patterns + compiler config; see RAP_CACHE_DIR)",
    )
    p_scan.add_argument(
        "--backend",
        choices=backend_names(),
        default=None,
        help="step-kernel backend for the hot loops (default: RAP_BACKEND "
        "or python); an unavailable backend falls back to python, and "
        "results are bit-identical either way",
    )
    _add_fault_args(p_scan)
    _add_durability_args(p_scan)
    p_scan.add_argument(
        "--on-error",
        choices=list(ON_ERROR_POLICIES),
        default="fail",
        help="what to do with patterns that fail compilation: fail "
        "(default) aborts with the structured error, skip drops them, "
        "quarantine drops them and reports each offender on stderr "
        "(exit code 4 marks the partial result)",
    )
    p_scan.add_argument(
        "--mode",
        choices=list(MODE_CHOICES),
        default="auto",
        help="soft execution-mode preference for compiled patterns: "
        "eligible regexes take it, the rest keep the cost model's "
        "choice; results are bit-identical across modes (default: "
        "RAP_MODE or auto)",
    )
    p_scan.add_argument(
        "--explain",
        action="store_true",
        help="print the per-regex mode-decision table (features, "
        "per-mode predicted byte costs, chosen mode) and exit without "
        "scanning",
    )
    p_scan.add_argument(
        "--metrics", action="store_true", help="print hardware metrics"
    )
    p_scan.add_argument(
        "--verify",
        action="store_true",
        help="cross-check every match against the reference oracle "
        "(the paper's consistency-check methodology)",
    )

    p_exp = sub.add_parser(
        "experiment",
        aliases=["exp"],
        help="regenerate one of the paper's tables/figures",
    )
    p_exp.add_argument(
        "name", choices=sorted(set(EXPERIMENTS) | set(EXPERIMENT_ALIASES))
    )
    p_exp.add_argument("--size", type=int, default=None)
    p_exp.add_argument("--input-length", type=int, default=None)
    p_exp.add_argument("--seed", type=int, default=0)
    p_exp.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker processes for per-benchmark simulation "
        "(0 = one per CPU); results are independent of the job count",
    )
    p_exp.add_argument(
        "--input-jobs",
        type=int,
        default=None,
        help="input-parallel chunks per stream (fused backend only); "
        "reported numbers are independent of the level "
        "(default: RAP_INPUT_JOBS or 1)",
    )
    p_exp.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="reuse compiled rulesets from the on-disk compile cache",
    )
    p_exp.add_argument(
        "--backend",
        choices=backend_names(),
        default=None,
        help="step-kernel backend for the hot loops (default: RAP_BACKEND "
        "or python); reported numbers are independent of the choice",
    )
    _add_fault_args(p_exp)
    _add_budget_args(p_exp)

    p_inspect = sub.add_parser(
        "inspect", help="summarize a compiled JSON ruleset"
    )
    p_inspect.add_argument("ruleset", type=Path)

    p_work = sub.add_parser(
        "workload", help="print a synthetic benchmark's patterns"
    )
    p_work.add_argument("benchmark")
    p_work.add_argument("--size", type=int, default=24)
    p_work.add_argument("--seed", type=int, default=0)

    p_serve = sub.add_parser(
        "serve",
        help="run the streaming multi-tenant scan service",
        description="Serve long-lived scan sessions over newline-"
        "delimited JSON frames.  Sessions checkpoint continuously and "
        "survive disconnects, idle eviction, load shedding, and worker "
        "crashes: a reconnecting client resumes bit-identically from "
        "the welcome offset.  SIGTERM drains gracefully (checkpoint "
        "every session, notify clients, exit 0).",
        epilog="exit codes: 0 clean shutdown or drain; 2 invalid "
        "configuration (structured ServeConfigError on stderr); "
        "5 the server ran but lost durability (a checkpoint could "
        "not be written during shutdown).",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default 0: bind an ephemeral port and print it "
        "on the readiness line)",
    )
    p_serve.add_argument(
        "--checkpoint-dir",
        type=Path,
        default=Path(".rap-serve"),
        help="root for per-session checkpoint namespaces; another "
        "worker pointed at the same root resumes evicted sessions "
        "(default: .rap-serve)",
    )
    p_serve.add_argument(
        "--max-sessions",
        type=int,
        default=64,
        help="admission cap on live sessions; connections past it are "
        "rejected with a retry-after hint (default: 64)",
    )
    p_serve.add_argument(
        "--max-rss-mb",
        type=float,
        default=None,
        help="peak-RSS cap; admitted load past it sheds the "
        "lowest-weight session (default: none)",
    )
    p_serve.add_argument(
        "--max-open-fds",
        type=int,
        default=None,
        help="open-descriptor cap, enforced like --max-rss-mb "
        "(default: none)",
    )
    p_serve.add_argument(
        "--idle-timeout",
        type=float,
        default=300.0,
        help="seconds of silence before a session is checkpointed and "
        "evicted; it resumes on reconnect (default: 300)",
    )
    p_serve.add_argument(
        "--drain-seconds",
        type=float,
        default=5.0,
        help="grace period for notifying clients during SIGTERM drain "
        "(default: 5)",
    )
    p_serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=1 << 20,
        metavar="BYTES",
        help="bytes fed between periodic session checkpoints "
        "(default: 1 MiB; park/detach/drain always checkpoint)",
    )

    p_fleet = sub.add_parser(
        "fleet",
        help="supervise a pool of serve workers behind one endpoint",
        description="Spawn and babysit N `rap serve` workers sharing "
        "one checkpoint root, proxying every client connection from a "
        "single advertised port.  Workers are health-probed over the "
        "ping op and fenced (SIGKILL) plus restarted with capped "
        "exponential backoff when they crash or wedge; SIGHUP "
        "live-migrates the most-loaded worker's sessions onto its "
        "peers (checkpoint, park, re-home, byte-identical resume); "
        "per-tenant circuit breakers refuse pathological tenants with "
        "a structured retry_after.  SIGTERM drains the whole fleet.",
        epilog="exit codes: 0 clean shutdown; 2 invalid configuration; "
        "5 a worker lost durability during the final drain.",
    )
    p_fleet.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker processes to supervise (default: 2)",
    )
    p_fleet.add_argument("--host", default="127.0.0.1")
    p_fleet.add_argument(
        "--port",
        type=int,
        default=0,
        help="advertised TCP port (default 0: ephemeral, printed on "
        "the readiness line)",
    )
    p_fleet.add_argument(
        "--checkpoint-dir",
        type=Path,
        default=Path(".rap-serve"),
        help="checkpoint root shared by every worker — sharing it is "
        "what makes sessions migratable (default: .rap-serve)",
    )
    p_fleet.add_argument(
        "--max-sessions",
        type=int,
        default=64,
        help="per-worker admission cap (default: 64)",
    )
    p_fleet.add_argument(
        "--idle-timeout",
        type=float,
        default=300.0,
        help="per-worker idle eviction timeout (default: 300)",
    )
    p_fleet.add_argument(
        "--drain-seconds",
        type=float,
        default=5.0,
        help="per-worker drain grace on shutdown (default: 5)",
    )
    p_fleet.add_argument(
        "--checkpoint-every",
        type=int,
        default=1 << 20,
        metavar="BYTES",
        help="per-worker periodic checkpoint interval (default: 1 MiB)",
    )
    p_fleet.add_argument(
        "--health-interval",
        type=float,
        default=1.0,
        help="seconds between health-probe rounds (default: 1)",
    )
    p_fleet.add_argument(
        "--ping-timeout",
        type=float,
        default=2.0,
        help="deadline for one ping round-trip (default: 2)",
    )
    p_fleet.add_argument(
        "--fail-threshold",
        type=int,
        default=3,
        help="consecutive missed probes before a worker is fenced and "
        "restarted (default: 3)",
    )
    p_fleet.add_argument(
        "--breaker-threshold",
        type=int,
        default=5,
        help="consecutive tenant failures before its circuit opens "
        "(default: 5)",
    )
    p_fleet.add_argument(
        "--breaker-cooldown",
        type=float,
        default=1.0,
        help="seconds an open circuit waits before admitting a "
        "half-open probe; doubles (capped) on a failed probe "
        "(default: 1)",
    )
    p_fleet.add_argument(
        "--migrate-hold",
        type=float,
        default=2.0,
        dest="migrate_hold",
        help="seconds a released worker is held out of routing so its "
        "sessions actually migrate to peers (default: 2)",
    )
    p_fleet.add_argument(
        "--log-dir",
        type=Path,
        default=None,
        help="capture each worker's output to worker-<i>.log here "
        "(default: discard at debug level)",
    )
    p_fleet.add_argument(
        "--fault-plan",
        default=None,
        help="fleet fault directives fired at health-round ordinals, "
        "e.g. 'killworker@4;wedge@9' (default: RAP_FAULT_PLAN or none)",
    )

    p_load = sub.add_parser(
        "loadgen",
        help="drive fault-injected scan sessions against a server",
        description="Stream deterministic payloads through N concurrent "
        "sessions, interpreting connection-level fault directives "
        "(disconnect/stall/garbage/reload) from --fault-plan, and "
        "optionally diff the aggregate matches and energy against an "
        "uninterrupted serial scan of the same payloads (--check).",
        epilog="exit codes: 0 all sessions completed (and matched the "
        "serial golden under --check); 2 invalid arguments; 5 a session "
        "failed or the golden diff found a discrepancy.",
    )
    p_load.add_argument("--host", default="127.0.0.1")
    p_load.add_argument("--port", type=int, required=True)
    p_load.add_argument(
        "--patterns", type=Path, required=True, help="regex file"
    )
    p_load.add_argument("--tenant", default="loadgen")
    p_load.add_argument(
        "--sessions", type=int, default=4, help="concurrent sessions"
    )
    p_load.add_argument(
        "--bytes",
        type=int,
        default=65536,
        dest="payload_bytes",
        help="payload size per session (default: 64 KiB)",
    )
    p_load.add_argument(
        "--segment-bytes",
        type=int,
        default=4096,
        help="bytes per data frame (default: 4096)",
    )
    p_load.add_argument("--seed", type=int, default=0)
    p_load.add_argument(
        "--fault-plan",
        default=None,
        help="connection fault directives, e.g. "
        "'disconnect@3;stall@5*0.5;garbage@8;reload@11' "
        "(default: RAP_FAULT_PLAN or none)",
    )
    p_load.add_argument(
        "--check",
        action="store_true",
        help="diff aggregate matches and energy against an "
        "uninterrupted serial scan (byte-identity proof)",
    )

    p_cal = sub.add_parser(
        "calibrate",
        help="measure cost-model constants on a backend and persist them",
        description="Time forced-mode probe scans on the resolved "
        "step-kernel backend, solve the cost model's linear forms for "
        "its six per-byte constants, and persist them in the compile "
        "cache; subsequent compiles on that backend score mode "
        "selection against the measured constants instead of the "
        "hand-tuned defaults ('rap scan --explain' shows which are in "
        "force).",
    )
    p_cal.add_argument(
        "--backend",
        choices=backend_names(),
        default=None,
        help="backend to calibrate (default: RAP_BACKEND resolution)",
    )
    p_cal.add_argument(
        "--bytes",
        type=int,
        default=None,
        dest="probe_bytes",
        help="probe stream length in bytes (default: 131072)",
    )
    p_cal.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timing repeats per probe, minimum taken (default: 3)",
    )
    p_cal.add_argument(
        "--dry-run",
        action="store_true",
        help="measure and print without persisting",
    )
    return parser


def _add_fault_args(parser: argparse.ArgumentParser) -> None:
    """The supervised-execution knobs shared by ``scan``/``experiment``."""
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-work-unit deadline in seconds; overruns are retried "
        "and, as a last resort, re-run in-process (default: none)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        help="extra attempts per work unit after a worker crash, "
        "deadline overrun, or transient error (default: 2)",
    )


def _add_budget_args(parser: argparse.ArgumentParser) -> None:
    """The resource-budget knobs shared by ``scan``/``experiment``."""
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="wall-clock budget for the run; exceeded budgets follow "
        "--degrade where available, else abort (default: none)",
    )
    parser.add_argument(
        "--max-rss-mb",
        type=float,
        default=None,
        help="peak resident-set budget in MiB (default: none)",
    )


def _add_durability_args(parser: argparse.ArgumentParser) -> None:
    """The checkpoint/resume and degradation knobs of ``scan``."""
    parser.add_argument(
        "--checkpoint-dir",
        type=Path,
        default=None,
        help="directory for atomic scan checkpoints; a scan killed at "
        "any point (even SIGKILL) re-run with --resume continues from "
        "the newest intact checkpoint, bit-identical to an "
        "uninterrupted run",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=1 << 20,
        metavar="BYTES",
        help="bytes of input per durable-scan chunk (and checkpoint "
        "eligibility point; default: 1 MiB)",
    )
    parser.add_argument(
        "--checkpoint-seconds",
        type=float,
        default=None,
        help="minimum seconds between checkpoint writes "
        "(default: checkpoint every chunk)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume from the newest intact checkpoint in "
        "--checkpoint-dir (fresh start when none exists)",
    )
    _add_budget_args(parser)
    parser.add_argument(
        "--degrade",
        choices=["fail", "shed"],
        default="fail",
        help="budget-pressure policy: fail (default) aborts with a "
        "structured error; shed freezes the lowest-weight patterns, "
        "quarantines them, and finishes partial (exit code 4)",
    )


def _read_patterns(path: Path) -> list[str]:
    lines = path.read_text().splitlines()
    stripped = (line.strip() for line in lines)
    return [line for line in stripped if line and not line.startswith("#")]


def _load_hw(path):
    import json

    from repro.hardware.config import DEFAULT_CONFIG, HardwareConfig

    if path is None:
        return DEFAULT_CONFIG
    with open(path) as f:
        return HardwareConfig.from_json(json.load(f))


def _print_backend_report(engine) -> None:
    """The ``--explain`` header: resolved backend and cost constants.

    Reports the backend that will *actually* execute (after the
    probe-and-fall-back chain) with the fallback reason when the
    requested one is unavailable, and whether the cost model is scoring
    against measured (``rap calibrate``) or default constants.
    """
    from repro.compiler.costmodel import DEFAULT_CONSTANTS, active_constants

    resolved, reason = engine.backend_report()
    line = f"backend: {resolved}"
    if reason:
        line += f" ({reason})"
    print(line)
    constants = active_constants(resolved)
    if constants.source == "measured":
        pairs = " ".join(
            f"{name}={value:g}" for name, value in constants.numbers().items()
        )
        print(f"cost constants: measured on {constants.backend} ({pairs})")
        defaults = " ".join(
            f"{name}={value:g}"
            for name, value in DEFAULT_CONSTANTS.numbers().items()
        )
        print(f"  defaults would be: {defaults}")
    else:
        print(
            "cost constants: default (run 'repro calibrate' to measure "
            "this backend)"
        )


def _print_explain(entries) -> None:
    """Render ``BatchEngine.explain`` output as the ``--explain`` table."""

    def cost(value: float) -> str:
        return f"{value:.3f}" if value != float("inf") else "-"

    header = (
        "pattern", "mode", "src", "unf", "dfa", "act",
        "c_nfa", "c_dfa", "c_nbva", "c_lnfa", "reason",
    )
    rows = [header]
    for entry in entries:
        if entry.trace is None:
            rows.append(
                (entry.pattern, "ERROR", "-", "-", "-", "-", "-", "-", "-",
                 "-", entry.error or "")
            )
            continue
        trace = entry.trace
        f = trace.features
        rows.append(
            (
                entry.pattern,
                trace.mode.value.lower(),
                str(f.source_states),
                str(f.unfolded_states),
                str(f.dfa_states) if f.dfa_states is not None else "-",
                f"{f.predicted_activity:.4f}",
                cost(trace.costs["nfa"]),
                cost(trace.costs["dfa"]),
                cost(trace.costs["nbva"]),
                cost(trace.costs["lnfa"]),
                trace.reason,
            )
        )
    widths = [
        max(len(row[col]) for row in rows) for col in range(len(header) - 1)
    ]
    for row in rows:
        cells = [cell.ljust(width) for cell, width in zip(row, widths)]
        print("  ".join(cells + [row[-1]]).rstrip())


def cmd_compile(args) -> int:
    """Handler for ``repro compile``."""
    config = CompilerConfig(
        unfold_threshold=args.unfold_threshold,
        bv_depth=args.bv_depth,
        forced_mode=CompiledMode(args.force_mode) if args.force_mode else None,
        mode_override=mode_override(args.mode),
        hw=_load_hw(args.hw),
    )
    ruleset = compile_ruleset(_read_patterns(args.patterns), config)
    save_ruleset(ruleset, args.output)
    counts = ruleset.mode_counts()
    print(
        f"compiled {len(ruleset)} regexes "
        f"({counts[CompiledMode.NFA]} NFA, {counts[CompiledMode.DFA]} DFA, "
        f"{counts[CompiledMode.NBVA]} NBVA, "
        f"{counts[CompiledMode.LNFA]} LNFA) -> {args.output}"
    )
    for pattern, reason in ruleset.rejected:
        print(f"rejected: {pattern!r}: {reason}", file=sys.stderr)
    return 0 if len(ruleset) else 1


def cmd_scan(args) -> int:
    """Handler for ``repro scan``.

    Exit codes: 0 clean, 2 structured failure (compile/capacity/crash
    beyond recovery under ``--on-error fail``), 3 oracle mismatch under
    ``--verify``, 4 partial success (``--on-error quarantine`` excluded
    at least one pattern; the healthy results still printed).
    """
    from repro.engine import BatchEngine, EngineConfig

    if args.resume and args.checkpoint_dir is None:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    engine = BatchEngine(
        EngineConfig(
            jobs=args.jobs,
            input_jobs=args.input_jobs,
            use_cache=args.cache,
            backend=args.backend,
            mode=args.mode,
            timeout=args.timeout,
            retries=args.retries,
            on_error=args.on_error,
            checkpoint_dir=(
                str(args.checkpoint_dir) if args.checkpoint_dir else None
            ),
            checkpoint_every_bytes=args.checkpoint_every,
            checkpoint_every_seconds=args.checkpoint_seconds,
            resume=args.resume,
            max_seconds=args.max_seconds,
            max_rss_mb=args.max_rss_mb,
            degrade=args.degrade,
        )
    )
    if args.explain:
        if args.patterns:
            patterns = _read_patterns(args.patterns)
        else:
            patterns = [r.pattern for r in load_ruleset(args.ruleset)]
        _print_backend_report(engine)
        _print_explain(
            engine.explain(patterns, CompilerConfig(bv_depth=args.bv_depth))
        )
        return 0
    quarantined = 0
    if args.ruleset:
        ruleset = load_ruleset(args.ruleset)
    else:
        try:
            ruleset = engine.compile(
                _read_patterns(args.patterns),
                CompilerConfig(bv_depth=args.bv_depth),
            )
        except ReproError as err:
            print(f"error: {err}", file=sys.stderr)
            for key, value in sorted(err.context().items()):
                print(f"  {key}: {value!r}", file=sys.stderr)
            return 2
        if args.on_error == "quarantine" and ruleset.rejected:
            quarantined = len(ruleset.rejected)
            for pattern, reason in ruleset.rejected:
                print(f"quarantined: {pattern!r}: {reason}", file=sys.stderr)
            if not len(ruleset):
                print("# all patterns quarantined", file=sys.stderr)
                return 4
    data = args.input.read_bytes()
    durable = (
        args.checkpoint_dir is not None
        or args.max_seconds is not None
        or args.max_rss_mb is not None
    )
    outcome = None
    if durable:
        try:
            outcome = engine.durable_scan(ruleset, data, bin_size=args.bin_size)
        except ReproError as err:
            print(f"error: {err}", file=sys.stderr)
            for key, value in sorted(err.context().items()):
                print(f"  {key}: {value!r}", file=sys.stderr)
            return 2
        result = outcome.result
    else:
        result = engine.scan(ruleset, data, bin_size=args.bin_size)
    total = 0
    for regex in ruleset:
        for end in result.matches[regex.regex_id]:
            print(f"{end}\t{regex.regex_id}\t{regex.pattern}")
            total += 1
    print(f"# {total} matches over {len(data)} bytes", file=sys.stderr)
    if outcome is not None:
        if outcome.resumed_from is not None:
            print(
                f"# resumed from checkpoint at byte {outcome.resumed_from}",
                file=sys.stderr,
            )
        if outcome.checkpoints_written or outcome.checkpoint_failures:
            print(
                f"# checkpoints: {outcome.checkpoints_written} written, "
                f"{outcome.checkpoint_failures} failed",
                file=sys.stderr,
            )
    if args.metrics:
        print(f"# {result.summary()}", file=sys.stderr)
    if args.verify:
        from repro.verification import verify_matches

        report = verify_matches(ruleset, data, result.matches)
        print(f"# {report.describe()}", file=sys.stderr)
        if not report.ok:
            return 3
    if outcome is not None and outcome.quarantine:
        print(outcome.quarantine.describe(), file=sys.stderr)
        print(
            f"# partial: {len(outcome.quarantine)} pattern(s) shed "
            "under budget pressure",
            file=sys.stderr,
        )
        return 4
    if quarantined:
        print(
            f"# partial: {quarantined} pattern(s) quarantined", file=sys.stderr
        )
        return 4
    return 0


def cmd_experiment(args) -> int:
    """Handler for ``repro experiment``."""
    import importlib

    from repro.experiments.common import ExperimentConfig

    name = EXPERIMENT_ALIASES.get(args.name, args.name)
    module_name, _ = EXPERIMENTS[name]
    module = importlib.import_module(module_name)
    base = ExperimentConfig.scaled()
    config = ExperimentConfig(
        benchmark_size=args.size or base.benchmark_size,
        input_length=args.input_length or base.input_length,
        seed=args.seed,
        jobs=args.jobs,
        input_jobs=args.input_jobs,
        use_cache=args.cache,
        backend=args.backend,
        timeout=args.timeout,
        retries=args.retries,
        max_seconds=args.max_seconds,
        max_rss_mb=args.max_rss_mb,
    )
    try:
        result = module.run(config)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        for key, value in sorted(err.context().items()):
            print(f"  {key}: {value!r}", file=sys.stderr)
        return 2
    print(result.to_table())
    return 0


def cmd_inspect(args) -> int:
    """Handler for ``repro inspect``."""
    ruleset = load_ruleset(args.ruleset)
    counts = ruleset.mode_counts()
    print(f"regexes:          {len(ruleset)}")
    for mode in CompiledMode:
        print(f"  {mode.value:<5} {counts[mode]}")
    print(f"hardware states:  {ruleset.total_states}")
    print(
        "unfolded states:  "
        f"{sum(r.unfolded_states for r in ruleset)}"
    )
    print(
        "CAM columns:      "
        f"{sum(r.total_columns for r in ruleset)} "
        "(NFA/NBVA tile plans)"
    )
    anchored = sum(
        1 for r in ruleset if r.anchored_start or r.anchored_end
    )
    print(f"anchored:         {anchored}")
    if ruleset.rejected:
        print(f"rejected:         {len(ruleset.rejected)}")
    from repro.mapping.mapper import map_ruleset

    mapping = map_ruleset(ruleset)
    print(f"tiles / arrays:   {mapping.total_tiles} / {mapping.physical_arrays()}")
    print(f"utilization:      {mapping.utilization():.2f}")
    return 0


def cmd_workload(args) -> int:
    """Handler for ``repro workload``."""
    from repro.workloads.anmlzoo import ANMLZOO_PROFILES, generate_anmlzoo_benchmark
    from repro.workloads.datasets import BENCHMARKS, generate_benchmark

    if args.benchmark in BENCHMARKS:
        bench = generate_benchmark(args.benchmark, size=args.size, seed=args.seed)
    elif args.benchmark in ANMLZOO_PROFILES:
        bench = generate_anmlzoo_benchmark(
            args.benchmark, size=args.size, seed=args.seed
        )
    else:
        known = sorted(set(BENCHMARKS) | set(ANMLZOO_PROFILES))
        print(
            f"unknown benchmark {args.benchmark!r}; known: {', '.join(known)}",
            file=sys.stderr,
        )
        return 2
    for pattern, mode in zip(bench.patterns, bench.intended_modes):
        print(f"{mode}\t{pattern}")
    return 0


def cmd_serve(args) -> int:
    """Handler for ``repro serve``."""
    import asyncio

    from repro.errors import ServeConfigError
    from repro.serve.server import EXIT_CONFIG, ScanServer, ServeConfig

    config = ServeConfig(
        host=args.host,
        port=args.port,
        checkpoint_dir=str(args.checkpoint_dir),
        max_sessions=args.max_sessions,
        max_rss_mb=args.max_rss_mb,
        max_open_fds=args.max_open_fds,
        idle_timeout=args.idle_timeout,
        drain_seconds=args.drain_seconds,
        checkpoint_interval_bytes=args.checkpoint_every,
    )
    try:
        server = ScanServer(config)
    except ServeConfigError as err:
        print(f"error: {err}", file=sys.stderr)
        for key, value in sorted(err.context().items()):
            print(f"  {key}: {value!r}", file=sys.stderr)
        return EXIT_CONFIG

    def on_ready(port: int) -> None:
        # The readiness line supervisors (and the CI soak) wait for.
        print(f"listening on {config.host}:{port}", flush=True)

    return asyncio.run(server.serve_forever(on_ready=on_ready))


def cmd_fleet(args) -> int:
    """Handler for ``repro fleet``."""
    import asyncio

    from repro.engine.faults import FaultPlan, plan_from_env
    from repro.errors import ServeConfigError
    from repro.serve.fleet import FleetConfig, FleetSupervisor
    from repro.serve.server import EXIT_CONFIG

    try:
        plan = (
            FaultPlan.parse(args.fault_plan)
            if args.fault_plan is not None
            else plan_from_env()
        )
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return EXIT_CONFIG
    config = FleetConfig(
        workers=args.workers,
        host=args.host,
        port=args.port,
        checkpoint_dir=str(args.checkpoint_dir),
        max_sessions=args.max_sessions,
        idle_timeout=args.idle_timeout,
        drain_seconds=args.drain_seconds,
        checkpoint_interval_bytes=args.checkpoint_every,
        health_interval=args.health_interval,
        ping_timeout=args.ping_timeout,
        fail_threshold=args.fail_threshold,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        migrate_hold_seconds=args.migrate_hold,
        log_dir=str(args.log_dir) if args.log_dir is not None else None,
    )
    try:
        supervisor = FleetSupervisor(config, plan=plan)
    except ServeConfigError as err:
        print(f"error: {err}", file=sys.stderr)
        for key, value in sorted(err.context().items()):
            print(f"  {key}: {value!r}", file=sys.stderr)
        return EXIT_CONFIG

    def on_ready(port: int) -> None:
        # The readiness line operators (and the CI soak) wait for.
        print(f"fleet listening on {config.host}:{port}", flush=True)

    return asyncio.run(supervisor.serve_forever(on_ready=on_ready))


def _loadgen_payload(patterns: list[str], size: int, seed: int) -> bytes:
    """A deterministic payload biased to exercise the given patterns."""
    import random

    alphabet = sorted(
        {c for p in patterns for c in p if c.isalnum()} | {" "}
    ) or [" "]
    rng = random.Random(seed)
    return bytes(ord(rng.choice(alphabet)) for _ in range(size))


def cmd_loadgen(args) -> int:
    """Handler for ``repro loadgen``."""
    import asyncio

    from repro.engine.faults import FaultPlan, plan_from_env
    from repro.serve.client import LoadGenerator, serial_totals
    from repro.serve.server import EXIT_FAILURES

    patterns = _read_patterns(args.patterns)
    try:
        plan = (
            FaultPlan.parse(args.fault_plan)
            if args.fault_plan is not None
            else plan_from_env()
        )
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    payloads = [
        _loadgen_payload(patterns, args.payload_bytes, args.seed + i)
        for i in range(args.sessions)
    ]
    generator = LoadGenerator(
        args.host,
        args.port,
        patterns,
        tenant=args.tenant,
        sessions=args.sessions,
        segment_bytes=args.segment_bytes,
        plan=plan,
    )
    report = asyncio.run(generator.run(payloads))
    print(report.summary())
    for session_id, outcome in sorted(report.per_session.items()):
        if "error" in outcome:
            print(f"  {session_id}: {outcome['error']}", file=sys.stderr)
    if report.failed:
        return EXIT_FAILURES
    if args.check:
        golden_matches, golden_energy = serial_totals(patterns, payloads)
        if (
            report.total_matches != golden_matches
            or report.total_energy_uj != golden_energy
        ):
            print(
                "golden mismatch: served "
                f"{report.total_matches} matches / "
                f"{report.total_energy_uj!r} uJ, serial golden "
                f"{golden_matches} / {golden_energy!r}",
                file=sys.stderr,
            )
            return EXIT_FAILURES
        print(
            f"golden check ok: {golden_matches} matches, "
            f"{golden_energy:.6f} uJ, byte-identical under "
            f"{report.reconnects} reconnects"
        )
    return 0


def cmd_calibrate(args) -> int:
    """Handler for ``repro calibrate``."""
    from repro.compiler.calibrate import (
        DEFAULT_PROBE_BYTES,
        DEFAULT_REPEATS,
        calibrate,
        save_calibration,
    )
    from repro.compiler.costmodel import DEFAULT_CONSTANTS

    report = calibrate(
        args.backend,
        probe_bytes=args.probe_bytes or DEFAULT_PROBE_BYTES,
        repeats=args.repeats or DEFAULT_REPEATS,
    )
    print(f"backend: {report.backend}  ({report.probe_bytes} probe bytes)")
    rows = [("constant", "default", "measured")]
    defaults = DEFAULT_CONSTANTS.numbers()
    for name, value in report.constants.numbers().items():
        rows.append((name, f"{defaults[name]:g}", f"{value:g}"))
    widths = [max(len(row[col]) for row in rows) for col in range(3)]
    for row in rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip())
    for label, seconds in sorted(report.measurements.items()):
        print(f"  {label}: {seconds * 1e9:.1f} ns/byte")
    if args.dry_run:
        print("dry run: not persisted")
    else:
        save_calibration(report)
        print(
            f"persisted for backend {report.backend!r}; subsequent "
            "compiles on it use the measured constants"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "compile": cmd_compile,
        "scan": cmd_scan,
        "experiment": cmd_experiment,
        "exp": cmd_experiment,
        "inspect": cmd_inspect,
        "workload": cmd_workload,
        "serve": cmd_serve,
        "fleet": cmd_fleet,
        "loadgen": cmd_loadgen,
        "calibrate": cmd_calibrate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
