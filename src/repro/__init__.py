"""Reproduction of "RAP: Reconfigurable Automata Processor" (ISCA 2025).

RAP is an in-memory automata processor that reconfigures one 8T-SRAM/CAM
tile fabric between three automata models — NFA, NBVA (bit-vector
counting for bounded repetitions), and LNFA (Shift-And for linear
patterns) — with a compiler that picks the best model per regex.  This
package is a complete from-scratch Python implementation: regex frontend,
automata models, compiler, mapper, cycle-level simulators of RAP and the
CAMA / CA / BVAP baselines, synthetic benchmark workloads, and an
experiment harness regenerating every table and figure of the paper's
evaluation.

Quick start::

    from repro import CompilerConfig, RAPSimulator, compile_ruleset

    ruleset = compile_ruleset(["virus[0-9]{40}sig", "GATTACA"])
    result = RAPSimulator().run(ruleset, b"...input bytes...")
    print(result.matches, result.summary())

See ``examples/`` for richer scenarios and ``benchmarks/`` for the
paper's tables and figures.
"""

from repro.compiler import (
    CompiledMode,
    CompiledRegex,
    CompiledRuleset,
    CompilerConfig,
    compile_pattern,
    compile_ruleset,
)
from repro.errors import (
    CacheCorruptionError,
    CapacityError,
    CompileError,
    QuarantineEntry,
    QuarantineReport,
    ReproError,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.hardware.config import DEFAULT_CONFIG, HardwareConfig, TileMode
from repro.mapping.mapper import Mapping, MappingError, map_ruleset
from repro.simulators import (
    BVAPSimulator,
    CAMASimulator,
    CASimulator,
    RAPSimulator,
    SimulationResult,
)

__version__ = "1.0.0"

__all__ = [
    "BVAPSimulator",
    "CAMASimulator",
    "CASimulator",
    "CacheCorruptionError",
    "CapacityError",
    "CompileError",
    "CompiledMode",
    "CompiledRegex",
    "CompiledRuleset",
    "CompilerConfig",
    "DEFAULT_CONFIG",
    "HardwareConfig",
    "Mapping",
    "MappingError",
    "QuarantineEntry",
    "QuarantineReport",
    "RAPSimulator",
    "ReproError",
    "SimulationResult",
    "TaskTimeoutError",
    "TileMode",
    "WorkerCrashError",
    "compile_pattern",
    "compile_ruleset",
    "map_ruleset",
]
