"""Multi-LNFA binning (Sections 3.2 and 4.3).

Only the first STE of an LNFA is an initial state, so grouping many LNFAs
into a *bin* and mapping them regex-sliced across tiles puts every initial
state into the bin's first tile; the remaining tiles can stay power-gated
until an initial state actually matches.  Within a tile the bin occupies
one region per LNFA; LNFAs shorter than the bin's longest member leave
their region partially unused (the redundancy the Fig. 10b DSE trades
against energy).

Bins are homogeneous in storage kind: CAM bins hold LNFAs whose character
classes all fit single 32-bit codes (84% in the paper's corpus); switch
bins hold the rest, one-hot encoded at two local-switch columns per state.
A physical tile owns one CAM *and* one local switch, so the mapper may
overlay one CAM bin and one switch bin onto the same tiles — the source of
LNFA mode's "2x in theory" area saving.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.automata.lnfa import LNFA
from repro.hardware.config import HardwareConfig


class BinKind(enum.Enum):
    """Which storage side of the tile a bin occupies."""
    CAM = "cam"  # single-code classes matched in the 8T-CAM
    SWITCH = "switch"  # one-hot classes matched in the local switch


@dataclass(frozen=True)
class BinItem:
    """One LNFA with its provenance (which regex, which union member)."""

    regex_id: int
    lnfa_index: int
    lnfa: LNFA
    cam_eligible: bool
    anchored_start: bool = False
    anchored_end: bool = False

    @property
    def length(self) -> int:
        """States in this LNFA."""
        return len(self.lnfa)


@dataclass(frozen=True)
class Bin:
    """A group of LNFAs mapped together, regex-sliced across tiles."""

    kind: BinKind
    items: tuple[BinItem, ...]
    tiles: int  # tiles spanned by this bin

    @property
    def size(self) -> int:
        """Number of LNFAs in this bin."""
        return len(self.items)

    @property
    def max_length(self) -> int:
        """Longest member LNFA (the region width)."""
        return max(item.length for item in self.items)

    @property
    def real_states(self) -> int:
        """States actually occupied (no padding)."""
        return sum(item.length for item in self.items)

    @property
    def padded_states(self) -> int:
        """States including padding: every region is max_length wide."""
        return self.size * self.max_length

    @property
    def utilization(self) -> float:
        """real_states / padded_states."""
        return self.real_states / self.padded_states if self.padded_states else 0.0

    @property
    def footprint_columns(self) -> int:
        """Column demand on the bin's storage side.

        CAM bins cost one CAM column per padded state; switch bins cost
        two local-switch columns per padded state (the one-hot encoding).
        Column accounting lets small bins share tiles, like the region
        mapping of Fig. 7 does in hardware.
        """
        per_state = 1 if self.kind is BinKind.CAM else 2
        return self.padded_states * per_state

    @property
    def initial_tiles(self) -> int:
        """Tiles holding initial states (never power-gated): always 1."""
        return 1

    @property
    def gateable_tiles(self) -> int:
        """Tiles that can be power-gated when idle."""
        return self.tiles - self.initial_tiles

    def retargeted(self, kind: BinKind, hw: HardwareConfig) -> "Bin":
        """The same bin stored on the other side of the tile.

        Any class can be one-hot encoded, so a CAM-eligible bin may be
        stored in the local switch instead; the mapper uses this to fill
        both sides of each tile (the "2x in theory" density of
        Section 3.2).  The reverse move requires CAM eligibility.
        """
        if kind is self.kind:
            return self
        if kind is BinKind.CAM and not all(
            it.cam_eligible for it in self.items
        ):
            raise ValueError("bin contains CAM-ineligible classes")
        return Bin(
            kind=kind,
            items=self.items,
            tiles=tiles_for(self.size, self.max_length, kind, hw),
        )


def states_per_tile(kind: BinKind, hw: HardwareConfig) -> int:
    """LNFA states one tile stores for this kind."""
    if kind is BinKind.CAM:
        return hw.cam_cols
    return hw.local_switch_dim // 2  # two one-hot columns per state


def tiles_for(size: int, max_length: int, kind: BinKind, hw: HardwareConfig) -> int:
    """Tiles a bin of ``size`` LNFAs padded to ``max_length`` spans."""
    region = states_per_tile(kind, hw) // size
    if region < 1:
        raise ValueError(f"bin of {size} LNFAs leaves no room per region")
    return -(-max_length // region)


def _fits(size: int, max_length: int, kind: BinKind, hw: HardwareConfig) -> bool:
    if size > hw.max_bin_size:
        return False
    capacity = states_per_tile(kind, hw)
    if capacity // size < 1:
        return False
    return tiles_for(size, max_length, kind, hw) <= hw.tiles_per_array


def plan_bins(
    items: list[BinItem],
    *,
    hw: HardwareConfig,
    bin_size: int | None = None,
    overlay_split: bool = True,
) -> list[Bin]:
    """Run the binning algorithm of Section 4.3.

    LNFAs are sorted by size; along that order we fill the largest bin the
    constraints allow, halving the target bin size whenever the group's
    longest member cannot be supported, down to single-LNFA bins.
    ``bin_size`` (the DSE knob of Fig. 10b) caps the bin size; ``None``
    uses the hardware maximum.

    With ``overlay_split`` (the default, used by the mapper), each
    CAM-eligible group is cut ~2:1 into a CAM part and a switch part so
    the two halves of every physical tile fill together — the "decreases
    the area by 2x in theory" overlay of Section 3.2.  The 2:1 ratio
    matches the capacity ratio of the two sides (128 CAM states vs 64
    one-hot switch states per tile).
    """
    limit = hw.max_bin_size if bin_size is None else bin_size
    if limit < 1:
        raise ValueError(f"bin size must be positive, got {limit}")
    bins: list[Bin] = []
    for kind in BinKind:
        eligible = [
            it
            for it in items
            if (it.cam_eligible and kind is BinKind.CAM)
            or (not it.cam_eligible and kind is BinKind.SWITCH)
        ]
        eligible.sort(key=lambda it: (it.length, it.regex_id, it.lnfa_index))
        pos = 0
        while pos < len(eligible):
            size = min(limit, len(eligible) - pos, hw.max_bin_size)
            while size > 1:
                group = eligible[pos : pos + size]
                if _fits(size, max(it.length for it in group), kind, hw):
                    break
                size //= 2
            group = eligible[pos : pos + size]
            max_len = max(it.length for it in group)
            if not _fits(size, max_len, kind, hw):
                # A single LNFA too long for an array cannot be binned at
                # all; the compiler's per-regex checks should have caught
                # this, so surface it loudly.
                raise ValueError(
                    f"LNFA of {max_len} states does not fit one array"
                )
            bins.extend(
                _make_bins(group, kind, hw, overlay_split=overlay_split)
            )
            pos += size
    return bins


def _make_bins(
    group: list[BinItem],
    kind: BinKind,
    hw: HardwareConfig,
    *,
    overlay_split: bool,
) -> list[Bin]:
    def bin_of(part: list[BinItem], part_kind: BinKind) -> Bin:
        """Build a Bin for one part on one side."""
        max_len = max(it.length for it in part)
        return Bin(
            kind=part_kind,
            items=tuple(part),
            tiles=tiles_for(len(part), max_len, part_kind, hw),
        )

    if not overlay_split or kind is not BinKind.CAM or len(group) < 3:
        return [bin_of(group, kind)]
    # 2:1 CAM:switch split; the group is sorted ascending by length, so
    # the shorter third goes to the tighter (switch) side.
    switch_count = len(group) // 3
    switch_part = group[:switch_count]
    cam_part = group[switch_count:]
    if not _fits(
        len(switch_part), max(it.length for it in switch_part), BinKind.SWITCH, hw
    ):
        return [bin_of(group, kind)]
    return [bin_of(switch_part, BinKind.SWITCH), bin_of(cam_part, BinKind.CAM)]
