"""Physical tile and array builders used by the greedy mapper.

These enforce the placement constraints of Section 3.3 while the mapper
packs compiled regexes:

* a tile has ``cam_cols`` CAM columns shared by character classes, bit
  vectors, and set1 columns;
* BVs in one tile share a read action and depth;
* a tile has a bounded number of global-switch ports;
* an array has ``tiles_per_array`` tiles and regexes never span arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.automata.glushkov import ReadKind
from repro.compiler.program import TileRequest
from repro.hardware.config import HardwareConfig, TileMode


@dataclass
class PhysicalTile:
    """One physical tile accumulating requests from possibly many regexes."""

    mode: TileMode
    columns: int = 0
    states: int = 0
    bv_columns: int = 0
    set1_columns: int = 0
    ports: int = 0
    depth: int | None = None
    read: ReadKind | None = None
    occupants: list[tuple[int, TileRequest]] = field(default_factory=list)

    def compatible(self, request: TileRequest, hw: HardwareConfig) -> bool:
        """Can this request share the tile?"""
        if request.mode is not self.mode:
            return False
        if self.columns + request.total_columns > hw.cam_cols:
            return False
        if self.ports + request.global_ports > hw.global_ports_per_tile:
            return False
        if request.read is not None and self.read is not None:
            if request.read is not self.read:
                return False
        if request.depth is not None and self.depth is not None:
            if request.depth != self.depth:
                return False
        return True

    def place(self, regex_id: int, request: TileRequest, hw: HardwareConfig) -> None:
        """Commit a request onto this tile."""
        if not self.compatible(request, hw):
            raise ValueError("incompatible request placed on tile")
        self.columns += request.total_columns
        self.states += request.states
        self.bv_columns += request.bv_columns
        self.set1_columns += request.set1_columns
        self.ports += request.global_ports
        self.depth = self.depth if request.depth is None else request.depth
        self.read = self.read if request.read is None else request.read
        self.occupants.append((regex_id, request))

    def column_utilization(self, hw: HardwareConfig) -> float:
        """Used columns / capacity."""
        return self.columns / hw.cam_cols


@dataclass
class ArrayBuilder:
    """One array being filled by the mapper."""

    mode: TileMode
    hw: HardwareConfig
    tiles: list[PhysicalTile] = field(default_factory=list)
    regex_ids: set[int] = field(default_factory=set)
    # LNFA overlay accounting: CAM-side and switch-side *column* demands
    # are tracked separately (bins share tiles at region granularity, per
    # Fig. 7); the physical footprint is the larger side's tile count.
    lnfa_cam_columns: int = 0
    lnfa_switch_columns: int = 0
    bins: list = field(default_factory=list)

    @property
    def lnfa_cam_tiles(self) -> int:
        """Tiles implied by the CAM-side column demand."""
        return -(-self.lnfa_cam_columns // self.hw.cam_cols)

    @property
    def lnfa_switch_tiles(self) -> int:
        """Tiles implied by the switch-side demand."""
        return -(-self.lnfa_switch_columns // self.hw.local_switch_dim)

    @property
    def tiles_used(self) -> int:
        """Physical tiles this array occupies."""
        if self.mode is TileMode.LNFA:
            return max(self.lnfa_cam_tiles, self.lnfa_switch_tiles)
        return len(self.tiles)

    @property
    def is_empty(self) -> bool:
        """True iff nothing is placed yet."""
        return self.tiles_used == 0

    def can_place_requests(self, requests: tuple[TileRequest, ...]) -> bool:
        """Feasibility check without mutation (two-phase placement)."""
        free_tiles = self.hw.tiles_per_array - len(self.tiles)
        room = [
            self.hw.cam_cols - t.columns for t in self.tiles
        ]
        ports_room = [
            self.hw.global_ports_per_tile - t.ports for t in self.tiles
        ]
        reads = [t.read for t in self.tiles]
        depths = [t.depth for t in self.tiles]
        modes = [t.mode for t in self.tiles]
        for request in requests:
            placed = False
            for i in range(len(room)):
                if (
                    modes[i] is request.mode
                    and room[i] >= request.total_columns
                    and ports_room[i] >= request.global_ports
                    and (
                        request.read is None
                        or reads[i] is None
                        or reads[i] is request.read
                    )
                    and (
                        request.depth is None
                        or depths[i] is None
                        or depths[i] == request.depth
                    )
                ):
                    room[i] -= request.total_columns
                    ports_room[i] -= request.global_ports
                    reads[i] = reads[i] or request.read
                    depths[i] = depths[i] if request.depth is None else request.depth
                    placed = True
                    break
            if not placed:
                if free_tiles == 0:
                    return False
                free_tiles -= 1
                room.append(self.hw.cam_cols - request.total_columns)
                ports_room.append(
                    self.hw.global_ports_per_tile - request.global_ports
                )
                reads.append(request.read)
                depths.append(request.depth)
                modes.append(request.mode)
                if room[-1] < 0 or ports_room[-1] < 0:
                    return False
        return True

    def place_requests(
        self, regex_id: int, requests: tuple[TileRequest, ...]
    ) -> None:
        """Place after a successful ``can_place_requests`` check."""
        for request in requests:
            target = None
            for tile in self.tiles:
                if tile.compatible(request, self.hw):
                    target = tile
                    break
            if target is None:
                if len(self.tiles) >= self.hw.tiles_per_array:
                    raise ValueError("array overflow; check feasibility first")
                target = PhysicalTile(mode=request.mode)
                self.tiles.append(target)
            target.place(regex_id, request, self.hw)
        self.regex_ids.add(regex_id)

    def can_place_bin(self, bin_columns: int, kind_is_cam: bool) -> bool:
        """Does a bin of that size fit this array?"""
        if kind_is_cam:
            capacity = self.hw.tiles_per_array * self.hw.cam_cols
            return self.lnfa_cam_columns + bin_columns <= capacity
        capacity = self.hw.tiles_per_array * self.hw.local_switch_dim
        return self.lnfa_switch_columns + bin_columns <= capacity

    def place_bin(self, bin_obj) -> None:
        """Commit a bin onto this array."""
        from repro.mapping.binning import BinKind

        cols = bin_obj.footprint_columns
        if bin_obj.kind is BinKind.CAM:
            if not self.can_place_bin(cols, True):
                raise ValueError("array overflow placing CAM bin")
            self.lnfa_cam_columns += cols
        else:
            if not self.can_place_bin(cols, False):
                raise ValueError("array overflow placing switch bin")
            self.lnfa_switch_columns += cols
        self.bins.append(bin_obj)
        self.regex_ids.update(item.regex_id for item in bin_obj.items)
