"""The greedy mapper (Section 4.3, "Hardware Mapping").

The mapper determines the mode of each RAP array and which regexes it
hosts.  NFA and NBVA regexes are placed with a first-fit-decreasing greedy
pass (each regex's tile requests must all land in one array — RAP has no
inter-array routing).  LNFAs are first grouped into bins (see
:mod:`repro.mapping.binning`); each bin is then placed like a regex, with
CAM bins and switch bins overlaying the same physical tiles where
possible.

The paper reports average utilization above 90% across benchmarks and
modes; :class:`Mapping` exposes the same metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.program import CompiledMode, CompiledRegex, CompiledRuleset
from repro.hardware.config import DEFAULT_CONFIG, HardwareConfig, TileMode
from repro.mapping.binning import Bin, BinItem, BinKind, plan_bins
from repro.mapping.resources import ArrayBuilder


class MappingError(ValueError):
    """Raised when a regex cannot be placed on the hardware at all."""


@dataclass
class Mapping:
    """The result of mapping one compiled ruleset onto RAP arrays."""

    arrays: list[ArrayBuilder]
    hw: HardwareConfig
    bins: list[Bin] = field(default_factory=list)

    def arrays_in_mode(self, mode: TileMode) -> list[ArrayBuilder]:
        """The arrays configured to one mode."""
        return [a for a in self.arrays if a.mode is mode]

    @property
    def total_arrays(self) -> int:
        """Arrays allocated during placement."""
        return len(self.arrays)

    @property
    def total_tiles(self) -> int:
        """Tiles occupied across all arrays."""
        return sum(a.tiles_used for a in self.arrays)

    @property
    def banks_needed(self) -> int:
        """Banks required for the physical arrays."""
        return -(-self.physical_arrays() // self.hw.arrays_per_bank)

    def physical_arrays(self) -> int:
        """Arrays after consolidating co-schedulable modes.

        Section 3.3: each tile of an array is configured independently,
        so NFA and LNFA tiles can share one physical array (both run one
        symbol per cycle, no stalls).  NBVA arrays stay dedicated — the
        bit-vector-processing phase stalls every tile of its array, and
        mixing would drag the co-located regexes.  The greedy pairing
        below packs partially-filled non-NBVA arrays together; the count
        it returns drives the array-overhead (global switch, controller)
        area and energy charges.
        """
        nbva = [a for a in self.arrays if a.mode is TileMode.NBVA]
        others = sorted(
            (a.tiles_used for a in self.arrays if a.mode is not TileMode.NBVA),
            reverse=True,
        )
        groups: list[int] = []
        for tiles in others:
            for i, used in enumerate(groups):
                if used + tiles <= self.hw.tiles_per_array:
                    groups[i] += tiles
                    break
            else:
                groups.append(tiles)
        return len(nbva) + len(groups)

    def column_utilization(self) -> float:
        """Used CAM columns / provisioned CAM columns (NFA/NBVA arrays)."""
        used = 0
        capacity = 0
        for array in self.arrays:
            if array.mode is TileMode.LNFA:
                continue
            for tile in array.tiles:
                used += tile.columns
                capacity += self.hw.cam_cols
        return used / capacity if capacity else 1.0

    def bin_utilization(self) -> float:
        """Real LNFA states / padded region states across all bins."""
        real = sum(b.real_states for b in self.bins)
        padded = sum(b.padded_states for b in self.bins)
        return real / padded if padded else 1.0

    def utilization(self) -> float:
        """Blended utilization over all modes (the paper's >90% metric)."""
        parts = []
        weights = []
        for array in self.arrays:
            if array.mode is TileMode.LNFA:
                continue
            for tile in array.tiles:
                parts.append(tile.columns / self.hw.cam_cols)
                weights.append(1.0)
        for b in self.bins:
            parts.append(b.utilization)
            weights.append(b.tiles)
        if not parts:
            return 1.0
        return sum(p * w for p, w in zip(parts, weights)) / sum(weights)


def map_ruleset(
    ruleset: CompiledRuleset,
    hw: HardwareConfig = DEFAULT_CONFIG,
    *,
    bin_size: int | None = None,
) -> Mapping:
    """Map every compiled regex onto arrays; raises on impossible regexes."""
    mapping = Mapping(arrays=[], hw=hw)

    _place_tiled(
        mapping,
        [r for r in ruleset if r.mode is CompiledMode.NBVA],
        TileMode.NBVA,
    )
    # The mode plan's tile_mode folds the DFA software tier onto NFA
    # hardware tiles: a DFA-mode regex carries the same automaton and
    # tile requests as its NFA compilation.
    _place_tiled(
        mapping,
        [r for r in ruleset if r.mode.tile_mode is TileMode.NFA],
        TileMode.NFA,
    )
    _place_lnfa(
        mapping,
        [r for r in ruleset if r.mode is CompiledMode.LNFA],
        bin_size=bin_size,
    )
    return mapping


def _place_tiled(
    mapping: Mapping, regexes: list[CompiledRegex], mode: TileMode
) -> None:
    hw = mapping.hw
    # First-fit decreasing: big regexes first to avoid fragmentation.
    ordered = sorted(regexes, key=lambda r: -r.total_columns)
    candidates = [a for a in mapping.arrays if a.mode is mode]
    for regex in ordered:
        if len(regex.tile_requests) > hw.tiles_per_array:
            raise MappingError(
                f"regex {regex.regex_id} needs {len(regex.tile_requests)} "
                f"tiles; an array has {hw.tiles_per_array}"
            )
        placed = False
        for array in candidates:
            if array.can_place_requests(regex.tile_requests):
                array.place_requests(regex.regex_id, regex.tile_requests)
                placed = True
                break
        if not placed:
            array = ArrayBuilder(mode=mode, hw=hw)
            if not array.can_place_requests(regex.tile_requests):
                raise MappingError(
                    f"regex {regex.regex_id} does not fit an empty array"
                )
            array.place_requests(regex.regex_id, regex.tile_requests)
            mapping.arrays.append(array)
            candidates.append(array)


def _place_lnfa(
    mapping: Mapping, regexes: list[CompiledRegex], *, bin_size: int | None
) -> None:
    hw = mapping.hw
    items = [
        BinItem(
            regex_id=regex.regex_id,
            lnfa_index=k,
            lnfa=lnfa,
            cam_eligible=eligible,
            anchored_start=regex.anchored_start,
            anchored_end=regex.anchored_end,
        )
        for regex in regexes
        for k, (lnfa, eligible) in enumerate(
            zip(regex.lnfas, regex.lnfa_cam_eligible)
        )
    ]
    if not items:
        return
    bins = plan_bins(items, hw=hw, bin_size=bin_size)
    candidates = [a for a in mapping.arrays if a.mode is TileMode.LNFA]
    # Big bins first.  Each bin is placed on whichever side (CAM or local
    # switch) keeps the array's physical footprint max(cam, switch)
    # smaller — one-hot encoding makes the switch side universal, so
    # CAM-eligible bins can fill otherwise-idle switches (the "2x in
    # theory" density of Section 3.2).
    placed_bins: list[Bin] = []
    for bin_obj in sorted(bins, key=lambda b: -b.footprint_columns):
        variants = [bin_obj]
        if bin_obj.kind is BinKind.CAM:
            variants.append(bin_obj.retargeted(BinKind.SWITCH, hw))
        chosen = None
        chosen_array = None
        best_cost = None
        for array in candidates:
            for variant in variants:
                is_cam = variant.kind is BinKind.CAM
                cols = variant.footprint_columns
                if not array.can_place_bin(cols, is_cam):
                    continue
                cam = array.lnfa_cam_columns + (cols if is_cam else 0)
                sw = array.lnfa_switch_columns + (0 if is_cam else cols)
                cost = max(cam, sw)
                if best_cost is None or cost < best_cost:
                    best_cost, chosen, chosen_array = cost, variant, array
        if chosen is None:
            chosen_array = ArrayBuilder(mode=TileMode.LNFA, hw=hw)
            chosen = bin_obj
            if not chosen_array.can_place_bin(
                chosen.footprint_columns, chosen.kind is BinKind.CAM
            ):
                raise MappingError(
                    f"bin of {chosen.footprint_columns} columns does not "
                    f"fit an array"
                )
            mapping.arrays.append(chosen_array)
            candidates.append(chosen_array)
        chosen_array.place_bin(chosen)
        placed_bins.append(chosen)
    mapping.bins.extend(placed_bins)
