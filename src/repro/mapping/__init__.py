"""Mapping of compiled regexes onto the RAP bank/array/tile hierarchy.

* :mod:`repro.mapping.binning` — the LNFA binning algorithm of
  Section 4.3 (sort by size, fill the largest bin that fits, halve on
  overflow) that concentrates initial states so non-initial tiles can be
  power-gated.
* :mod:`repro.mapping.resources` — physical tile/array builders enforcing
  the hardware constraints during placement.
* :mod:`repro.mapping.mapper` — the greedy mapper that groups regexes into
  arrays (the paper reports >90% utilization across all benchmarks).
"""

from repro.mapping.binning import Bin, BinKind, plan_bins
from repro.mapping.mapper import Mapping, MappingError, map_ruleset
from repro.mapping.resources import ArrayBuilder, PhysicalTile

__all__ = [
    "ArrayBuilder",
    "Bin",
    "BinKind",
    "Mapping",
    "MappingError",
    "PhysicalTile",
    "map_ruleset",
    "plan_bins",
]
