"""Witness sampling: generate strings a regex is guaranteed to match.

Input generators plant witnesses into background traffic so that every
simulated run exercises real match activity (state activations, counter
traffic, match reporting) at a controlled rate, like the paper's real
input traces do.
"""

from __future__ import annotations

import random

from repro.regex.ast import (
    Alt,
    Concat,
    Empty,
    Epsilon,
    Lit,
    Opt,
    Plus,
    Regex,
    Repeat,
    Star,
)


def sample_witness(regex: Regex, rng: random.Random) -> bytes:
    """A random member of the regex's language (shortest-biased).

    Unbounded repetitions contribute at most a couple of iterations and
    bounded repetitions stay near their lower bound, so witnesses stay
    short enough to plant densely.
    """
    return bytes(_sample(regex, rng))


def _sample(node: Regex, rng: random.Random) -> list[int]:
    if isinstance(node, Empty):
        raise ValueError("the empty language has no witness")
    if isinstance(node, Epsilon):
        return []
    if isinstance(node, Lit):
        symbols = node.cc.symbols()
        # Prefer printable members so planted traffic stays domain-like.
        printable = [b for b in symbols if 0x20 <= b < 0x7F]
        return [rng.choice(printable or symbols)]
    if isinstance(node, Concat):
        out: list[int] = []
        for part in node.parts:
            out.extend(_sample(part, rng))
        return out
    if isinstance(node, Alt):
        return _sample(rng.choice(node.parts), rng)
    if isinstance(node, Star):
        return _repeat_sample(node.inner, rng.randint(0, 2), rng)
    if isinstance(node, Plus):
        return _repeat_sample(node.inner, rng.randint(1, 2), rng)
    if isinstance(node, Opt):
        return _sample(node.inner, rng) if rng.random() < 0.5 else []
    if isinstance(node, Repeat):
        hi = node.lo + 2 if node.hi is None else min(node.hi, node.lo + 2)
        count = rng.randint(node.lo, max(hi, node.lo))
        return _repeat_sample(node.inner, count, rng)
    raise TypeError(f"unknown regex node: {type(node).__name__}")


def _repeat_sample(inner: Regex, count: int, rng: random.Random) -> list[int]:
    out: list[int] = []
    for _ in range(count):
        out.extend(_sample(inner, rng))
    return out
