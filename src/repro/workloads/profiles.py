"""Per-benchmark workload profiles.

Each profile records the characteristics the paper reports (or that are
well known for the source rule sets) and that the results actually depend
on:

* the target NFA / NBVA / LNFA regex mix (Fig. 1);
* the bounded-repetition size range (drives the NBVA columns/compression
  and the chosen BV depth of Fig. 10a);
* pattern length ranges and the input-domain alphabet;
* the DSE parameters the paper selects per benchmark in Fig. 10
  (BV depth, LNFA bin size).

Fig. 1's exact percentages are read off the bar chart; where only
qualitative statements exist in the text ("more than 80% ... ClamAV",
"majority ... Prosite and SpamAssassin", "most ... RegexLib ... NFA",
"no regex ... NBVA in Prosite") the profiles honour those statements.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BenchmarkProfile:
    """Generation parameters for one synthetic benchmark."""

    name: str
    domain: str  # input-domain generator key (see workloads.inputs)
    # target regex mix (fractions summing to 1)
    nfa_fraction: float
    nbva_fraction: float
    lnfa_fraction: float
    # bounded repetitions: (lo, hi) range of the *upper* bounds generated
    rep_bound_range: tuple[int, int]
    # fixed-pattern lengths for LNFA-class regexes
    lnfa_length_range: tuple[int, int]
    # literal-run lengths for NFA-class regexes
    nfa_literal_range: tuple[int, int]
    # DSE parameters the paper chooses for this benchmark (Fig. 10)
    chosen_bv_depth: int
    chosen_bin_size: int
    # regexes in the full-size benchmark (scaled down for quick runs)
    nominal_size: int
    # fraction of regexes wrapped in ^...$ (RegexLib's input-validation
    # patterns are typically fully anchored; scanning rule sets are not)
    anchored_fraction: float = 0.0
    # fraction of regexes marked (?i) (Snort/Suricata content rules are
    # frequently nocase; binary signatures never are)
    nocase_fraction: float = 0.0

    def __post_init__(self) -> None:
        total = self.nfa_fraction + self.nbva_fraction + self.lnfa_fraction
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"{self.name}: mode fractions sum to {total}")

    def counts(self, total: int) -> dict[str, int]:
        """Integer per-mode counts for a benchmark of ``total`` regexes."""
        nbva = round(total * self.nbva_fraction)
        lnfa = round(total * self.lnfa_fraction)
        nfa = total - nbva - lnfa
        return {"NFA": max(nfa, 0), "NBVA": nbva, "LNFA": lnfa}


PROFILES: dict[str, BenchmarkProfile] = {
    "RegexLib": BenchmarkProfile(
        name="RegexLib",
        domain="text",
        nfa_fraction=0.70,
        nbva_fraction=0.12,
        lnfa_fraction=0.18,
        rep_bound_range=(9, 20),  # low ratio and small sizes (Section 5.4)
        lnfa_length_range=(5, 10),
        nfa_literal_range=(3, 8),
        chosen_bv_depth=4,
        chosen_bin_size=16,
        nominal_size=2000,
        anchored_fraction=0.4,
    ),
    "SpamAssassin": BenchmarkProfile(
        name="SpamAssassin",
        domain="email",
        nfa_fraction=0.22,
        nbva_fraction=0.15,
        lnfa_fraction=0.63,
        rep_bound_range=(8, 24),  # "Jeste.{1,8}firm.{1,8}" -> small BVs
        lnfa_length_range=(6, 14),
        nfa_literal_range=(4, 10),
        chosen_bv_depth=4,
        chosen_bin_size=16,
        nominal_size=3000,
    ),
    "Snort": BenchmarkProfile(
        name="Snort",
        domain="network",
        nfa_fraction=0.40,
        nbva_fraction=0.42,
        lnfa_fraction=0.18,
        rep_bound_range=(16, 300),
        lnfa_length_range=(5, 12),
        nfa_literal_range=(4, 12),
        chosen_bv_depth=8,
        chosen_bin_size=16,
        nominal_size=4000,
        nocase_fraction=0.25,
    ),
    "Suricata": BenchmarkProfile(
        name="Suricata",
        domain="network",
        nfa_fraction=0.38,
        nbva_fraction=0.44,
        lnfa_fraction=0.18,
        rep_bound_range=(16, 300),
        lnfa_length_range=(5, 12),
        nfa_literal_range=(4, 12),
        chosen_bv_depth=8,
        chosen_bin_size=16,
        nominal_size=4000,
        nocase_fraction=0.25,
    ),
    "Yara": BenchmarkProfile(
        name="Yara",
        domain="binary",
        nfa_fraction=0.15,
        nbva_fraction=0.60,
        lnfa_fraction=0.25,
        rep_bound_range=(32, 128),  # AppPath=[C-Z]:\\[^\\]{1,64}\.exe
        lnfa_length_range=(8, 14),
        nfa_literal_range=(4, 10),
        chosen_bv_depth=16,
        chosen_bin_size=16,
        nominal_size=2500,
    ),
    "ClamAV": BenchmarkProfile(
        name="ClamAV",
        domain="binary",
        nfa_fraction=0.05,
        nbva_fraction=0.85,
        lnfa_fraction=0.10,
        rep_bound_range=(64, 1000),  # large bounds dominate
        lnfa_length_range=(12, 20),
        nfa_literal_range=(6, 12),
        chosen_bv_depth=32,
        chosen_bin_size=16,
        nominal_size=5000,
    ),
    "Prosite": BenchmarkProfile(
        name="Prosite",
        domain="protein",
        nfa_fraction=0.25,
        nbva_fraction=0.0,  # "No regex has been compiled to NBVA in Prosite"
        lnfa_fraction=0.75,
        rep_bound_range=(2, 4),  # only small motif repeats, all unfolded
        lnfa_length_range=(10, 18),
        nfa_literal_range=(4, 10),
        chosen_bv_depth=4,
        chosen_bin_size=32,
        nominal_size=1500,
    ),
}

# The order the paper's tables use.
TABLE2_BENCHMARKS = [
    "RegexLib",
    "SpamAssassin",
    "Snort",
    "Suricata",
    "Yara",
    "ClamAV",
]
TABLE3_BENCHMARKS = [
    "RegexLib",
    "Prosite",
    "SpamAssassin",
    "Snort",
    "Suricata",
    "Yara",
    "ClamAV",
]
ALL_BENCHMARKS = TABLE3_BENCHMARKS
