"""Input stream generators.

Per-domain background traffic with witnesses of the benchmark's own
regexes planted at a controlled rate.  The paper sizes its output path
for a match rate "typically lower than 10%" (Section 3.3); the default
planting rate keeps simulated runs in that regime while still exercising
counter traffic, match reporting, and bin wake-ups.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence

from repro.regex.parser import parse_anchored
from repro.workloads.witness import sample_witness

_BACKGROUND = {
    "text": b"abcdefghijklmnopqrstuvwxyz0123456789 .,;:!?",
    "email": b"abcdefghijklmnopqrstuvwxyz     .,@",
    "network": b"abcdefghijklmnopqrstuvwxyz0123456789/=&?%\r\n",
    "binary": bytes(range(256)),
    "protein": b"ACDEFGHIKLMNPQRSTVWY",
}


def background_traffic(domain: str, length: int, rng: random.Random) -> bytearray:
    """Random domain-typical bytes with no intentional matches."""
    alphabet = _BACKGROUND[domain]
    return bytearray(rng.choice(alphabet) for _ in range(length))


def generate_input(
    domain: str,
    length: int,
    *,
    seed: int = 0,
    patterns: Sequence[str] | Iterable[str] = (),
    plant_every: int = 600,
    weights: Sequence[float] | None = None,
) -> bytes:
    """Domain traffic of ``length`` bytes with planted pattern witnesses.

    Roughly every ``plant_every`` bytes, the witness of a randomly chosen
    pattern is written into the stream (overwriting background bytes, so
    the stream length is exact).  ``weights`` biases the choice — real
    traces match expensive signature patterns far less often than short
    content patterns, which matters for the BV activation rate.
    """
    if domain not in _BACKGROUND:
        raise ValueError(f"unknown input domain: {domain}")
    if length < 0:
        raise ValueError("length must be non-negative")
    rng = random.Random(seed ^ 0x5EED)
    data = background_traffic(domain, length, rng)
    pattern_list = [p for p in patterns]
    # Materialize weights exactly once: a generator-valued ``weights``
    # would otherwise be exhausted by the length check and silently
    # plant nothing (or crash) in the loop below.
    weight_list = None if weights is None else [float(w) for w in weights]
    if weight_list is not None:
        if len(weight_list) != len(pattern_list):
            raise ValueError(
                f"weights must align with patterns: got {len(weight_list)} "
                f"weight(s) for {len(pattern_list)} pattern(s)"
            )
        for i, w in enumerate(weight_list):
            if not w >= 0:  # also catches NaN
                raise ValueError(
                    f"weights must be non-negative, got weights[{i}] = {w!r}"
                )
        if pattern_list and not any(weight_list):
            raise ValueError("at least one weight must be positive")
    if not pattern_list or length == 0:
        return bytes(data)
    parsed = [parse_anchored(p).regex for p in pattern_list]
    position = rng.randint(0, plant_every)
    while position < length:
        if weight_list is None:
            chosen = rng.choice(parsed)
        else:
            chosen = rng.choices(parsed, weights=weight_list, k=1)[0]
        witness = sample_witness(chosen, rng)
        end = min(position + len(witness), length)
        data[position:end] = witness[: end - position]
        position = end + rng.randint(plant_every // 2, plant_every * 3 // 2)
    return bytes(data)
