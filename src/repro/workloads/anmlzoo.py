"""Synthetic ANMLZoo-style benchmarks for the FPGA comparison (Table 4).

The paper evaluates RAP against hAP on five ANMLZoo suites.  ANMLZoo
ships automata with bounded repetitions already unfolded, so — except for
ClamAV's large repetitions — these suites exercise plain NFA/LNFA
behaviour.  The generators reuse the synthetic machinery with profiles
matching each suite's published character:

* **Brill**: part-of-speech rewrite rules — word-literal patterns;
* **ClamAV**: virus signatures with large gap repetitions;
* **Dotstar**: synthetic ``lit .* lit`` patterns (the suite's namesake);
* **PowerEN**: complex multi-feature patterns from IBM's PowerEN rules;
* **Snort**: network payload rules.
"""

from __future__ import annotations


from repro.workloads.datasets import GeneratedBenchmark, generate_from_profile
from repro.workloads.profiles import PROFILES, BenchmarkProfile

ANMLZOO_PROFILES: dict[str, BenchmarkProfile] = {
    "Brill": BenchmarkProfile(
        name="Brill",
        domain="text",
        nfa_fraction=0.30,
        nbva_fraction=0.0,
        lnfa_fraction=0.70,
        rep_bound_range=(2, 4),
        lnfa_length_range=(5, 18),
        nfa_literal_range=(4, 10),
        chosen_bv_depth=4,
        chosen_bin_size=16,
        nominal_size=2000,
    ),
    "ClamAV": PROFILES["ClamAV"],
    "Dotstar": BenchmarkProfile(
        name="Dotstar",
        domain="text",
        nfa_fraction=0.95,
        nbva_fraction=0.0,
        lnfa_fraction=0.05,
        rep_bound_range=(2, 4),
        lnfa_length_range=(4, 10),
        nfa_literal_range=(4, 10),
        chosen_bv_depth=4,
        chosen_bin_size=4,
        nominal_size=3000,
    ),
    "PowerEN": BenchmarkProfile(
        name="PowerEN",
        domain="network",
        nfa_fraction=0.60,
        nbva_fraction=0.15,
        lnfa_fraction=0.25,
        rep_bound_range=(10, 60),
        lnfa_length_range=(5, 14),
        nfa_literal_range=(4, 12),
        chosen_bv_depth=4,
        chosen_bin_size=8,
        nominal_size=2500,
    ),
    "Snort": PROFILES["Snort"],
}

ANMLZOO_BENCHMARKS = list(ANMLZOO_PROFILES)


def generate_anmlzoo_benchmark(
    name: str, size: int | None = None, seed: int = 0
) -> GeneratedBenchmark:
    """Generate one ANMLZoo-style suite (deterministic per seed)."""
    return generate_from_profile(ANMLZOO_PROFILES[name], size=size, seed=seed)
