"""Synthetic benchmark generators.

Each benchmark draws regexes from three mode-typed generators until its
Fig. 1 mix is met:

* **LNFA-class**: fixed-length character sequences — string literals,
  small classes, wildcards, at most a couple of optionals (Prosite
  motifs, SpamAssassin phrases);
* **NBVA-class**: a literal prefix, a counted character class with a
  domain-typical bound (``[^\\\\]{1,64}`` in Yara, hex gap runs in
  ClamAV, payload length checks in Snort), and a short suffix;
* **NFA-class**: unbounded constructs — ``.*`` gaps, ``+`` runs,
  variable-length alternations (RegexLib validation patterns).

Every generated regex is verified against the Fig. 9 decision graph at
the compiler's default settings, so a benchmark's advertised mix is a
guarantee, not a hope.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.compiler.decision import decide
from repro.compiler.program import CompiledMode
from repro.regex.parser import parse
from repro.workloads.profiles import PROFILES, BenchmarkProfile

# Decision-graph settings used for mix verification (compiler defaults).
_VERIFY_THRESHOLD = 8
_VERIFY_BLOWUP = 2.0

# The "binary" domain (Yara / ClamAV) works on raw byte values rendered
# as \xHH escapes — real malware signatures are byte strings, and their
# byte-range classes stay within one aligned 32-value block (the 84%
# single-code population of Section 3.2).  The others are ASCII domains.
_DOMAIN_LITERALS = {
    "text": "abcdefghijklmnopqrstuvwxyz0123456789",
    "email": "abcdefghijklmnopqrstuvwxyz",
    "network": "abcdefghijklmnopqrstuvwxyz0123456789/=&?",
    "binary": None,  # any byte value; see _literal_char
    "protein": "ACDEFGHIKLMNPQRSTVWY",
}

_DOMAIN_CLASSES = {
    "text": ["[a-z]", "[0-9]", "[a-f]", "[x-z]"],
    "email": ["[a-z]", "[eio]", "[rst]"],
    "network": ["[a-z]", "[0-9]", "[g-o]", "[/=&]"],
    "binary": [
        "[\\x00-\\x1f]",
        "[\\x20-\\x3f]",
        "[\\x40-\\x5f]",
        "[\\x80-\\x9f]",
        "[\\xe0-\\xff]",
    ],
    "protein": ["[ACDE]", "[FGHI]", "[KLMN]", "[PQRS]", "[TVWY]"],
}

_GAP_CLASSES = {
    "text": ["[a-z]", "[0-9]", "[^;]"],
    "email": ["[a-z]", "[^ ]"],
    "network": ["[^\\n]", "[a-z0-9]", "[^;]"],
    "binary": ["[^\\x00]", ".", "[^\\xff]"],
    "protein": ["[ACDEFGHIKLMNPQRSTVWY]", "."],
}


@dataclass(frozen=True)
class GeneratedBenchmark:
    """A synthetic benchmark: patterns plus their generation profile."""

    name: str
    profile: BenchmarkProfile
    patterns: tuple[str, ...]
    intended_modes: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.patterns)


BENCHMARKS = list(PROFILES)


def generate_benchmark(
    name: str, size: int | None = None, seed: int = 0
) -> GeneratedBenchmark:
    """Generate the named benchmark with ``size`` regexes (deterministic)."""
    return generate_from_profile(PROFILES[name], size=size, seed=seed)


def generate_from_profile(
    profile: BenchmarkProfile, size: int | None = None, seed: int = 0
) -> GeneratedBenchmark:
    """Generate a benchmark from an explicit profile (ANMLZoo reuses this)."""
    total = size if size is not None else profile.nominal_size
    rng = random.Random((_stable_hash(profile.name) & 0xFFFF_FFFF) ^ seed)
    counts = profile.counts(total)
    patterns: list[str] = []
    modes: list[str] = []
    for mode_name, count in counts.items():
        target = CompiledMode[mode_name]
        for _ in range(count):
            patterns.append(_generate_verified(target, profile, rng))
            modes.append(mode_name)
    order = list(range(len(patterns)))
    rng.shuffle(order)
    return GeneratedBenchmark(
        name=profile.name,
        profile=profile,
        patterns=tuple(patterns[i] for i in order),
        intended_modes=tuple(modes[i] for i in order),
    )


def generate_mode_patterns(
    profile: BenchmarkProfile,
    mode: CompiledMode,
    count: int,
    seed: int = 0,
) -> tuple[str, ...]:
    """Generate ``count`` regexes of one decided mode from a profile.

    The Table 2/3 experiments evaluate "all regexes compiled to NBVA
    (resp. LNFA)" of a benchmark; this helper sizes those subsets
    independently of the full benchmark's mix.
    """
    rng = random.Random(
        (_stable_hash(f"{profile.name}:{mode.value}") & 0xFFFF_FFFF) ^ seed
    )
    return tuple(
        _generate_verified(mode, profile, rng) for _ in range(count)
    )


def _stable_hash(text: str) -> int:
    """Deterministic across processes (unlike ``hash`` with PYTHONHASHSEED)."""
    value = 0
    for ch in text:
        value = (value * 131 + ord(ch)) & 0xFFFF_FFFF
    return value


def _generate_verified(
    target: CompiledMode, profile: BenchmarkProfile, rng: random.Random
) -> str:
    for _ in range(50):
        pattern = _GENERATORS[target](profile, rng)
        decision = decide(
            parse(pattern),
            unfold_threshold=_VERIFY_THRESHOLD,
            lnfa_blowup=_VERIFY_BLOWUP,
        )
        if decision.mode is target:
            if rng.random() < profile.anchored_fraction:
                pattern = f"^{pattern}$"
            if rng.random() < profile.nocase_fraction:
                pattern = f"(?i){pattern}"
            return pattern
    raise RuntimeError(
        f"could not generate a {target.value} regex for {profile.name}"
    )


# -- per-mode generators -------------------------------------------------------


_METACHARS = set(".^$*+?()[]{}|\\")


def _literal_char(profile: BenchmarkProfile, rng: random.Random) -> str:
    alphabet = _DOMAIN_LITERALS[profile.domain]
    if alphabet is None:  # raw-byte domain
        return f"\\x{rng.randrange(256):02x}"
    ch = rng.choice(alphabet)
    return "\\" + ch if ch in _METACHARS else ch


def _literal_run(profile: BenchmarkProfile, rng: random.Random, length: int) -> str:
    return "".join(_literal_char(profile, rng) for _ in range(length))


def _lnfa_regex(profile: BenchmarkProfile, rng: random.Random) -> str:
    length = rng.randint(*profile.lnfa_length_range)
    classes = _DOMAIN_CLASSES[profile.domain]
    parts: list[str] = []
    optionals = 0
    for i in range(length):
        roll = rng.random()
        if roll < 0.62:
            parts.append(_literal_char(profile, rng))
        elif roll < 0.82:
            parts.append(rng.choice(classes))
        elif roll < 0.94:
            parts.append(".")
        elif optionals < 2 and i > 0:
            parts.append(_literal_char(profile, rng) + "?")
            optionals += 1
        else:
            parts.append(rng.choice(classes))
    return "".join(parts)


def _nbva_regex(profile: BenchmarkProfile, rng: random.Random) -> str:
    # Complex prefixes keep the BV activation rate low (the paper's Yara
    # observation); short prefixes would light counters up on random
    # background bytes.
    prefix = _literal_run(profile, rng, rng.randint(4, 7))
    suffix = _literal_run(profile, rng, rng.randint(1, 3))
    gap_cc = rng.choice(_GAP_CLASSES[profile.domain])
    lo_bound, hi_bound = profile.rep_bound_range
    hi = rng.randint(max(lo_bound, _VERIFY_THRESHOLD + 1), hi_bound)
    style = rng.random()
    if style < 0.45:
        counted = f"{gap_cc}{{{hi}}}"  # exact bound
    elif style < 0.8:
        lo = rng.randint(1, max(1, hi // 4))
        counted = f"{gap_cc}{{{lo},{hi}}}"  # range bound
    else:
        counted = f"{gap_cc}{{0,{hi}}}"  # pure rAll gap
        suffix = _literal_run(profile, rng, rng.randint(2, 3))
    # Signature-style patterns are prefix-gap-suffix; an unbounded ``.*``
    # ahead of the counter would pin the BV active from the first prefix
    # hit onward, which real gap signatures avoid.
    return f"{prefix}{counted}{suffix}"


def _literal_tokens(
    profile: BenchmarkProfile, rng: random.Random, length: int
) -> list[str]:
    """One escaped token per symbol, so slicing stays escape-safe."""
    return [_literal_char(profile, rng) for _ in range(length)]


def _nfa_regex(profile: BenchmarkProfile, rng: random.Random) -> str:
    def lit() -> str:
        """Shorthand literal constructor used by the generators."""
        return "".join(
            _literal_tokens(
                profile, rng, rng.randint(*profile.nfa_literal_range)
            )
        )

    classes = _DOMAIN_CLASSES[profile.domain]
    style = rng.random()
    if style < 0.35:
        return f"{lit()}.*{lit()}"
    if style < 0.6:
        return f"{lit()}{rng.choice(classes)}+{lit()}"
    if style < 0.8:
        # variable-length alternation under a star: never linearizable
        a = lit()
        b_tokens = _literal_tokens(
            profile, rng, rng.randint(*profile.nfa_literal_range)
        )
        b = "".join(b_tokens[: max(2, len(b_tokens) // 2)])
        return f"{lit()}(?:{a}|{b})*{lit()}"
    return f"{lit()}{rng.choice(classes)}*{lit()}{rng.choice(classes)}+"


_GENERATORS = {
    CompiledMode.LNFA: _lnfa_regex,
    CompiledMode.NBVA: _nbva_regex,
    CompiledMode.NFA: _nfa_regex,
}
