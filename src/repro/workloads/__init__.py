"""Synthetic workloads standing in for the paper's proprietary rule sets.

The evaluation uses seven real-world benchmarks (Snort, Suricata,
Prosite, Yara, ClamAV, SpamAssassin, RegexLib) plus ANMLZoo for the FPGA
comparison.  Those exact rule sets are not redistributable, so this
package generates seeded synthetic equivalents whose *measured
characteristics* match what the paper reports: the NFA/NBVA/LNFA mix of
Fig. 1, the bounded-repetition size distributions that drive the NBVA
results, and the pattern-length/alphabet profiles of each domain.

All generators are deterministic given a seed, so experiments are
reproducible run to run.
"""

from repro.workloads.datasets import BENCHMARKS, generate_benchmark
from repro.workloads.inputs import generate_input
from repro.workloads.profiles import PROFILES, BenchmarkProfile

__all__ = [
    "BENCHMARKS",
    "BenchmarkProfile",
    "PROFILES",
    "generate_benchmark",
    "generate_input",
]
