"""Wire protocol of the scan service: newline-delimited JSON frames.

One frame per line, UTF-8 JSON with an ``op`` discriminator — trivially
debuggable with ``nc`` and language-agnostic for clients.  Input bytes
travel base64-encoded in ``data`` frames; match events stream back as
``[global_end_offset, regex_id]`` pairs.

Client -> server ops
--------------------
``open``     start or resume a session
             (``tenant``, ``session``, ``patterns``, ``resume``)
``data``     the next input segment (``b64``)
``end``      the stream is complete: price and return the final result
``reload``   hot-swap the tenant's ruleset (``patterns``); compiles in
             the background, swaps at each session's next segment
             boundary
``ping``     liveness probe; also honored *before* ``open`` so a fleet
             supervisor can health-probe a worker without creating a
             session
``detach``   checkpoint the session and close the connection; a later
             ``open`` with ``resume`` continues it bit-identically

Supervisor -> worker control ops (pre-``open``, fleet only)
-----------------------------------------------------------
``health``   structured worker snapshot (``health_report``: live
             sessions, parked sessions, counters, drain flag)
``release``  checkpoint and park every attached session for migration;
             each client gets an ``error`` frame with code ``migrate``
             and a ``retry_after``, then the worker answers
             ``released`` (``count``) and forgets the sessions —
             ownership has moved to whichever worker resumes them

Server -> client ops
--------------------
``welcome``  session accepted (``offset`` = bytes durably consumed —
             a resuming client replays its input from there;
             ``backend`` = the resolved step-kernel backend that will
             execute, ``backend_reason`` = why a fallback was taken,
             e.g. ``"native unavailable: no C compiler"``, or null)
``events``   new matches for the last fed segment (``matches``,
             ``offset``, ``energy_uj`` priced so far, ``generation``)
``swap``     the session rotated onto a reloaded ruleset at this offset
``result``   final totals after ``end`` (``matches``, ``energy_uj``)
``reloaded`` background compile finished (``generation``, ``swapped``)
``pong``     ping reply
``bye``      orderly detach (``reason``: ``detach``/``idle``/``drain``)
``health_report``  reply to ``health``
``released`` reply to ``release`` (``count`` sessions parked)
``error``    structured failure (``code``, ``message``, optional
             ``retry_after`` seconds for admission/shed/migrate/breaker
             rejections; ``offset`` on ``migrate`` so the client knows
             the durable resume point)

Framing errors — unparsable JSON, a non-object, a missing ``op``, or a
line over the size limit — are :class:`~repro.errors.ProtocolError`;
the server answers with an ``error`` frame and fails the *connection*,
never the session state (the session was checkpointed after its last
fed segment and resumes intact).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from repro.errors import ProtocolError

PROTOCOL = "rap-serve"
PROTOCOL_VERSION = 1

# Upper bound on one frame line.  Base64 inflates payloads by 4/3, so
# this admits data segments of ~6 MiB — far above the service's segment
# granularity — while bounding a hostile client's memory leverage.
MAX_FRAME_BYTES = 8 << 20

# Error codes carried by ``error`` frames.
ERR_ADMISSION = "admission"  # admission refused; retry_after attached
ERR_SHED = "shed"  # session shed under pressure; retry_after attached
ERR_PROTOCOL = "protocol"  # malformed/oversized/out-of-sequence frame
ERR_CONFLICT = "conflict"  # session already attached to a connection
ERR_COMPILE = "compile"  # ruleset failed to compile
ERR_CHECKPOINT = "checkpoint"  # resume rejected (fingerprint/state)
ERR_DRAIN = "drain"  # server is draining
ERR_MIGRATE = "migrate"  # session parked for re-homing; reconnect after
ERR_BREAKER = "breaker"  # tenant circuit breaker open; retry_after set
ERR_INTERNAL = "internal"


def encode_frame(obj: dict[str, Any]) -> bytes:
    """One frame as wire bytes (compact JSON + newline)."""
    return json.dumps(obj, separators=(",", ":"), sort_keys=True).encode() + b"\n"


def decode_frame(line: bytes) -> dict[str, Any]:
    """Parse one wire line, or raise :class:`ProtocolError`."""
    try:
        obj = json.loads(line)
    except ValueError as err:
        raise ProtocolError(
            f"unparsable frame: {err}", phase="serve"
        ) from err
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame is not an object: {type(obj).__name__}", phase="serve"
        )
    op = obj.get("op")
    if not isinstance(op, str) or not op:
        raise ProtocolError("frame has no op", phase="serve")
    return obj


def send_frame(writer: asyncio.StreamWriter, obj: dict[str, Any]) -> None:
    """Queue one frame on the transport (call ``drain`` to bound it)."""
    writer.write(encode_frame(obj))


async def read_frame(
    reader: asyncio.StreamReader, timeout: float | None = None
) -> dict[str, Any] | None:
    """The next frame, ``None`` at EOF.

    Raises :class:`ProtocolError` for malformed or oversized lines and
    ``asyncio.TimeoutError`` when ``timeout`` (the read deadline)
    expires first.
    """
    try:
        line = await asyncio.wait_for(reader.readline(), timeout)
    except ValueError as err:
        # StreamReader signals an over-limit line as ValueError (via
        # LimitOverrunError); the connection is unrecoverable at that
        # point — there is no resync boundary inside a torn line.
        raise ProtocolError(
            f"frame exceeds the size limit: {err}", phase="serve"
        ) from err
    if not line:
        return None
    if not line.endswith(b"\n"):
        # A final fragment without its newline: the peer died mid-frame.
        raise ProtocolError("truncated frame at EOF", phase="serve")
    return decode_frame(line)


__all__ = [
    "ERR_ADMISSION",
    "ERR_BREAKER",
    "ERR_CHECKPOINT",
    "ERR_COMPILE",
    "ERR_CONFLICT",
    "ERR_DRAIN",
    "ERR_INTERNAL",
    "ERR_MIGRATE",
    "ERR_PROTOCOL",
    "ERR_SHED",
    "MAX_FRAME_BYTES",
    "PROTOCOL",
    "PROTOCOL_VERSION",
    "decode_frame",
    "encode_frame",
    "read_frame",
    "send_frame",
]
