"""Per-tenant ruleset namespaces with hot reload.

The RAP paper's reconfigurability story, applied to a service: each
tenant owns a ruleset namespace that can be swapped on the fly.  A
:class:`TenantRegistry` compiles through the engine's keyed on-disk
compile cache (so two workers — or a worker resuming another worker's
session — deterministically rebuild the identical ruleset), builds the
hardware mapping once per generation, and hands out immutable
:class:`TenantEntry` snapshots.

Hot reload is generation-based: ``reload`` compiles the *new*
fingerprint (in the server this runs on an executor thread so the
event loop keeps serving), and only then bumps the tenant's
generation.  Live sessions notice the newer generation at their next
segment boundary and rotate onto it without dropping the connection; a
reload that compiles to the identical ruleset fingerprint is a no-op
(``swapped=False``) so spurious reloads never perturb in-flight scans.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass

from repro.compiler.program import CompiledRuleset
from repro.engine.batch import BatchEngine
from repro.errors import CompileError, ServeError
from repro.io.serialize import ruleset_to_json
from repro.mapping.mapper import Mapping
from repro.simulators.rap import RAPSimulator


def ruleset_fingerprint(ruleset: CompiledRuleset) -> str:
    """Content hash of a compiled ruleset (reload no-op detection)."""
    doc = json.dumps(
        ruleset_to_json(ruleset), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(doc.encode()).hexdigest()


@dataclass(frozen=True)
class TenantEntry:
    """One immutable generation of one tenant's namespace."""

    tenant: str
    generation: int
    patterns: tuple[str, ...]
    ruleset: CompiledRuleset
    mapping: Mapping
    fingerprint: str


class TenantRegistry:
    """The live tenant -> ruleset namespace map of one worker."""

    def __init__(
        self,
        engine: BatchEngine | None = None,
        hw=None,
        bin_size: int | None = None,
    ):
        from repro.hardware.config import DEFAULT_CONFIG

        self.engine = engine or BatchEngine()
        self.hw = hw or DEFAULT_CONFIG
        self.bin_size = bin_size
        self._entries: dict[str, TenantEntry] = {}
        self._lock = threading.Lock()

    def compile(
        self, patterns
    ) -> tuple[CompiledRuleset, Mapping, str]:
        """Compile patterns (through the keyed cache) and map them.

        Raises :class:`~repro.errors.CompileError` (already a
        structured :class:`ReproError`) when a pattern is rejected; the
        server maps that onto an ``error`` frame instead of a session.
        """
        patterns = list(patterns)
        if not patterns:
            raise CompileError("a session needs at least one pattern")
        ruleset = self.engine.compile(patterns, on_error="fail")
        mapping = RAPSimulator(self.hw).build_mapping(
            ruleset, bin_size=self.bin_size
        )
        return ruleset, mapping, ruleset_fingerprint(ruleset)

    def get(self, tenant: str) -> TenantEntry | None:
        """The tenant's current generation, or ``None``."""
        with self._lock:
            return self._entries.get(tenant)

    def open(self, tenant: str, patterns) -> TenantEntry:
        """The entry an ``open`` frame binds to.

        Reuses the current generation when the requested patterns match
        it; otherwise compiles and installs the patterns as the
        tenant's (possibly first) generation.
        """
        patterns = tuple(patterns)
        current = self.get(tenant)
        if current is not None and current.patterns == patterns:
            return current
        return self.reload(tenant, patterns)

    def reload(self, tenant: str, patterns) -> TenantEntry:
        """Compile ``patterns`` and install them as a new generation.

        Compilation happens *before* the namespace mutates — a ruleset
        that fails to compile leaves the tenant's current generation
        untouched (sessions keep scanning).  A reload whose compiled
        fingerprint equals the current one returns the current entry
        unchanged: no generation bump, no session rotation.
        """
        patterns = tuple(patterns)
        ruleset, mapping, fingerprint = self.compile(patterns)
        with self._lock:
            current = self._entries.get(tenant)
            if current is not None and current.fingerprint == fingerprint:
                return current
            entry = TenantEntry(
                tenant=tenant,
                generation=(current.generation + 1) if current else 1,
                patterns=patterns,
                ruleset=ruleset,
                mapping=mapping,
                fingerprint=fingerprint,
            )
            self._entries[tenant] = entry
            return entry

    def entry_for(self, tenant: str, generation: int) -> TenantEntry:
        """The tenant's current entry, asserting it is ``generation``.

        Sessions resumed from a checkpoint carry the generation they
        were scanning under; a mismatch with what this helper returns
        is not an error — the session simply rotates at its next
        segment boundary — but a missing tenant is.
        """
        entry = self.get(tenant)
        if entry is None:
            raise ServeError(
                f"tenant {tenant!r} has no loaded ruleset", phase="serve"
            )
        return entry

    def tenants(self) -> list[str]:
        """The loaded tenant names (diagnostics)."""
        with self._lock:
            return sorted(self._entries)


__all__ = ["TenantEntry", "TenantRegistry", "ruleset_fingerprint"]
