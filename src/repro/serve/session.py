"""One streaming scan session: epochs over a :class:`DurableScan`.

A session is the unit the service supervises, evicts, and resumes.  Its
whole state is (a) the current epoch's durable-scan snapshot and (b) a
small envelope of serve-level counters — which generation it is
scanning under, where the epoch started in the global stream, how many
matches and how much energy prior epochs contributed, and how many
match events per regex have already been emitted.  Persisting that
envelope through the :class:`~repro.engine.checkpoint.CheckpointStore`
is what makes a session crash-proof: another worker recompiles the
envelope's patterns (a compile-cache hit), restores the scan detached,
and continues bit-identically.

Two mechanics deserve a note:

* **Deferred segments.**  End-anchored patterns (``foo$``) need the
  final segment fed with ``at_end=True``, but a streaming server only
  learns a segment was final when the ``end`` frame arrives.  The
  session therefore holds each data segment *pending* and feeds it when
  the next frame shows whether more data follows.  Pending bytes are
  not durable — checkpoints and the resume offset exclude them, so a
  reconnecting client replays from exactly the last fed byte.
* **Epochs.**  A hot reload rotates the session onto a fresh scan at a
  segment boundary: the old epoch's activity is priced once with the
  old ruleset, its matches and energy roll into the prior totals, and
  the new epoch starts at the current global offset under the new
  generation.  A reload to an identical fingerprint never rotates.
"""

from __future__ import annotations

import time

from repro.engine.checkpoint import CheckpointStore, DurableScan
from repro.errors import CheckpointError
from repro.serve.registry import TenantEntry
from repro.simulators.rap import RAPSimulator

SESSION_FORMAT = "rap-serve-session"
SESSION_VERSION = 1


class ScanSession:
    """The server-side state of one tenant's streaming scan."""

    def __init__(
        self,
        tenant: str,
        session_id: str,
        entry: TenantEntry,
        store: CheckpointStore,
        hw,
        *,
        bin_size: int | None = None,
        weight: float = 1.0,
    ):
        self.tenant = tenant
        self.id = session_id
        self.entry = entry
        self.store = store
        self.hw = hw
        self.bin_size = bin_size
        self.weight = weight
        self.scan = DurableScan(
            entry.ruleset, entry.mapping, hw, bin_size=bin_size
        )
        self.epoch_start = 0  # global offset where the current epoch began
        self.prior_matches = 0  # matches rolled up from completed epochs
        self.prior_energy_uj = 0.0
        self._emitted: dict[int, int] = {}  # rid -> events emitted (epoch)
        self._pending: bytes | None = None
        self.ended = False
        self.last_active = time.monotonic()

    # -- identity ------------------------------------------------------------

    @property
    def generation(self) -> int:
        return self.entry.generation

    @property
    def offset(self) -> int:
        """Bytes durably consumed (pending segment excluded) — the
        global position a resuming client replays its input from."""
        return self.epoch_start + self.scan.offset

    @property
    def pending_bytes(self) -> int:
        return len(self._pending) if self._pending is not None else 0

    def touch(self) -> None:
        self.last_active = time.monotonic()

    def park(self) -> None:
        """Drop the held (non-durable) segment before detaching.

        The resume offset excludes pending bytes, so a reconnecting
        client replays them as fresh data frames; keeping them would
        feed them twice."""
        self._pending = None

    def idle_seconds(self) -> float:
        return time.monotonic() - self.last_active

    # -- streaming -----------------------------------------------------------

    def feed(self, segment: bytes) -> list[list[int]]:
        """Accept the next data segment; returns newly emitted events.

        The segment itself is held pending (see the module docstring);
        what actually reaches the scan — and produces the returned
        ``[global_end_offset, regex_id]`` events — is the *previous*
        pending segment, now known not to be final.
        """
        self.touch()
        events = []
        if self._pending is not None:
            events = self._feed_now(self._pending, at_end=False)
        self._pending = segment
        return events

    def end(self) -> list[list[int]]:
        """The stream is complete: feed the held segment as final."""
        self.touch()
        pending = self._pending if self._pending is not None else b""
        self._pending = None
        events = self._feed_now(pending, at_end=True)
        self.ended = True
        return events

    def _feed_now(self, segment: bytes, *, at_end: bool) -> list[list[int]]:
        self.scan.feed(segment, at_end=at_end)
        return self._drain_events()

    def _drain_events(self) -> list[list[int]]:
        """Match ends newly appended since the last drain, globalized."""
        events: list[list[int]] = []
        for rid, ends in sorted(self.scan.match_lists().items()):
            done = self._emitted.get(rid, 0)
            if len(ends) > done:
                events.extend(
                    [self.epoch_start + end, rid] for end in ends[done:]
                )
                self._emitted[rid] = len(ends)
        events.sort()
        return events

    # -- accounting ----------------------------------------------------------

    def _epoch_matches(self) -> int:
        return sum(len(ends) for ends in self.scan.match_lists().values())

    def _epoch_energy_uj(self) -> float:
        result = RAPSimulator(self.hw).run_from_activity(
            self.entry.ruleset, self.scan.finish(), self.entry.mapping
        )
        return result.energy_uj

    def total_matches(self) -> int:
        """Authoritative match total across every epoch (not derived
        from emitted events, so replayed emissions never double count)."""
        return self.prior_matches + self._epoch_matches()

    def total_energy_uj(self) -> float:
        """Energy priced so far: completed epochs plus the live one."""
        return self.prior_energy_uj + self._epoch_energy_uj()

    # -- hot reload ----------------------------------------------------------

    def maybe_swap(self, entry: TenantEntry) -> list[list[int]] | None:
        """Rotate onto ``entry`` at this segment boundary.

        Returns the events flushed from the old epoch's held segment
        (the swap point is *after* all bytes received so far), or
        ``None`` when ``entry`` is the fingerprint already being
        scanned — the no-op reload.
        """
        if entry.fingerprint == self.entry.fingerprint:
            return None
        events = []
        if self._pending is not None:
            events = self._feed_now(self._pending, at_end=False)
            self._pending = None
        # Close the books on the old epoch under its own ruleset.
        self.prior_matches += self._epoch_matches()
        self.prior_energy_uj += self._epoch_energy_uj()
        self.epoch_start = self.offset
        self.entry = entry
        self.scan = DurableScan(
            entry.ruleset, entry.mapping, self.hw, bin_size=self.bin_size
        )
        self._emitted = {}
        return events

    # -- durability ----------------------------------------------------------

    def envelope(self) -> dict:
        """The session's complete persistable state."""
        return {
            "serve_format": SESSION_FORMAT,
            "serve_version": SESSION_VERSION,
            "tenant": self.tenant,
            "session": self.id,
            "patterns": list(self.entry.patterns),
            "generation": self.entry.generation,
            "weight": self.weight,
            "epoch_start": self.epoch_start,
            "prior_matches": self.prior_matches,
            "prior_energy_uj": self.prior_energy_uj,
            "emitted": sorted(self._emitted.items()),
            "scan": self.scan.snapshot(),
        }

    def checkpoint(self) -> bool:
        """Persist the envelope; ``False`` when the write failed (the
        session keeps its previous restore point, scanning continues)."""
        try:
            self.store.write(self.envelope(), self.offset)
            return True
        except OSError:
            return False

    @classmethod
    def from_envelope(
        cls,
        envelope: dict,
        registry,
        store: CheckpointStore,
        *,
        weight: float | None = None,
    ) -> "ScanSession":
        """Rebuild a session from its persisted envelope.

        The envelope's own patterns are recompiled (a compile-cache hit
        on any worker that has seen them) so the scan restores against
        the exact fingerprint that wrote the checkpoint, even if the
        tenant namespace has since moved on — the session then rotates
        to the current generation at its next segment boundary.
        """
        try:
            if envelope.get("serve_format") != SESSION_FORMAT:
                raise CheckpointError(
                    "not a serve session envelope "
                    f"(serve_format={envelope.get('serve_format')!r})",
                    phase="serve",
                )
            if envelope.get("serve_version") != SESSION_VERSION:
                raise CheckpointError(
                    "unsupported serve session version "
                    f"{envelope.get('serve_version')!r}",
                    phase="serve",
                )
            tenant = envelope["tenant"]
            session_id = envelope["session"]
            patterns = tuple(envelope["patterns"])
            generation = int(envelope["generation"])
            epoch_start = int(envelope["epoch_start"])
            prior_matches = int(envelope["prior_matches"])
            prior_energy_uj = float(envelope["prior_energy_uj"])
            emitted = {
                int(rid): int(count) for rid, count in envelope["emitted"]
            }
            scan_doc = envelope["scan"]
        except (KeyError, TypeError, ValueError) as err:
            raise CheckpointError(
                f"malformed serve session envelope: {err}", phase="serve"
            ) from err
        ruleset, mapping, fingerprint = registry.compile(patterns)
        entry = TenantEntry(
            tenant=tenant,
            generation=generation,
            patterns=patterns,
            ruleset=ruleset,
            mapping=mapping,
            fingerprint=fingerprint,
        )
        session = cls(
            tenant,
            session_id,
            entry,
            store,
            registry.hw,
            bin_size=registry.bin_size,
            weight=(
                weight
                if weight is not None
                else float(envelope.get("weight", 1.0))
            ),
        )
        session.scan.restore_detached(scan_doc)
        session.epoch_start = epoch_start
        session.prior_matches = prior_matches
        session.prior_energy_uj = prior_energy_uj
        session._emitted = emitted
        return session


__all__ = ["SESSION_FORMAT", "SESSION_VERSION", "ScanSession"]
