"""Fleet supervisor: one endpoint, N babysat scan workers.

:class:`FleetSupervisor` spawns a pool of ``rap serve`` worker
processes, advertises a single host:port, and proxies each client
connection to a worker — the wire protocol is unchanged, so every
existing client (and every chaos fault it interprets) works against a
fleet without modification.  On top of the proxy it layers the
mechanisms that make the *worker* a survivable failure domain:

* **Health gating** — every ``health_interval`` the supervisor opens a
  fresh connection to each worker and round-trips the pre-``open``
  ``ping`` op under ``ping_timeout``.  ``fail_threshold`` consecutive
  misses (or an observed exit) trips the gate: the worker is *fenced*
  (SIGKILL + wait — after the fence it can never write another
  checkpoint) and restarted with capped exponential backoff.
* **Sticky routing with fence-before-failover** — a session's first
  ``welcome`` homes it on its worker; later reconnects follow the home
  while it is healthy.  The shared checkpoint store makes a session
  relocatable, but only ever to *one* writer at a time: while a home is
  merely suspect the supervisor refuses the reconnect (retry_after)
  rather than fork the checkpoint lineage, and re-homes only after the
  fence guarantees the old worker is dead.
* **Live migration** — a planned drain (``SIGHUP`` rebalance, or the
  ``release`` control op) asks the source worker to checkpoint and
  park every session at its current segment boundary and tell each
  client to come back (``error`` code ``migrate``).  The supervisor
  clears those homes and holds the source out of routing for
  ``migrate_hold_seconds``, so the reconnects land on *other* live
  workers and resume byte-identically from the shared store.
* **Per-tenant circuit breakers** — a
  :class:`~repro.engine.budget.CircuitBreaker` per tenant counts
  conversation outcomes (sniffed from the proxied frames).  A tenant
  whose ruleset fails every attempt — compile errors, worker-killing
  pathologies — trips open and is refused at the supervisor with a
  structured ``retry_after`` (``error`` code ``breaker``) instead of
  consuming the fleet's restart budget.  Innocent tenants on a crashed
  worker stay closed: their resume ``welcome`` resets the consecutive
  count.
* **Deterministic fleet chaos** — ``killworker@N``/``wedge@N`` fault
  directives fire at health-round ordinals; victims rotate round-robin
  in firing order.  ``wedge`` is SIGSTOP: the process stays alive but
  stops answering, exactly the failure the ping deadline exists to
  catch (and SIGKILL fences stopped processes just fine).

Exit codes match ``rap serve``: 0 after a clean SIGTERM/SIGINT
shutdown (workers drain and exit 0), 2 for invalid configuration,
5 when a worker reported lost durability during the final drain.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import os
import signal
import sys
from dataclasses import dataclass
from pathlib import Path

from repro.engine.budget import CircuitBreaker
from repro.engine.faults import FaultPlan, plan_from_env
from repro.errors import ProtocolError, ServeConfigError
from repro.serve import protocol
from repro.serve.protocol import read_frame, send_frame
from repro.serve.server import EXIT_FAILURES, EXIT_OK, session_key

log = logging.getLogger(__name__)


@dataclass
class FleetConfig:
    """Validated configuration of one :class:`FleetSupervisor`."""

    workers: int = 2
    host: str = "127.0.0.1"
    port: int = 0  # 0: bind an ephemeral port (tests, loopback tooling)
    checkpoint_dir: str = ".rap-serve"
    # Worker pass-through knobs (each worker binds its own ephemeral
    # port; the checkpoint root is shared — that is what makes sessions
    # relocatable).
    max_sessions: int = 64
    idle_timeout: float = 300.0
    drain_seconds: float = 5.0
    checkpoint_interval_bytes: int = 1 << 20
    # Supervision knobs.
    health_interval: float = 1.0
    ping_timeout: float = 2.0
    fail_threshold: int = 3
    restart_backoff: float = 0.25
    restart_backoff_cap: float = 5.0
    breaker_threshold: int = 5
    breaker_cooldown: float = 1.0
    breaker_cooldown_cap: float = 30.0
    handshake_timeout: float = 10.0
    migrate_hold_seconds: float = 2.0
    spawn_timeout: float = 30.0
    log_dir: str | None = None  # per-worker stdout/stderr capture

    def validate(self) -> "FleetConfig":
        """Raise :class:`ServeConfigError` on any out-of-range field."""
        if self.workers < 1:
            raise ServeConfigError(
                f"--workers must be >= 1, got {self.workers}", phase="serve"
            )
        if not (0 <= self.port <= 65535):
            raise ServeConfigError(
                f"port must be 0..65535, got {self.port}", phase="serve"
            )
        if not self.checkpoint_dir:
            raise ServeConfigError(
                "checkpoint_dir must be a non-empty path", phase="serve"
            )
        for name, value in (
            ("--health-interval", self.health_interval),
            ("--ping-timeout", self.ping_timeout),
            ("--restart-backoff", self.restart_backoff),
            ("--breaker-cooldown", self.breaker_cooldown),
            ("--spawn-timeout", self.spawn_timeout),
        ):
            if value <= 0:
                raise ServeConfigError(
                    f"{name} must be positive, got {value}", phase="serve"
                )
        if self.fail_threshold < 1:
            raise ServeConfigError(
                f"--fail-threshold must be >= 1, got {self.fail_threshold}",
                phase="serve",
            )
        if self.breaker_threshold < 1:
            raise ServeConfigError(
                "--breaker-threshold must be >= 1, got "
                f"{self.breaker_threshold}",
                phase="serve",
            )
        if self.restart_backoff_cap < self.restart_backoff:
            raise ServeConfigError(
                "restart_backoff_cap must be >= restart_backoff",
                phase="serve",
            )
        if self.breaker_cooldown_cap < self.breaker_cooldown:
            raise ServeConfigError(
                "breaker_cooldown_cap must be >= breaker_cooldown",
                phase="serve",
            )
        if self.migrate_hold_seconds < 0:
            raise ServeConfigError(
                "--migrate-hold must be >= 0, got "
                f"{self.migrate_hold_seconds}",
                phase="serve",
            )
        return self


class WorkerHandle:
    """One supervised ``rap serve`` subprocess."""

    HEALTHY = "healthy"
    SUSPECT = "suspect"
    FENCING = "fencing"
    DOWN = "down"

    def __init__(self, index: int, config: FleetConfig):
        self.index = index
        self.config = config
        self.proc: asyncio.subprocess.Process | None = None
        self.port: int | None = None
        self.state = self.DOWN
        self.consecutive_failures = 0
        self.conns = 0  # live proxied connections (routing weight)
        self.restarts = 0
        self.restart_delay = config.restart_backoff
        self.hold_until = 0.0  # loop time before which routing skips us
        self._log_task: asyncio.Task | None = None

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.returncode is None

    def command(self) -> list[str]:
        cfg = self.config
        return [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            cfg.host,
            "--port",
            "0",
            "--checkpoint-dir",
            cfg.checkpoint_dir,
            "--max-sessions",
            str(cfg.max_sessions),
            "--idle-timeout",
            str(cfg.idle_timeout),
            "--drain-seconds",
            str(cfg.drain_seconds),
            "--checkpoint-every",
            str(cfg.checkpoint_interval_bytes),
        ]

    async def spawn(self) -> None:
        """Start the worker and wait for its readiness line."""
        env = dict(os.environ)
        # The supervisor may run from a source tree: make sure the
        # worker resolves the same package.
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        self.proc = await asyncio.create_subprocess_exec(
            *self.command(),
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.STDOUT,
            env=env,
        )
        try:
            await asyncio.wait_for(
                self._await_ready(), self.config.spawn_timeout
            )
        except (asyncio.TimeoutError, ValueError) as err:
            with contextlib.suppress(ProcessLookupError):
                self.proc.kill()
            raise RuntimeError(
                f"worker[{self.index}] did not become ready: {err}"
            ) from err
        self.state = self.HEALTHY
        self.consecutive_failures = 0
        self._log_task = asyncio.create_task(self._pump_log())

    async def _await_ready(self) -> None:
        while True:
            line = await self.proc.stdout.readline()
            if not line:
                raise ValueError(
                    f"worker exited (code {self.proc.returncode}) "
                    "before its readiness line"
                )
            text = line.decode(errors="replace").strip()
            self._log_line(text)
            if "listening on" in text:
                self.port = int(text.rsplit(":", 1)[1])
                return

    def _log_line(self, text: str) -> None:
        if self.config.log_dir:
            path = Path(self.config.log_dir) / f"worker-{self.index}.log"
            with contextlib.suppress(OSError):
                path.parent.mkdir(parents=True, exist_ok=True)
                with path.open("a") as handle:
                    handle.write(text + "\n")
        else:
            log.debug("worker[%d]: %s", self.index, text)

    async def _pump_log(self) -> None:
        """Drain worker output so a chatty worker never blocks on the pipe."""
        try:
            while True:
                line = await self.proc.stdout.readline()
                if not line:
                    return
                self._log_line(line.decode(errors="replace").rstrip())
        except (asyncio.CancelledError, Exception):
            return

    async def fence(self) -> None:
        """SIGKILL and *wait*: after this returns the worker can never
        write another checkpoint, so re-homing its sessions cannot fork
        a lineage.  SIGKILL also reaps a SIGSTOP-wedged process."""
        self.state = self.FENCING
        if self.proc is not None:
            if self.proc.returncode is None:
                with contextlib.suppress(ProcessLookupError):
                    self.proc.kill()
            with contextlib.suppress(Exception):
                await self.proc.wait()
        if self._log_task is not None:
            self._log_task.cancel()
            self._log_task = None
        self.state = self.DOWN
        self.port = None

    async def terminate(self, grace: float) -> int | None:
        """SIGTERM-drain the worker; SIGKILL past the grace deadline."""
        if self.proc is None:
            return None
        if self.proc.returncode is None:
            # A wedged (stopped) worker cannot handle SIGTERM: resume
            # it first.  SIGCONT is harmless on a running process.
            with contextlib.suppress(ProcessLookupError):
                self.proc.send_signal(signal.SIGCONT)
            with contextlib.suppress(ProcessLookupError):
                self.proc.terminate()
            try:
                await asyncio.wait_for(self.proc.wait(), grace)
            except asyncio.TimeoutError:
                with contextlib.suppress(ProcessLookupError):
                    self.proc.kill()
                with contextlib.suppress(Exception):
                    await self.proc.wait()
        if self._log_task is not None:
            self._log_task.cancel()
            self._log_task = None
        self.state = self.DOWN
        return self.proc.returncode


@dataclass
class FleetStats:
    """Counters the tests and the CLI summary read."""

    proxied: int = 0
    rejected_breaker: int = 0
    rejected_unavailable: int = 0
    fences: int = 0
    restarts: int = 0
    releases: int = 0
    rehomed: int = 0
    fleet_faults: int = 0


@dataclass
class _Conversation:
    """Outcome flags of one proxied session conversation."""

    welcomed: bool = False
    terminal: bool = False  # result/bye/error frame reached the client
    client_closed: bool = False  # the client hung up first


class FleetSupervisor:
    """One advertised endpoint in front of a supervised worker pool."""

    def __init__(self, config: FleetConfig, plan: FaultPlan | None = None):
        self.config = config.validate()
        self.plan = plan if plan is not None else plan_from_env()
        self.workers = [
            WorkerHandle(i, self.config) for i in range(self.config.workers)
        ]
        self.stats = FleetStats()
        self.port: int | None = None
        self._homes: dict[str, int] = {}  # session key -> worker index
        self._breakers: dict[str, CircuitBreaker] = {}
        self._server: asyncio.base_events.Server | None = None
        self._health_task: asyncio.Task | None = None
        self._restart_tasks: set[asyncio.Task] = set()
        self._stopping = False
        self._stopped = asyncio.Event()
        self._tick = 0  # health rounds elapsed (fleet-fault ordinals)
        self._fleet_faults_fired = 0  # round-robin victim cursor

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        for worker in self.workers:
            await worker.spawn()
        self._server = await asyncio.start_server(
            self._handle,
            self.config.host,
            self.config.port,
            limit=protocol.MAX_FRAME_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._health_task = asyncio.create_task(self._health_loop())
        log.info(
            "fleet of %d workers on %s:%d",
            len(self.workers),
            self.config.host,
            self.port,
        )

    async def stop(self) -> int:
        """Drain the fleet: SIGTERM every worker, wait, report."""
        if self._stopping:
            await self._stopped.wait()
            return EXIT_OK
        self._stopping = True
        if self._health_task is not None:
            self._health_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._health_task
            self._health_task = None
        for task in list(self._restart_tasks):
            task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        grace = self.config.drain_seconds + 2.0
        codes = await asyncio.gather(
            *(worker.terminate(grace) for worker in self.workers)
        )
        self._stopped.set()
        # A worker that drained dirty (exit 5: lost durability) fails
        # the fleet; signal deaths here are ours (the grace SIGKILL).
        if any(code is not None and code > 0 for code in codes):
            return EXIT_FAILURES
        return EXIT_OK

    async def serve_forever(self, on_ready=None) -> int:
        """Run until SIGTERM/SIGINT; SIGHUP triggers a rebalance."""
        await self.start()
        if on_ready is not None:
            on_ready(self.port)
        loop = asyncio.get_running_loop()
        exit_code = EXIT_OK

        def shutdown() -> None:
            async def _shutdown() -> None:
                nonlocal exit_code
                exit_code = await self.stop()

            asyncio.ensure_future(_shutdown())

        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(sig, shutdown)
        hup = getattr(signal, "SIGHUP", None)
        if hup is not None:
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(
                    hup, lambda: asyncio.ensure_future(self.rebalance())
                )
        await self._stopped.wait()
        return exit_code

    # -- supervision ---------------------------------------------------------

    async def _health_loop(self) -> None:
        cfg = self.config
        while True:
            await asyncio.sleep(cfg.health_interval)
            self._tick += 1
            directive = self.plan.for_fleet_tick(self._tick)
            if directive is not None:
                self._fire_fleet_fault(directive)
            for worker in self.workers:
                if worker.state in (WorkerHandle.DOWN, WorkerHandle.FENCING):
                    continue  # a restart task owns it
                if not worker.alive:
                    log.warning(
                        "worker[%d] exited with code %s",
                        worker.index,
                        worker.proc.returncode if worker.proc else None,
                    )
                    await self._fail_worker(worker)
                    continue
                if await self._probe(worker):
                    worker.consecutive_failures = 0
                    worker.state = WorkerHandle.HEALTHY
                    worker.restart_delay = cfg.restart_backoff
                else:
                    worker.consecutive_failures += 1
                    worker.state = WorkerHandle.SUSPECT
                    log.warning(
                        "worker[%d] missed probe %d/%d",
                        worker.index,
                        worker.consecutive_failures,
                        cfg.fail_threshold,
                    )
                    if worker.consecutive_failures >= cfg.fail_threshold:
                        await self._fail_worker(worker)

    def _fire_fleet_fault(self, directive) -> None:
        """Apply one ``killworker``/``wedge`` directive to the next
        round-robin victim (deterministic: victims rotate in firing
        order, independent of worker health)."""
        victim = self.workers[self._fleet_faults_fired % len(self.workers)]
        self._fleet_faults_fired += 1
        self.stats.fleet_faults += 1
        log.warning(
            "fleet fault %s -> worker[%d]", directive.spec(), victim.index
        )
        if not victim.alive:
            return
        if directive.kind == "killworker":
            with contextlib.suppress(ProcessLookupError):
                victim.proc.kill()
        elif directive.kind == "wedge":
            with contextlib.suppress(ProcessLookupError):
                victim.proc.send_signal(signal.SIGSTOP)

    async def _probe(self, worker: WorkerHandle) -> bool:
        """One ping round-trip on a fresh connection, under deadline.

        A fresh connection is deliberate: a wedged worker's kernel
        still *accepts* connections on its listen backlog, so only the
        application-level pong under ``ping_timeout`` proves liveness.
        """
        cfg = self.config
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(cfg.host, worker.port),
                cfg.ping_timeout,
            )
        except (OSError, asyncio.TimeoutError):
            return False
        try:
            send_frame(writer, {"op": "ping"})
            await writer.drain()
            frame = await read_frame(reader, cfg.ping_timeout)
            return frame is not None and frame.get("op") == "pong"
        except (OSError, ProtocolError, asyncio.TimeoutError):
            return False
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _fail_worker(self, worker: WorkerHandle) -> None:
        """Health gate tripped: fence, re-home, schedule the restart."""
        self.stats.fences += 1
        await worker.fence()
        # Only after the fence is it safe to re-home: the old worker is
        # provably dead, so the checkpoint store has exactly one future
        # writer per session.
        self._clear_homes(worker.index)
        task = asyncio.create_task(self._restart(worker))
        self._restart_tasks.add(task)
        task.add_done_callback(self._restart_tasks.discard)

    def _clear_homes(self, index: int) -> None:
        for key in [k for k, v in self._homes.items() if v == index]:
            del self._homes[key]
            self.stats.rehomed += 1

    async def _restart(self, worker: WorkerHandle) -> None:
        """Respawn a fenced worker with capped exponential backoff."""
        while not self._stopping:
            delay = worker.restart_delay
            worker.restart_delay = min(
                self.config.restart_backoff_cap, delay * 2
            )
            await asyncio.sleep(delay)
            try:
                await worker.spawn()
            except (RuntimeError, OSError) as err:
                log.warning(
                    "worker[%d] restart failed (%s); next in %.2fs",
                    worker.index,
                    err,
                    worker.restart_delay,
                )
                continue
            worker.restarts += 1
            self.stats.restarts += 1
            log.info(
                "worker[%d] restarted on port %d", worker.index, worker.port
            )
            return

    # -- migration -----------------------------------------------------------

    async def rebalance(self) -> int:
        """Release the most-homed healthy worker's sessions (SIGHUP)."""
        candidates = [
            w
            for w in self.workers
            if w.alive and w.state == WorkerHandle.HEALTHY
        ]
        if len(candidates) < 2:
            return 0  # nowhere for the sessions to migrate to
        loaded = max(
            candidates,
            key=lambda w: (
                sum(1 for v in self._homes.values() if v == w.index),
                -w.index,
            ),
        )
        return await self.release_worker(loaded.index)

    async def release_worker(self, index: int) -> int:
        """Live migration, source half: drain one worker's sessions.

        Sends the pre-``open`` ``release`` control op; the worker
        checkpoints and parks every session, notifies its clients, and
        forgets them.  The supervisor then clears their homes and holds
        the source out of routing for ``migrate_hold_seconds``, so the
        reconnect-resumes land on other live workers.  Returns the
        number of sessions released.
        """
        worker = self.workers[index]
        if not (worker.alive and worker.state == WorkerHandle.HEALTHY):
            return 0
        cfg = self.config
        count = 0
        try:
            reader, writer = await asyncio.open_connection(
                cfg.host, worker.port
            )
        except OSError:
            return 0
        try:
            send_frame(writer, {"op": "release"})
            await writer.drain()
            frame = await read_frame(
                reader, cfg.ping_timeout + cfg.drain_seconds
            )
            if frame is not None and frame.get("op") == "released":
                count = int(frame.get("count", 0))
        except (OSError, ProtocolError, asyncio.TimeoutError):
            return 0
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()
        worker.hold_until = (
            asyncio.get_running_loop().time() + cfg.migrate_hold_seconds
        )
        self._clear_homes(index)
        self.stats.releases += 1
        log.info("released %d sessions from worker[%d]", count, index)
        return count

    # -- routing and proxying ------------------------------------------------

    def _breaker_for(self, tenant: str) -> CircuitBreaker:
        breaker = self._breakers.get(tenant)
        if breaker is None:
            breaker = CircuitBreaker(
                failure_threshold=self.config.breaker_threshold,
                cooldown_seconds=self.config.breaker_cooldown,
                cooldown_cap=self.config.breaker_cooldown_cap,
            )
            self._breakers[tenant] = breaker
        return breaker

    def _route(self, key: str) -> WorkerHandle | None:
        """The worker this open goes to, or ``None`` to refuse for now."""
        home = self._homes.get(key)
        if home is not None:
            worker = self.workers[home]
            if worker.alive and worker.state == WorkerHandle.HEALTHY:
                return worker
            # Fence before failover: a suspect home may still be
            # writing checkpoints, so re-homing now could fork the
            # session's lineage.  Refuse; the gate will either clear
            # the worker or fence it (which clears the home).
            return None
        now = asyncio.get_running_loop().time()
        healthy = [
            w
            for w in self.workers
            if w.alive and w.state == WorkerHandle.HEALTHY
        ]
        candidates = [w for w in healthy if w.hold_until <= now] or healthy
        if not candidates:
            return None
        return min(candidates, key=lambda w: (w.conns, w.index))

    def health_report(self) -> dict:
        return {
            "op": "health_report",
            "fleet": True,
            "workers": [
                {
                    "index": w.index,
                    "state": w.state,
                    "port": w.port,
                    "conns": w.conns,
                    "restarts": w.restarts,
                }
                for w in self.workers
            ],
            "homes": len(self._homes),
            "open_breakers": sorted(
                tenant
                for tenant, breaker in self._breakers.items()
                if breaker.state != CircuitBreaker.CLOSED
            ),
        }

    async def _error(
        self, writer: asyncio.StreamWriter, code: str, message: str, **extra
    ) -> None:
        with contextlib.suppress(Exception):
            send_frame(
                writer,
                {"op": "error", "code": code, "message": message, **extra},
            )
            await writer.drain()

    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            await self._proxy(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception:
            log.exception("fleet connection handler failed")
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _proxy(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        while True:
            try:
                frame = await read_frame(reader, self.config.handshake_timeout)
            except ProtocolError as err:
                await self._error(writer, protocol.ERR_PROTOCOL, str(err))
                return
            except asyncio.TimeoutError:
                return
            if frame is None:
                return
            op = frame.get("op")
            if op == "ping":
                send_frame(writer, {"op": "pong"})
                await writer.drain()
            elif op == "health":
                send_frame(writer, self.health_report())
                await writer.drain()
            elif op == "release":
                # Operator-facing rebalance without signals.
                count = await self.rebalance()
                send_frame(writer, {"op": "released", "count": count})
                await writer.drain()
            elif op == "open":
                break
            else:
                await self._error(
                    writer,
                    protocol.ERR_PROTOCOL,
                    f"expected open, got {op!r}",
                )
                return
        tenant = frame.get("tenant")
        session_id = frame.get("session")
        if (
            not isinstance(tenant, str)
            or not tenant
            or not isinstance(session_id, str)
            or not session_id
        ):
            await self._error(
                writer,
                protocol.ERR_PROTOCOL,
                "open frame needs a tenant and a session",
            )
            return
        key = session_key(tenant, session_id)
        breaker = self._breaker_for(tenant)
        admitted, retry_after = breaker.admit()
        if not admitted:
            self.stats.rejected_breaker += 1
            await self._error(
                writer,
                protocol.ERR_BREAKER,
                f"tenant {tenant!r} circuit is open",
                retry_after=round(max(retry_after, 0.05), 3),
            )
            return
        probing = breaker.state == CircuitBreaker.HALF_OPEN
        worker = self._route(key)
        if worker is None:
            self.stats.rejected_unavailable += 1
            if probing:
                breaker.abandon_probe()
            await self._error(
                writer,
                protocol.ERR_ADMISSION,
                "no healthy worker available",
                retry_after=self.config.health_interval,
            )
            return
        try:
            wreader, wwriter = await asyncio.open_connection(
                self.config.host,
                worker.port,
                limit=protocol.MAX_FRAME_BYTES,
            )
        except OSError:
            self.stats.rejected_unavailable += 1
            if probing:
                breaker.abandon_probe()
            await self._error(
                writer,
                protocol.ERR_ADMISSION,
                "worker connection refused",
                retry_after=self.config.health_interval,
            )
            return
        worker.conns += 1
        self.stats.proxied += 1
        conv = _Conversation()
        try:
            send_frame(wwriter, frame)
            await wwriter.drain()
            await asyncio.gather(
                self._pump_up(reader, wwriter, conv),
                self._pump_down(wreader, writer, key, worker, breaker, conv),
                return_exceptions=True,
            )
        finally:
            worker.conns -= 1
            wwriter.close()
            with contextlib.suppress(Exception):
                await wwriter.wait_closed()
        if not conv.terminal and not conv.client_closed:
            # The worker-side connection ended abruptly mid-conversation
            # (no result/bye/error made it out): the classic symptom of
            # a killed worker — or of a ruleset that kills workers.
            breaker.record_failure()
        elif probing and breaker.state == CircuitBreaker.HALF_OPEN:
            breaker.abandon_probe()

    async def _pump_up(
        self,
        reader: asyncio.StreamReader,
        wwriter: asyncio.StreamWriter,
        conv: _Conversation,
    ) -> None:
        """Client -> worker: a raw byte relay (no sniffing needed)."""
        try:
            while True:
                chunk = await reader.read(1 << 16)
                if not chunk:
                    break
                wwriter.write(chunk)
                await wwriter.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            conv.client_closed = True
            # Closing the worker leg unblocks the downstream pump.
            wwriter.close()

    async def _pump_down(
        self,
        wreader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        key: str,
        worker: WorkerHandle,
        breaker: CircuitBreaker,
        conv: _Conversation,
    ) -> None:
        """Worker -> client: relay frames, sniffing outcomes as they pass."""
        try:
            while True:
                line = await wreader.readline()
                if not line:
                    break
                writer.write(line)
                await writer.drain()
                self._sniff(line, key, worker, breaker, conv)
        except (ConnectionError, OSError, ValueError):
            pass
        finally:
            # Worker leg over: hang up on the client so its resume
            # logic takes over (it reconnects through us and re-routes).
            writer.close()

    def _sniff(
        self,
        line: bytes,
        key: str,
        worker: WorkerHandle,
        breaker: CircuitBreaker,
        conv: _Conversation,
    ) -> None:
        """Breaker attribution and home maintenance from one frame."""
        try:
            frame = json.loads(line)
        except ValueError:
            return
        if not isinstance(frame, dict):
            return
        op = frame.get("op")
        if op == "welcome":
            conv.welcomed = True
            breaker.record_success()
            self._homes[key] = worker.index
        elif op == "result":
            conv.terminal = True
            breaker.record_success()
            self._homes.pop(key, None)
        elif op == "bye":
            # detach/idle/drain: the session stays sticky — the worker
            # may still hold it in memory, and only one worker may ever
            # own a lineage at a time.
            conv.terminal = True
        elif op == "error":
            conv.terminal = True
            code = frame.get("code")
            if code in (
                protocol.ERR_COMPILE,
                protocol.ERR_INTERNAL,
                protocol.ERR_CHECKPOINT,
            ):
                # The tenant's own pathology: count it.
                breaker.record_failure()
            elif code in (protocol.ERR_SHED, protocol.ERR_MIGRATE):
                # The worker checkpointed and *forgot* the session, so
                # its next resume is free to land anywhere.
                if self._homes.get(key) == worker.index:
                    self._homes.pop(key, None)


__all__ = [
    "FleetConfig",
    "FleetStats",
    "FleetSupervisor",
    "WorkerHandle",
]
