"""The asyncio scan server: supervised sessions over the wire protocol.

Each accepted connection speaks :mod:`repro.serve.protocol` and binds to
one :class:`~repro.serve.session.ScanSession`.  The server supervises
the fleet:

* **Admission control** — an :class:`~repro.engine.budget.AdmissionPolicy`
  gates every new session on the session/RSS/FD caps; refusals carry a
  ``retry_after`` hint instead of silently queueing work the worker
  cannot hold.
* **Load shedding** — when an admitted fleet grows past the RSS/FD caps
  anyway, the lowest-weight session is checkpointed and its connection
  told to come back later; shedding costs a reconnect, never
  correctness.
* **Watchdogs** — per-frame read deadlines, an idle timeout that
  checkpoints and evicts parked or silent sessions, and bounded write
  backpressure (every frame is drained to the transport).
* **Durability** — sessions checkpoint every ``checkpoint_interval_bytes``
  fed bytes and at every park/detach/drain, so a connection torn down by
  any of the chaos fault kinds — or the whole worker dying — resumes
  bit-identically from the ``welcome`` offset.
* **Graceful drain** — ``SIGTERM`` checkpoints every live session,
  notifies attached clients, stops accepting, and exits 0.
* **Live migration** — ``SIGHUP`` (or the pre-``open`` ``release``
  control op a fleet supervisor sends) checkpoints and parks every
  attached session at its current segment boundary and tells each
  client to reconnect (``error`` code ``migrate`` with the durable
  ``offset``); the worker forgets the sessions, so whichever worker
  the client lands on next resumes them byte-identically from the
  shared checkpoint store.  Pre-``open`` ``ping``/``health`` ops let
  the supervisor probe a worker without spending an admission slot.

Exit codes: ``EXIT_OK`` (0) clean shutdown or drain, ``EXIT_CONFIG``
(2) invalid configuration (:class:`~repro.errors.ServeConfigError`),
``EXIT_FAILURES`` (5) the server ran but lost durability somewhere
(a checkpoint could not be written during shutdown).
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import contextlib
import logging
import signal
from dataclasses import dataclass, field

from repro.core import resolve_backend_with_reason
from repro.engine.budget import AdmissionPolicy
from repro.engine.checkpoint import CheckpointStore
from repro.errors import (
    AdmissionError,
    CheckpointError,
    CompileError,
    ProtocolError,
    ReproError,
    ServeConfigError,
)
from repro.serve import protocol
from repro.serve.protocol import read_frame, send_frame
from repro.serve.registry import TenantRegistry
from repro.serve.session import ScanSession

log = logging.getLogger(__name__)

EXIT_OK = 0
EXIT_CONFIG = 2
EXIT_FAILURES = 5

# Backoff hints attached to reject/shed frames, in seconds.
RETRY_AFTER_ADMISSION = 1.0
RETRY_AFTER_SHED = 0.5
RETRY_AFTER_MIGRATE = 0.5


@dataclass
class ServeConfig:
    """Validated configuration of one :class:`ScanServer` worker."""

    host: str = "127.0.0.1"
    port: int = 0  # 0: bind an ephemeral port (tests, loopback tooling)
    checkpoint_dir: str = ".rap-serve"
    max_sessions: int = 64
    max_rss_mb: float | None = None
    max_open_fds: int | None = None
    idle_timeout: float = 300.0
    read_timeout: float = 10.0  # per-frame read deadline (watchdog tick)
    drain_seconds: float = 5.0
    checkpoint_interval_bytes: int = 1 << 20
    watchdog_interval: float = 0.5

    def validate(self) -> "ServeConfig":
        """Raise :class:`ServeConfigError` on any out-of-range field."""
        if not (0 <= self.port <= 65535):
            raise ServeConfigError(
                f"port must be 0..65535, got {self.port}", phase="serve"
            )
        if not self.checkpoint_dir:
            raise ServeConfigError(
                "checkpoint_dir must be a non-empty path", phase="serve"
            )
        if self.max_sessions < 1:
            raise ServeConfigError(
                f"--max-sessions must be >= 1, got {self.max_sessions}",
                phase="serve",
            )
        if self.max_rss_mb is not None and self.max_rss_mb <= 0:
            raise ServeConfigError(
                f"--max-rss-mb must be positive, got {self.max_rss_mb}",
                phase="serve",
            )
        if self.max_open_fds is not None and self.max_open_fds < 1:
            raise ServeConfigError(
                f"--max-open-fds must be >= 1, got {self.max_open_fds}",
                phase="serve",
            )
        if self.idle_timeout <= 0:
            raise ServeConfigError(
                f"--idle-timeout must be positive, got {self.idle_timeout}",
                phase="serve",
            )
        if self.read_timeout <= 0:
            raise ServeConfigError(
                f"read_timeout must be positive, got {self.read_timeout}",
                phase="serve",
            )
        if self.drain_seconds < 0:
            raise ServeConfigError(
                f"--drain-seconds must be >= 0, got {self.drain_seconds}",
                phase="serve",
            )
        if self.checkpoint_interval_bytes < 1:
            raise ServeConfigError(
                "checkpoint_interval_bytes must be >= 1, got "
                f"{self.checkpoint_interval_bytes}",
                phase="serve",
            )
        return self

    def policy(self) -> AdmissionPolicy:
        return AdmissionPolicy(
            max_sessions=self.max_sessions,
            max_rss_mb=self.max_rss_mb,
            max_open_fds=self.max_open_fds,
        )


def session_key(tenant: str, session_id: str) -> str:
    return f"{tenant}/{session_id}"


@dataclass
class _Attachment:
    """One live connection bound to a session."""

    writer: asyncio.StreamWriter
    bytes_since_checkpoint: int = 0
    closed_by_server: str | None = None  # shed/drain reason, if any


@dataclass
class ServerStats:
    """Counters the tests and the CLI summary read."""

    accepted: int = 0
    admitted: int = 0
    rejected: int = 0
    shed: int = 0
    released: int = 0
    evicted_idle: int = 0
    resumed: int = 0
    completed: int = 0
    protocol_errors: int = 0
    checkpoint_failures: int = 0
    reloads: int = 0
    swaps: int = field(default=0)


class ScanServer:
    """One serving worker: accept loop, session fleet, watchdog."""

    def __init__(
        self,
        config: ServeConfig,
        registry: TenantRegistry | None = None,
    ):
        self.config = config.validate()
        self.registry = registry or TenantRegistry()
        self.policy = config.policy()
        self.stats = ServerStats()
        self._sessions: dict[str, ScanSession] = {}
        self._attached: dict[str, _Attachment] = {}
        self._opening = 0  # builds in flight: they hold admission slots
        self._server: asyncio.base_events.Server | None = None
        self._watchdog_task: asyncio.Task | None = None
        self._draining = False
        self._stopped = asyncio.Event()
        self.port: int | None = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting (`self.port` is the bound port)."""
        self._server = await asyncio.start_server(
            self._handle,
            self.config.host,
            self.config.port,
            limit=protocol.MAX_FRAME_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._watchdog_task = asyncio.create_task(self._watchdog())
        log.info("serving on %s:%d", self.config.host, self.port)

    async def stop(self) -> None:
        """Tear down without draining (tests; drain() calls this too)."""
        if self._watchdog_task is not None:
            self._watchdog_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._watchdog_task
            self._watchdog_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for attachment in list(self._attached.values()):
            attachment.writer.close()
        self._attached.clear()
        self._stopped.set()

    async def drain(self) -> None:
        """Checkpoint everything, notify clients, stop accepting."""
        if self._draining:
            return
        self._draining = True
        log.info("draining: %d live sessions", len(self._sessions))
        if self._server is not None:
            self._server.close()
        deadline = (
            asyncio.get_running_loop().time() + self.config.drain_seconds
        )
        for key, session in list(self._sessions.items()):
            if not session.checkpoint():
                self.stats.checkpoint_failures += 1
            attachment = self._attached.get(key)
            if attachment is not None:
                attachment.closed_by_server = "drain"
                with contextlib.suppress(Exception):
                    send_frame(
                        attachment.writer,
                        {
                            "op": "bye",
                            "reason": "drain",
                            "offset": session.offset,
                        },
                    )
                    await asyncio.wait_for(
                        attachment.writer.drain(),
                        max(0.0, deadline - asyncio.get_running_loop().time()),
                    )
                attachment.writer.close()
        self._sessions.clear()
        await self.stop()

    async def serve_forever(self, on_ready=None) -> int:
        """Run until SIGTERM/SIGINT drains us; returns the exit code.

        ``on_ready(port)`` fires once the socket is bound — the CLI uses
        it to print the readiness line supervisors wait for."""
        await self.start()
        if on_ready is not None:
            on_ready(self.port)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(
                    sig, lambda: asyncio.ensure_future(self.drain())
                )
        # SIGHUP = rebalance: hand every session back for re-homing but
        # keep serving (the fleet supervisor's rolling-restart signal).
        hup = getattr(signal, "SIGHUP", None)
        if hup is not None:
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(
                    hup,
                    lambda: asyncio.ensure_future(self.release_sessions()),
                )
        await self._stopped.wait()
        return (
            EXIT_FAILURES if self.stats.checkpoint_failures else EXIT_OK
        )

    # -- supervision ---------------------------------------------------------

    async def _watchdog(self) -> None:
        while True:
            await asyncio.sleep(self.config.watchdog_interval)
            await self._sweep()

    async def _sweep(self) -> None:
        """One watchdog pass: evict idle sessions, shed under pressure.

        Callable on its own so interleaving tests can run a sweep at a
        chosen instant (e.g. mid-drain) instead of racing the timer.
        """
        now_idle = [
            (key, session)
            for key, session in list(self._sessions.items())
            if key not in self._attached
            and session.idle_seconds() >= self.config.idle_timeout
        ]
        for key, session in now_idle:
            if not session.checkpoint():
                self.stats.checkpoint_failures += 1
                continue  # keep it in memory: the state would be lost
            del self._sessions[key]
            self.stats.evicted_idle += 1
            log.info("evicted idle session %s at %d", key, session.offset)
        pressure = self.policy.pressure(len(self._sessions))
        if pressure is not None and pressure.limit != "max_sessions":
            await self.shed_lowest(str(pressure))

    async def shed_lowest(self, reason: str) -> str | None:
        """Checkpoint and drop the lowest-weight session; returns its key.

        Attached sessions get an ``error`` frame with code ``shed`` and
        a retry hint first — reconnect-resume continues them exactly
        where the checkpoint left off.
        """
        if not self._sessions:
            return None
        key = min(
            self._sessions,
            key=lambda k: (self._sessions[k].weight, k),
        )
        session = self._sessions[key]
        if not session.checkpoint():
            self.stats.checkpoint_failures += 1
            return None
        attachment = self._attached.get(key)
        if attachment is not None:
            attachment.closed_by_server = "shed"
            with contextlib.suppress(Exception):
                send_frame(
                    attachment.writer,
                    {
                        "op": "error",
                        "code": protocol.ERR_SHED,
                        "message": f"session shed: {reason}",
                        "retry_after": RETRY_AFTER_SHED,
                        "offset": session.offset,
                    },
                )
                await attachment.writer.drain()
            attachment.writer.close()
            self._attached.pop(key, None)
        self._sessions.pop(key, None)
        self.stats.shed += 1
        log.info("shed session %s (%s)", key, reason)
        return key

    async def release_sessions(self, reason: str = "migrate") -> int:
        """Checkpoint, notify, and forget every session for re-homing.

        The live-migration source half: each session parks (dropping
        pending bytes the client will replay), persists a checkpoint at
        its segment boundary, and its client — if attached — gets an
        ``error`` frame with code ``migrate``, a ``retry_after`` hint,
        and the durable ``offset``.  The session then leaves this
        worker's memory entirely: ownership of the lineage passes to
        whichever worker the client's reconnect lands on.  A session
        whose checkpoint cannot be written stays here (migrating it
        would lose state) and counts a ``checkpoint_failure``.
        """
        released = 0
        for key, session in list(self._sessions.items()):
            session.park()
            if not session.checkpoint():
                self.stats.checkpoint_failures += 1
                continue
            attachment = self._attached.pop(key, None)
            if attachment is not None:
                attachment.closed_by_server = "migrate"
                with contextlib.suppress(Exception):
                    send_frame(
                        attachment.writer,
                        {
                            "op": "error",
                            "code": protocol.ERR_MIGRATE,
                            "message": f"session released: {reason}",
                            "retry_after": RETRY_AFTER_MIGRATE,
                            "offset": session.offset,
                        },
                    )
                    await attachment.writer.drain()
                attachment.writer.close()
            self._sessions.pop(key, None)
            released += 1
            self.stats.released += 1
            log.info(
                "released session %s at %d (%s)", key, session.offset, reason
            )
        return released

    def health_report(self) -> dict:
        """The worker snapshot answered to a pre-``open`` ``health`` op."""
        return {
            "op": "health_report",
            "sessions": len(self._sessions),
            "attached": len(self._attached),
            "draining": self._draining,
            "released": self.stats.released,
            "shed": self.stats.shed,
            "checkpoint_failures": self.stats.checkpoint_failures,
        }

    # -- connection handling -------------------------------------------------

    def _store_for(self, key: str) -> CheckpointStore:
        return CheckpointStore(self.config.checkpoint_dir, session=key)

    async def _send(self, writer: asyncio.StreamWriter, obj: dict) -> None:
        send_frame(writer, obj)
        await writer.drain()  # bounded backpressure: never buffer unboundedly

    async def _error(
        self,
        writer: asyncio.StreamWriter,
        code: str,
        message: str,
        **extra,
    ) -> None:
        with contextlib.suppress(Exception):
            await self._send(
                writer,
                {"op": "error", "code": code, "message": message, **extra},
            )

    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.stats.accepted += 1
        try:
            await self._converse(reader, writer)
        except ProtocolError as err:
            self.stats.protocol_errors += 1
            await self._error(writer, protocol.ERR_PROTOCOL, str(err))
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except ReproError as err:
            await self._error(writer, protocol.ERR_INTERNAL, str(err))
        except Exception:
            log.exception("connection handler failed")
            await self._error(writer, protocol.ERR_INTERNAL, "internal error")
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    def _park(self, key: str, writer: asyncio.StreamWriter) -> None:
        """Detach one connection, checkpointing its still-live session."""
        attachment = self._attached.get(key)
        if attachment is not None and attachment.writer is writer:
            self._attached.pop(key)
            if attachment.closed_by_server:
                return  # shed/drain already persisted the session
        session = self._sessions.get(key)
        if session is None or key in self._attached:
            return  # completed/evicted, or reattached elsewhere already
        session.park()
        if not session.checkpoint():
            self.stats.checkpoint_failures += 1

    async def _converse(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """The per-connection protocol loop."""
        while True:
            try:
                frame = await read_frame(reader, self.config.read_timeout)
            except asyncio.TimeoutError:
                raise ProtocolError(
                    "handshake deadline expired", phase="serve"
                ) from None
            if frame is None:
                return
            op = frame.get("op")
            if op == "open":
                break
            # Pre-open control plane: a fleet supervisor probes and
            # drains workers without creating (or even admitting) a
            # session.
            if op == "ping":
                await self._send(writer, {"op": "pong"})
            elif op == "health":
                await self._send(writer, self.health_report())
            elif op == "release":
                count = await self.release_sessions()
                await self._send(writer, {"op": "released", "count": count})
            else:
                raise ProtocolError(
                    f"expected open, got {op!r}", phase="serve"
                )
        key, session = await self._open(frame, writer)
        if session is None:
            return
        attachment = self._attached[key]
        try:
            while True:
                frame = await self._read_or_idle(reader, writer, key, session)
                if frame is None:
                    return
                if self._attached.get(key) is not attachment:
                    # Superseded by a resume takeover (or shed/drained)
                    # while this frame sat in the read buffer: feeding it
                    # now would duplicate bytes the new connection is
                    # already replaying.  Stand down without parking.
                    return
                session.touch()
                op = frame["op"]
                if op == "data":
                    await self._on_data(frame, session, attachment, writer)
                elif op == "end":
                    await self._on_end(key, session, writer)
                    return
                elif op == "reload":
                    await self._on_reload(frame, session, writer)
                elif op == "ping":
                    await self._send(writer, {"op": "pong"})
                elif op == "detach":
                    session.park()
                    if not session.checkpoint():
                        self.stats.checkpoint_failures += 1
                    await self._send(
                        writer,
                        {
                            "op": "bye",
                            "reason": "detach",
                            "offset": session.offset,
                        },
                    )
                    return
                else:
                    raise ProtocolError(f"unknown op {op!r}", phase="serve")
        finally:
            self._park(key, writer)

    async def _read_or_idle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        key: str,
        session: ScanSession,
    ) -> dict | None:
        """One frame, enforcing the read deadline and the idle timeout."""
        while True:
            try:
                return await read_frame(reader, self.config.read_timeout)
            except asyncio.TimeoutError:
                attachment = self._attached.get(key)
                if attachment is None or attachment.writer is not writer:
                    return None  # shed or drained from under us
                if session.idle_seconds() >= self.config.idle_timeout:
                    session.park()
                    if session.checkpoint():
                        self._sessions.pop(key, None)
                        self.stats.evicted_idle += 1
                    else:
                        self.stats.checkpoint_failures += 1
                    self._attached.pop(key, None)
                    with contextlib.suppress(Exception):
                        await self._send(
                            writer,
                            {
                                "op": "bye",
                                "reason": "idle",
                                "offset": session.offset,
                            },
                        )
                    return None

    async def _open(
        self, frame: dict, writer: asyncio.StreamWriter
    ) -> tuple[str | None, ScanSession | None]:
        tenant = frame.get("tenant")
        session_id = frame.get("session")
        if not isinstance(tenant, str) or not tenant:
            raise ProtocolError("open frame needs a tenant", phase="serve")
        if not isinstance(session_id, str) or not session_id:
            raise ProtocolError("open frame needs a session", phase="serve")
        key = session_key(tenant, session_id)
        if self._draining:
            await self._error(
                writer,
                protocol.ERR_DRAIN,
                "server is draining",
                retry_after=RETRY_AFTER_ADMISSION,
            )
            return None, None
        if key in self._attached:
            if not frame.get("resume"):
                await self._error(
                    writer,
                    protocol.ERR_CONFLICT,
                    f"session {key} is already attached to a connection",
                )
                return None, None
            # A resume takeover: the previous transport is (or is about
            # to be found) dead — an aborted client reconnects before
            # the server's read loop notices the RST.  Latest wins; the
            # old handler sees a foreign attachment and stands down.
            stale = self._attached.pop(key)
            stale.closed_by_server = "superseded"
            stale.writer.close()
            held = self._sessions.get(key)
            if held is not None:
                held.park()  # its pending bytes will be replayed
        resumed = False
        session = self._sessions.get(key)
        if session is None:
            # Count builds still in flight: _build_session awaits the
            # compile executor, and without the reservation N concurrent
            # opens would all pass the cap before any registers.
            refusal = self.policy.admit(len(self._sessions) + self._opening)
            if refusal is not None:
                self.stats.rejected += 1
                err = AdmissionError(
                    str(refusal),
                    retry_after=RETRY_AFTER_ADMISSION,
                    limit=refusal.limit,
                    phase="serve",
                )
                await self._error(
                    writer,
                    protocol.ERR_ADMISSION,
                    str(err),
                    retry_after=err.retry_after,
                    limit=err.limit,
                )
                return None, None
            self._opening += 1
            try:
                session, resumed = await self._build_session(frame, key)
            except (CompileError, ValueError) as err:
                await self._error(writer, protocol.ERR_COMPILE, str(err))
                return None, None
            except CheckpointError as err:
                await self._error(writer, protocol.ERR_CHECKPOINT, str(err))
                return None, None
            finally:
                self._opening -= 1
            self._sessions[key] = session
            self.stats.admitted += 1
            if resumed:
                self.stats.resumed += 1
        session.touch()
        self._attached[key] = _Attachment(writer=writer)
        # The session ack reports the backend that will *actually*
        # execute (after the probe-and-fall-back chain) so a client can
        # see e.g. "native unavailable: no C compiler" instead of
        # silently scanning on the fallback tier.
        backend, backend_reason = resolve_backend_with_reason()
        await self._send(
            writer,
            {
                "op": "welcome",
                "protocol": protocol.PROTOCOL,
                "version": protocol.PROTOCOL_VERSION,
                "tenant": tenant,
                "session": session_id,
                "offset": session.offset,
                "generation": session.generation,
                "resumed": resumed,
                "backend": backend,
                "backend_reason": backend_reason,
            },
        )
        return key, session

    async def _build_session(
        self, frame: dict, key: str
    ) -> tuple[ScanSession, bool]:
        """A fresh or checkpoint-resumed session for an ``open`` frame."""
        tenant = frame["tenant"]
        session_id = frame["session"]
        patterns = frame.get("patterns") or []
        weight = float(frame.get("weight", 1.0))
        store = self._store_for(key)
        loop = asyncio.get_running_loop()
        if frame.get("resume"):
            envelope = store.load_latest()
            if envelope is not None:
                session = await loop.run_in_executor(
                    None,
                    lambda: ScanSession.from_envelope(
                        envelope, self.registry, store, weight=weight
                    ),
                )
                return session, True
            # No checkpoint survived: fall through to a fresh start at
            # offset 0 — the welcome offset tells the client to replay.
        if not isinstance(patterns, list) or not all(
            isinstance(p, str) for p in patterns
        ):
            raise ProtocolError(
                "open frame needs a list of pattern strings", phase="serve"
            )
        entry = await loop.run_in_executor(
            None, self.registry.open, tenant, patterns
        )
        store.clear()  # a non-resume open starts a new lineage
        session = ScanSession(
            tenant,
            session_id,
            entry,
            store,
            self.registry.hw,
            bin_size=self.registry.bin_size,
            weight=weight,
        )
        return session, False

    async def _on_data(
        self,
        frame: dict,
        session: ScanSession,
        attachment: _Attachment,
        writer: asyncio.StreamWriter,
    ) -> None:
        raw = frame.get("b64", "")
        if not isinstance(raw, str):
            raise ProtocolError("data frame needs a b64 string", phase="serve")
        try:
            segment = base64.b64decode(raw.encode(), validate=True)
        except (binascii.Error, ValueError) as err:
            raise ProtocolError(
                f"data frame is not valid base64: {err}", phase="serve"
            ) from err
        await self._maybe_swap(session, writer)
        events = session.feed(segment)
        await self._send(
            writer,
            {
                "op": "events",
                "matches": events,
                "offset": session.offset,
                "generation": session.generation,
                "energy_uj": session.total_energy_uj(),
            },
        )
        attachment.bytes_since_checkpoint += len(segment)
        if (
            attachment.bytes_since_checkpoint
            >= self.config.checkpoint_interval_bytes
        ):
            if session.checkpoint():
                attachment.bytes_since_checkpoint = 0
            else:
                self.stats.checkpoint_failures += 1

    async def _maybe_swap(
        self, session: ScanSession, writer: asyncio.StreamWriter
    ) -> None:
        """Rotate the session if its tenant moved to a new generation."""
        entry = self.registry.get(session.tenant)
        if entry is None or entry.generation == session.generation:
            return
        flushed = session.maybe_swap(entry)
        if flushed is None:
            return
        self.stats.swaps += 1
        if flushed:
            await self._send(
                writer,
                {
                    "op": "events",
                    "matches": flushed,
                    "offset": session.offset,
                    "generation": session.generation,
                    "energy_uj": session.total_energy_uj(),
                },
            )
        await self._send(
            writer,
            {
                "op": "swap",
                "offset": session.offset,
                "generation": session.generation,
            },
        )

    async def _on_end(
        self, key: str, session: ScanSession, writer: asyncio.StreamWriter
    ) -> None:
        await self._maybe_swap(session, writer)
        events = session.end()
        if events:
            await self._send(
                writer,
                {
                    "op": "events",
                    "matches": events,
                    "offset": session.offset,
                    "generation": session.generation,
                    "energy_uj": session.total_energy_uj(),
                },
            )
        await self._send(
            writer,
            {
                "op": "result",
                "matches": session.total_matches(),
                "energy_uj": session.total_energy_uj(),
                "offset": session.offset,
                "generation": session.generation,
            },
        )
        session.store.clear()
        self._sessions.pop(key, None)
        self._attached.pop(key, None)
        self.stats.completed += 1

    async def _on_reload(
        self, frame: dict, session: ScanSession, writer: asyncio.StreamWriter
    ) -> None:
        patterns = frame.get("patterns")
        if not isinstance(patterns, list) or not all(
            isinstance(p, str) for p in patterns
        ):
            raise ProtocolError(
                "reload frame needs a list of pattern strings", phase="serve"
            )
        loop = asyncio.get_running_loop()
        try:
            # Compile off the event loop: other sessions keep streaming.
            entry = await loop.run_in_executor(
                None, self.registry.reload, session.tenant, patterns
            )
        except (CompileError, ValueError) as err:
            await self._error(writer, protocol.ERR_COMPILE, str(err))
            return
        self.stats.reloads += 1
        swapped = entry.fingerprint != session.entry.fingerprint
        await self._send(
            writer,
            {
                "op": "reloaded",
                "generation": entry.generation,
                "swapped": swapped,
            },
        )
        # The inter-frame gap is a segment boundary: swap right here.
        await self._maybe_swap(session, writer)


__all__ = [
    "EXIT_CONFIG",
    "EXIT_FAILURES",
    "EXIT_OK",
    "RETRY_AFTER_ADMISSION",
    "RETRY_AFTER_MIGRATE",
    "RETRY_AFTER_SHED",
    "ScanServer",
    "ServeConfig",
    "ServerStats",
    "session_key",
]
