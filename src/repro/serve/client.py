"""Client side of the scan service: a resuming client and a load
generator.

:class:`ScanClient` is the reference protocol implementation: it
streams segments, collects match events (deduplicated by global
``(offset, regex_id)``, so replays after a resume never double count),
and — the robustness contract — reconnects with ``resume`` after any
connection loss and replays its input from the server's ``welcome``
offset.  The resulting totals are byte-identical to an uninterrupted
scan; the chaos tests assert exactly that.

:class:`LoadGenerator` drives N concurrent sessions against one server
and interprets the connection-level fault kinds of
:mod:`repro.engine.faults` at their segment ordinals:

``disconnect``  abort the transport mid-stream, reconnect, resume
``stall``       freeze the sender for ``seconds`` (exercises the
                server's read deadline and idle watchdog)
``garbage``     send an unparsable line — the server must fail the
                *connection* and keep the session resumable
``reload``      request a hot ruleset reload at that segment boundary

It reports aggregate matches, energy, reconnects, and per-segment
turnaround latencies (the p50/p99 the service benchmark tracks).
"""

from __future__ import annotations

import asyncio
import base64
import collections
import random
import time
from dataclasses import dataclass, field

from repro.engine.faults import FaultPlan
from repro.errors import AdmissionError, ProtocolError, ServeError
from repro.serve.protocol import read_frame, send_frame

# Reconnect policy: chaos runs kill whole workers, and the restarted
# worker needs time to come back up before a resume can land.
RECONNECT_ATTEMPTS = 40
RECONNECT_DELAY = 0.25

# Decorrelated-jitter bounds for reconnect sleeps.  Sleeping the raw
# ``retry_after`` would synchronize every client a fleet-wide shed or
# migration just disconnected — they'd all come back in the same
# instant and re-create the pressure that shed them.  Jitter spreads
# the herd; the cap bounds worst-case reconnect latency.
BACKOFF_BASE = 0.05
BACKOFF_CAP = 5.0


class _Backoff:
    """Decorrelated-jitter reconnect delays, optionally hint-aware.

    Each delay is drawn from ``[base, prev * 3]`` (clamped to ``cap``),
    so consecutive sleeps decorrelate instead of marching in lockstep.
    A server ``retry_after`` hint re-centers the window around the hint
    (``[hint/2, hint*1.5]``-ish) without ever exceeding the cap.  The
    RNG is seeded per session, so chaos runs stay reproducible.
    """

    def __init__(self, seed: str, base: float = BACKOFF_BASE, cap: float = BACKOFF_CAP):
        self.base = base
        self.cap = cap
        self._rng = random.Random(seed)
        self._prev = base

    def next(self, hint: float | None = None) -> float:
        upper = self._prev * 3
        lower = self.base
        if hint is not None:
            upper = max(upper, hint * 1.5)
            lower = min(max(self.base, hint * 0.5), self.cap)
        delay = min(self.cap, self._rng.uniform(lower, max(lower, upper)))
        self._prev = max(delay, self.base)
        return delay

    def reset(self) -> None:
        """A successful welcome ends the episode: start small again."""
        self._prev = self.base


class ScanClient:
    """One session's client: connect, stream, resume, finish."""

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str,
        session: str,
        patterns,
        *,
        weight: float = 1.0,
        frame_timeout: float = 30.0,
    ):
        self.host = host
        self.port = port
        self.tenant = tenant
        self.session = session
        self.patterns = list(patterns)
        self.weight = weight
        self.frame_timeout = frame_timeout
        self.offset = 0  # server-confirmed replay position
        self.generation = 0
        self.events: set[tuple[int, int]] = set()
        self.result: dict | None = None
        self.reconnects = 0
        self.latencies_ms: list[float] = []
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._reader_task: asyncio.Task | None = None
        self._control: asyncio.Queue = asyncio.Queue()
        self._sent_at: collections.deque[float] = collections.deque()
        self._backoff = _Backoff(f"{tenant}/{session}")

    # -- connection management -----------------------------------------------

    async def connect(self, *, resume: bool = False) -> dict:
        """Open (or resume) the session; returns the welcome frame.

        Raises :class:`AdmissionError` when the server refuses the
        session (``retry_after`` carries its backoff hint) and
        :class:`ServeError` for other structured rejections.
        """
        await self.close()
        # Frames queued by the previous connection's pump — including its
        # EOF sentinel — are stale once we reconnect; drop them so the
        # next control read cannot mistake an old close for a new one.
        while not self._control.empty():
            self._control.get_nowait()
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._sent_at.clear()
        send_frame(
            self._writer,
            {
                "op": "open",
                "tenant": self.tenant,
                "session": self.session,
                "patterns": self.patterns,
                "resume": resume,
                "weight": self.weight,
            },
        )
        await self._writer.drain()
        frame = await read_frame(self._reader, self.frame_timeout)
        if frame is None:
            raise ConnectionResetError("server closed during handshake")
        if frame.get("op") == "error":
            await self.close()
            self._raise_error(frame)
        if frame.get("op") != "welcome":
            raise ProtocolError(
                f"expected welcome, got {frame.get('op')!r}", phase="serve"
            )
        self.offset = int(frame.get("offset", 0))
        self.generation = int(frame.get("generation", 0))
        self._reader_task = asyncio.create_task(self._pump())
        return frame

    def _raise_error(self, frame: dict) -> None:
        code = frame.get("code")
        message = frame.get("message", "server error")
        if code in ("admission", "shed", "drain", "migrate", "breaker"):
            # All four carry a retry_after and the same contract: the
            # session (if any) was checkpointed first, so a later
            # reconnect-resume loses nothing.  ``migrate`` means the
            # fleet is re-homing us; ``breaker`` that our tenant's
            # circuit is open.
            raise AdmissionError(
                message,
                retry_after=frame.get("retry_after"),
                limit=frame.get("limit"),
                phase="serve",
            )
        raise ServeError(f"{code}: {message}", phase="serve")

    async def reconnect(self) -> int:
        """Resume after a connection loss; returns the replay offset."""
        last: Exception | None = None
        for _ in range(RECONNECT_ATTEMPTS):
            try:
                await self.connect(resume=True)
                self.reconnects += 1
                self._backoff.reset()
                return self.offset
            except AdmissionError as err:
                last = err
                await asyncio.sleep(self._backoff.next(err.retry_after))
            except (ConnectionError, OSError, asyncio.TimeoutError) as err:
                last = err
                await asyncio.sleep(self._backoff.next())
        raise ServeError(
            f"could not resume session {self.session!r}: {last}",
            phase="serve",
        )

    async def close(self) -> None:
        """Tear the connection down quietly (state is kept)."""
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except Exception:
                pass
            self._writer = None
            self._reader = None

    def abort(self) -> None:
        """Kill the transport without goodbye (the disconnect fault)."""
        if self._writer is not None:
            self._writer.transport.abort()

    # -- frame pump ----------------------------------------------------------

    async def _pump(self) -> None:
        """Route incoming frames: events accumulate, the rest queue up."""
        try:
            while True:
                frame = await read_frame(self._reader)
                if frame is None:
                    await self._control.put(None)
                    return
                op = frame.get("op")
                if op == "events":
                    if self._sent_at:
                        self.latencies_ms.append(
                            (time.monotonic() - self._sent_at.popleft())
                            * 1000.0
                        )
                    for end, rid in frame.get("matches", []):
                        self.events.add((int(end), int(rid)))
                    # The server's durable offset lags one (pending)
                    # segment behind what we sent; never walk back the
                    # optimistic position — only a resume handshake may.
                    self.offset = max(
                        self.offset, int(frame.get("offset", self.offset))
                    )
                    self.generation = int(
                        frame.get("generation", self.generation)
                    )
                elif op == "swap":
                    self.generation = int(
                        frame.get("generation", self.generation)
                    )
                else:
                    await self._control.put(frame)
        except (ProtocolError, ConnectionError, asyncio.IncompleteReadError):
            await self._control.put(None)
        except asyncio.CancelledError:
            raise

    async def _control_frame(self, expect: str) -> dict:
        """The next control frame, demanding ``expect`` (or ``error``)."""
        frame = await asyncio.wait_for(
            self._control.get(), self.frame_timeout
        )
        if frame is None:
            raise ConnectionResetError("server closed the connection")
        if frame.get("op") == "error":
            self._raise_error(frame)
        if frame.get("op") != expect:
            raise ProtocolError(
                f"expected {expect}, got {frame.get('op')!r}", phase="serve"
            )
        return frame

    # -- operations ----------------------------------------------------------

    async def send(self, segment: bytes) -> None:
        """Stream one data segment (fire-and-forget; events pump back)."""
        if self._writer is None:
            raise ConnectionResetError("not connected")
        self._sent_at.append(time.monotonic())
        send_frame(
            self._writer,
            {"op": "data", "b64": base64.b64encode(segment).decode()},
        )
        await self._writer.drain()

    async def send_garbage(self) -> None:
        """One unparsable line — the ``garbage`` fault."""
        if self._writer is None:
            raise ConnectionResetError("not connected")
        self._writer.write(b"\x00this is not a frame\n")
        await self._writer.drain()

    async def reload(self, patterns) -> dict:
        """Hot-reload the tenant ruleset; returns the reloaded frame."""
        if self._writer is None:
            raise ConnectionResetError("not connected")
        send_frame(
            self._writer, {"op": "reload", "patterns": list(patterns)}
        )
        await self._writer.drain()
        return await self._control_frame("reloaded")

    async def ping(self) -> dict:
        send_frame(self._writer, {"op": "ping"})
        await self._writer.drain()
        return await self._control_frame("pong")

    async def detach(self) -> dict:
        """Checkpoint server-side and close; resume continues later."""
        send_frame(self._writer, {"op": "detach"})
        await self._writer.drain()
        frame = await self._control_frame("bye")
        await self.close()
        return frame

    async def end(self) -> dict:
        """Finish the stream; returns the final result frame."""
        if self._writer is None:
            raise ConnectionResetError("not connected")
        send_frame(self._writer, {"op": "end"})
        await self._writer.drain()
        frame = await self._control_frame("result")
        self.result = frame
        await self.close()
        return frame

    # -- the full streaming loop, faults and resume included -----------------

    async def run(
        self,
        data: bytes,
        *,
        segment_bytes: int = 4096,
        plan: FaultPlan | None = None,
    ) -> dict:
        """Stream ``data`` end to end, surviving every planned fault.

        Returns the final result frame.  Connection losses — planned
        (``disconnect``/``garbage``) or not (a killed worker) — trigger
        reconnect-resume; the replay position always comes from the
        server's ``welcome``/``bye`` offsets, never from local guesses.
        """
        plan = plan or FaultPlan()
        fired: set[int] = set()
        await self._connect_with_retry()
        ordinal = 0  # data segments sent, lifetime of the logical session
        while self.result is None:
            try:
                if self.offset >= len(data):
                    await self.end()
                    break
                directive = plan.for_conn(ordinal)
                if directive is not None and ordinal not in fired:
                    fired.add(ordinal)
                    if await self._fire(directive):
                        continue  # the fault replaced this send slot
                segment = data[self.offset : self.offset + segment_bytes]
                await self.send(segment)
                # The server confirms offsets via events frames; track
                # optimistically so the loop advances without waiting.
                self.offset += len(segment)
                ordinal += 1
            except AdmissionError:
                # Shed (or drained) mid-stream: the server checkpointed
                # us first, so resume picks up where durability left off.
                await self.reconnect()
            except (ConnectionError, OSError, asyncio.TimeoutError):
                await self.reconnect()
        return self.result

    async def _connect_with_retry(self) -> None:
        try:
            await self.connect(resume=False)
            self._backoff.reset()
        except AdmissionError as err:
            # Admission refused: honor the server's backoff hint —
            # jittered, so a herd of refused clients spreads out — and
            # keep trying; completed sessions free slots.
            await asyncio.sleep(self._backoff.next(err.retry_after))
            await self.reconnect()
        except (ConnectionError, OSError, asyncio.TimeoutError):
            await self.reconnect()

    async def _fire(self, directive) -> bool:
        """Interpret one connection fault; True if it consumed the slot."""
        if directive.kind == "disconnect":
            self.abort()
            await self.close()
            await self.reconnect()
            return True
        if directive.kind == "stall":
            await asyncio.sleep(directive.seconds)
            return False  # stalling delays the send, it does not skip it
        if directive.kind == "garbage":
            try:
                await self.send_garbage()
                # The server answers with an error frame and closes; wait
                # for the pump to notice instead of racing the next send.
                await asyncio.wait_for(
                    self._control.get(), self.frame_timeout
                )
            except (ConnectionError, OSError, asyncio.TimeoutError):
                pass
            await self.close()
            await self.reconnect()
            return True
        if directive.kind == "reload":
            try:
                await self.reload(self.patterns)
            except (ConnectionError, OSError, asyncio.TimeoutError):
                await self.reconnect()
            return True
        return False


@dataclass
class LoadReport:
    """Aggregate outcome of one load-generator run."""

    sessions: int = 0
    completed: int = 0
    failed: int = 0
    reconnects: int = 0
    total_matches: int = 0
    total_energy_uj: float = 0.0
    distinct_events: int = 0
    latencies_ms: list[float] = field(default_factory=list)
    per_session: dict[str, dict] = field(default_factory=dict)

    def latency_percentile(self, q: float) -> float:
        """The q-th percentile of segment turnaround, in milliseconds."""
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        index = min(
            len(ordered) - 1, max(0, round(q / 100.0 * (len(ordered) - 1)))
        )
        return ordered[index]

    def summary(self) -> str:
        return (
            f"{self.completed}/{self.sessions} sessions, "
            f"{self.total_matches} matches, "
            f"{self.total_energy_uj:.3f} uJ, "
            f"{self.reconnects} reconnects, "
            f"p50 {self.latency_percentile(50):.2f} ms, "
            f"p99 {self.latency_percentile(99):.2f} ms"
        )


class LoadGenerator:
    """N concurrent fault-injected sessions against one server."""

    def __init__(
        self,
        host: str,
        port: int,
        patterns,
        *,
        tenant: str = "loadgen",
        sessions: int = 4,
        segment_bytes: int = 4096,
        plan: FaultPlan | None = None,
    ):
        self.host = host
        self.port = port
        self.patterns = list(patterns)
        self.tenant = tenant
        self.sessions = sessions
        self.segment_bytes = segment_bytes
        self.plan = plan or FaultPlan()

    async def run(self, payloads) -> LoadReport:
        """Stream one payload per session concurrently; aggregate."""
        payloads = list(payloads)
        report = LoadReport(sessions=len(payloads))
        clients = [
            ScanClient(
                self.host,
                self.port,
                self.tenant,
                f"s{i:04d}",
                self.patterns,
                weight=1.0 + i,  # deterministic shed order: s0000 first
            )
            for i in range(len(payloads))
        ]
        outcomes = await asyncio.gather(
            *(
                client.run(
                    payload,
                    segment_bytes=self.segment_bytes,
                    plan=self.plan,
                )
                for client, payload in zip(clients, payloads)
            ),
            return_exceptions=True,
        )
        for client, outcome in zip(clients, outcomes):
            report.reconnects += client.reconnects
            report.latencies_ms.extend(client.latencies_ms)
            if isinstance(outcome, BaseException):
                report.failed += 1
                report.per_session[client.session] = {
                    "error": f"{type(outcome).__name__}: {outcome}"
                }
                continue
            report.completed += 1
            report.total_matches += int(outcome.get("matches", 0))
            report.total_energy_uj += float(outcome.get("energy_uj", 0.0))
            report.per_session[client.session] = {
                "matches": int(outcome.get("matches", 0)),
                "energy_uj": float(outcome.get("energy_uj", 0.0)),
                "offset": int(outcome.get("offset", 0)),
            }
        report.distinct_events = sum(
            len(client.events) for client in clients
        )
        return report


def serial_totals(patterns, payloads, registry=None) -> tuple[int, float]:
    """Uninterrupted serial totals for the load generator's workload.

    The golden the chaos soak diffs against: each payload scanned in one
    unbroken pass under the same compiled ruleset, summed.  Byte-identity
    means a faulted service run must reproduce these numbers exactly.
    """
    from repro.engine.checkpoint import DurableScan
    from repro.serve.registry import TenantRegistry
    from repro.simulators.rap import RAPSimulator

    registry = registry or TenantRegistry()
    ruleset, mapping, _ = registry.compile(patterns)
    sim = RAPSimulator(registry.hw)
    matches = 0
    energy_uj = 0.0
    for payload in payloads:
        scan = DurableScan(
            ruleset, mapping, registry.hw, bin_size=registry.bin_size
        )
        scan.feed(payload, at_end=True)
        matches += sum(len(ends) for ends in scan.match_lists().values())
        energy_uj += sim.run_from_activity(
            ruleset, scan.finish(), mapping
        ).energy_uj
    return matches, energy_uj


__all__ = [
    "BACKOFF_BASE",
    "BACKOFF_CAP",
    "LoadGenerator",
    "LoadReport",
    "ScanClient",
    "RECONNECT_ATTEMPTS",
    "RECONNECT_DELAY",
    "serial_totals",
]
