"""Streaming multi-tenant scan service over the durable-scan substrate.

The ROADMAP's production setting: each network connection is a
long-lived scan session — bytes stream in, match/energy events stream
out — and a session's full state *is* a durable-scan checkpoint, so
idle sessions are evicted to the :class:`~repro.engine.checkpoint.
CheckpointStore` and resumed bit-identically on reconnect, or on a
different worker after a crash.  Robustness is the headline feature:

* per-tenant ruleset namespaces keyed on the compile cache, with hot
  reload — the new ruleset compiles in the background and swaps in at
  a segment boundary without dropping the session
  (:mod:`repro.serve.registry`);
* admission control and load shedding driven by the
  :class:`~repro.engine.budget.AdmissionPolicy` caps — reject with a
  retry-after hint on session/RSS/FD pressure, shed the lowest-weight
  sessions when an admitted load grows past its limits
  (:mod:`repro.serve.server`);
* per-session watchdogs: idle timeout, read deadlines, bounded write
  backpressure (:mod:`repro.serve.session` / ``server``);
* graceful drain on ``SIGTERM`` — checkpoint every live session, then
  exit 0;
* a deterministic chaos story: the connection-level fault kinds of
  :mod:`repro.engine.faults` (``disconnect``/``stall``/``garbage``/
  ``reload``) are interpreted by the load generator
  (:mod:`repro.serve.client`), and the test suite proves a session torn
  down mid-stream by any of them — or by ``SIGKILL`` of the worker —
  resumes to byte-identical matches and energy;
* a fleet supervisor (:mod:`repro.serve.fleet`) that babysits a pool of
  workers behind one endpoint: health-gated failover with SIGKILL
  fencing, live session migration on planned drain (``SIGHUP``
  rebalance), per-tenant circuit breakers, and the ``killworker``/
  ``wedge`` fleet fault kinds for deterministic worker-level chaos.
"""

from repro.serve.client import LoadGenerator, LoadReport, ScanClient
from repro.serve.fleet import FleetConfig, FleetStats, FleetSupervisor
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    decode_frame,
    encode_frame,
    read_frame,
    send_frame,
)
from repro.serve.registry import TenantEntry, TenantRegistry
from repro.serve.server import (
    EXIT_CONFIG,
    EXIT_FAILURES,
    EXIT_OK,
    ScanServer,
    ServeConfig,
)
from repro.serve.session import ScanSession

__all__ = [
    "EXIT_CONFIG",
    "EXIT_FAILURES",
    "EXIT_OK",
    "MAX_FRAME_BYTES",
    "FleetConfig",
    "FleetStats",
    "FleetSupervisor",
    "LoadGenerator",
    "LoadReport",
    "ScanClient",
    "ScanServer",
    "ScanSession",
    "ServeConfig",
    "TenantEntry",
    "TenantRegistry",
    "decode_frame",
    "encode_frame",
    "read_frame",
    "send_frame",
]
