"""Regex abstract syntax tree.

The grammar follows Section 2.1 of the paper:

    r ::= eps | sigma | (r | r) | r . r | r* | r{m,n}

extended with the usual sugar ``r?`` (optional) and ``r+`` (one or more),
and with ``r{m,}`` (unbounded lower-bounded repetition).  ``sigma`` is a
:class:`~repro.regex.charclass.CharClass`.

Nodes are immutable and hashable; the smart constructors in this module
(:func:`concat`, :func:`alt`, ...) perform light algebraic normalization
(flattening, identity/zero elimination) so that rewriting passes can build
trees without accumulating noise.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro.regex.charclass import CharClass


class Regex:
    """Base class for all regex AST nodes."""

    __slots__ = ()

    # -- structural properties, overridden per node -------------------------

    def nullable(self) -> bool:
        """True iff the language of this regex contains the empty string."""
        raise NotImplementedError

    def children(self) -> Sequence["Regex"]:
        """Direct child nodes, in order."""
        return ()

    def to_pattern(self) -> str:
        """Render back to PCRE-subset concrete syntax."""
        raise NotImplementedError

    def _pattern_atom(self) -> str:
        """Render with grouping parentheses if needed as a repetition base."""
        return f"(?:{self.to_pattern()})"

    # -- derived metrics -----------------------------------------------------

    def literal_count(self) -> int:
        """Number of literal (character-class) leaves, without unfolding.

        This equals the number of Glushkov positions of the regex *as
        written* — the paper's notion of regex size before unfolding.
        """
        return sum(c.literal_count() for c in self.children())

    def unfolded_size(self) -> int:
        """Number of Glushkov positions after fully unfolding repetitions.

        This is the number of STEs a pure-NFA automata processor needs
        (Section 2: unfolding ``r{m,n}`` blows the pattern up by Theta(n)).
        """
        return sum(c.unfolded_size() for c in self.children())

    def walk(self) -> Iterator["Regex"]:
        """Pre-order traversal over every node in the tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.to_pattern()!r})"


@dataclass(frozen=True, repr=False)
class Empty(Regex):
    """The empty language (matches nothing): the zero of alternation."""

    __slots__ = ()

    def nullable(self) -> bool:
        """True iff the language contains the empty string."""
        return False

    def to_pattern(self) -> str:
        """Render back to PCRE-subset concrete syntax."""
        return "[]"


@dataclass(frozen=True, repr=False)
class Epsilon(Regex):
    """The empty string: the unit of concatenation."""

    __slots__ = ()

    def nullable(self) -> bool:
        """True iff the language contains the empty string."""
        return True

    def to_pattern(self) -> str:
        """Render back to PCRE-subset concrete syntax."""
        return "(?:)"


@dataclass(frozen=True, repr=False)
class Lit(Regex):
    """A single character class predicate ``sigma``."""

    cc: CharClass

    __slots__ = ("cc",)

    def nullable(self) -> bool:
        """True iff the language contains the empty string."""
        return False

    def literal_count(self) -> int:
        """Literal leaves contributed by this node."""
        return 1

    def unfolded_size(self) -> int:
        """Positions after fully unfolding repetitions."""
        return 1

    def to_pattern(self) -> str:
        """Render back to PCRE-subset concrete syntax."""
        return self.cc.to_pattern()

    def _pattern_atom(self) -> str:
        return self.to_pattern()


@dataclass(frozen=True, repr=False)
class Concat(Regex):
    """Concatenation ``r1 r2 ... rk`` with k >= 2."""

    parts: tuple[Regex, ...]

    __slots__ = ("parts",)

    def nullable(self) -> bool:
        """True iff the language contains the empty string."""
        return all(p.nullable() for p in self.parts)

    def children(self) -> Sequence[Regex]:
        """Direct child nodes, in order."""
        return self.parts

    def to_pattern(self) -> str:
        """Render back to PCRE-subset concrete syntax."""
        rendered = []
        for p in self.parts:
            if isinstance(p, Alt):
                rendered.append(f"(?:{p.to_pattern()})")
            else:
                rendered.append(p.to_pattern())
        return "".join(rendered)


@dataclass(frozen=True, repr=False)
class Alt(Regex):
    """Alternation ``r1 | r2 | ... | rk`` with k >= 2."""

    parts: tuple[Regex, ...]

    __slots__ = ("parts",)

    def nullable(self) -> bool:
        """True iff the language contains the empty string."""
        return any(p.nullable() for p in self.parts)

    def children(self) -> Sequence[Regex]:
        """Direct child nodes, in order."""
        return self.parts

    def to_pattern(self) -> str:
        """Render back to PCRE-subset concrete syntax."""
        return "|".join(p.to_pattern() for p in self.parts)


@dataclass(frozen=True, repr=False)
class Star(Regex):
    """Kleene star ``r*``."""

    inner: Regex

    __slots__ = ("inner",)

    def nullable(self) -> bool:
        """True iff the language contains the empty string."""
        return True

    def children(self) -> Sequence[Regex]:
        """Direct child nodes, in order."""
        return (self.inner,)

    def to_pattern(self) -> str:
        """Render back to PCRE-subset concrete syntax."""
        return self.inner._pattern_atom() + "*"


@dataclass(frozen=True, repr=False)
class Plus(Regex):
    """One-or-more ``r+`` (sugar for ``r r*``)."""

    inner: Regex

    __slots__ = ("inner",)

    def nullable(self) -> bool:
        """True iff the language contains the empty string."""
        return self.inner.nullable()

    def children(self) -> Sequence[Regex]:
        """Direct child nodes, in order."""
        return (self.inner,)

    def literal_count(self) -> int:
        """Literal leaves contributed by this node."""
        return self.inner.literal_count()

    def unfolded_size(self) -> int:
        """Positions after fully unfolding repetitions."""
        return self.inner.unfolded_size()

    def to_pattern(self) -> str:
        """Render back to PCRE-subset concrete syntax."""
        return self.inner._pattern_atom() + "+"


@dataclass(frozen=True, repr=False)
class Opt(Regex):
    """Optional ``r?`` (sugar for ``r | eps``)."""

    inner: Regex

    __slots__ = ("inner",)

    def nullable(self) -> bool:
        """True iff the language contains the empty string."""
        return True

    def children(self) -> Sequence[Regex]:
        """Direct child nodes, in order."""
        return (self.inner,)

    def to_pattern(self) -> str:
        """Render back to PCRE-subset concrete syntax."""
        return self.inner._pattern_atom() + "?"


@dataclass(frozen=True, repr=False)
class Repeat(Regex):
    """Bounded repetition ``r{lo,hi}``; ``hi is None`` means ``r{lo,}``.

    ``r{m}`` is represented as ``Repeat(r, m, m)`` per the paper's
    convention ``r{m} = r{m,m}``.
    """

    inner: Regex
    lo: int
    hi: int | None

    __slots__ = ("inner", "lo", "hi")

    def __post_init__(self) -> None:
        if self.lo < 0:
            raise ValueError(f"negative repetition bound: {self.lo}")
        if self.hi is not None and self.hi < self.lo:
            raise ValueError(f"inverted repetition bounds: {{{self.lo},{self.hi}}}")

    def nullable(self) -> bool:
        """True iff the language contains the empty string."""
        return self.lo == 0 or self.inner.nullable()

    def children(self) -> Sequence[Regex]:
        """Direct child nodes, in order."""
        return (self.inner,)

    def literal_count(self) -> int:
        """Literal leaves contributed by this node."""
        return self.inner.literal_count()

    def unfolded_size(self) -> int:
        # r{m,n} unfolds to r^m (r?)^(n-m); r{m,} unfolds to r^m r*.
        """Positions after fully unfolding repetitions."""
        copies = self.lo if self.hi is None else self.hi
        return self.inner.unfolded_size() * max(copies, 1)

    def to_pattern(self) -> str:
        """Render back to PCRE-subset concrete syntax."""
        atom = self.inner._pattern_atom()
        if self.hi is None:
            return f"{atom}{{{self.lo},}}"
        if self.hi == self.lo:
            return f"{atom}{{{self.lo}}}"
        return f"{atom}{{{self.lo},{self.hi}}}"


# ---------------------------------------------------------------------------
# Smart constructors: flatten and apply identity/zero laws so rewrite passes
# produce canonical-ish trees.
# ---------------------------------------------------------------------------

EPSILON = Epsilon()
EMPTY = Empty()


def lit(cc: CharClass) -> Regex:
    """A literal; the empty class is the empty language."""
    if cc.is_empty():
        return EMPTY
    return Lit(cc)


def concat(*parts: Regex) -> Regex:
    """Concatenation with flattening, eps-elimination, and zero-absorption."""
    flat: list[Regex] = []
    for p in parts:
        if isinstance(p, Empty):
            return EMPTY
        if isinstance(p, Epsilon):
            continue
        if isinstance(p, Concat):
            flat.extend(p.parts)
        else:
            flat.append(p)
    if not flat:
        return EPSILON
    if len(flat) == 1:
        return flat[0]
    return Concat(tuple(flat))


def alt(*parts: Regex) -> Regex:
    """Alternation with flattening, deduplication, and empty-elimination."""
    flat: list[Regex] = []
    seen: set[Regex] = set()
    for p in parts:
        if isinstance(p, Empty):
            continue
        sub = p.parts if isinstance(p, Alt) else (p,)
        for s in sub:
            if s not in seen:
                seen.add(s)
                flat.append(s)
    if not flat:
        return EMPTY
    if len(flat) == 1:
        return flat[0]
    return Alt(tuple(flat))


def star(inner: Regex) -> Regex:
    """Kleene star with idempotence laws (eps* = eps, []* = eps, r** = r*)."""
    if isinstance(inner, (Epsilon, Empty)):
        return EPSILON
    if isinstance(inner, Star):
        return inner
    if isinstance(inner, (Plus, Opt)):
        return star(inner.inner)
    return Star(inner)


def plus(inner: Regex) -> Regex:
    """One-or-more with absorption laws."""
    if isinstance(inner, Empty):
        return EMPTY
    if isinstance(inner, Epsilon):
        return EPSILON
    if isinstance(inner, (Star, Plus)):
        return inner
    return Plus(inner)


def opt(inner: Regex) -> Regex:
    """Optional with nullability absorption."""
    if isinstance(inner, Empty):
        return EPSILON
    if inner.nullable():
        return inner
    return Opt(inner)


def repeat(inner: Regex, lo: int, hi: int | None) -> Regex:
    """Bounded repetition with degenerate-case elimination."""
    if isinstance(inner, Empty):
        return EMPTY if lo > 0 else EPSILON
    if isinstance(inner, Epsilon):
        return EPSILON
    if hi == 0:
        return EPSILON
    if lo == 0 and hi is None:
        return star(inner)
    if lo == 1 and hi is None:
        return plus(inner)
    if (lo, hi) == (1, 1):
        return inner
    if (lo, hi) == (0, 1):
        return opt(inner)
    return Repeat(inner, lo, hi)
