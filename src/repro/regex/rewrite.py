"""Regex rewriting passes (Section 4 of the paper).

Three rewriting families feed the three RAP modes:

* **Unfolding rewriting** (Example 4.1): bounded repetitions whose upper
  bound is at or below the *unfolding threshold* are expanded into
  concatenations (``e{1,3}`` -> ``ee?e?``); unbounded repetitions
  ``r{m,}`` are always expanded into ``r^m r*`` since no finite bit vector
  can track them.
* **Bounded-repetition rewriting** (Example 4.2): surviving repetitions are
  normalized to the two shapes the hardware reads support — ``r{m}``
  (read ``r(m)``) and ``r{0,k}`` (read ``rAll``) — via
  ``r{m,n} -> r{m} r{0,n-m}``, with optional word-alignment of exact
  bounds to the BV depth (``d{34} -> d{32}dd`` at depth 16).
* **Linearization** (Example 4.4): distribution of union over
  concatenation to turn a regex into a union of fixed-length
  character-class sequences executable in LNFA mode
  (``a(b{1,2}|c)e`` -> ``abe | abbe | ace``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.regex import ast
from repro.regex.ast import (
    Alt,
    Concat,
    Empty,
    Epsilon,
    Lit,
    Opt,
    Plus,
    Regex,
    Repeat,
    Star,
)
from repro.regex.charclass import CharClass


class RewriteError(ValueError):
    """Raised when a rewrite cannot be applied within its resource budget."""


# ---------------------------------------------------------------------------
# Unfolding rewriting
# ---------------------------------------------------------------------------


def unfold(regex: Regex, threshold: int, *, max_size: int = 1 << 20) -> Regex:
    """Apply the unfolding rewriting with the given threshold.

    Bounded repetitions with a finite upper bound ``<= threshold`` are
    unfolded; ``r{m,}`` is always rewritten to ``r^m r*``.  Repetitions kept
    folded still have their bodies rewritten recursively, so after this pass
    no small or unbounded repetition remains anywhere in the tree.

    ``max_size`` bounds the unfolded literal count to catch pathological
    expansions early (mirrors the hardware's 64528-STE NBVA-mode cap).
    """
    result = _unfold(regex, threshold)
    if result.literal_count() > max_size:
        raise RewriteError(
            f"unfolding produced {result.literal_count()} positions "
            f"(limit {max_size})"
        )
    return result


def unfold_all(regex: Regex, *, max_size: int = 1 << 20) -> Regex:
    """Fully unfold every bounded repetition (NFA-mode compilation)."""
    return unfold(regex, threshold=_UNBOUNDED, max_size=max_size)


_UNBOUNDED = 1 << 62


def _unfold(regex: Regex, threshold: int) -> Regex:
    if isinstance(regex, (Empty, Epsilon, Lit)):
        return regex
    if isinstance(regex, Concat):
        return ast.concat(*(_unfold(p, threshold) for p in regex.parts))
    if isinstance(regex, Alt):
        return ast.alt(*(_unfold(p, threshold) for p in regex.parts))
    if isinstance(regex, Star):
        return ast.star(_unfold(regex.inner, threshold))
    if isinstance(regex, Plus):
        return ast.plus(_unfold(regex.inner, threshold))
    if isinstance(regex, Opt):
        return ast.opt(_unfold(regex.inner, threshold))
    if isinstance(regex, Repeat):
        inner = _unfold(regex.inner, threshold)
        if regex.hi is None:
            # r{m,} -> r^m r*   (Example 4.1: f{2,} -> fff*)
            return ast.concat(*([inner] * regex.lo), ast.star(inner))
        if regex.hi <= threshold:
            return unfold_repeat(inner, regex.lo, regex.hi)
        return ast.repeat(inner, regex.lo, regex.hi)
    raise TypeError(f"unknown regex node: {type(regex).__name__}")


def unfold_repeat(inner: Regex, lo: int, hi: int) -> Regex:
    """Expand ``inner{lo,hi}`` into ``inner^lo (inner (inner ...)?)?``.

    The optional tail is *nested* rather than flat: ``a{1,3}`` becomes
    ``a(?:a(?:a)?)?`` instead of ``aa?a?``.  Both denote the same
    language, but the flat form's Glushkov automaton has a follow edge
    between every pair of optional positions (Theta(k^2) edges — every
    optional can be skipped independently), while the nested form keeps
    the linear chain structure automata processors map efficiently.

    For very wide optional ranges the nesting depth itself becomes a
    hazard (every later tree traversal recurses through it), so beyond
    ``_NEST_LIMIT`` the flat form is emitted instead; the NFA compiler
    never sees those trees (it expands repetitions structurally inside
    the Glushkov construction).
    """
    if hi - lo > _NEST_LIMIT:
        optional = [ast.opt(inner)] * (hi - lo)
        return ast.concat(*([inner] * lo), *optional)
    tail: Regex = ast.EPSILON
    for _ in range(hi - lo):
        tail = ast.opt(ast.concat(inner, tail))
    return ast.concat(*([inner] * lo), tail)


_NEST_LIMIT = 200


# ---------------------------------------------------------------------------
# Counting-compatibility rewriting
# ---------------------------------------------------------------------------


def make_countable(regex: Regex) -> Regex:
    """Unfold every surviving repetition that cannot use a bit vector.

    After the unfolding pass, a repetition may still be non-countable for
    two reasons:

    * a **nullable body** (the counter could stall — not expressible with
      the single shift action): the repetition itself is unfolded;
    * a **nested surviving repetition** (the hardware has no nested counter
      groups): the repetition with the larger upper bound is kept counted
      (it compresses more) and the other is unfolded.

    The result is a tree in which every remaining :class:`Repeat` is
    counting-compatible, ready for the BV-shape rewriting.
    """
    return _make_countable(regex)


def _make_countable(regex: Regex) -> Regex:
    if isinstance(regex, (Empty, Epsilon, Lit)):
        return regex
    if isinstance(regex, Concat):
        return ast.concat(*(_make_countable(p) for p in regex.parts))
    if isinstance(regex, Alt):
        return ast.alt(*(_make_countable(p) for p in regex.parts))
    if isinstance(regex, Star):
        return ast.star(_make_countable(regex.inner))
    if isinstance(regex, Plus):
        return ast.plus(_make_countable(regex.inner))
    if isinstance(regex, Opt):
        return ast.opt(_make_countable(regex.inner))
    if isinstance(regex, Repeat):
        assert regex.hi is not None, "run the unfolding pass first"
        inner = _make_countable(regex.inner)
        nested = [n for n in inner.walk() if isinstance(n, Repeat)]
        if nested and regex.hi >= max(n.hi or 0 for n in nested):
            inner = unfold_all(inner)  # keep the outer (bigger) counter
        node = ast.repeat(inner, regex.lo, regex.hi)
        if not isinstance(node, Repeat):
            return node  # degenerated to something simpler
        if node.inner.nullable() or any(
            isinstance(n, Repeat) for n in node.inner.walk()
        ):
            return _make_countable(unfold_repeat(node.inner, node.lo, node.hi))
        return node
    raise TypeError(f"unknown regex node: {type(regex).__name__}")


# ---------------------------------------------------------------------------
# Bounded-repetition rewriting for BV actions
# ---------------------------------------------------------------------------


def rewrite_bounds_for_bv(
    regex: Regex, *, depth: int, word_align_exact: bool = True
) -> Regex:
    """Normalize surviving repetitions to hardware-readable shapes.

    After this pass every :class:`Repeat` node in the tree is either
    ``r{m,m}`` (simulated with the ``r(m)`` read) or ``r{0,k}`` (simulated
    with ``rAll``):

    * ``r{m,n}`` with ``0 < m < n`` becomes ``r{m} r{0,n-m}``.
    * With ``word_align_exact``, an exact bound that does not fill its last
      BV word is split so the counted part is a multiple of ``depth``
      (``d{34}`` at depth 16 -> ``d{32} d d``); the remainder is unfolded.

    The unfolding pass must run first: unbounded repetitions are rejected.
    """
    if depth < 1:
        raise ValueError(f"BV depth must be positive, got {depth}")
    return _rewrite_bounds(regex, depth, word_align_exact)


def _rewrite_bounds(regex: Regex, depth: int, word_align: bool) -> Regex:
    if isinstance(regex, (Empty, Epsilon, Lit)):
        return regex
    if isinstance(regex, Concat):
        return ast.concat(*(_rewrite_bounds(p, depth, word_align) for p in regex.parts))
    if isinstance(regex, Alt):
        return ast.alt(*(_rewrite_bounds(p, depth, word_align) for p in regex.parts))
    if isinstance(regex, Star):
        return ast.star(_rewrite_bounds(regex.inner, depth, word_align))
    if isinstance(regex, Plus):
        return ast.plus(_rewrite_bounds(regex.inner, depth, word_align))
    if isinstance(regex, Opt):
        return ast.opt(_rewrite_bounds(regex.inner, depth, word_align))
    if isinstance(regex, Repeat):
        if regex.hi is None:
            raise RewriteError(
                "unbounded repetition reached BV rewriting; run unfolding first"
            )
        inner = _rewrite_bounds(regex.inner, depth, word_align)
        return _rewrite_one_bound(inner, regex.lo, regex.hi, depth, word_align)
    raise TypeError(f"unknown regex node: {type(regex).__name__}")


def _rewrite_one_bound(
    inner: Regex, lo: int, hi: int, depth: int, word_align: bool
) -> Regex:
    if lo == 0:
        return ast.repeat(inner, 0, hi)  # already an rAll shape
    if lo == hi:
        return _word_aligned_exact(inner, lo, depth) if word_align else ast.repeat(
            inner, lo, lo
        )
    # r{m,n} -> r{m} r{0,n-m}   (Example 4.2: b{10,48} -> b{10} b{0,38})
    exact = (
        _word_aligned_exact(inner, lo, depth)
        if word_align
        else ast.repeat(inner, lo, lo)
    )
    return ast.concat(exact, ast.repeat(inner, 0, hi - lo))


def _word_aligned_exact(inner: Regex, m: int, depth: int) -> Regex:
    """Align an exact bound to full BV words (Example 4.2: d{34} -> d{32}dd)."""
    remainder = m % depth
    if remainder == 0 or m < depth:
        return ast.repeat(inner, m, m)
    aligned = m - remainder
    return ast.concat(ast.repeat(inner, aligned, aligned), *([inner] * remainder))


# ---------------------------------------------------------------------------
# Linearization for LNFA mode
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Linearization:
    """Result of a successful linearization.

    ``sequences`` is the union of fixed-length character-class sequences
    equivalent to the original regex; each sequence becomes one hardware
    LNFA.  ``total_states`` is the Shift-And state count (sum of lengths).
    """

    sequences: tuple[tuple[CharClass, ...], ...]
    total_states: int

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "total_states", sum(len(s) for s in self.sequences)
        )


def linearize(
    regex: Regex,
    *,
    max_states: int,
    max_sequences: int = 4096,
) -> Linearization | None:
    """Rewrite ``regex`` into a union of character-class sequences.

    Returns ``None`` when the regex cannot be expressed that way (it
    contains an unbounded repetition) or when the expansion would exceed
    ``max_states`` total Shift-And states — the caller passes ``2x`` the
    original state count per the Fig. 9 decision rule.

    Empty sequences (the regex matching the empty string) are rejected:
    the hardware LNFA has a single non-trivial final state.
    """
    budget = _LinearBudget(max_states=max_states, max_sequences=max_sequences)
    try:
        seqs = _linearize(regex, budget)
    except _BudgetExceeded:
        return None
    if seqs is None:
        return None
    unique = _dedupe(seqs)
    if any(len(s) == 0 for s in unique):
        return None
    return Linearization(sequences=tuple(unique), total_states=0)


class _BudgetExceeded(Exception):
    pass


@dataclass
class _LinearBudget:
    max_states: int
    max_sequences: int

    def charge(self, seqs: list[tuple[CharClass, ...]]) -> list[tuple[CharClass, ...]]:
        """Enforce the budget on a candidate sequence set."""
        if len(seqs) > self.max_sequences:
            raise _BudgetExceeded
        if sum(len(s) for s in seqs) > self.max_states:
            raise _BudgetExceeded
        return seqs


def _linearize(
    regex: Regex, budget: _LinearBudget
) -> list[tuple[CharClass, ...]] | None:
    if isinstance(regex, Empty):
        return []
    if isinstance(regex, Epsilon):
        return [()]
    if isinstance(regex, Lit):
        return [(regex.cc,)]
    if isinstance(regex, (Star, Plus)):
        return None  # unbounded: not expressible as a finite union
    if isinstance(regex, Opt):
        inner = _linearize(regex.inner, budget)
        if inner is None:
            return None
        return budget.charge(_dedupe([()] + inner))
    if isinstance(regex, Alt):
        out: list[tuple[CharClass, ...]] = []
        for p in regex.parts:
            sub = _linearize(p, budget)
            if sub is None:
                return None
            out.extend(sub)
            budget.charge(out)
        return _dedupe(out)
    if isinstance(regex, Concat):
        out = [()]
        for p in regex.parts:
            sub = _linearize(p, budget)
            if sub is None:
                return None
            out = budget.charge([a + b for a in out for b in sub])
        return _dedupe(out)
    if isinstance(regex, Repeat):
        if regex.hi is None:
            return None
        inner = _linearize(regex.inner, budget)
        if inner is None:
            return None
        # Sequences of length lo..hi repetitions of the inner alternatives.
        prefix = [()]
        for _ in range(regex.lo):
            prefix = budget.charge([a + b for a in prefix for b in inner])
        out = list(prefix)
        tail = prefix
        for _ in range(regex.hi - regex.lo):
            tail = budget.charge([a + b for a in tail for b in inner])
            out.extend(tail)
            budget.charge(out)
        return _dedupe(out)
    raise TypeError(f"unknown regex node: {type(regex).__name__}")


def _dedupe(
    seqs: list[tuple[CharClass, ...]]
) -> list[tuple[CharClass, ...]]:
    seen: set[tuple[CharClass, ...]] = set()
    out: list[tuple[CharClass, ...]] = []
    for s in seqs:
        if s not in seen:
            seen.add(s)
            out.append(s)
    return out
