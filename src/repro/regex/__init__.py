"""Regex frontend: character classes, AST, parser, rewriting, analysis.

This subpackage implements everything the RAP compiler needs to know about
regular expressions before an automaton is built:

* :mod:`repro.regex.charclass` — predicates over the byte alphabet.
* :mod:`repro.regex.ast` — the regex abstract syntax tree.
* :mod:`repro.regex.parser` — a PCRE-subset parser.
* :mod:`repro.regex.rewrite` — the rewriting passes of Section 4 of the
  paper (unfolding, bounded-repetition rewriting, linearization).
* :mod:`repro.regex.analysis` — structural analysis used by the Fig. 9
  decision graph (sizes, bounded-repetition census, linearizability).
"""

from repro.regex.ast import (
    Alt,
    Concat,
    Empty,
    Epsilon,
    Lit,
    Opt,
    Plus,
    Regex,
    Repeat,
    Star,
)
from repro.regex.charclass import ALPHABET_SIZE, CharClass
from repro.regex.parser import RegexSyntaxError, parse

__all__ = [
    "ALPHABET_SIZE",
    "Alt",
    "CharClass",
    "Concat",
    "Empty",
    "Epsilon",
    "Lit",
    "Opt",
    "Plus",
    "Regex",
    "RegexSyntaxError",
    "Repeat",
    "Star",
    "parse",
]
