"""Structural regex analysis feeding the Fig. 9 compilation decision graph.

The compiler chooses between NBVA, LNFA, and NFA per regex; that choice is
driven by cheap structural facts computed here: the bounded-repetition
census (how many repetitions survive unfolding, how large their bit vectors
would be), counting compatibility (can a surviving repetition actually be
tracked with a bit vector), and linearizability (can the regex be rewritten
into character-class sequences within the 2x state blowup allowance).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.regex.ast import (
    Alt,
    Concat,
    Empty,
    Epsilon,
    Lit,
    Opt,
    Plus,
    Regex,
    Repeat,
    Star,
)
from repro.regex.rewrite import Linearization, linearize, unfold


@dataclass(frozen=True)
class BoundedRep:
    """One bounded repetition surviving the unfolding rewriting."""

    lo: int
    hi: int
    body_positions: int
    body_is_charclass: bool
    counting_compatible: bool

    @property
    def bv_size(self) -> int:
        """Bit-vector width needed to track this repetition (its upper
        bound; the ``r{m} r{0,n-m}`` rewrite splits it into two vectors of
        combined size ``n``)."""
        return self.hi

    @property
    def unfolded_positions(self) -> int:
        """Positions a pure NFA needs for this repetition."""
        return self.body_positions * self.hi


@dataclass(frozen=True)
class RegexProfile:
    """Everything the decision graph needs to know about one regex."""

    literal_count: int
    unfolded_size: int
    nullable: bool
    has_unbounded: bool
    bounded_reps: tuple[BoundedRep, ...] = field(default_factory=tuple)
    linearization: Linearization | None = None

    @property
    def has_countable_reps(self) -> bool:
        """True iff at least one surviving repetition can use a bit vector."""
        return any(r.counting_compatible for r in self.bounded_reps)

    @property
    def all_reps_countable(self) -> bool:
        """True iff every surviving repetition is countable."""
        return all(r.counting_compatible for r in self.bounded_reps)

    @property
    def total_bv_bits(self) -> int:
        """Bit-vector storage the countable repetitions need."""
        return sum(r.bv_size for r in self.bounded_reps if r.counting_compatible)

    @property
    def is_linearizable(self) -> bool:
        """True iff linearization succeeded within budget."""
        return self.linearization is not None


def analyze(
    regex: Regex,
    *,
    unfold_threshold: int,
    lnfa_blowup: float = 2.0,
    max_lnfa_sequences: int = 4096,
) -> RegexProfile:
    """Compute the :class:`RegexProfile` of ``regex``.

    ``unfold_threshold`` is the NBVA compiler's unfolding threshold
    (Section 4.1); ``lnfa_blowup`` is the Fig. 9 allowance: a regex is
    LNFA-eligible only if linearization keeps the state count within
    ``lnfa_blowup`` times the unfolded Glushkov size.
    """
    unfolded = unfold(regex, unfold_threshold)
    reps = _census(unfolded)
    base_states = max(regex.unfolded_size(), 1)
    lin = linearize(
        regex,
        max_states=int(base_states * lnfa_blowup),
        max_sequences=max_lnfa_sequences,
    )
    return RegexProfile(
        literal_count=regex.literal_count(),
        unfolded_size=regex.unfolded_size(),
        nullable=regex.nullable(),
        has_unbounded=has_unbounded(regex),
        bounded_reps=tuple(reps),
        linearization=lin,
    )


def has_unbounded(regex: Regex) -> bool:
    """True iff the regex contains ``*``, ``+``, or ``r{m,}``."""
    for node in regex.walk():
        if isinstance(node, (Star, Plus)):
            return True
        if isinstance(node, Repeat) and node.hi is None:
            return True
    return False


def max_finite_bound(regex: Regex) -> int:
    """Largest finite repetition upper bound anywhere in the tree (0 if
    there is no bounded repetition)."""
    best = 0
    for node in regex.walk():
        if isinstance(node, Repeat) and node.hi is not None:
            best = max(best, node.hi)
    return best


def counting_compatible(rep: Repeat) -> bool:
    """Can ``rep`` be tracked with a bit-vector counter group?

    The NBVA construction requires (a) a non-nullable body — a nullable
    body lets the counter stall, which neither the shift-based hardware nor
    the classical NCA restriction supports — and (b) no *nested* surviving
    repetition or unbounded loop crossing iteration boundaries in a way the
    single shift action cannot express.  Stars strictly inside the body are
    fine (they become copy self-loops within the iteration); nested counted
    repetitions are not (no nested counter groups in the hardware).
    """
    if rep.inner.nullable():
        return False
    for node in rep.inner.walk():
        if isinstance(node, Repeat):
            return False  # nested surviving bounded repetition
    return True


def _census(unfolded: Regex) -> list[BoundedRep]:
    """Collect every repetition that survived unfolding, outermost-first.

    The body of a surviving counted repetition is not descended into for
    further census entries: nested repetitions make the outer one
    non-countable and are accounted for by its ``counting_compatible``
    flag.
    """
    out: list[BoundedRep] = []
    _census_walk(unfolded, out)
    return out


def _census_walk(node: Regex, out: list[BoundedRep]) -> None:
    if isinstance(node, Repeat):
        assert node.hi is not None, "unfolding must remove unbounded repeats"
        out.append(
            BoundedRep(
                lo=node.lo,
                hi=node.hi,
                body_positions=node.inner.literal_count(),
                body_is_charclass=isinstance(node.inner, Lit),
                counting_compatible=counting_compatible(node),
            )
        )
        return
    for child in node.children():
        _census_walk(child, out)


def describe(regex: Regex) -> str:
    """One-line human-readable structural summary (used in reports)."""
    kinds = {type(n).__name__ for n in regex.walk()}
    reps = max_finite_bound(regex)
    return (
        f"positions={regex.literal_count()} unfolded={regex.unfolded_size()} "
        f"max_bound={reps} unbounded={has_unbounded(regex)} "
        f"nodes={','.join(sorted(kinds))}"
    )


# Re-export the node types analysis callers commonly need alongside profiles.
__all__ = [
    "Alt",
    "BoundedRep",
    "Concat",
    "Empty",
    "Epsilon",
    "Lit",
    "Opt",
    "Plus",
    "RegexProfile",
    "Repeat",
    "Star",
    "analyze",
    "counting_compatible",
    "describe",
    "has_unbounded",
    "max_finite_bound",
]
