"""PCRE-subset regex parser.

Supported syntax (the subset exercised by the paper's seven rule sets):

* literals and escaped metacharacters (``\\.``, ``\\*``, ...)
* character escapes ``\\n \\r \\t \\f \\v \\0 \\xHH``
* class escapes ``\\d \\D \\w \\W \\s \\S``
* the any-symbol predicate ``.`` (all-input, as in automata processors)
* bracket expressions ``[...]`` and ``[^...]`` with ranges and escapes
* grouping ``(...)`` and non-capturing ``(?:...)`` (treated identically:
  the hardware has no capture semantics)
* alternation ``|``
* quantifiers ``*``, ``+``, ``?``, ``{m}``, ``{m,}``, ``{m,n}``; lazy and
  possessive modifiers (``*?``, ``++`` ...) are accepted and ignored since
  match *reporting* semantics do not depend on greediness
* optional anchors ``^`` / ``$`` at the outermost ends via
  :func:`parse_anchored`

Anything else (backreferences, lookaround, inline flags) raises
:class:`RegexSyntaxError` — the paper's compiler likewise restricts itself
to the classical regular fragment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.regex import ast
from repro.regex.ast import Regex
from repro.regex.charclass import DIGITS, SPACE, WORD, CharClass

_METACHARS = set(".^$*+?()[]{}|\\")

_CHAR_ESCAPES = {
    "n": ord("\n"),
    "r": ord("\r"),
    "t": ord("\t"),
    "f": ord("\f"),
    "v": ord("\v"),
    "a": 0x07,
    "e": 0x1B,
    "0": 0x00,
}

_CLASS_ESCAPES = {
    "d": DIGITS,
    "D": ~DIGITS,
    "w": WORD,
    "W": ~WORD,
    "s": SPACE,
    "S": ~SPACE,
}

# Repetition bounds above this are rejected as pathological rather than
# silently accepted; the paper's largest observed bound class is ~1024
# (Example 4.3) and the hardware caps a single BV at 4064 bits.
MAX_REPEAT_BOUND = 1 << 16


class RegexSyntaxError(ValueError):
    """Raised when a pattern is outside the supported PCRE subset."""

    def __init__(self, message: str, pattern: str, pos: int):
        super().__init__(f"{message} at position {pos} in {pattern!r}")
        self.pattern = pattern
        self.pos = pos


@dataclass(frozen=True)
class AnchoredPattern:
    """A parsed pattern plus its outermost anchoring flags."""

    regex: Regex
    anchored_start: bool = False
    anchored_end: bool = False
    case_insensitive: bool = False


def parse(pattern: str) -> Regex:
    """Parse ``pattern`` into a :class:`~repro.regex.ast.Regex`.

    Anchors are rejected; use :func:`parse_anchored` to accept them.
    """
    parsed = parse_anchored(pattern)
    if parsed.anchored_start or parsed.anchored_end:
        raise RegexSyntaxError(
            "anchors are not supported here (use parse_anchored)", pattern, 0
        )
    return parsed.regex


def parse_anchored(pattern: str) -> AnchoredPattern:
    """Parse ``pattern``, allowing ``^`` / ``$`` at the outermost ends and
    a leading ``(?i)`` flag (PCRE's case-insensitive option, the parser's
    rendering of Snort-style ``nocase``)."""
    body = pattern
    case_insensitive = body.startswith("(?i)")
    if case_insensitive:
        body = body[len("(?i)") :]
    anchored_start = body.startswith("^")
    anchored_end = body.endswith("$") and not body.endswith("\\$")
    if anchored_start:
        body = body[1:]
    if anchored_end:
        body = body[:-1]
    regex = _Parser(body, full_pattern=pattern).parse()
    if case_insensitive:
        regex = _fold_case(regex)
    return AnchoredPattern(
        regex, anchored_start, anchored_end, case_insensitive
    )


def _fold_case(regex: Regex) -> Regex:
    """Close every literal class under ASCII case swapping."""
    from repro.regex import ast as _ast
    from repro.regex.ast import (
        Alt,
        Concat,
        Lit,
        Opt,
        Plus,
        Repeat,
        Star,
    )
    from repro.regex.charclass import case_folded

    if isinstance(regex, Lit):
        return _ast.lit(case_folded(regex.cc))
    if isinstance(regex, Concat):
        return _ast.concat(*(_fold_case(p) for p in regex.parts))
    if isinstance(regex, Alt):
        return _ast.alt(*(_fold_case(p) for p in regex.parts))
    if isinstance(regex, Star):
        return _ast.star(_fold_case(regex.inner))
    if isinstance(regex, Plus):
        return _ast.plus(_fold_case(regex.inner))
    if isinstance(regex, Opt):
        return _ast.opt(_fold_case(regex.inner))
    if isinstance(regex, Repeat):
        return _ast.repeat(_fold_case(regex.inner), regex.lo, regex.hi)
    return regex  # Epsilon / Empty


class _Parser:
    """Recursive-descent parser over a pattern string."""

    def __init__(self, text: str, full_pattern: str | None = None):
        self._text = text
        self._pos = 0
        self._pattern = full_pattern if full_pattern is not None else text

    # -- driver --------------------------------------------------------------

    def parse(self) -> Regex:
        """Parse the whole text into a Regex."""
        regex = self._alternation()
        if self._pos != len(self._text):
            self._fail(f"unexpected {self._peek()!r}")
        return regex

    # -- grammar productions ---------------------------------------------

    def _alternation(self) -> Regex:
        branches = [self._concatenation()]
        while self._accept("|"):
            branches.append(self._concatenation())
        return ast.alt(*branches) if len(branches) > 1 else branches[0]

    def _concatenation(self) -> Regex:
        parts: list[Regex] = []
        while self._pos < len(self._text) and self._peek() not in "|)":
            parts.append(self._repetition())
        return ast.concat(*parts) if parts else ast.EPSILON

    def _repetition(self) -> Regex:
        atom = self._atom()
        while True:
            ch = self._peek()
            if ch == "*":
                self._pos += 1
                atom = ast.star(atom)
            elif ch == "+":
                self._pos += 1
                atom = ast.plus(atom)
            elif ch == "?":
                self._pos += 1
                atom = ast.opt(atom)
            elif ch == "{" and self._looks_like_bound():
                lo, hi = self._bounds()
                atom = ast.repeat(atom, lo, hi)
            else:
                return atom
            self._skip_quantifier_modifier()

    def _atom(self) -> Regex:
        ch = self._peek()
        if ch == "":
            self._fail("unexpected end of pattern")
        if ch == "(":
            return self._group()
        if ch == "[":
            return ast.lit(self._bracket_class())
        if ch == ".":
            self._pos += 1
            return ast.lit(CharClass.any())
        if ch == "\\":
            return ast.lit(self._escape())
        if ch in "*+?":
            self._fail(f"quantifier {ch!r} with nothing to repeat")
        if ch in "^$":
            self._fail(f"inner anchor {ch!r} is not supported")
        if ch == "{" and self._looks_like_bound():
            self._fail("repetition bound with nothing to repeat")
        self._pos += 1
        return ast.lit(CharClass.of(ch))

    def _group(self) -> Regex:
        start = self._pos
        self._expect("(")
        if self._accept("?"):
            if not self._accept(":"):
                self._fail("only non-capturing (?:...) groups are supported", start)
        inner = self._alternation()
        if not self._accept(")"):
            self._fail("unbalanced parenthesis", start)
        return inner

    # -- quantifier helpers ----------------------------------------------

    def _looks_like_bound(self) -> bool:
        """True iff the text at the cursor is a ``{m[,[n]]}`` bound.

        A lone ``{`` that is not a bound is treated as a literal, matching
        PCRE behaviour for e.g. ``a{x}``.
        """
        text, i = self._text, self._pos
        if i >= len(text) or text[i] != "{":
            return False
        j = i + 1
        while j < len(text) and text[j].isdigit():
            j += 1
        if j == i + 1:
            return False
        if j < len(text) and text[j] == ",":
            j += 1
            while j < len(text) and text[j].isdigit():
                j += 1
        return j < len(text) and text[j] == "}"

    def _bounds(self) -> tuple[int, int | None]:
        start = self._pos
        self._expect("{")
        lo = self._integer()
        hi: int | None = lo
        if self._accept(","):
            hi = self._integer() if self._peek().isdigit() else None
        if not self._accept("}"):
            self._fail("malformed repetition bound", start)
        if hi is not None and hi < lo:
            self._fail(f"inverted repetition bound {{{lo},{hi}}}", start)
        if lo > MAX_REPEAT_BOUND or (hi or 0) > MAX_REPEAT_BOUND:
            self._fail(f"repetition bound exceeds {MAX_REPEAT_BOUND}", start)
        return lo, hi

    def _skip_quantifier_modifier(self) -> None:
        """Consume a lazy/possessive modifier; greediness is irrelevant to
        the all-match-positions semantics used by automata processors."""
        ch = self._peek()
        if ch != "" and ch in "?+":
            self._pos += 1

    def _integer(self) -> int:
        start = self._pos
        while self._peek().isdigit():
            self._pos += 1
        if self._pos == start:
            self._fail("expected an integer")
        return int(self._text[start : self._pos])

    # -- classes and escapes -----------------------------------------------

    def _bracket_class(self) -> CharClass:
        start = self._pos
        self._expect("[")
        negated = self._accept("^")
        result = CharClass.empty()
        first = True
        while True:
            ch = self._peek()
            if ch == "":
                self._fail("unterminated character class", start)
            if ch == "]" and not first:
                self._pos += 1
                break
            first = False
            item = self._class_item()
            if (
                isinstance(item, int)
                and self._peek() == "-"
                and self._peek(1) not in ("]", "")
            ):
                self._pos += 1  # consume '-'
                hi = self._class_item()
                if not isinstance(hi, int):
                    self._fail("character class range with a class escape endpoint")
                if hi < item:
                    self._fail(f"inverted class range {chr(item)}-{chr(hi)}")
                result |= CharClass.range(item, hi)
            elif isinstance(item, int):
                result |= CharClass.of(item)
            else:
                result |= item
        return ~result if negated else result

    def _class_item(self) -> int | CharClass:
        """One item inside ``[...]``: a byte value or a class escape."""
        ch = self._peek()
        if ch == "\\":
            self._pos += 1
            esc = self._peek()
            if esc == "":
                self._fail("dangling backslash in character class")
            if esc in _CLASS_ESCAPES:
                self._pos += 1
                return _CLASS_ESCAPES[esc]
            return self._single_char_escape()
        self._pos += 1
        return ord(ch)

    def _escape(self) -> CharClass:
        self._expect("\\")
        esc = self._peek()
        if esc == "":
            self._fail("dangling backslash")
        if esc in _CLASS_ESCAPES:
            self._pos += 1
            return _CLASS_ESCAPES[esc]
        return CharClass.of(self._single_char_escape())

    def _single_char_escape(self) -> int:
        """An escape denoting a single byte; the cursor sits on the escape
        character (after the backslash)."""
        esc = self._peek()
        self._pos += 1
        if esc == "x":
            hex_digits = self._text[self._pos : self._pos + 2]
            if len(hex_digits) != 2 or not all(
                c in "0123456789abcdefABCDEF" for c in hex_digits
            ):
                self._fail("malformed \\xHH escape")
            self._pos += 2
            return int(hex_digits, 16)
        if esc in _CHAR_ESCAPES:
            return _CHAR_ESCAPES[esc]
        if esc in _METACHARS or not esc.isalnum():
            return ord(esc)
        self._fail(f"unsupported escape \\{esc}")
        raise AssertionError("unreachable")

    # -- low-level cursor ------------------------------------------------

    def _peek(self, ahead: int = 0) -> str:
        i = self._pos + ahead
        return self._text[i] if i < len(self._text) else ""

    def _accept(self, ch: str) -> bool:
        if self._peek() == ch:
            self._pos += 1
            return True
        return False

    def _expect(self, ch: str) -> None:
        if not self._accept(ch):
            self._fail(f"expected {ch!r}")

    def _fail(self, message: str, pos: int | None = None) -> None:
        raise RegexSyntaxError(
            message, self._pattern, self._pos if pos is None else pos
        )
