"""Character classes: predicates over the 8-bit byte alphabet.

A character class is the ``sigma`` of the paper's regex grammar
``r ::= eps | sigma | (r|r) | r.r | r* | r{m,n}`` — a subset of the
256-symbol byte alphabet.  Automata processors store character classes in
CAM columns, so the class abstraction is the shared currency between the
regex frontend, the automata models, and the hardware encoding layer.

The representation is a single Python integer used as a 256-bit bitmask:
bit ``b`` is set iff byte value ``b`` is in the class.  Integers make the
Boolean algebra (union/intersection/negation) and the per-input-symbol
membership test O(1) and keep the class hashable and immutable.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable, Iterator
from functools import lru_cache, reduce

ALPHABET_SIZE = 256
_FULL_MASK = (1 << ALPHABET_SIZE) - 1

# Characters that must be escaped when printing a class member inside [...].
_CLASS_ESCAPES = {ord("\\"), ord("]"), ord("^"), ord("-")}
# Characters that must be escaped when printing a single-symbol class bare.
_BARE_ESCAPES = set(b"\\.^$*+?()[]{}|")


class CharClass:
    """An immutable predicate over the byte alphabet ``{0, ..., 255}``.

    Instances support the Boolean set algebra (``|``, ``&``, ``~``, ``-``),
    containment tests for byte values, and iteration over members.  All
    constructors normalize to the canonical 256-bit mask, so equality and
    hashing are structural.
    """

    __slots__ = ("_mask",)

    def __init__(self, mask: int = 0):
        if not 0 <= mask <= _FULL_MASK:
            raise ValueError(f"character class mask out of range: {mask:#x}")
        self._mask = mask

    # -- constructors ------------------------------------------------------

    @classmethod
    def empty(cls) -> "CharClass":
        """The class matching no symbol."""
        return _EMPTY

    @classmethod
    def any(cls) -> "CharClass":
        """The class matching every byte, i.e. the predicate Sigma (PCRE ``.``
        without the newline exclusion; automata processors treat ``.`` as
        all-input)."""
        return _ANY

    @classmethod
    def of(cls, *symbols: int | str | bytes) -> "CharClass":
        """Build a class from individual symbols.

        Symbols may be byte values, one-character strings, or single bytes.
        """
        mask = 0
        for sym in symbols:
            mask |= 1 << _to_byte(sym)
        return cls(mask)

    @classmethod
    def range(cls, lo: int | str, hi: int | str) -> "CharClass":
        """Build a contiguous range ``[lo-hi]``, both ends inclusive."""
        lo_b, hi_b = _to_byte(lo), _to_byte(hi)
        if lo_b > hi_b:
            raise ValueError(f"invalid range: {lo_b}-{hi_b}")
        width = hi_b - lo_b + 1
        return cls(((1 << width) - 1) << lo_b)

    @classmethod
    def from_iterable(cls, symbols: Iterable[int | str | bytes]) -> "CharClass":
        """Build a class from an iterable of symbols."""
        return cls.of(*symbols)

    @classmethod
    def union_all(cls, classes: Iterable["CharClass"]) -> "CharClass":
        """Union of an iterable of classes (empty iterable yields empty)."""
        return reduce(lambda a, b: a | b, classes, _EMPTY)

    # -- predicates --------------------------------------------------------

    @property
    def mask(self) -> int:
        """The canonical 256-bit membership mask."""
        return self._mask

    def matches(self, symbol: int | str | bytes) -> bool:
        """True iff ``symbol`` is a member of this class."""
        return bool(self._mask >> _to_byte(symbol) & 1)

    def is_empty(self) -> bool:
        """True iff nothing is placed yet."""
        return self._mask == 0

    def is_any(self) -> bool:
        """True iff the class matches every byte."""
        return self._mask == _FULL_MASK

    def is_singleton(self) -> bool:
        """True iff the class contains exactly one symbol."""
        m = self._mask
        return m != 0 and m & (m - 1) == 0

    def __len__(self) -> int:
        return self._mask.bit_count()

    def __contains__(self, symbol: object) -> bool:
        if isinstance(symbol, (int, str, bytes)):
            return self.matches(symbol)
        return False

    def __iter__(self) -> Iterator[int]:
        mask = self._mask
        while mask:
            low = mask & -mask
            yield low.bit_length() - 1
            mask ^= low

    def symbols(self) -> list[int]:
        """All member byte values, ascending."""
        return list(self)

    def sample(self) -> int:
        """An arbitrary member (the smallest); raises on the empty class."""
        if not self._mask:
            raise ValueError("empty character class has no sample symbol")
        return (self._mask & -self._mask).bit_length() - 1

    def ranges(self) -> list[tuple[int, int]]:
        """The class as maximal inclusive ``(lo, hi)`` runs, ascending."""
        runs: list[tuple[int, int]] = []
        start = None
        for b in range(ALPHABET_SIZE):
            member = bool(self._mask >> b & 1)
            if member and start is None:
                start = b
            elif not member and start is not None:
                runs.append((start, b - 1))
                start = None
        if start is not None:
            runs.append((start, ALPHABET_SIZE - 1))
        return runs

    # -- algebra -----------------------------------------------------------

    def __or__(self, other: "CharClass") -> "CharClass":
        return CharClass(self._mask | other._mask)

    def __and__(self, other: "CharClass") -> "CharClass":
        return CharClass(self._mask & other._mask)

    def __sub__(self, other: "CharClass") -> "CharClass":
        return CharClass(self._mask & ~other._mask & _FULL_MASK)

    def __xor__(self, other: "CharClass") -> "CharClass":
        return CharClass(self._mask ^ other._mask)

    def __invert__(self) -> "CharClass":
        return CharClass(~self._mask & _FULL_MASK)

    def overlaps(self, other: "CharClass") -> bool:
        """True iff the classes share a member."""
        return bool(self._mask & other._mask)

    def issubset(self, other: "CharClass") -> bool:
        """True iff every member is also in ``other``."""
        return self._mask & ~other._mask == 0

    # -- dunder plumbing ----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CharClass) and self._mask == other._mask

    def __hash__(self) -> int:
        return hash(("CharClass", self._mask))

    def __bool__(self) -> bool:
        return self._mask != 0

    def __repr__(self) -> str:
        return f"CharClass({self.to_pattern()!r})"

    # -- pretty printing -----------------------------------------------------

    def to_pattern(self) -> str:
        """Render as a PCRE-style pattern fragment.

        Singletons render bare (escaped if a metacharacter); everything else
        renders as a bracket expression, negated if that is shorter.
        """
        if self.is_any():
            return "."
        if self.is_empty():
            return "[]"  # not valid PCRE, but unambiguous for diagnostics
        if self.is_singleton():
            return _render_bare(self.sample())
        if len(self) > ALPHABET_SIZE // 2:
            inner = "".join(_render_run(lo, hi) for lo, hi in (~self).ranges())
            return f"[^{inner}]"
        inner = "".join(_render_run(lo, hi) for lo, hi in self.ranges())
        return f"[{inner}]"


def _to_byte(symbol: int | str | bytes) -> int:
    """Normalize a symbol (int, 1-char str, or 1-byte bytes) to a byte value."""
    if isinstance(symbol, int):
        value = symbol
    elif isinstance(symbol, str):
        if len(symbol) != 1:
            raise ValueError(f"expected a single character, got {symbol!r}")
        value = ord(symbol)
    elif isinstance(symbol, bytes):
        if len(symbol) != 1:
            raise ValueError(f"expected a single byte, got {symbol!r}")
        value = symbol[0]
    else:
        raise TypeError(f"unsupported symbol type: {type(symbol).__name__}")
    if not 0 <= value < ALPHABET_SIZE:
        raise ValueError(f"symbol out of byte range: {value}")
    return value


def _render_member(b: int) -> str:
    """Render a byte value for display inside a bracket expression."""
    if b in _CLASS_ESCAPES:
        return "\\" + chr(b)
    if 0x20 <= b < 0x7F:
        return chr(b)
    return f"\\x{b:02x}"


def _render_bare(b: int) -> str:
    """Render a byte value for display outside a bracket expression."""
    if b in _BARE_ESCAPES:
        return "\\" + chr(b)
    if 0x20 <= b < 0x7F:
        return chr(b)
    return f"\\x{b:02x}"


def _render_run(lo: int, hi: int) -> str:
    if lo == hi:
        return _render_member(lo)
    if hi == lo + 1:
        return _render_member(lo) + _render_member(hi)
    return f"{_render_member(lo)}-{_render_member(hi)}"


@lru_cache(maxsize=None)
def _members_of_mask(mask: int) -> tuple[int, ...]:
    out = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return tuple(out)


def members(cc: CharClass) -> tuple[int, ...]:
    """All member byte values of ``cc``, ascending, cached per mask.

    Rule sets reuse a small population of character classes (digits,
    word characters, a handful of literals) across thousands of states,
    so the byte expansion is memoized on the canonical 256-bit mask.
    """
    return _members_of_mask(cc.mask)


# Interned label tables keyed on the class signature (the exact
# (index, mask) assignment list plus the table size).  Rule sets repeat
# the same small structures — identical literal keywords, shared
# prefixes, cloned classes — so many units expand to bit-identical
# 256-entry tables; interning stores each distinct table once per
# process instead of once per unit.  Bounded so long-lived multi-ruleset
# processes cannot accumulate tables without limit.
_INTERN_CAP = 1024
_interned_tables: OrderedDict[
    tuple[int | None, tuple[tuple[int, int], ...]], tuple[int, ...]
] = OrderedDict()


def interned_label_masks(
    assignments: Iterable[tuple[int, CharClass]], *, size: int | None = None
) -> tuple[int, ...]:
    """:func:`label_masks` as a shared immutable tuple, deduplicated
    across call sites via a bounded interning cache.

    Two units whose class assignments are identical (same indices, same
    class masks, same table size) get the *same* tuple object back, so a
    ruleset full of structurally repeated patterns holds one table, not
    one per unit.
    """
    pairs = tuple((index, cc.mask) for index, cc in assignments)
    key = (size, pairs)
    cached = _interned_tables.get(key)
    if cached is not None:
        _interned_tables.move_to_end(key)
        return cached
    labels = [0] * (ALPHABET_SIZE if size is None else size)
    for index, mask in pairs:
        bit = 1 << index
        for byte in _members_of_mask(mask):
            labels[byte] |= bit
    table = tuple(labels)
    _interned_tables[key] = table
    while len(_interned_tables) > _INTERN_CAP:
        _interned_tables.popitem(last=False)
    return table


def label_masks(
    assignments: Iterable[tuple[int, CharClass]], *, size: int | None = None
) -> list[int]:
    """Per-byte label masks: ``labels[b]`` has bit ``i`` set for every
    assignment ``(i, cc)`` with ``b`` in ``cc``.

    This is the one charclass->byte-table expansion every bitset engine
    (NFA, Shift-And, bit-serial, DFA, NBVA) performs while building its
    state-matching table; ``size`` defaults to the full byte alphabet.
    Callers that can hold an immutable table should prefer
    :func:`interned_label_masks`, which dedupes identical tables.
    """
    return list(interned_label_masks(assignments, size=size))


def case_folded(cc: CharClass) -> CharClass:
    """The class closed under ASCII case swapping (``(?i)`` semantics)."""
    mask = cc.mask
    extra = 0
    for b in cc:
        if 0x41 <= b <= 0x5A:  # A-Z
            extra |= 1 << (b + 0x20)
        elif 0x61 <= b <= 0x7A:  # a-z
            extra |= 1 << (b - 0x20)
    return CharClass(mask | extra)


_EMPTY = CharClass(0)
_ANY = CharClass(_FULL_MASK)

# Named classes used by the parser for PCRE escapes.
DIGITS = CharClass.range("0", "9")
WORD = (
    CharClass.range("a", "z")
    | CharClass.range("A", "Z")
    | DIGITS
    | CharClass.of("_")
)
SPACE = CharClass.of(" ", "\t", "\n", "\r", "\x0b", "\x0c")
