"""Bitset simulation of plain homogeneous NFAs.

This is the software model of the AP-style execution loop (Section 2.2):
each input symbol triggers a *state-matching* phase (compare the symbol
against every state's character class — here a precomputed per-byte label
mask) and a *state-transition* phase (OR together the successor masks of
the active states).  Active-state sets are Python integers used as
bitsets, which keeps the inner loop allocation-free.

The simulator also exposes per-cycle activity statistics (how many states
were active, how many matched the symbol) because the hardware simulators
derive their energy accounting from exactly these counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.glushkov import Automaton, EdgeAction
from repro.regex.charclass import ALPHABET_SIZE


@dataclass
class StepStats:
    """Aggregate activity counters accumulated over a run."""

    cycles: int = 0
    active_states: int = 0  # sum over cycles of |active set|
    matched_states: int = 0  # sum over cycles of |states matching the symbol|
    reports: int = 0

    @property
    def mean_active(self) -> float:
        """Average number of active states/bits per cycle."""
        return self.active_states / self.cycles if self.cycles else 0.0

    def merge(self, other: "StepStats") -> "StepStats":
        """Associative combination of two runs' counters (all integers,
        so merging is exact — the parallel engine relies on this)."""
        return StepStats(
            cycles=self.cycles + other.cycles,
            active_states=self.active_states + other.active_states,
            matched_states=self.matched_states + other.matched_states,
            reports=self.reports + other.reports,
        )

    __add__ = merge


class NFASimulator:
    """Unanchored multi-match simulation of a plain homogeneous NFA.

    Reports the 0-based index of every input byte that completes a match.
    """

    def __init__(self, automaton: Automaton):
        if not automaton.is_plain:
            raise ValueError(
                "NFASimulator only handles plain automata; use NBVASimulator"
            )
        self._automaton = automaton
        n = automaton.state_count
        self._initial = _mask(automaton.initial)
        self._final = _mask(automaton.finals)
        self._labels = _label_masks(automaton)
        self._succ = [0] * n
        for edge in automaton.edges:
            assert edge.action is EdgeAction.ACTIVATE
            self._succ[edge.src] |= 1 << edge.dst

    @property
    def automaton(self) -> Automaton:
        """The automaton this simulator executes."""
        return self._automaton

    def find_matches(
        self,
        data: bytes,
        stats: StepStats | None = None,
        *,
        anchored_start: bool = False,
        anchored_end: bool = False,
        stats_from: int = 0,
    ) -> list[int]:
        """All end positions of non-empty matches in ``data``.

        ``anchored_start`` makes the initial states start-of-data STEs
        (available only for the first symbol); ``anchored_end`` reports
        only matches that consume the final symbol.  ``stats_from`` turns
        the first bytes into a warm-up prefix: they drive the active set
        but are excluded from ``stats`` and reporting (the parallel
        engine's overlap-window stitching).
        """
        return list(
            self.iter_matches(
                data,
                stats,
                anchored_start=anchored_start,
                anchored_end=anchored_end,
                stats_from=stats_from,
            )
        )

    def iter_matches(
        self,
        data: bytes,
        stats: StepStats | None = None,
        *,
        anchored_start: bool = False,
        anchored_end: bool = False,
        stats_from: int = 0,
    ):
        """Generator over match end positions; optionally fills ``stats``."""
        succ = self._succ
        labels = self._labels
        initial = self._initial
        final = self._final
        last = len(data) - 1
        active = 0
        for i, byte in enumerate(data):
            # state-transition from the previous cycle, plus the initial
            # states (every cycle when unanchored, first cycle only when
            # start-anchored)
            next_avail = 0 if anchored_start and i else initial
            a = active
            while a:
                low = a & -a
                next_avail |= succ[low.bit_length() - 1]
                a ^= low
            # state-matching against the current symbol
            active = next_avail & labels[byte]
            if i < stats_from:
                continue
            if stats is not None:
                stats.cycles += 1
                stats.active_states += active.bit_count()
                stats.matched_states += labels[byte].bit_count()
            if active & final and (not anchored_end or i == last):
                if stats is not None:
                    stats.reports += 1
                yield i

    def count_matches(self, data: bytes) -> int:
        """Number of non-empty matches in ``data``."""
        return sum(1 for _ in self.iter_matches(data))


def _mask(pids) -> int:
    out = 0
    for pid in pids:
        out |= 1 << pid
    return out


def _label_masks(automaton: Automaton) -> list[int]:
    """``labels[b]`` has bit ``p`` set iff byte ``b`` matches position ``p``."""
    labels = [0] * ALPHABET_SIZE
    for pos in automaton.positions:
        bit = 1 << pos.pid
        for byte in pos.cc:
            labels[byte] |= bit
    return labels
