"""Bitset simulation of plain homogeneous NFAs.

This is the software model of the AP-style execution loop (Section 2.2):
each input symbol triggers a *state-matching* phase (compare the symbol
against every state's character class — here a precomputed per-byte label
mask) and a *state-transition* phase (OR together the successor masks of
the active states).  Active-state sets are Python integers used as
bitsets, which keeps the inner loop allocation-free.

The loop itself lives in the execution-core layer: this module lowers an
automaton to a :class:`~repro.core.program.KernelProgram` (a ``GATHER``
machine) and delegates scanning to the registered step kernel, so the
same simulator runs on the stdlib bitset kernel or the NumPy
block-vectorized one.  The per-cycle activity statistics the hardware
simulators price come back as the kernel's exact integer counters.
"""

from __future__ import annotations

from repro.automata.glushkov import Automaton, EdgeAction
from repro.automata.streaming import ProgramScanner
from repro.core.kernel import StepStats
from repro.core.program import KernelProgram, ProgramKind
from repro.core.registry import get_kernel
from repro.regex.charclass import interned_label_masks

__all__ = ["NFAScanner", "NFASimulator", "StepStats"]


class NFASimulator:
    """Unanchored multi-match simulation of a plain homogeneous NFA.

    Reports the 0-based index of every input byte that completes a match.
    """

    def __init__(self, automaton: Automaton):
        if not automaton.is_plain:
            raise ValueError(
                "NFASimulator only handles plain automata; use NBVASimulator"
            )
        self._automaton = automaton
        n = automaton.state_count
        self._initial = _mask(automaton.initial)
        self._final = _mask(automaton.finals)
        self._labels = interned_label_masks(
            (pos.pid, pos.cc) for pos in automaton.positions
        )
        succ = [0] * n
        for edge in automaton.edges:
            assert edge.action is EdgeAction.ACTIVATE
            succ[edge.src] |= 1 << edge.dst
        self._succ = tuple(succ)
        self._programs: dict[tuple[bool, bool], KernelProgram] = {}

    @property
    def automaton(self) -> Automaton:
        """The automaton this simulator executes."""
        return self._automaton

    def program(
        self, *, anchored_start: bool = False, anchored_end: bool = False
    ) -> KernelProgram:
        """The kernel program for one anchoring combination (cached)."""
        key = (anchored_start, anchored_end)
        prog = self._programs.get(key)
        if prog is None:
            prog = KernelProgram(
                kind=ProgramKind.GATHER,
                width=self._automaton.state_count,
                labels=self._labels,
                inject_first=self._initial,
                inject_always=0 if anchored_start else self._initial,
                final=self._final,
                end_anchored_finals=self._final if anchored_end else 0,
                succ=self._succ,
                track_matched=True,
            )
            self._programs[key] = prog
        return prog

    def find_matches(
        self,
        data: bytes,
        stats: StepStats | None = None,
        *,
        anchored_start: bool = False,
        anchored_end: bool = False,
        stats_from: int = 0,
    ) -> list[int]:
        """All end positions of non-empty matches in ``data``.

        ``anchored_start`` makes the initial states start-of-data STEs
        (available only for the first symbol); ``anchored_end`` reports
        only matches that consume the final symbol.  ``stats_from`` turns
        the first bytes into a warm-up prefix: they drive the active set
        but are excluded from ``stats`` and reporting (the parallel
        engine's overlap-window stitching).
        """
        events, run = get_kernel().scan(
            self.program(
                anchored_start=anchored_start, anchored_end=anchored_end
            ),
            data,
            stats_from=stats_from,
        )
        if stats is not None:
            stats.cycles += run.cycles
            stats.active_states += run.active_states
            stats.matched_states += run.matched_states
            stats.reports += run.reports
        return [i for i, _ in events]

    def iter_matches(
        self,
        data: bytes,
        stats: StepStats | None = None,
        *,
        anchored_start: bool = False,
        anchored_end: bool = False,
        stats_from: int = 0,
    ):
        """Generator over match end positions; optionally fills ``stats``.

        The lazy view steps through the kernel's per-cycle iterator;
        callers that want the whole scan should prefer
        :meth:`find_matches`, which uses the kernel's block path.
        """
        program = self.program(
            anchored_start=anchored_start, anchored_end=anchored_end
        )
        labels = program.labels
        final = program.final
        last = len(data) - 1
        for i, active in get_kernel().iter_states(program, data):
            if i < stats_from:
                continue
            if stats is not None:
                stats.cycles += 1
                stats.active_states += active.bit_count()
                stats.matched_states += labels[data[i]].bit_count()
            if active & final and (not anchored_end or i == last):
                if stats is not None:
                    stats.reports += 1
                yield i

    def count_matches(self, data: bytes) -> int:
        """Number of non-empty matches in ``data``."""
        return len(self.find_matches(data))

    def scanner(
        self, *, anchored_start: bool = False, anchored_end: bool = False
    ) -> "NFAScanner":
        """A streaming scanner with snapshot/restore for this NFA."""
        return NFAScanner(
            self.program(
                anchored_start=anchored_start, anchored_end=anchored_end
            )
        )


class NFAScanner:
    """Streaming NFA scan: feed segments, snapshot/restore mid-stream.

    Feeding a stream in any segmentation yields the same match
    positions and accumulated stats as one :meth:`NFASimulator.
    find_matches` call over the whole stream.
    """

    def __init__(self, program: KernelProgram):
        self._scanner = ProgramScanner(program)

    @property
    def offset(self) -> int:
        """Global stream position: bytes consumed so far."""
        return self._scanner.offset

    def feed(
        self,
        segment: bytes,
        stats: StepStats | None = None,
        *,
        at_end: bool = True,
    ) -> list[int]:
        """Consume the next segment; match positions are global."""
        events, run = self._scanner.feed(segment, at_end=at_end)
        if stats is not None:
            stats.cycles += run.cycles
            stats.active_states += run.active_states
            stats.matched_states += run.matched_states
            stats.reports += run.reports
        return [i for i, _ in events]

    def snapshot(self) -> dict:
        """JSON-ready mid-stream state."""
        return self._scanner.snapshot()

    def restore(self, doc: dict) -> None:
        """Adopt a state produced by :meth:`snapshot`."""
        self._scanner.restore(doc)


def _mask(pids) -> int:
    out = 0
    for pid in pids:
        out |= 1 << pid
    return out
