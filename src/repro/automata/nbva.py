"""Simulation of nondeterministic bit vector automata (NBVA).

The configuration of an NBVA assigns each counted state a bit vector whose
set bits are the iteration counts currently in progress — the "set of
counter values" of Section 2.1.  One simulation step, driven by one input
byte, performs:

1. **state-transition**: from the previous configuration, compute every
   contribution to the next one — plain activations, ``set1`` entries into
   counter groups (gated by the source's read predicate when the source is
   itself counted), ``copy`` propagation within a group, and ``shift``
   loop-backs that advance the iteration count (bits shifted past the
   group width overflow and disappear, exactly like the hardware's
   overflow checker deactivating an exhausted BV-STE);
2. **state-matching**: zero out every target whose character class does
   not match the input byte (a BV is reset along with its inactive STE);
3. **reporting**: a match ends at this byte if a plain final state is
   active or a counted final state's read predicate holds.

Plain states are tracked in one integer bitset; live counted states in a
dict from position id to vector, so cost scales with actual BV activity —
the same event counts the hardware energy model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.glushkov import Automaton, EdgeAction
from repro.regex.charclass import ALPHABET_SIZE, interned_label_masks, members


@dataclass
class NBVAStats:
    """Activity counters for one run (feed the hardware energy model)."""

    cycles: int = 0
    active_states: int = 0  # plain active + live counted, summed over cycles
    matched_states: int = 0
    reports: int = 0
    bv_phase_cycles: int = 0  # cycles that trigger the bit-vector phase
    bv_updates: int = 0  # total counted-state vector updates performed
    set1_events: int = 0
    shift_events: int = 0
    copy_events: int = 0
    read_events: int = 0
    # counts of the Section 3.1 overflow checker firing: a shift pushed a
    # vector's last live bit past its width, deactivating the BV-STE
    overflow_events: int = 0
    # When set to a list before the run, the indices of cycles that
    # trigger the bit-vector-processing phase are recorded here (the
    # array-level stall model needs the union across co-located regexes).
    bv_cycle_indices: list[int] | None = None

    @property
    def bv_activation_rate(self) -> float:
        """Fraction of cycles that trigger the BV phase."""
        return self.bv_phase_cycles / self.cycles if self.cycles else 0.0


class NBVASimulator:
    """Unanchored multi-match simulation of an automaton with counters.

    Also accepts plain automata (it degenerates to NFA simulation), which
    the integration tests use to cross-check the two engines.
    """

    def __init__(self, automaton: Automaton):
        self._automaton = automaton
        positions = automaton.positions
        counted = [p.pid for p in positions if p.is_counted]
        self._counted = counted
        self._width_mask = {
            pid: automaton.groups[positions[pid].group].vector_mask
            for pid in counted
        }
        self._read = {
            pid: automaton.groups[positions[pid].group].read_predicate
            for pid in counted
        }

        # Per-source routing tables.
        n = automaton.state_count
        self._plain_act = [0] * n  # src -> plain-target bitmask
        self._set1_targets: list[tuple[int, ...]] = [()] * n
        self._copy_targets: list[tuple[int, ...]] = [()] * n
        self._shift_targets: list[tuple[int, ...]] = [()] * n
        set1_tmp: list[list[int]] = [[] for _ in range(n)]
        copy_tmp: list[list[int]] = [[] for _ in range(n)]
        shift_tmp: list[list[int]] = [[] for _ in range(n)]
        for edge in automaton.edges:
            if edge.action is EdgeAction.ACTIVATE:
                self._plain_act[edge.src] |= 1 << edge.dst
            elif edge.action is EdgeAction.SET1:
                set1_tmp[edge.src].append(edge.dst)
            elif edge.action is EdgeAction.COPY:
                copy_tmp[edge.src].append(edge.dst)
            else:
                shift_tmp[edge.src].append(edge.dst)
        self._set1_targets = [tuple(t) for t in set1_tmp]
        self._copy_targets = [tuple(t) for t in copy_tmp]
        self._shift_targets = [tuple(t) for t in shift_tmp]

        self._initial_plain = 0
        self._initial_counted: list[int] = []
        for pid in automaton.initial:
            if positions[pid].is_counted:
                self._initial_counted.append(pid)
            else:
                self._initial_plain |= 1 << pid
        self._final_plain = 0
        self._final_counted: list[int] = []
        for pid in automaton.finals:
            if positions[pid].is_counted:
                self._final_counted.append(pid)
            else:
                self._final_plain |= 1 << pid

        # Per-byte tables over plain positions (one shared expansion) and
        # counted positions (sets — the BV loop below walks live vectors
        # and stays pure-Python regardless of the selected backend: its
        # per-state counter dataflow is not a bitset program).
        self._labels = interned_label_masks(
            (pos.pid, pos.cc) for pos in positions if not pos.is_counted
        )
        self._counted_match = [set() for _ in range(ALPHABET_SIZE)]
        for pos in positions:
            if pos.is_counted:
                for byte in members(pos.cc):
                    self._counted_match[byte].add(pos.pid)

    @property
    def automaton(self) -> Automaton:
        """The automaton this simulator executes."""
        return self._automaton

    def find_matches(
        self,
        data: bytes,
        stats: NBVAStats | None = None,
        *,
        anchored_start: bool = False,
        anchored_end: bool = False,
    ) -> list[int]:
        """All end positions of non-empty matches in ``data``."""
        return list(
            self.iter_matches(
                data,
                stats,
                anchored_start=anchored_start,
                anchored_end=anchored_end,
            )
        )

    def iter_matches(
        self,
        data: bytes,
        stats: NBVAStats | None = None,
        *,
        anchored_start: bool = False,
        anchored_end: bool = False,
    ):
        """Generator over match end positions (and stats, if given)."""
        return self.scanner(
            anchored_start=anchored_start, anchored_end=anchored_end
        ).iter_feed(data, stats, at_end=True)

    def count_matches(self, data: bytes) -> int:
        """Number of non-empty matches in ``data``."""
        return sum(1 for _ in self.iter_matches(data))

    def scanner(
        self, *, anchored_start: bool = False, anchored_end: bool = False
    ) -> "NBVAScanner":
        """A streaming scanner with snapshot/restore for this NBVA."""
        return NBVAScanner(
            self, anchored_start=anchored_start, anchored_end=anchored_end
        )


# Version of the serialized NBVA frontier encoding.
NBVA_STATE_VERSION = 1


class NBVAScanner:
    """Streaming NBVA scan: feed segments, snapshot/restore mid-stream.

    The frontier is the plain active-state bitset plus every live
    counted-state bit vector — exactly what the simulation step carries
    between symbols — so a scanner restored from :meth:`snapshot`
    continues the counter dataflow bit-identically.  Match positions
    (and recorded ``bv_cycle_indices``) are *global* stream offsets.
    """

    def __init__(
        self,
        sim: NBVASimulator,
        *,
        anchored_start: bool = False,
        anchored_end: bool = False,
    ):
        self._sim = sim
        self._anchored_start = anchored_start
        self._anchored_end = anchored_end
        self._offset = 0
        self._active = 0
        self._vectors: dict[int, int] = {}

    @property
    def offset(self) -> int:
        """Global stream position: bytes consumed so far."""
        return self._offset

    def feed(
        self,
        segment: bytes,
        stats: NBVAStats | None = None,
        *,
        at_end: bool = True,
    ) -> list[int]:
        """Consume the next segment; match positions are global."""
        return list(self.iter_feed(segment, stats, at_end=at_end))

    def iter_feed(
        self,
        segment: bytes,
        stats: NBVAStats | None = None,
        *,
        at_end: bool = True,
    ):
        """Lazy :meth:`feed`: yields global match positions as found.

        The frontier advances per consumed symbol, so abandoning the
        generator mid-segment leaves the scanner at the last consumed
        position (the whole-stream ``iter_matches`` relies on this).
        """
        sim = self._sim
        plain_act = sim._plain_act
        set1_targets = sim._set1_targets
        copy_targets = sim._copy_targets
        shift_targets = sim._shift_targets
        width_mask = sim._width_mask
        read = sim._read
        labels = sim._labels
        counted_match = sim._counted_match
        anchored_start = self._anchored_start
        anchored_end = self._anchored_end

        offset = self._offset
        last = len(segment) - 1
        active = self._active
        vectors = self._vectors
        for i, byte in enumerate(segment):
            if anchored_start and (offset + i):
                avail = 0
                set1: set[int] = set()
            else:
                avail = sim._initial_plain
                set1 = set(sim._initial_counted)
            contrib: dict[int, int] = {}
            matching = counted_match[byte]

            a = active
            while a:
                low = a & -a
                src = low.bit_length() - 1
                a ^= low
                avail |= plain_act[src]
                set1.update(set1_targets[src])

            for src, vec in vectors.items():
                for dst in copy_targets[src]:
                    contrib[dst] = contrib.get(dst, 0) | vec
                shifted = None
                for dst in shift_targets[src]:
                    if shifted is None:
                        shifted = vec << 1 & width_mask[dst]
                        if (
                            stats is not None
                            and not shifted
                            and dst in matching
                        ):
                            # the Section 3.1 overflow checker: the BV-STE
                            # matched but every live count shifted past the
                            # vector width, so it is deactivated
                            stats.overflow_events += 1
                    contrib[dst] = contrib.get(dst, 0) | shifted
                if stats is not None:
                    stats.copy_events += len(copy_targets[src])
                    stats.shift_events += len(shift_targets[src])
                if read[src](vec):
                    if stats is not None:
                        stats.read_events += 1
                    avail |= plain_act[src]
                    set1.update(set1_targets[src])

            for dst in set1:
                contrib[dst] = contrib.get(dst, 0) | 1

            # state-matching gate
            active = avail & labels[byte]
            vectors = {
                dst: vec for dst, vec in contrib.items() if vec and dst in matching
            }
            self._active = active
            self._vectors = vectors
            self._offset = offset + i + 1

            if stats is not None:
                stats.cycles += 1
                stats.active_states += active.bit_count() + len(vectors)
                stats.matched_states += labels[byte].bit_count() + len(matching)
                stats.set1_events += len(set1)
                stats.bv_updates += len(vectors)
                if vectors:
                    stats.bv_phase_cycles += 1
                    if stats.bv_cycle_indices is not None:
                        stats.bv_cycle_indices.append(offset + i)

            matched = bool(active & sim._final_plain)
            if not matched:
                for pid in sim._final_counted:
                    vec = vectors.get(pid, 0)
                    if vec and read[pid](vec):
                        matched = True
                        break
            if matched and (not anchored_end or (at_end and i == last)):
                if stats is not None:
                    stats.reports += 1
                yield offset + i

    def snapshot(self) -> dict:
        """JSON-ready mid-stream state (vectors in sorted pid order —
        dict order never affects results, but determinism keeps the
        serialized bytes, and hence checkpoint checksums, stable)."""
        return {
            "version": NBVA_STATE_VERSION,
            "offset": self._offset,
            "active": f"{self._active:x}",
            "vectors": [
                [pid, f"{vec:x}"]
                for pid, vec in sorted(self._vectors.items())
            ],
        }

    def restore(self, doc: dict) -> None:
        """Adopt a state produced by :meth:`snapshot`."""
        try:
            version = doc["version"]
            if version != NBVA_STATE_VERSION:
                raise ValueError(
                    f"NBVA-state version {version!r} "
                    f"(this build reads {NBVA_STATE_VERSION})"
                )
            offset = int(doc["offset"])
            active = int(doc["active"], 16)
            vectors = {
                int(pid): int(vec, 16) for pid, vec in doc["vectors"]
            }
        except (KeyError, TypeError) as err:
            raise ValueError(f"malformed NBVA-state document: {err}") from err
        if offset < 0:
            raise ValueError("state offset must be non-negative")
        self._offset = offset
        self._active = active
        self._vectors = vectors
