"""The Shift-And bit-parallel algorithm (Baeza-Yates & Gonnet).

Two variants are implemented, matching the paper's usage:

* :class:`ShiftAnd` — the classic single-pattern form of Section 2.1 /
  Fig. 2: ``next = (states << 1) | maskInitial`` then
  ``states = next & labels[c]``, reporting when ``states & maskFinal``.
* :class:`MultiShiftAnd` — many LNFAs packed into one wide bitvector, the
  software technique of Hyperscan/HybridSA that the CPU and GPU baseline
  models are built on.  In an unanchored scan the per-pattern initial bits
  are re-injected on every cycle, which also absorbs the bit that shifts
  across a pattern boundary — no boundary masking is needed.

Both lower to ``SHIFT_LEFT`` :class:`~repro.core.program.KernelProgram`
machines and scan through the registered step kernel.  The hardware LNFA
mode (Fig. 6) uses a mirrored bit order (right shift, initial at the
MSB); that bit-serial variant lives in the tile simulator, and its
equivalence to :class:`ShiftAnd` is covered by tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.lnfa import LNFA
from repro.automata.streaming import ProgramScanner
from repro.core.program import KernelProgram, ProgramKind
from repro.core.registry import get_kernel
from repro.regex.charclass import interned_label_masks


@dataclass
class ShiftAndStats:
    """Activity counters for one Shift-And run."""
    cycles: int = 0
    active_bits: int = 0  # popcount of the state vector, summed over cycles
    reports: int = 0

    @property
    def mean_active(self) -> float:
        """Average number of active states/bits per cycle."""
        return self.active_bits / self.cycles if self.cycles else 0.0


class ShiftAnd:
    """Classic Shift-And execution of a single LNFA."""

    def __init__(self, lnfa: LNFA):
        self._lnfa = lnfa
        n = len(lnfa)
        self._initial = 1
        self._final = 1 << (n - 1)
        self._labels = interned_label_masks(enumerate(lnfa.labels))
        self._programs: dict[tuple[bool, bool], KernelProgram] = {}

    @property
    def lnfa(self) -> LNFA:
        """The LNFA this matcher executes."""
        return self._lnfa

    def program(
        self, *, anchored_start: bool = False, anchored_end: bool = False
    ) -> KernelProgram:
        """The kernel program for one anchoring combination (cached)."""
        key = (anchored_start, anchored_end)
        prog = self._programs.get(key)
        if prog is None:
            prog = KernelProgram(
                kind=ProgramKind.SHIFT_LEFT,
                width=len(self._lnfa),
                labels=self._labels,
                inject_first=self._initial,
                inject_always=0 if anchored_start else self._initial,
                final=self._final,
                end_anchored_finals=self._final if anchored_end else 0,
            )
            self._programs[key] = prog
        return prog

    def find_matches(
        self,
        data: bytes,
        stats: ShiftAndStats | None = None,
        *,
        anchored_start: bool = False,
        anchored_end: bool = False,
    ) -> list[int]:
        """All end positions of non-empty matches in ``data``."""
        events, run = get_kernel().scan(
            self.program(
                anchored_start=anchored_start, anchored_end=anchored_end
            ),
            data,
        )
        if stats is not None:
            stats.cycles += run.cycles
            stats.active_bits += run.active_states
            stats.reports += run.reports
        return [i for i, _ in events]

    def iter_matches(
        self,
        data: bytes,
        stats: ShiftAndStats | None = None,
        *,
        anchored_start: bool = False,
        anchored_end: bool = False,
    ):
        """Generator over match end positions (and stats, if given)."""
        final = self._final
        last = len(data) - 1
        program = self.program(anchored_start=anchored_start)
        for i, states in get_kernel().iter_states(program, data):
            if stats is not None:
                stats.cycles += 1
                stats.active_bits += states.bit_count()
            if states & final and (not anchored_end or i == last):
                if stats is not None:
                    stats.reports += 1
                yield i

    def scanner(
        self, *, anchored_start: bool = False, anchored_end: bool = False
    ) -> "ShiftAndScanner":
        """A streaming scanner with snapshot/restore for this pattern."""
        return ShiftAndScanner(
            self.program(
                anchored_start=anchored_start, anchored_end=anchored_end
            )
        )


class ShiftAndScanner:
    """Streaming Shift-And scan over one LNFA with snapshot/restore."""

    def __init__(self, program: KernelProgram):
        self._scanner = ProgramScanner(program)

    @property
    def offset(self) -> int:
        """Global stream position: bytes consumed so far."""
        return self._scanner.offset

    def feed(
        self,
        segment: bytes,
        stats: ShiftAndStats | None = None,
        *,
        at_end: bool = True,
    ) -> list[int]:
        """Consume the next segment; match positions are global."""
        events, run = self._scanner.feed(segment, at_end=at_end)
        if stats is not None:
            stats.cycles += run.cycles
            stats.active_bits += run.active_states
            stats.reports += run.reports
        return [i for i, _ in events]

    def snapshot(self) -> dict:
        """JSON-ready mid-stream state."""
        return self._scanner.snapshot()

    def restore(self, doc: dict) -> None:
        """Adopt a state produced by :meth:`snapshot`."""
        self._scanner.restore(doc)


class MultiShiftAnd:
    """Shift-And over many LNFAs packed into one wide state vector.

    Patterns are laid out consecutively; ``find_matches`` reports
    ``(pattern_index, end_position)`` pairs.
    """

    def __init__(
        self,
        lnfas: list[LNFA] | tuple[LNFA, ...],
        anchors: list[tuple[bool, bool]] | None = None,
    ):
        """``anchors`` optionally gives each pattern its
        ``(anchored_start, anchored_end)`` flags; start-anchored patterns
        behave like start-of-data STEs (initial bit injected only on the
        first symbol)."""
        if not lnfas:
            raise ValueError("MultiShiftAnd needs at least one pattern")
        if anchors is not None and len(anchors) != len(lnfas):
            raise ValueError("anchors must align with the patterns")
        self._lnfas = tuple(lnfas)
        self._anchors = tuple(anchors) if anchors else ((False, False),) * len(
            self._lnfas
        )
        self._offsets: list[int] = []
        assignments: list[tuple[int, object]] = []
        initial_always = 0
        initial_once = 0
        final = 0
        end_anchored_finals = 0
        offset = 0
        for lnfa, (a_start, a_end) in zip(self._lnfas, self._anchors):
            self._offsets.append(offset)
            if a_start:
                initial_once |= 1 << offset
            else:
                initial_always |= 1 << offset
            final_bit = 1 << (offset + len(lnfa) - 1)
            final |= final_bit
            if a_end:
                end_anchored_finals |= final_bit
            for i, cc in enumerate(lnfa.labels):
                assignments.append((offset + i, cc))
            offset += len(lnfa)
        self._initial = initial_always | initial_once
        self._initial_always = initial_always
        self._final = final
        self._end_anchored_finals = end_anchored_finals
        self._total_bits = offset
        # The shift leaks each pattern's last bit onto the next pattern's
        # first bit; for unanchored patterns the unconditional initial
        # injection absorbs the leak, and for start-anchored patterns the
        # leaked bit must be cleared after the shift.
        self._program = KernelProgram(
            kind=ProgramKind.SHIFT_LEFT,
            width=offset,
            labels=interned_label_masks(assignments),
            inject_first=self._initial,
            inject_always=initial_always,
            final=final,
            end_anchored_finals=end_anchored_finals,
            clear_after_shift=initial_once,
        )
        # map a final bit back to its pattern index
        self._pattern_of_final = {
            self._offsets[k] + len(lnfa) - 1: k
            for k, lnfa in enumerate(self._lnfas)
        }

    @property
    def total_bits(self) -> int:
        """Width of the packed multi-pattern state vector."""
        return self._total_bits

    @property
    def patterns(self) -> tuple[LNFA, ...]:
        """The packed LNFAs, in layout order."""
        return self._lnfas

    @property
    def program(self) -> KernelProgram:
        """The packed machine as a kernel program."""
        return self._program

    def find_matches(
        self, data: bytes, stats: ShiftAndStats | None = None
    ) -> list[tuple[int, int]]:
        """All end positions of non-empty matches in ``data``."""
        events, run = get_kernel().scan(self._program, data)
        pattern_of_final = self._pattern_of_final
        out: list[tuple[int, int]] = []
        for i, hits in events:
            while hits:
                low = hits & -hits
                hits ^= low
                out.append((pattern_of_final[low.bit_length() - 1], i))
        if stats is not None:
            stats.cycles += run.cycles
            stats.active_bits += run.active_states
            stats.reports += len(out)
        return out

    def iter_states(self, data: bytes):
        """Yield ``(index, packed_state_vector)`` per input byte.

        The hardware simulators map the packed bits back to tiles/regions
        to account power gating per cycle.
        """
        return get_kernel().iter_states(self._program, data)

    def bit_location(self, bit: int) -> tuple[int, int]:
        """Map a packed bit index to ``(pattern_index, state_index)``."""
        for k in range(len(self._offsets) - 1, -1, -1):
            if bit >= self._offsets[k]:
                return k, bit - self._offsets[k]
        raise ValueError(f"bit {bit} out of range")

    def iter_matches(self, data: bytes, stats: ShiftAndStats | None = None):
        """Generator over match end positions (and stats, if given)."""
        pattern_of_final = self._pattern_of_final
        final = self._final
        end_anchored = self._end_anchored_finals
        last = len(data) - 1
        for i, states in self.iter_states(data):
            if stats is not None:
                stats.cycles += 1
                stats.active_bits += states.bit_count()
            hits = states & final
            if i != last:
                hits &= ~end_anchored
            while hits:
                low = hits & -hits
                hits ^= low
                if stats is not None:
                    stats.reports += 1
                yield pattern_of_final[low.bit_length() - 1], i

    def scanner(self) -> "MultiShiftAndScanner":
        """A streaming scanner with snapshot/restore for this pack."""
        return MultiShiftAndScanner(self)


class MultiShiftAndScanner:
    """Streaming scan of a packed multi-pattern machine.

    ``feed`` returns ``(pattern_index, global_end_position)`` pairs in
    the same order :meth:`MultiShiftAnd.find_matches` reports them.
    """

    def __init__(self, packed: MultiShiftAnd):
        self._packed = packed
        self._scanner = ProgramScanner(packed.program)

    @property
    def offset(self) -> int:
        """Global stream position: bytes consumed so far."""
        return self._scanner.offset

    def feed(
        self,
        segment: bytes,
        stats: ShiftAndStats | None = None,
        *,
        at_end: bool = True,
    ) -> list[tuple[int, int]]:
        """Consume the next segment; end positions are global."""
        events, run = self._scanner.feed(segment, at_end=at_end)
        pattern_of_final = self._packed._pattern_of_final
        out: list[tuple[int, int]] = []
        for i, hits in events:
            while hits:
                low = hits & -hits
                hits ^= low
                out.append((pattern_of_final[low.bit_length() - 1], i))
        if stats is not None:
            stats.cycles += run.cycles
            stats.active_bits += run.active_states
            stats.reports += len(out)
        return out

    def snapshot(self) -> dict:
        """JSON-ready mid-stream state."""
        return self._scanner.snapshot()

    def restore(self, doc: dict) -> None:
        """Adopt a state produced by :meth:`snapshot`."""
        self._scanner.restore(doc)
