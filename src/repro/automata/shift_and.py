"""The Shift-And bit-parallel algorithm (Baeza-Yates & Gonnet).

Two variants are implemented, matching the paper's usage:

* :class:`ShiftAnd` — the classic single-pattern form of Section 2.1 /
  Fig. 2: ``next = (states << 1) | maskInitial`` then
  ``states = next & labels[c]``, reporting when ``states & maskFinal``.
* :class:`MultiShiftAnd` — many LNFAs packed into one wide bitvector, the
  software technique of Hyperscan/HybridSA that the CPU and GPU baseline
  models are built on.  In an unanchored scan the per-pattern initial bits
  are re-injected on every cycle, which also absorbs the bit that shifts
  across a pattern boundary — no boundary masking is needed.

The hardware LNFA mode (Fig. 6) uses a mirrored bit order (right shift,
initial at the MSB); that bit-serial variant lives in the tile simulator,
and its equivalence to :class:`ShiftAnd` is covered by tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.lnfa import LNFA
from repro.regex.charclass import ALPHABET_SIZE


@dataclass
class ShiftAndStats:
    """Activity counters for one Shift-And run."""
    cycles: int = 0
    active_bits: int = 0  # popcount of the state vector, summed over cycles
    reports: int = 0

    @property
    def mean_active(self) -> float:
        """Average number of active states/bits per cycle."""
        return self.active_bits / self.cycles if self.cycles else 0.0


class ShiftAnd:
    """Classic Shift-And execution of a single LNFA."""

    def __init__(self, lnfa: LNFA):
        self._lnfa = lnfa
        n = len(lnfa)
        self._initial = 1
        self._final = 1 << (n - 1)
        self._labels = [0] * ALPHABET_SIZE
        for i, cc in enumerate(lnfa.labels):
            bit = 1 << i
            for byte in cc:
                self._labels[byte] |= bit

    @property
    def lnfa(self) -> LNFA:
        """The LNFA this matcher executes."""
        return self._lnfa

    def find_matches(
        self,
        data: bytes,
        stats: ShiftAndStats | None = None,
        *,
        anchored_start: bool = False,
        anchored_end: bool = False,
    ) -> list[int]:
        """All end positions of non-empty matches in ``data``."""
        return list(
            self.iter_matches(
                data,
                stats,
                anchored_start=anchored_start,
                anchored_end=anchored_end,
            )
        )

    def iter_matches(
        self,
        data: bytes,
        stats: ShiftAndStats | None = None,
        *,
        anchored_start: bool = False,
        anchored_end: bool = False,
    ):
        """Generator over match end positions (and stats, if given)."""
        labels = self._labels
        initial = self._initial
        final = self._final
        last = len(data) - 1
        states = 0
        for i, byte in enumerate(data):
            inject = 0 if anchored_start and i else initial
            states = (states << 1 | inject) & labels[byte]
            if stats is not None:
                stats.cycles += 1
                stats.active_bits += states.bit_count()
            if states & final and (not anchored_end or i == last):
                if stats is not None:
                    stats.reports += 1
                yield i


class MultiShiftAnd:
    """Shift-And over many LNFAs packed into one wide state vector.

    Patterns are laid out consecutively; ``find_matches`` reports
    ``(pattern_index, end_position)`` pairs.
    """

    def __init__(
        self,
        lnfas: list[LNFA] | tuple[LNFA, ...],
        anchors: list[tuple[bool, bool]] | None = None,
    ):
        """``anchors`` optionally gives each pattern its
        ``(anchored_start, anchored_end)`` flags; start-anchored patterns
        behave like start-of-data STEs (initial bit injected only on the
        first symbol)."""
        if not lnfas:
            raise ValueError("MultiShiftAnd needs at least one pattern")
        if anchors is not None and len(anchors) != len(lnfas):
            raise ValueError("anchors must align with the patterns")
        self._lnfas = tuple(lnfas)
        self._anchors = tuple(anchors) if anchors else ((False, False),) * len(
            self._lnfas
        )
        self._offsets: list[int] = []
        self._labels = [0] * ALPHABET_SIZE
        initial_always = 0
        initial_once = 0
        final = 0
        end_anchored_finals = 0
        offset = 0
        for lnfa, (a_start, a_end) in zip(self._lnfas, self._anchors):
            self._offsets.append(offset)
            if a_start:
                initial_once |= 1 << offset
            else:
                initial_always |= 1 << offset
            final_bit = 1 << (offset + len(lnfa) - 1)
            final |= final_bit
            if a_end:
                end_anchored_finals |= final_bit
            for i, cc in enumerate(lnfa.labels):
                bit = 1 << (offset + i)
                for byte in cc:
                    self._labels[byte] |= bit
            offset += len(lnfa)
        self._initial = initial_always | initial_once
        self._initial_always = initial_always
        self._final = final
        self._end_anchored_finals = end_anchored_finals
        self._total_bits = offset
        # map a final bit back to its pattern index
        self._pattern_of_final = {
            self._offsets[k] + len(lnfa) - 1: k
            for k, lnfa in enumerate(self._lnfas)
        }

    @property
    def total_bits(self) -> int:
        """Width of the packed multi-pattern state vector."""
        return self._total_bits

    @property
    def patterns(self) -> tuple[LNFA, ...]:
        """The packed LNFAs, in layout order."""
        return self._lnfas

    def find_matches(
        self, data: bytes, stats: ShiftAndStats | None = None
    ) -> list[tuple[int, int]]:
        """All end positions of non-empty matches in ``data``."""
        return list(self.iter_matches(data, stats))

    def iter_states(self, data: bytes):
        """Yield ``(index, packed_state_vector)`` per input byte.

        The hardware simulators map the packed bits back to tiles/regions
        to account power gating per cycle.  The shift leaks each
        pattern's last bit onto the next pattern's first bit; for
        unanchored patterns the unconditional initial-mask injection
        absorbs the leak, and for start-anchored patterns the leak must
        be masked off after the first symbol.
        """
        labels = self._labels
        initial = self._initial
        always = self._initial_always
        anchored_bits = initial & ~always
        states = 0
        for i, byte in enumerate(data):
            inject = initial if i == 0 else always
            states = ((states << 1) & ~anchored_bits | inject) & labels[byte]
            yield i, states

    def bit_location(self, bit: int) -> tuple[int, int]:
        """Map a packed bit index to ``(pattern_index, state_index)``."""
        for k in range(len(self._offsets) - 1, -1, -1):
            if bit >= self._offsets[k]:
                return k, bit - self._offsets[k]
        raise ValueError(f"bit {bit} out of range")

    def iter_matches(self, data: bytes, stats: ShiftAndStats | None = None):
        """Generator over match end positions (and stats, if given)."""
        pattern_of_final = self._pattern_of_final
        final = self._final
        end_anchored = self._end_anchored_finals
        last = len(data) - 1
        for i, states in self.iter_states(data):
            if stats is not None:
                stats.cycles += 1
                stats.active_bits += states.bit_count()
            hits = states & final
            if i != last:
                hits &= ~end_anchored
            while hits:
                low = hits & -hits
                hits ^= low
                if stats is not None:
                    stats.reports += 1
                yield pattern_of_final[low.bit_length() - 1], i
