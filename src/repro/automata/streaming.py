"""Streaming execution of kernel programs with snapshot/restore.

A :class:`ProgramScanner` feeds a :class:`~repro.core.program.
KernelProgram` one segment at a time through the registered kernel's
``scan_segment``, carrying the frontier :class:`~repro.core.state.
KernelState` between calls.  Because the frontier is the machine's
*entire* mid-stream state, a scanner serialized after byte ``k`` and
restored in a fresh process continues the scan bit-identically — the
primitive the durable-scan checkpoint layer is built on.

Match events come back with *global* stream positions, so a consumer
never needs to know how the stream was segmented.
"""

from __future__ import annotations

from repro.core.kernel import MatchEvent, StepStats
from repro.core.program import KernelProgram
from repro.core.registry import get_kernel
from repro.core.state import KernelState


class ProgramScanner:
    """Segment-at-a-time scan of one kernel program.

    ``feed`` consumes the next segment of the stream and returns its
    match events (global positions) plus the segment's exact counters.
    Pass ``at_end=False`` while more input follows so end-anchored
    finals stay masked; the segment that reaches the stream's end (even
    if a later empty ``feed`` follows) must be fed with ``at_end=True``.
    """

    def __init__(self, program: KernelProgram):
        self._program = program
        self._state = KernelState()

    @property
    def program(self) -> KernelProgram:
        """The program this scanner executes."""
        return self._program

    @property
    def offset(self) -> int:
        """Global stream position: bytes consumed so far."""
        return self._state.offset

    def feed(
        self, segment: bytes, *, at_end: bool = True
    ) -> tuple[list[MatchEvent], StepStats]:
        """Consume the next segment; events carry global positions."""
        events, stats, self._state = get_kernel().scan_segment(
            self._program, segment, self._state, at_end=at_end
        )
        return events, stats

    def snapshot(self) -> dict:
        """JSON-ready frontier state (see :class:`KernelState`)."""
        return self._state.to_json()

    def restore(self, doc: dict) -> None:
        """Adopt a frontier produced by :meth:`snapshot`."""
        self._state = KernelState.from_json(doc)


__all__ = ["ProgramScanner"]
