"""Automata models: homogeneous NFA, NBVA, LNFA, and a reference oracle.

The three executable models of the paper live here:

* :mod:`repro.automata.glushkov` — the position (Glushkov) construction,
  extended with counter groups so a single builder produces both plain
  homogeneous NFAs and NBVAs.
* :mod:`repro.automata.nfa` — fast bitset simulation for plain automata.
* :mod:`repro.automata.nbva` — simulation of automata with bit-vector
  counter groups (set1/copy/shift actions, r(m)/rAll reads, overflow).
* :mod:`repro.automata.lnfa` / :mod:`repro.automata.shift_and` — linear
  NFAs and the Shift-And bit-parallel algorithm (single and multi-pattern).
* :mod:`repro.automata.reference` — an independent Thompson-construction
  oracle used to validate every other engine (the role Hyperscan plays in
  the paper's consistency checks).

All engines share one match-reporting convention: an unanchored scan over a
byte string that yields the 0-based index of every input symbol completing
a non-empty match.
"""

from repro.automata.glushkov import (
    Automaton,
    CounterGroup,
    Edge,
    EdgeAction,
    GlushkovError,
    Position,
    ReadKind,
    build_automaton,
)
from repro.automata.lnfa import LNFA
from repro.automata.nbva import NBVASimulator
from repro.automata.nfa import NFASimulator
from repro.automata.reference import ReferenceMatcher
from repro.automata.shift_and import MultiShiftAnd, ShiftAnd

__all__ = [
    "Automaton",
    "CounterGroup",
    "Edge",
    "EdgeAction",
    "GlushkovError",
    "LNFA",
    "MultiShiftAnd",
    "NBVASimulator",
    "NFASimulator",
    "Position",
    "ReadKind",
    "ReferenceMatcher",
    "ShiftAnd",
    "build_automaton",
]
