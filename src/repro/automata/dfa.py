"""DFA via subset construction — blowup foil, oracle, and execution tier.

Section 2.1 motivates NFAs and NBVAs by the cost of determinization:
unfolding ``r{n}`` "results in an NFA of size linear in n (and therefore
can produce a DFA of size exponential in n)".  This module makes that
claim executable: lazy subset construction over the homogeneous automata
of :mod:`repro.automata.glushkov`, with a state budget so the
exponential cases fail loudly instead of eating the machine.

It also serves as a third independent matching oracle (after the
Glushkov bitset engine and the Thompson reference): determinization and
simulation go through entirely different code than either.

Since the cost-model compiler grew a DFA execution tier, this module
additionally provides the tier's machinery: :func:`determinize_classes`
subset-constructs over ``k`` alphabet-equivalence classes instead of 256
bytes (the fused backend's representation), producing a :class:`ClassDFA`
whose states remember the NFA subset they stand for.  That memory is
what keeps the tier bit-identical to the NFA engines: the scanning
construction bakes the unanchored restart into every subset, so for a
plain unanchored automaton the DFA state after byte ``i`` *is* the NFA
active set after byte ``i`` — same match events, same exact activity
counters, and snapshots that serialize as the very same
:class:`~repro.core.state.KernelState` documents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.automata.glushkov import Automaton, EdgeAction
from repro.core.kernel import StepStats
from repro.core.state import KernelState
from repro.regex.charclass import ALPHABET_SIZE, interned_label_masks


class DFABlowupError(RuntimeError):
    """Raised when determinization exceeds its state budget."""

    def __init__(self, states: int, budget: int):
        super().__init__(
            f"subset construction exceeded {budget} states "
            f"(reached {states}); this automaton exhibits the DFA blowup "
            "the paper's Section 2.1 warns about"
        )
        self.states = states
        self.budget = budget


@dataclass(frozen=True)
class DFA:
    """A dense-table DFA for unanchored multi-match scanning.

    ``transitions[s * 256 + b]`` is the successor of state ``s`` on byte
    ``b``; ``accepting`` flags states containing a final NFA position.
    State 0 is the scan start (the closure of "nothing matched yet").
    """

    transitions: tuple[int, ...]
    accepting: tuple[bool, ...]

    @property
    def state_count(self) -> int:
        """Number of states (Glushkov positions)."""
        return len(self.accepting)

    def find_matches(self, data: bytes) -> list[int]:
        """End positions of non-empty matches (same convention as every
        other engine in this package)."""
        transitions = self.transitions
        accepting = self.accepting
        state = 0
        out = []
        for i, byte in enumerate(data):
            state = transitions[(state << 8) + byte]
            if accepting[state]:
                out.append(i)
        return out

    def count_matches(self, data: bytes) -> int:
        """Number of non-empty matches in ``data``."""
        return len(self.find_matches(data))


def determinize(automaton: Automaton, *, max_states: int = 1 << 16) -> DFA:
    """Subset-construct the scanning DFA of a plain homogeneous automaton.

    The construction bakes the unanchored semantics in: every subset
    implicitly re-includes the always-available initial positions, so the
    DFA consumes the stream directly with no restart logic.
    """
    if not automaton.is_plain:
        raise ValueError(
            "determinization requires a plain automaton; unfold counters "
            "first (that blowup is precisely the point)"
        )
    n = automaton.state_count
    succ = [0] * n
    for edge in automaton.edges:
        assert edge.action is EdgeAction.ACTIVATE
        succ[edge.src] |= 1 << edge.dst
    initial = 0
    for pid in automaton.initial:
        initial |= 1 << pid
    final = 0
    for pid in automaton.finals:
        final |= 1 << pid
    labels = interned_label_masks(
        (pos.pid, pos.cc) for pos in automaton.positions
    )

    # Lazy BFS over reachable subsets.  A subset here is the set of
    # *active* positions after consuming some input suffix.
    index: dict[int, int] = {0: 0}
    order: list[int] = [0]
    transitions: list[int] = []
    accepting: list[bool] = [False]
    frontier = 0
    while frontier < len(order):
        subset = order[frontier]
        frontier += 1
        # avail = transition targets of the active set, plus restarts
        avail = initial
        a = subset
        while a:
            low = a & -a
            avail |= succ[low.bit_length() - 1]
            a ^= low
        for byte in range(ALPHABET_SIZE):
            target = avail & labels[byte]
            target_index = index.get(target)
            if target_index is None:
                target_index = len(order)
                if target_index >= max_states:
                    raise DFABlowupError(target_index + 1, max_states)
                index[target] = target_index
                order.append(target)
                accepting.append(bool(target & final))
            transitions.append(target_index)
    return DFA(transitions=tuple(transitions), accepting=tuple(accepting))


# -- the DFA execution tier ---------------------------------------------------


@dataclass(frozen=True)
class ClassDFA:
    """A scanning DFA over ``k`` alphabet-equivalence classes.

    ``transitions[s * k + cls]`` is the successor of state ``s`` on
    class ``cls``.  ``subsets[s]`` is the NFA active-set bitmask state
    ``s`` stands for (state 0 is the empty set — "nothing live"), which
    gives the exact counters the energy model prices: ``pops[s]`` is the
    live-state count and ``final_hits[s]`` the mask of final positions
    reporting at ``s`` (the same hit integers the NFA kernels emit).
    """

    k: int
    transitions: tuple[int, ...]
    subsets: tuple[int, ...]
    pops: tuple[int, ...]
    final_hits: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_index", {subset: i for i, subset in enumerate(self.subsets)}
        )

    @property
    def state_count(self) -> int:
        """Number of reachable subsets (including the empty state 0)."""
        return len(self.subsets)

    def state_of(self, subset: int) -> int:
        """The DFA state standing for an NFA active set.

        Raises ``ValueError`` for subsets the construction never
        reached — a snapshot produced by this DFA (or by the equivalent
        NFA scan) always decodes, anything else is a foreign state.
        """
        index = self._index.get(subset)
        if index is None:
            raise ValueError(
                f"active set {subset:#x} is not a reachable DFA subset"
            )
        return index


def determinize_classes(
    class_labels: Sequence[int],
    succ: Sequence[int],
    initial: int,
    final: int,
    *,
    max_states: int = 1 << 16,
) -> ClassDFA:
    """Subset-construct a scanning :class:`ClassDFA` over class labels.

    ``class_labels[c]`` is the state-matching mask of equivalence class
    ``c``; ``succ``/``initial``/``final`` are the plain automaton's
    bitmask tables.  Like :func:`determinize`, every subset implicitly
    re-includes the always-available initial positions (unanchored
    scanning), so the reachable subsets — and their count — are exactly
    those of the byte-alphabet construction.
    """
    k = len(class_labels)
    succ = tuple(succ)
    index: dict[int, int] = {0: 0}
    order: list[int] = [0]
    transitions: list[int] = []
    frontier = 0
    while frontier < len(order):
        subset = order[frontier]
        frontier += 1
        avail = initial
        a = subset
        while a:
            low = a & -a
            avail |= succ[low.bit_length() - 1]
            a ^= low
        for cls in range(k):
            target = avail & class_labels[cls]
            target_index = index.get(target)
            if target_index is None:
                target_index = len(order)
                if target_index >= max_states:
                    raise DFABlowupError(target_index + 1, max_states)
                index[target] = target_index
                order.append(target)
            transitions.append(target_index)
    return ClassDFA(
        k=k,
        transitions=tuple(transitions),
        subsets=tuple(order),
        pops=tuple(s.bit_count() for s in order),
        final_hits=tuple(s & final for s in order),
    )


def automaton_bitmasks(
    automaton: Automaton,
) -> tuple[tuple[int, ...], int, int, tuple[int, ...]]:
    """The plain automaton's ``(succ, initial, final, labels)`` tables —
    the inputs both determinizations and the NFA kernel programs share."""
    if not automaton.is_plain:
        raise ValueError(
            "determinization requires a plain automaton; unfold counters "
            "first (that blowup is precisely the point)"
        )
    n = automaton.state_count
    succ = [0] * n
    for edge in automaton.edges:
        assert edge.action is EdgeAction.ACTIVATE
        succ[edge.src] |= 1 << edge.dst
    initial = 0
    for pid in automaton.initial:
        initial |= 1 << pid
    final = 0
    for pid in automaton.finals:
        final |= 1 << pid
    labels = interned_label_masks(
        (pos.pid, pos.cc) for pos in automaton.positions
    )
    return tuple(succ), initial, final, labels


@dataclass(frozen=True)
class DFAPlan:
    """One automaton's complete DFA execution plan.

    ``table`` maps bytes onto the automaton's *own* equivalence classes
    (distinct label masks) for C-speed ``bytes.translate``;
    ``label_pops[b]`` is the popcount of byte ``b``'s label mask (the
    ``matched_states`` proxy, a pure function of the input exactly as in
    the NFA kernels); ``labeled_bytes`` lists the bytes with non-zero
    label masks for the ``bytes.count`` sweep.
    """

    dfa: ClassDFA
    table: bytes
    label_pops: tuple[int, ...]
    labeled_bytes: tuple[int, ...]


def dfa_plan(automaton: Automaton, *, max_states: int = 1 << 16) -> DFAPlan:
    """Build the per-regex execution plan over the automaton's own classes.

    The byte alphabet is first collapsed to the automaton's distinct
    label masks: any ruleset-wide class map refines per-automaton to at
    most these classes, so the subset construction here reaches exactly
    the states a coarser-alphabet construction would.
    """
    succ, initial, final, labels = automaton_bitmasks(automaton)
    class_of: dict[int, int] = {}
    table = bytearray(ALPHABET_SIZE)
    for byte in range(ALPHABET_SIZE):
        mask = labels[byte]
        cls = class_of.get(mask)
        if cls is None:
            cls = len(class_of)
            class_of[mask] = cls
        table[byte] = cls
    class_labels = [0] * len(class_of)
    for mask, cls in class_of.items():
        class_labels[cls] = mask
    dfa = determinize_classes(
        class_labels, succ, initial, final, max_states=max_states
    )
    label_pops = tuple(mask.bit_count() for mask in labels)
    return DFAPlan(
        dfa=dfa,
        table=bytes(table),
        label_pops=label_pops,
        labeled_bytes=tuple(b for b, p in enumerate(label_pops) if p),
    )


# Above this many label-carrying byte values, per-value ``bytes.count``
# sweeps cost more than one map over the whole segment (same heuristic
# as the python step kernel).
_COUNT_SWEEP_LIMIT = 32


def _matched_states(plan: DFAPlan, data: bytes, start: int) -> int:
    """Sum of ``popcount(labels[b])`` over ``data[start:]``, exactly."""
    if len(plan.labeled_bytes) <= _COUNT_SWEEP_LIMIT:
        return sum(
            plan.label_pops[b] * data.count(b, start)
            for b in plan.labeled_bytes
        )
    return sum(map(plan.label_pops.__getitem__, memoryview(data)[start:]))


class DFAScanner:
    """Streaming DFA execution of one plain unanchored automaton.

    The drop-in peer of :class:`~repro.automata.nfa.NFAScanner` for
    DFA-mode regexes: same ``feed``/``snapshot``/``restore`` surface,
    bit-identical match positions and :class:`StepStats`, and — because
    each DFA state remembers its NFA subset — snapshots that serialize
    as the *same* :class:`KernelState` documents an NFA scan of the
    same stream would write.  Durable-scan checkpoints therefore stay
    byte-identical across the two modes.
    """

    def __init__(self, automaton: Automaton, *, max_states: int = 1 << 16):
        self._plan = dfa_plan(automaton, max_states=max_states)
        self._offset = 0
        self._state = 0  # DFA state index (0 = nothing live)

    @property
    def offset(self) -> int:
        """Global stream position: bytes consumed so far."""
        return self._offset

    def feed(
        self,
        segment: bytes,
        stats: StepStats | None = None,
        *,
        at_end: bool = True,
    ) -> list[int]:
        """Consume the next segment; match positions are global.

        ``at_end`` is accepted for interface parity but irrelevant: the
        DFA tier never executes end-anchored regexes (eligibility
        excludes them), so no final needs last-byte masking.
        """
        del at_end
        plan = self._plan
        dfa = plan.dfa
        trans = dfa.transitions
        pops = dfa.pops
        final_hits = dfa.final_hits
        k = dfa.k
        base = self._offset
        s = self._state
        active = 0
        matches: list[int] = []
        for i, cls in enumerate(segment.translate(plan.table)):
            s = trans[s * k + cls]
            if s:
                active += pops[s]
                if final_hits[s]:
                    matches.append(base + i)
        self._state = s
        self._offset = base + len(segment)
        if stats is not None:
            stats.cycles += len(segment)
            stats.active_states += active
            stats.matched_states += _matched_states(plan, segment, 0)
            stats.reports += len(matches)
        return matches

    def find_matches(
        self,
        data: bytes,
        stats: StepStats | None = None,
        *,
        stats_from: int = 0,
    ) -> list[int]:
        """Whole-stream scan with the NFA simulator's warm-up contract.

        The first ``stats_from`` bytes drive the state but contribute
        neither matches nor counters; starts fresh regardless of any
        streaming state this scanner carries.
        """
        plan = self._plan
        dfa = plan.dfa
        trans = dfa.transitions
        pops = dfa.pops
        final_hits = dfa.final_hits
        k = dfa.k
        n = len(data)
        stats_from = min(max(stats_from, 0), n)
        s = 0
        active = 0
        matches: list[int] = []
        translated = data.translate(plan.table)
        for cls in memoryview(translated)[:stats_from]:
            s = trans[s * k + cls]
        for i, cls in enumerate(
            memoryview(translated)[stats_from:], stats_from
        ):
            s = trans[s * k + cls]
            if s:
                active += pops[s]
                if final_hits[s]:
                    matches.append(i)
        if stats is not None:
            stats.cycles += n - stats_from
            stats.active_states += active
            stats.matched_states += _matched_states(plan, data, stats_from)
            stats.reports += len(matches)
        return matches

    def snapshot(self) -> dict:
        """JSON-ready mid-stream state — the exact ``KernelState``
        document the equivalent NFA scan would produce here."""
        return KernelState(
            offset=self._offset, states=self._plan.dfa.subsets[self._state]
        ).to_json()

    def restore(self, doc: dict) -> None:
        """Adopt a state produced by :meth:`snapshot` (or by the
        equivalent NFA scanner over the same stream prefix)."""
        state = KernelState.from_json(doc)
        index = self._plan.dfa.state_of(state.states)
        self._offset = state.offset
        self._state = index
