"""DFA via subset construction — the paper's blowup foil and a third oracle.

Section 2.1 motivates NFAs and NBVAs by the cost of determinization:
unfolding ``r{n}`` "results in an NFA of size linear in n (and therefore
can produce a DFA of size exponential in n)".  This module makes that
claim executable: lazy subset construction over the homogeneous automata
of :mod:`repro.automata.glushkov`, with a state budget so the
exponential cases fail loudly instead of eating the machine.

It also serves as a third independent matching oracle (after the
Glushkov bitset engine and the Thompson reference): determinization and
simulation go through entirely different code than either.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.glushkov import Automaton, EdgeAction
from repro.regex.charclass import ALPHABET_SIZE, interned_label_masks


class DFABlowupError(RuntimeError):
    """Raised when determinization exceeds its state budget."""

    def __init__(self, states: int, budget: int):
        super().__init__(
            f"subset construction exceeded {budget} states "
            f"(reached {states}); this automaton exhibits the DFA blowup "
            "the paper's Section 2.1 warns about"
        )
        self.states = states
        self.budget = budget


@dataclass(frozen=True)
class DFA:
    """A dense-table DFA for unanchored multi-match scanning.

    ``transitions[s * 256 + b]`` is the successor of state ``s`` on byte
    ``b``; ``accepting`` flags states containing a final NFA position.
    State 0 is the scan start (the closure of "nothing matched yet").
    """

    transitions: tuple[int, ...]
    accepting: tuple[bool, ...]

    @property
    def state_count(self) -> int:
        """Number of states (Glushkov positions)."""
        return len(self.accepting)

    def find_matches(self, data: bytes) -> list[int]:
        """End positions of non-empty matches (same convention as every
        other engine in this package)."""
        transitions = self.transitions
        accepting = self.accepting
        state = 0
        out = []
        for i, byte in enumerate(data):
            state = transitions[(state << 8) + byte]
            if accepting[state]:
                out.append(i)
        return out

    def count_matches(self, data: bytes) -> int:
        """Number of non-empty matches in ``data``."""
        return len(self.find_matches(data))


def determinize(automaton: Automaton, *, max_states: int = 1 << 16) -> DFA:
    """Subset-construct the scanning DFA of a plain homogeneous automaton.

    The construction bakes the unanchored semantics in: every subset
    implicitly re-includes the always-available initial positions, so the
    DFA consumes the stream directly with no restart logic.
    """
    if not automaton.is_plain:
        raise ValueError(
            "determinization requires a plain automaton; unfold counters "
            "first (that blowup is precisely the point)"
        )
    n = automaton.state_count
    succ = [0] * n
    for edge in automaton.edges:
        assert edge.action is EdgeAction.ACTIVATE
        succ[edge.src] |= 1 << edge.dst
    initial = 0
    for pid in automaton.initial:
        initial |= 1 << pid
    final = 0
    for pid in automaton.finals:
        final |= 1 << pid
    labels = interned_label_masks(
        (pos.pid, pos.cc) for pos in automaton.positions
    )

    # Lazy BFS over reachable subsets.  A subset here is the set of
    # *active* positions after consuming some input suffix.
    index: dict[int, int] = {0: 0}
    order: list[int] = [0]
    transitions: list[int] = []
    accepting: list[bool] = [False]
    frontier = 0
    while frontier < len(order):
        subset = order[frontier]
        frontier += 1
        # avail = transition targets of the active set, plus restarts
        avail = initial
        a = subset
        while a:
            low = a & -a
            avail |= succ[low.bit_length() - 1]
            a ^= low
        for byte in range(ALPHABET_SIZE):
            target = avail & labels[byte]
            target_index = index.get(target)
            if target_index is None:
                target_index = len(order)
                if target_index >= max_states:
                    raise DFABlowupError(target_index + 1, max_states)
                index[target] = target_index
                order.append(target)
                accepting.append(bool(target & final))
            transitions.append(target_index)
    return DFA(transitions=tuple(transitions), accepting=tuple(accepting))
