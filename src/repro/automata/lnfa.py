"""Linear NFAs (LNFA).

An LNFA is a homogeneous NFA whose states sit on a line
``q0 -> q1 -> ... -> q(n-1)`` with transitions only between neighbours
(Section 2.1, Example 2.3).  The hardware variant of Section 3.2
additionally assumes a single initial state ``q0`` and a single final
state ``q(n-1)``, which makes an LNFA exactly a fixed-length sequence of
character classes; the compiler's linearization rewriting produces a
union of such sequences per regex.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.glushkov import Automaton, EdgeAction
from repro.regex.charclass import CharClass


@dataclass(frozen=True)
class LNFA:
    """A hardware LNFA: one fixed-length sequence of character classes.

    State ``i`` is labeled ``labels[i]``; state 0 is initial and state
    ``len(labels) - 1`` is final.
    """

    labels: tuple[CharClass, ...]

    def __post_init__(self) -> None:
        if not self.labels:
            raise ValueError("an LNFA needs at least one state")
        if any(cc.is_empty() for cc in self.labels):
            raise ValueError("LNFA state with an empty character class")

    def __len__(self) -> int:
        return len(self.labels)

    @property
    def state_count(self) -> int:
        """Number of states (Glushkov positions)."""
        return len(self.labels)

    def to_pattern(self) -> str:
        """Render back to PCRE-subset concrete syntax."""
        return "".join(cc.to_pattern() for cc in self.labels)

    def matches_at(self, data: bytes, end: int) -> bool:
        """Naive check: does a match end at index ``end``?  (Test oracle.)"""
        n = len(self.labels)
        start = end - n + 1
        if start < 0:
            return False
        return all(
            self.labels[k].matches(data[start + k]) for k in range(n)
        )

    def to_automaton(self) -> Automaton:
        """The equivalent plain homogeneous NFA (used by NFA-mode runs)."""
        from repro.automata.glushkov import Edge, Position

        positions = tuple(
            Position(pid=i, cc=cc) for i, cc in enumerate(self.labels)
        )
        edges = tuple(
            Edge(i, i + 1, EdgeAction.ACTIVATE)
            for i in range(len(self.labels) - 1)
        )
        return Automaton(
            positions=positions,
            edges=edges,
            groups=(),
            initial=frozenset({0}),
            finals=frozenset({len(self.labels) - 1}),
            nullable=False,
        )


def is_linear(automaton: Automaton) -> bool:
    """Does ``automaton`` have the strict line shape of a hardware LNFA?

    Requires: plain (no counters), a single initial state, a single final
    state, and every transition going from state ``i`` to ``i + 1`` under
    some renumbering along the line.
    """
    if not automaton.is_plain:
        return False
    if len(automaton.initial) != 1 or len(automaton.finals) != 1:
        return False
    n = automaton.state_count
    succ: dict[int, list[int]] = {}
    for edge in automaton.edges:
        succ.setdefault(edge.src, []).append(edge.dst)
    # walk the line from the initial state
    order: list[int] = []
    seen: set[int] = set()
    current = next(iter(automaton.initial))
    while True:
        if current in seen:
            return False  # a cycle: not a line
        seen.add(current)
        order.append(current)
        nexts = succ.get(current, [])
        if not nexts:
            break
        if len(nexts) != 1:
            return False
        current = nexts[0]
    if len(order) != n:
        return False  # unreachable states exist
    return order[-1] in automaton.finals


def from_automaton(automaton: Automaton) -> LNFA:
    """Extract the LNFA from a line-shaped automaton; raises otherwise."""
    if not is_linear(automaton):
        raise ValueError("automaton is not a hardware LNFA")
    succ = {e.src: e.dst for e in automaton.edges}
    labels = []
    current = next(iter(automaton.initial))
    while True:
        labels.append(automaton.positions[current].cc)
        if current not in succ:
            break
        current = succ[current]
    return LNFA(tuple(labels))
