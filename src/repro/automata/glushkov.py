"""Glushkov (position) construction, extended with counter groups.

The classical Glushkov construction turns a regex into an epsilon-free
*homogeneous* NFA: one state per character-class occurrence ("position"),
with all transitions into a state sharing that state's class.  The paper
adopts it for exactly this homogeneity (Section 2.1).

We extend the construction so that a bounded repetition that survived the
unfolding rewriting becomes a **counter group**: its body positions carry a
bit vector of width ``n``, where bit ``i`` means "an instance of the match
is currently in iteration ``i + 1`` of the repetition".  The four NBVA
edge actions of the paper map onto the construction as follows:

* entering the group from outside     -> ``set1``   (start iteration 1)
* a transition within one iteration   -> ``copy``   (same iteration)
* the loop-back edge last -> first     -> ``shift``  (next iteration)
* leaving the group                    -> gated by the group's *read*:
  ``r(m)`` (bit ``m-1``: exactly ``m`` iterations done) for ``r{m}`` and
  ``rAll`` (any bit) for ``r{0,k}``.

A plain regex (no surviving repetition) produces an automaton with no
groups — an ordinary homogeneous NFA.  This single builder therefore feeds
both the NFA and NBVA execution modes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.regex.ast import (
    Alt,
    Concat,
    Empty,
    Epsilon,
    Lit,
    Opt,
    Plus,
    Regex,
    Repeat,
    Star,
)
from repro.regex.charclass import CharClass


class GlushkovError(ValueError):
    """Raised when a regex cannot be turned into a (counting) automaton."""


class ReadKind(enum.Enum):
    """How successors read a counter group's bit vector (paper Section 3.1)."""

    EXACT = "r(m)"  # bit m-1 must be set: exactly m iterations completed
    ALL = "rAll"  # any bit set: between 1 and k iterations completed


class EdgeAction(enum.Enum):
    """What a transition does to its destination."""

    ACTIVATE = "activate"  # plain destination becomes active
    SET1 = "set1"  # counted destination: set bit 0 (enter iteration 1)
    COPY = "copy"  # within a group: propagate the vector unchanged
    SHIFT = "shift"  # within a group: shift the vector (next iteration)


@dataclass(frozen=True)
class Position:
    """One Glushkov position: a state of the homogeneous automaton."""

    pid: int
    cc: CharClass
    group: int | None = None  # counter group id, None for plain states

    @property
    def is_counted(self) -> bool:
        """True iff this position carries a bit vector."""
        return self.group is not None


@dataclass(frozen=True)
class Edge:
    """A tagged transition between positions."""

    src: int
    dst: int
    action: EdgeAction


@dataclass(frozen=True)
class CounterGroup:
    """A bounded repetition tracked with bit vectors.

    ``width`` is the bit-vector length; ``read`` / ``read_bound`` define the
    exit predicate: ``EXACT`` tests bit ``read_bound - 1``; ``ALL`` tests
    the whole vector for a set bit.
    """

    gid: int
    width: int
    read: ReadKind
    read_bound: int
    positions: tuple[int, ...]

    def read_predicate(self, vector: int) -> bool:
        """Does ``vector`` allow exiting this group?"""
        if self.read is ReadKind.EXACT:
            return bool(vector >> (self.read_bound - 1) & 1)
        return vector != 0

    @property
    def vector_mask(self) -> int:
        """Bitmask selecting the group's vector width."""
        return (1 << self.width) - 1


@dataclass(frozen=True)
class Automaton:
    """A homogeneous automaton with optional counter groups.

    With ``groups == ()`` this is a plain homogeneous NFA; otherwise it is
    an NBVA in the sense of Section 2.1 (each counted state ``q`` has
    ``w(q) = groups[q.group].width``).
    """

    positions: tuple[Position, ...]
    edges: tuple[Edge, ...]
    groups: tuple[CounterGroup, ...]
    initial: frozenset[int]
    finals: frozenset[int]
    nullable: bool

    @property
    def is_plain(self) -> bool:
        """True iff this automaton has no counter groups (a pure NFA)."""
        return not self.groups

    @property
    def state_count(self) -> int:
        """Number of states (Glushkov positions)."""
        return len(self.positions)

    def group_of(self, pid: int) -> CounterGroup | None:
        """The counter group of position ``pid`` (None when plain)."""
        gid = self.positions[pid].group
        return None if gid is None else self.groups[gid]

    def validate(self) -> None:
        """Internal consistency checks (used by tests and the compiler)."""
        n = len(self.positions)
        for i, pos in enumerate(self.positions):
            if pos.pid != i:
                raise GlushkovError(f"position id mismatch at index {i}")
        for edge in self.edges:
            if not (0 <= edge.src < n and 0 <= edge.dst < n):
                raise GlushkovError(f"edge out of range: {edge}")
            src_g = self.positions[edge.src].group
            dst_g = self.positions[edge.dst].group
            if edge.action in (EdgeAction.COPY, EdgeAction.SHIFT):
                if src_g is None or src_g != dst_g:
                    raise GlushkovError(f"group action on non-group edge: {edge}")
            if edge.action is EdgeAction.SET1 and dst_g is None:
                raise GlushkovError(f"set1 into plain position: {edge}")
            if edge.action is EdgeAction.ACTIVATE and dst_g is not None:
                raise GlushkovError(f"activate into counted position: {edge}")
        for group in self.groups:
            if group.width < 1:
                raise GlushkovError(f"group {group.gid} has width {group.width}")
            if group.read is ReadKind.EXACT and group.read_bound != group.width:
                raise GlushkovError(
                    f"exact group {group.gid}: bound {group.read_bound} != "
                    f"width {group.width}"
                )
            for pid in group.positions:
                if self.positions[pid].group != group.gid:
                    raise GlushkovError(
                        f"position {pid} not tagged with group {group.gid}"
                    )


@dataclass
class _Frag:
    """First/last/nullable summary of a subexpression during construction."""

    nullable: bool
    first: tuple[int, ...]
    last: tuple[int, ...]


class _Builder:
    """Accumulates positions, edges, and groups during the recursion."""

    def __init__(self) -> None:
        self._ccs: list[CharClass] = []
        self._group_of: list[int | None] = []
        self._edges: set[tuple[int, int, EdgeAction]] = set()
        self._groups: list[CounterGroup] = []

    # -- construction primitives -----------------------------------------

    def new_position(self, cc: CharClass) -> int:
        """Allocate the next position id for ``cc``."""
        self._ccs.append(cc)
        self._group_of.append(None)
        return len(self._ccs) - 1

    def connect(self, sources: tuple[int, ...], targets: tuple[int, ...]) -> None:
        """Create follow edges; the action is derived from the destination's
        group membership (``set1`` when entering a group)."""
        for src in sources:
            for dst in targets:
                action = (
                    EdgeAction.SET1
                    if self._group_of[dst] is not None
                    else EdgeAction.ACTIVATE
                )
                self._edges.add((src, dst, action))

    def make_group(self, frag: _Frag, body: tuple[int, ...], node: Repeat) -> int:
        """Turn the freshly built ``body`` positions into a counter group."""
        for pid in body:
            if self._group_of[pid] is not None:
                raise GlushkovError(
                    "nested counter groups are not supported; "
                    "unfold the inner repetition first"
                )
        if node.lo == node.hi:
            width, read, bound = node.lo, ReadKind.EXACT, node.lo
        elif node.lo == 0:
            assert node.hi is not None
            width, read, bound = node.hi, ReadKind.ALL, node.hi
        else:
            raise GlushkovError(
                f"repetition {{{node.lo},{node.hi}}} reached construction; "
                "run the bounded-repetition rewriting first"
            )
        gid = len(self._groups)
        body_set = set(body)
        for pid in body:
            self._group_of[pid] = gid
        # Body-internal follow edges become copy (same iteration).
        internal = {
            (src, dst, action)
            for (src, dst, action) in self._edges
            if src in body_set and dst in body_set
        }
        for src, dst, action in internal:
            assert action is EdgeAction.ACTIVATE
            self._edges.discard((src, dst, action))
            self._edges.add((src, dst, EdgeAction.COPY))
        # Loop-back edges advance the iteration count; they coexist with any
        # same-pair copy edge (e.g. the body (ab)+ both continues an
        # iteration and starts the next one on b -> a).
        if width > 1:
            for src in frag.last:
                for dst in frag.first:
                    self._edges.add((src, dst, EdgeAction.SHIFT))
        self._groups.append(
            CounterGroup(
                gid=gid,
                width=width,
                read=read,
                read_bound=bound,
                positions=tuple(body),
            )
        )
        return gid

    def finish(self, frag: _Frag, nullable: bool) -> Automaton:
        """Freeze the accumulated construction into an Automaton."""
        positions = tuple(
            Position(pid=i, cc=cc, group=self._group_of[i])
            for i, cc in enumerate(self._ccs)
        )
        edges = tuple(
            Edge(src, dst, action)
            for (src, dst, action) in sorted(
                self._edges, key=lambda e: (e[0], e[1], e[2].value)
            )
        )
        automaton = Automaton(
            positions=positions,
            edges=edges,
            groups=tuple(self._groups),
            initial=frozenset(frag.first),
            finals=frozenset(frag.last),
            nullable=nullable,
        )
        automaton.validate()
        return automaton


def build_automaton(regex: Regex, *, counters: bool = True) -> Automaton:
    """Build the (counting) Glushkov automaton of ``regex``.

    With ``counters=True`` (the NBVA path), every surviving
    :class:`~repro.regex.ast.Repeat` node must be in one of the two
    hardware-readable shapes (``r{m}`` or ``r{0,k}``) with a non-nullable
    body and becomes a counter group; the NBVA compiler guarantees this by
    running the unfolding and bounded-repetition rewritings first.

    With ``counters=False`` (the NFA path), repetitions are *expanded*
    structurally inside the construction — iteratively, so ClamAV-scale
    bounds neither recurse deeply nor produce the quadratic follow edges a
    flat ``(r?)^k`` unfolding would.  The optional copies are chained like
    the nested form ``r (r (r ...)?)?``: copy ``i+1`` is reachable only
    through copy ``i``.
    """
    builder = _Builder()
    frag = _build(regex, builder, expand=not counters)
    return builder.finish(frag, regex.nullable())


def _build(node: Regex, b: _Builder, expand: bool = False) -> _Frag:
    if isinstance(node, Empty):
        return _Frag(nullable=False, first=(), last=())
    if isinstance(node, Epsilon):
        return _Frag(nullable=True, first=(), last=())
    if isinstance(node, Lit):
        pid = b.new_position(node.cc)
        return _Frag(nullable=False, first=(pid,), last=(pid,))
    if isinstance(node, Concat):
        return _chain([_build(p, b, expand) for p in node.parts], b)
    if isinstance(node, Alt):
        frags = [_build(p, b, expand) for p in node.parts]
        return _Frag(
            nullable=any(f.nullable for f in frags),
            first=_join(f.first for f in frags),
            last=_join(f.last for f in frags),
        )
    if isinstance(node, Star):
        inner = _build(node.inner, b, expand)
        b.connect(inner.last, inner.first)
        return _Frag(nullable=True, first=inner.first, last=inner.last)
    if isinstance(node, Plus):
        inner = _build(node.inner, b, expand)
        b.connect(inner.last, inner.first)
        return _Frag(nullable=inner.nullable, first=inner.first, last=inner.last)
    if isinstance(node, Opt):
        inner = _build(node.inner, b, expand)
        return _Frag(nullable=True, first=inner.first, last=inner.last)
    if isinstance(node, Repeat):
        if expand:
            return _build_repeat_expanded(node, b)
        return _build_repeat_counted(node, b)
    raise TypeError(f"unknown regex node: {type(node).__name__}")


def _chain(frags: list[_Frag], b: _Builder) -> _Frag:
    """Concatenation semantics over already-built fragments."""
    # follow edges across each boundary, looking through nullable parts
    for i in range(len(frags) - 1):
        sources = list(frags[i].last)
        j = i - 1
        while j >= 0 and frags[j + 1].nullable:
            sources.extend(frags[j].last)
            j -= 1
        b.connect(tuple(dict.fromkeys(sources)), frags[i + 1].first)
    first: list[int] = []
    for f in frags:
        first.extend(f.first)
        if not f.nullable:
            break
    last: list[int] = []
    for f in reversed(frags):
        last.extend(f.last)
        if not f.nullable:
            break
    return _Frag(
        nullable=all(f.nullable for f in frags),
        first=tuple(dict.fromkeys(first)),
        last=tuple(dict.fromkeys(last)),
    )


def _build_repeat_counted(node: Repeat, b: _Builder) -> _Frag:
    if node.hi is None:
        raise GlushkovError(
            "unbounded repetition reached construction; run unfolding first"
        )
    if node.inner.nullable():
        raise GlushkovError(
            "counted repetition with a nullable body is not counting-"
            "compatible; the compiler must unfold it"
        )
    start = len(b._ccs)
    inner = _build(node.inner, b)
    body = tuple(range(start, len(b._ccs)))
    b.make_group(inner, body, node)
    return _Frag(
        nullable=node.lo == 0,
        first=inner.first,
        last=inner.last,
    )


def _build_repeat_expanded(node: Repeat, b: _Builder) -> _Frag:
    """Structural expansion of ``r{lo,hi}`` with linear follow structure."""
    mandatory = [_build(node.inner, b, expand=True) for _ in range(node.lo)]
    head = _chain(mandatory, b)  # epsilon fragment when lo == 0

    if node.hi is None:
        star_inner = _build(node.inner, b, expand=True)
        b.connect(star_inner.last, star_inner.first)
        star = _Frag(
            nullable=True, first=star_inner.first, last=star_inner.last
        )
        return _chain([head, star], b)

    # Nested optional tail: copy i+1 only reachable through copy i.
    pending: list[int] = list(head.last)
    tail_first: list[int] = []
    tail_lasts: list[int] = []
    reachable_emptily = True  # from the tail's entry, consuming nothing
    for _ in range(node.hi - node.lo):
        copy = _build(node.inner, b, expand=True)
        b.connect(tuple(dict.fromkeys(pending)), copy.first)
        if reachable_emptily:
            tail_first.extend(copy.first)
        tail_lasts.extend(copy.last)
        if copy.nullable:
            pending = pending + list(copy.last)
        else:
            pending = list(copy.last)
        reachable_emptily = reachable_emptily and copy.nullable
    first = list(head.first)
    if head.nullable:
        first.extend(tail_first)
    last = list(head.last) + tail_lasts  # zero optional iterations allowed
    return _Frag(
        nullable=head.nullable,
        first=tuple(dict.fromkeys(first)),
        last=tuple(dict.fromkeys(last)),
    )


def _join(parts) -> tuple[int, ...]:
    out: list[int] = []
    for p in parts:
        out.extend(p)
    return tuple(dict.fromkeys(out))
