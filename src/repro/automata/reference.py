"""Reference oracle matcher: an independent ground-truth implementation.

The paper validates its cycle-accurate simulator by comparing match
results against Hyperscan.  This module plays that role for the
reproduction: a deliberately *different* code path — Thompson construction
with explicit epsilon transitions and plain set-based subset simulation —
against which every other engine (Glushkov NFA, NBVA, Shift-And, and the
hardware simulators) is cross-checked.

It is written for clarity and independence, not speed; tests use it on
small regexes and inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.regex.ast import (
    Alt,
    Concat,
    Empty,
    Epsilon,
    Lit,
    Opt,
    Plus,
    Regex,
    Repeat,
    Star,
)
from repro.regex.charclass import CharClass


@dataclass
class _ThompsonNFA:
    """A classical NFA with epsilon transitions."""

    cc_edges: list[list[tuple[CharClass, int]]] = field(default_factory=list)
    eps_edges: list[list[int]] = field(default_factory=list)

    def new_state(self) -> int:
        """Allocate a fresh NFA state id."""
        self.cc_edges.append([])
        self.eps_edges.append([])
        return len(self.cc_edges) - 1

    def add_cc(self, src: int, cc: CharClass, dst: int) -> None:
        """Add a character-class transition."""
        self.cc_edges[src].append((cc, dst))

    def add_eps(self, src: int, dst: int) -> None:
        """Add an epsilon transition."""
        self.eps_edges[src].append(dst)

    def closure_of(self, state: int) -> frozenset[int]:
        """Epsilon closure of a single state (iterative DFS)."""
        seen = {state}
        stack = [state]
        while stack:
            s = stack.pop()
            for t in self.eps_edges[s]:
                if t not in seen:
                    seen.add(t)
                    stack.append(t)
        return frozenset(seen)


def _build(nfa: _ThompsonNFA, node: Regex) -> tuple[int, int]:
    """Thompson construction; returns the fragment's (start, accept)."""
    start = nfa.new_state()
    accept = nfa.new_state()
    if isinstance(node, Empty):
        pass  # no path from start to accept
    elif isinstance(node, Epsilon):
        nfa.add_eps(start, accept)
    elif isinstance(node, Lit):
        nfa.add_cc(start, node.cc, accept)
    elif isinstance(node, Concat):
        current = start
        for part in node.parts:
            ps, pa = _build(nfa, part)
            nfa.add_eps(current, ps)
            current = pa
        nfa.add_eps(current, accept)
    elif isinstance(node, Alt):
        for part in node.parts:
            ps, pa = _build(nfa, part)
            nfa.add_eps(start, ps)
            nfa.add_eps(pa, accept)
    elif isinstance(node, Star):
        ps, pa = _build(nfa, node.inner)
        nfa.add_eps(start, ps)
        nfa.add_eps(start, accept)
        nfa.add_eps(pa, ps)
        nfa.add_eps(pa, accept)
    elif isinstance(node, Plus):
        ps, pa = _build(nfa, node.inner)
        nfa.add_eps(start, ps)
        nfa.add_eps(pa, ps)
        nfa.add_eps(pa, accept)
    elif isinstance(node, Opt):
        ps, pa = _build(nfa, node.inner)
        nfa.add_eps(start, ps)
        nfa.add_eps(start, accept)
        nfa.add_eps(pa, accept)
    elif isinstance(node, Repeat):
        current = start
        for _ in range(node.lo):
            ps, pa = _build(nfa, node.inner)
            nfa.add_eps(current, ps)
            current = pa
        if node.hi is None:
            ps, pa = _build(nfa, Star(node.inner))
            nfa.add_eps(current, ps)
            current = pa
        else:
            for _ in range(node.hi - node.lo):
                ps, pa = _build(nfa, node.inner)
                nfa.add_eps(current, ps)
                nfa.add_eps(current, accept)  # stop repeating here
                current = pa
        nfa.add_eps(current, accept)
    else:
        raise TypeError(f"unknown regex node: {type(node).__name__}")
    return start, accept


class ReferenceMatcher:
    """Ground-truth multi-match scanning via Thompson NFA.

    Unanchored by default; ``anchored_start`` restricts matches to those
    beginning at offset 0 and ``anchored_end`` to those consuming the
    final byte — the ``^`` / ``$`` semantics of
    :func:`repro.regex.parser.parse_anchored`.
    """

    def __init__(
        self,
        regex: Regex,
        *,
        anchored_start: bool = False,
        anchored_end: bool = False,
    ):
        self._nfa = _ThompsonNFA()
        self._start, self._accept = _build(self._nfa, regex)
        self._closures = [
            self._nfa.closure_of(s) for s in range(len(self._nfa.cc_edges))
        ]
        self._restart = self._closures[self._start]
        self._anchored_start = anchored_start
        self._anchored_end = anchored_end

    def find_matches(self, data: bytes) -> list[int]:
        """End positions of every non-empty match in ``data``."""
        out: list[int] = []
        last = len(data) - 1
        current: set[int] = set(self._restart)
        for i, byte in enumerate(data):
            moved: set[int] = set()
            for s in current:
                for cc, t in self._nfa.cc_edges[s]:
                    if cc.matches(byte):
                        moved.update(self._closures[t])
            # Report before re-injecting the restart states so that the
            # empty match of a nullable regex is never reported.
            if self._accept in moved and (
                not self._anchored_end or i == last
            ):
                out.append(i)
            if not self._anchored_start:
                moved.update(self._restart)
            current = moved
        return out

    def count_matches(self, data: bytes) -> int:
        """Number of non-empty matches in ``data``."""
        return len(self.find_matches(data))

    def matches_anywhere(self, data: bytes) -> bool:
        """True iff at least one non-empty match exists."""
        return bool(self.find_matches(data))
