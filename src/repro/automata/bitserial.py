"""The hardware bit-serial LNFA datapath of Fig. 6.

RAP's LNFA mode does not run the classic software Shift-And; it executes
the *mirrored* variant the tile implements physically:

* state ``q_i`` of the LNFA lives in CAM **column** ``i`` (leftmost
  column first), so the *labels* vector is ordered MSB-first;
* the active vector **right-shifts** by one bit each cycle (Fig. 6:
  "The Active Vector right-shifts by one bit each cycle, controlling
  which columns remain active for the next input character");
* the initial state occupies the **most significant** bit and is kept
  available by re-injecting ``10...0`` (``maskInitial``); the final
  state is the least significant bit (``states AND 0...01``).

This module implements that datapath exactly as the tile sees it —
per-column match bits ANDed against the shifted active vector — so its
step-by-step traces match the Fig. 6 walk-through, and tests prove it
equivalent to the classic left-shift :class:`~repro.automata.shift_and.
ShiftAnd` on every input.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.lnfa import LNFA
from repro.core.program import KernelProgram, ProgramKind
from repro.core.registry import get_kernel
from repro.regex.charclass import interned_label_masks


@dataclass(frozen=True)
class BitSerialTrace:
    """One cycle of the Fig. 6 datapath (for inspection and teaching)."""

    symbol: int
    labels: int  # per-column CAM match results, MSB = state 0
    next_vector: int  # shifted active vector OR maskInitial
    states: int  # next AND labels
    report: bool


class BitSerialLNFA:
    """Fig. 6's right-shift LNFA execution, one tile column per state."""

    def __init__(self, lnfa: LNFA, *, anchored_start: bool = False):
        self._lnfa = lnfa
        n = len(lnfa)
        self._width = n
        self._initial = 1 << (n - 1)  # MSB: state q0 / column 0
        self._final = 1  # LSB: state q(n-1)
        self._anchored_start = anchored_start
        # labels[c] bit (n-1-i) set iff column i's CC matches byte c
        self._labels = interned_label_masks(
            (n - 1 - i, cc) for i, cc in enumerate(lnfa.labels)
        )
        self._programs: dict[bool, KernelProgram] = {}

    @property
    def lnfa(self) -> LNFA:
        """The LNFA this matcher executes."""
        return self._lnfa

    @property
    def width(self) -> int:
        """Number of LNFA states / CAM columns."""
        return self._width

    def trace(self, data: bytes) -> list[BitSerialTrace]:
        """The full per-cycle trace (the Fig. 6 example table)."""
        out = []
        states = 0
        for i, byte in enumerate(data):
            inject = 0 if self._anchored_start and i else self._initial
            next_vector = states >> 1 | inject
            labels = self._labels[byte]
            states = next_vector & labels
            out.append(
                BitSerialTrace(
                    symbol=byte,
                    labels=labels,
                    next_vector=next_vector,
                    states=states,
                    report=bool(states & self._final),
                )
            )
        return out

    def program(self, *, anchored_end: bool = False) -> KernelProgram:
        """The kernel program for this datapath (cached per end anchor)."""
        prog = self._programs.get(anchored_end)
        if prog is None:
            prog = KernelProgram(
                kind=ProgramKind.SHIFT_RIGHT,
                width=self._width,
                labels=self._labels,
                inject_first=self._initial,
                inject_always=0 if self._anchored_start else self._initial,
                final=self._final,
                end_anchored_finals=self._final if anchored_end else 0,
            )
            self._programs[anchored_end] = prog
        return prog

    def find_matches(
        self, data: bytes, *, anchored_end: bool = False
    ) -> list[int]:
        """All end positions of non-empty matches in ``data``."""
        events, _ = get_kernel().scan(
            self.program(anchored_end=anchored_end), data
        )
        return [i for i, _ in events]

    def active_columns(self, states: int) -> list[int]:
        """Which CAM columns the active vector keeps enabled (the power
        gating of Section 3.2): column i for each set bit."""
        cols = []
        for i in range(self._width):
            if states >> (self._width - 1 - i) & 1:
                cols.append(i)
        return cols


def format_trace(lnfa: LNFA, data: bytes) -> str:
    """Render the Fig. 6-style execution table for documentation/demos."""
    engine = BitSerialLNFA(lnfa)
    width = engine.width
    rows = [
        (
            "input",
            [
                chr(t.symbol) if 32 <= t.symbol < 127 else f"\\x{t.symbol:02x}"
                for t in engine.trace(data)
            ],
        ),
        ("labels", [f"{t.labels:0{width}b}" for t in engine.trace(data)]),
        ("next", [f"{t.next_vector:0{width}b}" for t in engine.trace(data)]),
        ("states", [f"{t.states:0{width}b}" for t in engine.trace(data)]),
        ("report", ["1" if t.report else "0" for t in engine.trace(data)]),
    ]
    col = max(width, 6)
    lines = []
    for name, cells in rows:
        lines.append(
            f"{name:>7} | " + " ".join(c.rjust(col) for c in cells)
        )
    return "\n".join(lines)
