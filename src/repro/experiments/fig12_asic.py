"""Fig. 12: overall comparison of RAP vs BVAP, CAMA, and CA.

Each benchmark's full mixed workload is compiled per architecture:

* **RAP** — every regex in its decided mode with the benchmark's chosen
  DSE parameters; per Section 5.5, NBVA arrays whose throughput falls
  below 2 Gch/s get a duplicate array sharing the workload (small area
  overhead, throughput doubled).
* **BVAP** — NBVA where countable, NFA otherwise (no LNFA mode).
* **CAMA / CA** — everything as fully unfolded NFAs.

Reported per benchmark, normalized to RAP: area, throughput, energy
efficiency (Gch/J), compute density (Gch/s/mm^2), and power.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler import CompiledMode
from repro.core.trace import ActivityTrace
from repro.experiments.common import (
    ALL_BENCHMARK_NAMES,
    ExperimentConfig,
    Workload,
    build_workload,
    compile_bvap_flavor,
    compile_decided,
    compile_forced,
    map_benchmarks,
    render_table,
    save_csv,
    save_json,
)
from repro.mapping.mapper import map_ruleset
from repro.simulators import (
    BVAPSimulator,
    CAMASimulator,
    CASimulator,
    RAPSimulator,
    ca_hardware_config,
)

ARCHITECTURES = ["RAP", "BVAP", "CAMA", "CA"]
METRICS = ["area_mm2", "throughput", "energy_eff", "compute_density", "power_w"]
NBVA_THROUGHPUT_FLOOR = 2.0  # Gch/s, the Section 5.5 duplication rule


@dataclass
class ArchPoint:
    """One design's absolute metrics on one benchmark."""
    energy_uj: float
    area_mm2: float
    throughput: float
    power_w: float

    @property
    def energy_eff(self) -> float:
        """Throughput per watt (Gch/J)."""
        return self.throughput / self.power_w if self.power_w else 0.0

    @property
    def compute_density(self) -> float:
        """Throughput per square millimetre."""
        return self.throughput / self.area_mm2 if self.area_mm2 else 0.0

    def metric(self, name: str) -> float:
        """Look a metric up by its Fig. 12 column name."""
        if name == "area_mm2":
            return self.area_mm2
        if name == "throughput":
            return self.throughput
        if name == "energy_eff":
            return self.energy_eff
        if name == "compute_density":
            return self.compute_density
        if name == "power_w":
            return self.power_w
        raise KeyError(name)


@dataclass
class Fig12Row:
    """One benchmark's points for every design."""
    benchmark: str
    points: dict[str, ArchPoint] = field(default_factory=dict)

    def ratio(self, arch: str, metric: str) -> float:
        """arch's metric relative to RAP (RAP = 1.0)."""
        rap = self.points["RAP"].metric(metric)
        other = self.points[arch].metric(metric)
        return other / rap if rap else 0.0


@dataclass
class Fig12Result:
    """The Fig. 12 artifact: all benchmarks and designs."""
    rows: list[Fig12Row]

    def row(self, benchmark: str) -> Fig12Row:
        """The row for one benchmark."""
        return next(r for r in self.rows if r.benchmark == benchmark)

    def mean_ratio(self, arch: str, metric: str) -> float:
        """Geometric-mean ratio across benchmarks."""
        product, count = 1.0, 0
        for row in self.rows:
            ratio = row.ratio(arch, metric)
            if ratio > 0:
                product *= ratio
                count += 1
        return product ** (1 / count) if count else 0.0

    def to_table(self) -> str:
        """Render the artifact as a monospace table."""
        headers = ["Benchmark"] + [
            f"{m}:{a}" for m in METRICS for a in ARCHITECTURES
        ]
        body = []
        for row in self.rows:
            cells = [row.benchmark]
            for metric in METRICS:
                for arch in ARCHITECTURES:
                    cells.append(row.points[arch].metric(metric))
            body.append(cells)
        return render_table(
            headers, body, title="Fig. 12 — overall ASIC comparison (absolute)"
        )

    def ratio_table(self) -> str:
        """Render the normalized-ratio table."""
        rows = []
        for metric in METRICS:
            rows.append(
                [metric]
                + [self.mean_ratio(arch, metric) for arch in ARCHITECTURES]
            )
        return render_table(
            ["metric (vs RAP)"] + ARCHITECTURES,
            rows,
            title="Fig. 12 — geometric-mean ratios normalized to RAP",
        )


def _rap_point(
    workload: Workload,
    config: ExperimentConfig,
    trace: ActivityTrace | None = None,
) -> ArchPoint:
    """RAP on the full mixed workload with the Section 5.5 sharing rule."""
    from repro.simulators.asic_base import rap_tile_area
    from repro.simulators.sharing import plan_workload_sharing

    ruleset = compile_decided(
        workload.benchmark.patterns, config, workload.chosen_depth
    )
    sim = RAPSimulator()
    result = sim.run(
        ruleset,
        workload.data,
        bin_size=workload.chosen_bin_size,
        trace=trace,
    )
    plan = plan_workload_sharing(
        result.array_reports, floor_gchps=NBVA_THROUGHPUT_FLOOR
    )
    area = result.area_mm2 + plan.extra_tiles * rap_tile_area() * 1e-6
    return ArchPoint(
        energy_uj=result.energy_uj,
        area_mm2=area,
        throughput=plan.system_throughput,
        power_w=result.power_w,
    )


def simulate_benchmark(
    workload: Workload,
    config: ExperimentConfig,
    trace: ActivityTrace | None = None,
) -> Fig12Row:
    """Run all four designs on one benchmark.

    One :class:`ActivityTrace` is shared across the four architecture
    simulators, so the functional scan over the benchmark's input runs
    exactly once per distinct automaton and every design is priced from
    the same events (CAMA and CA compile to identical NFAs and therefore
    share every scan; RAP's decided-NFA regexes share with both).
    """
    trace = trace if trace is not None else ActivityTrace(workload.data)
    points: dict[str, ArchPoint] = {}
    points["RAP"] = _rap_point(workload, config, trace)

    bvap_rs = compile_bvap_flavor(
        zip(workload.benchmark.patterns, workload.benchmark.intended_modes),
        config,
        bv_depth=16,
    )
    bvap = BVAPSimulator().run(bvap_rs, workload.data, trace=trace)
    points["BVAP"] = ArchPoint(
        bvap.energy_uj, bvap.area_mm2, bvap.throughput_gchps, bvap.power_w
    )

    nfa_rs = compile_forced(
        workload.benchmark.patterns, CompiledMode.NFA, config
    )
    cama = CAMASimulator().run(nfa_rs, workload.data, trace=trace)
    points["CAMA"] = ArchPoint(
        cama.energy_uj, cama.area_mm2, cama.throughput_gchps, cama.power_w
    )

    ca_hw = ca_hardware_config()
    ca_rs = compile_forced(
        workload.benchmark.patterns, CompiledMode.NFA, config, hw=ca_hw
    )
    ca = CASimulator().run(
        ca_rs, workload.data, mapping=map_ruleset(ca_rs, ca_hw), trace=trace
    )
    points["CA"] = ArchPoint(
        ca.energy_uj, ca.area_mm2, ca.throughput_gchps, ca.power_w
    )
    return Fig12Row(benchmark=workload.name, points=points)


def _benchmark_row(item: tuple[str, ExperimentConfig]) -> Fig12Row:
    """Per-benchmark worker: all four designs on one benchmark."""
    name, config = item
    return simulate_benchmark(build_workload(name, config), config)


def run(config: ExperimentConfig | None = None) -> Fig12Result:
    """Regenerate Fig. 12 and persist the results."""
    config = config or ExperimentConfig()
    rows = map_benchmarks(_benchmark_row, ALL_BENCHMARK_NAMES, config)
    result = Fig12Result(rows)
    save_json(
        "fig12_asic",
        {
            row.benchmark: {
                arch: {
                    "energy_uj": p.energy_uj,
                    "area_mm2": p.area_mm2,
                    "throughput": p.throughput,
                    "power_w": p.power_w,
                    "energy_eff": p.energy_eff,
                    "compute_density": p.compute_density,
                }
                for arch, p in row.points.items()
            }
            for row in rows
        },
    )
    save_csv(
        "fig12_asic",
        ["benchmark", "arch"] + METRICS,
        [
            [row.benchmark, arch]
            + [row.points[arch].metric(m) for m in METRICS]
            for row in rows
            for arch in ARCHITECTURES
        ],
    )
    return result


if __name__ == "__main__":
    result = run()
    print(result.to_table())
    print()
    print(result.ratio_table())
