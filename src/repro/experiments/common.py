"""Shared experiment plumbing: workload preparation and table rendering.

The paper's methodology (Section 5.4): regexes are compiled to their
decided mode with per-benchmark DSE parameters; the NFA-mode columns come
from fully unfolding the same regexes; 100,000 input characters are
matched (scaled down here by default — pure-Python simulation is slower
than the authors' cluster runs, and every reported quantity is
ratio-dominated).
"""

from __future__ import annotations

import json
import os
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.compiler import (
    CompiledMode,
    CompilerConfig,
    compile_pattern,
    compile_ruleset,
)
from repro.compiler.program import CompiledRuleset
from repro.workloads.datasets import GeneratedBenchmark, generate_benchmark
from repro.workloads.inputs import generate_input
from repro.workloads.profiles import PROFILES


def _env_scale(default: float = 1.0) -> float:
    """Global experiment scale from REPRO_BENCH_SCALE (e.g. 0.25 or 4)."""
    raw = os.environ.get("REPRO_BENCH_SCALE", "")
    try:
        return float(raw) if raw else default
    except ValueError:
        return default


@dataclass(frozen=True)
class ExperimentConfig:
    """Workload size and determinism knobs shared by all experiments."""

    benchmark_size: int = 24  # regexes per benchmark
    input_length: int = 6000  # characters matched (paper: 100,000)
    seed: int = 0
    unfold_threshold: int = 8
    # Execution knobs (the CLI's --jobs/--cache/--backend); they
    # parallelize the per-benchmark loops, memoize compilation, and pick
    # the step kernel for the hot loops, but never change any reported
    # number (kernels are bit-identical by contract).
    jobs: int = 1
    # Input-parallel chunks per scanned stream (the CLI's --input-jobs):
    # exported as RAP_INPUT_JOBS around each benchmark worker, so every
    # engine-level scan inside resolves it.  Like the other execution
    # knobs it never changes a reported number — split scans are
    # bit-identical to serial by construction.
    input_jobs: int | None = None
    use_cache: bool = False
    backend: str | None = None  # None: RAP_BACKEND or python
    # Supervised-execution knobs (the CLI's --timeout/--retries): a
    # per-benchmark deadline in seconds (None: no deadline) and extra
    # attempts after crashes/overruns; retried benchmarks recompute the
    # same numbers, so these never change a reported quantity either.
    timeout: float | None = None
    retries: int = 2
    # Resource budgets (the CLI's --max-seconds/--max-rss-mb): enforced
    # between benchmarks by map_benchmarks; exceeding one raises
    # BudgetExceededError rather than letting a scaled-up run take the
    # host down.  None disables the corresponding guard.
    max_seconds: float | None = None
    max_rss_mb: float | None = None

    @classmethod
    def scaled(cls) -> "ExperimentConfig":
        """A config scaled by REPRO_BENCH_SCALE."""
        scale = _env_scale()
        return cls(
            benchmark_size=max(6, int(24 * scale)),
            input_length=max(1500, int(6000 * scale)),
        )


@dataclass
class Workload:
    """One benchmark's generated patterns and its input stream."""

    benchmark: GeneratedBenchmark
    data: bytes

    @property
    def name(self) -> str:
        """The workload's benchmark name."""
        return self.benchmark.name

    @property
    def chosen_depth(self) -> int:
        """The benchmark's DSE-chosen BV depth."""
        return self.benchmark.profile.chosen_bv_depth

    @property
    def chosen_bin_size(self) -> int:
        """The benchmark's DSE-chosen bin size."""
        return self.benchmark.profile.chosen_bin_size

    def patterns_for_mode(self, mode: CompiledMode) -> list[str]:
        """The patterns the generator targeted at a mode."""
        return [
            p
            for p, m in zip(
                self.benchmark.patterns, self.benchmark.intended_modes
            )
            if m == mode.value
        ]


def build_workload(name: str, config: ExperimentConfig) -> Workload:
    """Generate one benchmark and a matching input stream."""
    benchmark = generate_benchmark(
        name, size=config.benchmark_size, seed=config.seed
    )
    # NBVA (signature-style) patterns match real traffic far more rarely
    # than short content patterns; weight planting accordingly so the BV
    # activation rate stays in the regime the paper's analysis assumes.
    weights = [
        0.02 if mode == "NBVA" else 1.0
        for mode in benchmark.intended_modes
    ]
    data = generate_input(
        benchmark.profile.domain,
        config.input_length,
        seed=config.seed + 17,
        patterns=benchmark.patterns,
        plant_every=max(250, config.input_length // 10),
        weights=weights,
    )
    return Workload(benchmark=benchmark, data=data)


def build_mode_workload(
    name: str, mode: CompiledMode, config: ExperimentConfig
) -> Workload:
    """A single-mode benchmark subset with a matching input stream.

    Tables 2 and 3 evaluate "all regexes compiled to NBVA (resp. LNFA)"
    of each benchmark; the subset is sized independently of the mixed
    benchmark so every benchmark contributes a meaningful population.
    Signature-style NBVA subsets get sparse witness planting (real gap
    signatures fire rarely — the BV activation-rate regime of
    Section 5.3).
    """
    from repro.workloads.datasets import (
        GeneratedBenchmark,
        generate_mode_patterns,
    )
    from repro.workloads.profiles import PROFILES

    profile = PROFILES[name]
    count = max(12, config.benchmark_size // 2)
    patterns = generate_mode_patterns(profile, mode, count, seed=config.seed)
    benchmark = GeneratedBenchmark(
        name=name,
        profile=profile,
        patterns=patterns,
        intended_modes=tuple(mode.value for _ in patterns),
    )
    plant_every = (
        max(600, config.input_length // 4)
        if mode is CompiledMode.NBVA
        else max(250, config.input_length // 10)
    )
    data = generate_input(
        profile.domain,
        config.input_length,
        seed=config.seed + 17,
        patterns=patterns,
        plant_every=plant_every,
    )
    return Workload(benchmark=benchmark, data=data)


def _compile(
    patterns: Sequence[str],
    compiler: CompilerConfig,
    config: ExperimentConfig,
) -> CompiledRuleset:
    """Compile, through the keyed on-disk cache when the config asks."""
    if config.use_cache:
        from repro.engine.cache import CompileCache, cached_compile_ruleset

        return cached_compile_ruleset(patterns, compiler, CompileCache())
    return compile_ruleset(list(patterns), compiler)


def compile_decided(
    patterns: Sequence[str], config: ExperimentConfig, bv_depth: int
) -> CompiledRuleset:
    """Compile with the decision graph at the benchmark's chosen depth."""
    ruleset = _compile(
        patterns,
        CompilerConfig(
            unfold_threshold=config.unfold_threshold, bv_depth=bv_depth
        ),
        config,
    )
    if ruleset.rejected:
        raise RuntimeError(f"unexpected rejections: {ruleset.rejected}")
    return ruleset


def compile_forced(
    patterns: Sequence[str],
    mode: CompiledMode,
    config: ExperimentConfig,
    bv_depth: int = 16,
    hw=None,
) -> CompiledRuleset:
    """Compile every pattern to one forced mode."""
    kwargs = dict(
        unfold_threshold=config.unfold_threshold,
        bv_depth=bv_depth,
        forced_mode=mode,
    )
    if hw is not None:
        kwargs["hw"] = hw
    ruleset = _compile(patterns, CompilerConfig(**kwargs), config)
    if ruleset.rejected:
        raise RuntimeError(f"unexpected rejections: {ruleset.rejected}")
    return ruleset


def map_benchmarks(
    worker: Callable,
    names: Sequence[str],
    config: ExperimentConfig,
):
    """Run a per-benchmark worker over ``names``, in name order.

    With ``config.jobs > 1`` the benchmarks fan out across worker
    processes through the batch engine's pool; results always come back
    in input order, and the workers are ordinary sequential simulations,
    so the experiment's numbers are independent of the job count.

    ``worker`` must be a module-level function taking ``(name, config)``
    tuples (picklable by the pool).  ``config.backend`` is applied
    around every worker call, in-process and in pool workers alike.

    With a resource budget set (``config.max_seconds`` /
    ``config.max_rss_mb``) the benchmarks run one at a time with a
    budget heartbeat between them; blowing the budget raises
    :class:`~repro.errors.BudgetExceededError` before the next
    benchmark starts (the completed ones are simply lost — experiments
    are regenerable, unlike durable scans).
    """
    from repro.engine.pool import parallel_map

    items = [(worker, name, config) for name in names]
    if config.max_seconds is None and config.max_rss_mb is None:
        return parallel_map(
            _run_benchmark_worker,
            items,
            jobs=config.jobs,
            timeout=config.timeout,
            retries=config.retries,
        )
    from repro.engine.budget import BudgetMonitor, ResourceBudget
    from repro.errors import BudgetExceededError

    monitor = BudgetMonitor(
        ResourceBudget(
            max_seconds=config.max_seconds, max_rss_mb=config.max_rss_mb
        )
    )
    results = []
    for item in items:
        pressure = monitor.check()
        if pressure is not None:
            raise BudgetExceededError(
                str(pressure), phase="experiment", limit=pressure.limit
            )
        results.extend(
            parallel_map(
                _run_benchmark_worker,
                [item],
                jobs=config.jobs,
                timeout=config.timeout,
                retries=config.retries,
            )
        )
    return results


def _run_benchmark_worker(item):
    """Pool trampoline: scope the configured backend and input-parallel
    level around one worker."""
    worker, name, config = item
    if config.input_jobs is not None:
        from repro.engine.checkpoint import INPUT_JOBS_ENV

        os.environ[INPUT_JOBS_ENV] = str(config.input_jobs)
    if config.backend is None:
        return worker((name, config))
    from repro.core import use_backend

    with use_backend(config.backend):
        return worker((name, config))


def compile_bvap_flavor(
    patterns_with_modes: Iterable[tuple[str, str]],
    config: ExperimentConfig,
    bv_depth: int = 16,
) -> CompiledRuleset:
    """BVAP's view of a workload: NBVA where countable, NFA otherwise
    (BVAP has no LNFA mode)."""
    compiled = []
    for pattern, intended in patterns_with_modes:
        mode = (
            CompiledMode.NBVA if intended == "NBVA" else CompiledMode.NFA
        )
        compiled.append(
            compile_pattern(
                pattern,
                len(compiled),
                CompilerConfig(
                    unfold_threshold=config.unfold_threshold,
                    bv_depth=bv_depth,
                    forced_mode=mode,
                ),
            )
        )
    return CompiledRuleset(regexes=tuple(compiled))


# ---------------------------------------------------------------------------
# Output rendering
# ---------------------------------------------------------------------------


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> str:
    """A plain monospace table (the harness prints the paper's rows)."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows))
        if str_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.3f}"
    return str(cell)


def results_dir() -> Path:
    """The results directory (REPRO_RESULTS_DIR)."""
    path = Path(os.environ.get("REPRO_RESULTS_DIR", "results"))
    path.mkdir(parents=True, exist_ok=True)
    return path


def save_json(name: str, payload) -> Path:
    """Write one experiment's payload as JSON."""
    path = results_dir() / f"{name}.json"
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
    return path


def save_csv(name: str, headers: Sequence[str], rows: Sequence[Sequence]) -> Path:
    """Write one experiment's rows as CSV."""
    path = results_dir() / f"{name}.csv"
    with open(path, "w") as f:
        f.write(",".join(headers) + "\n")
        for row in rows:
            f.write(",".join(str(_fmt(c)) for c in row) + "\n")
    return path


ALL_BENCHMARK_NAMES = list(PROFILES)
