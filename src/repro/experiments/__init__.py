"""Experiment drivers: one module per table/figure of the evaluation.

Each driver exposes ``run(config) -> <Result>`` with a ``to_table()``
renderer, and the corresponding ``benchmarks/`` target regenerates the
paper's rows and asserts the shape expectations listed in DESIGN.md.

| Paper artifact | Module |
|---|---|
| Fig. 1   | :mod:`repro.experiments.fig01_model_mix` |
| Fig. 10  | :mod:`repro.experiments.fig10_dse` |
| Table 2  | :mod:`repro.experiments.table2_nbva` |
| Table 3  | :mod:`repro.experiments.table3_lnfa` |
| Fig. 11  | :mod:`repro.experiments.fig11_breakdown` |
| Fig. 12  | :mod:`repro.experiments.fig12_asic` |
| Fig. 13  | :mod:`repro.experiments.fig13_cpu_gpu` |
| Table 4  | :mod:`repro.experiments.table4_fpga` |
"""

from repro.experiments.common import ExperimentConfig

__all__ = ["ExperimentConfig"]
