"""Fig. 1: the NFA / NBVA / LNFA mix of each benchmark.

The paper's Fig. 1 motivates reconfigurability: the best automata model
varies tremendously across rule sets.  This driver compiles each
benchmark through the decision graph and reports the resulting mix.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler import CompiledMode
from repro.experiments.common import (
    ALL_BENCHMARK_NAMES,
    ExperimentConfig,
    build_workload,
    compile_decided,
    map_benchmarks,
    render_table,
    save_csv,
    save_json,
)


@dataclass
class MixRow:
    """One benchmark's NFA/NBVA/LNFA fractions."""
    benchmark: str
    nfa: float
    nbva: float
    lnfa: float


@dataclass
class Fig1Result:
    """The Fig. 1 artifact: mix per benchmark."""
    rows: list[MixRow]

    def to_table(self) -> str:
        """Render the artifact as a monospace table."""
        return render_table(
            ["Benchmark", "NFA %", "NBVA %", "LNFA %"],
            [
                (r.benchmark, r.nfa * 100, r.nbva * 100, r.lnfa * 100)
                for r in self.rows
            ],
            title="Fig. 1 — regex model mix per benchmark",
        )

    def row(self, benchmark: str) -> MixRow:
        """The row for one benchmark."""
        return next(r for r in self.rows if r.benchmark == benchmark)


def _mix_row(item: tuple[str, ExperimentConfig]) -> MixRow:
    """Per-benchmark worker: compile one benchmark and report its mix."""
    name, config = item
    workload = build_workload(name, config)
    ruleset = compile_decided(
        workload.benchmark.patterns, config, workload.chosen_depth
    )
    fractions = ruleset.mode_fractions()
    return MixRow(
        benchmark=name,
        nfa=fractions[CompiledMode.NFA],
        nbva=fractions[CompiledMode.NBVA],
        lnfa=fractions[CompiledMode.LNFA],
    )


def run(config: ExperimentConfig | None = None) -> Fig1Result:
    """Regenerate Fig. 1 and persist the results."""
    config = config or ExperimentConfig()
    rows = map_benchmarks(_mix_row, ALL_BENCHMARK_NAMES, config)
    result = Fig1Result(rows)
    save_json(
        "fig01_model_mix",
        {r.benchmark: {"nfa": r.nfa, "nbva": r.nbva, "lnfa": r.lnfa} for r in rows},
    )
    save_csv(
        "fig01_model_mix",
        ["benchmark", "nfa", "nbva", "lnfa"],
        [(r.benchmark, r.nfa, r.nbva, r.lnfa) for r in rows],
    )
    return result


if __name__ == "__main__":
    print(run().to_table())
