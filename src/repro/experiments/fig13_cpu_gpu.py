"""Fig. 13: RAP vs GPU (HybridSA) and CPU (Hyperscan).

Per benchmark, compare power and throughput of the full-workload RAP
configuration against the software engines' operating points.  The
headline claims: the GPU draws ~16x RAP's power at ~1/9.8 its
throughput; the CPU runs at ~60x lower throughput while RAP uses ~1.1%
of its power — over 100x and over 1000x energy-efficiency advantages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    ALL_BENCHMARK_NAMES,
    ExperimentConfig,
    build_workload,
    compile_decided,
    map_benchmarks,
    render_table,
    save_json,
)
from repro.experiments.fig12_asic import _rap_point
from repro.simulators.sw_models import CPUModel, GPUModel


@dataclass
class Fig13Row:
    """One benchmark's RAP/GPU/CPU operating points."""
    benchmark: str
    rap_power_w: float
    rap_throughput: float
    gpu_power_w: float
    gpu_throughput: float
    cpu_power_w: float
    cpu_throughput: float

    @property
    def rap_efficiency(self) -> float:
        """RAP throughput per watt."""
        return self.rap_throughput / self.rap_power_w

    @property
    def gpu_efficiency(self) -> float:
        """GPU throughput per watt."""
        return self.gpu_throughput / self.gpu_power_w

    @property
    def cpu_efficiency(self) -> float:
        """CPU throughput per watt."""
        return self.cpu_throughput / self.cpu_power_w

    @property
    def efficiency_vs_gpu(self) -> float:
        """RAP / GPU energy-efficiency ratio."""
        return self.rap_efficiency / self.gpu_efficiency

    @property
    def efficiency_vs_cpu(self) -> float:
        """RAP / CPU energy-efficiency ratio."""
        return self.rap_efficiency / self.cpu_efficiency


@dataclass
class Fig13Result:
    """The Fig. 13 artifact."""
    rows: list[Fig13Row]

    def row(self, benchmark: str) -> Fig13Row:
        """The row for one benchmark."""
        return next(r for r in self.rows if r.benchmark == benchmark)

    def to_table(self) -> str:
        """Render the artifact as a monospace table."""
        return render_table(
            [
                "Benchmark",
                "RAP W",
                "RAP Gch/s",
                "GPU W",
                "GPU Gch/s",
                "CPU W",
                "CPU Gch/s",
                "eff x GPU",
                "eff x CPU",
            ],
            [
                (
                    r.benchmark,
                    r.rap_power_w,
                    r.rap_throughput,
                    r.gpu_power_w,
                    r.gpu_throughput,
                    r.cpu_power_w,
                    r.cpu_throughput,
                    r.efficiency_vs_gpu,
                    r.efficiency_vs_cpu,
                )
                for r in self.rows
            ],
            title="Fig. 13 — RAP vs GPU (HybridSA) and CPU (Hyperscan)",
        )


def _benchmark_row(item: tuple[str, ExperimentConfig]) -> Fig13Row:
    """Per-benchmark worker: RAP, GPU, and CPU operating points."""
    name, config = item
    cpu, gpu = CPUModel(), GPUModel()
    workload = build_workload(name, config)
    rap = _rap_point(workload, config)
    ruleset = compile_decided(
        workload.benchmark.patterns, config, workload.chosen_depth
    )
    gpu_point = gpu.operating_point(ruleset)
    cpu_point = cpu.operating_point(ruleset)
    return Fig13Row(
        benchmark=name,
        rap_power_w=rap.power_w,
        rap_throughput=rap.throughput,
        gpu_power_w=gpu_point.power_w,
        gpu_throughput=gpu_point.throughput_gchps,
        cpu_power_w=cpu_point.power_w,
        cpu_throughput=cpu_point.throughput_gchps,
    )


def run(config: ExperimentConfig | None = None) -> Fig13Result:
    """Regenerate Fig. 13 and persist the results."""
    config = config or ExperimentConfig()
    rows = map_benchmarks(_benchmark_row, ALL_BENCHMARK_NAMES, config)
    result = Fig13Result(rows)
    save_json(
        "fig13_cpu_gpu",
        {
            r.benchmark: {
                "rap": {"power_w": r.rap_power_w, "throughput": r.rap_throughput},
                "gpu": {"power_w": r.gpu_power_w, "throughput": r.gpu_throughput},
                "cpu": {"power_w": r.cpu_power_w, "throughput": r.cpu_throughput},
                "efficiency_vs_gpu": r.efficiency_vs_gpu,
                "efficiency_vs_cpu": r.efficiency_vs_cpu,
            }
            for r in rows
        },
    )
    return result


if __name__ == "__main__":
    print(run().to_table())
