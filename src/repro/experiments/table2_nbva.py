"""Table 2: RAP's NBVA mode vs its NFA mode and the SotA ASICs.

For the regexes each benchmark compiles to NBVA, the paper reports total
energy, area, and throughput of: RAP-NBVA (baseline), RAP-NFA (the same
regexes fully unfolded), CAMA, BVAP, and CA.  Prosite is absent — it has
no NBVA regexes.

The run doubles as the paper's consistency check: all five simulations
must report identical match sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler import CompiledMode
from repro.experiments.common import (
    ExperimentConfig,
    Workload,
    build_mode_workload,
    compile_forced,
    map_benchmarks,
    render_table,
    save_csv,
    save_json,
)
from repro.mapping.mapper import map_ruleset
from repro.simulators import (
    BVAPSimulator,
    CAMASimulator,
    CASimulator,
    RAPSimulator,
    ca_hardware_config,
)
from repro.simulators.result import SimulationResult
from repro.workloads.profiles import TABLE2_BENCHMARKS

ARCHITECTURES = ["NBVA", "NFA", "CAMA", "BVAP", "CA"]


@dataclass
class Table2Row:
    """One benchmark's Table 2 metrics per design."""
    benchmark: str
    energy_uj: dict[str, float] = field(default_factory=dict)
    area_mm2: dict[str, float] = field(default_factory=dict)
    throughput: dict[str, float] = field(default_factory=dict)


@dataclass
class Table2Result:
    """The Table 2 artifact."""
    rows: list[Table2Row]

    def row(self, benchmark: str) -> Table2Row:
        """The row for one benchmark."""
        return next(r for r in self.rows if r.benchmark == benchmark)

    def normalized_averages(self) -> dict[str, dict[str, float]]:
        """Per-metric geometric-mean ratios vs the NBVA baseline."""
        out: dict[str, dict[str, float]] = {}
        for metric in ("energy_uj", "area_mm2", "throughput"):
            ratios: dict[str, float] = {}
            for arch in ARCHITECTURES:
                product, count = 1.0, 0
                for row in self.rows:
                    values = getattr(row, metric)
                    base = values["NBVA"]
                    if base > 0 and values[arch] > 0:
                        product *= values[arch] / base
                        count += 1
                ratios[arch] = product ** (1 / count) if count else 0.0
            out[metric] = ratios
        return out

    def to_table(self) -> str:
        """Render the artifact as a monospace table."""
        headers = ["Dataset"]
        for metric in ("E(uJ)", "A(mm2)", "T(Gch/s)"):
            headers += [f"{metric} {a}" for a in ARCHITECTURES]
        body = []
        for row in self.rows:
            cells = [row.benchmark]
            for metric in ("energy_uj", "area_mm2", "throughput"):
                values = getattr(row, metric)
                cells += [values[a] for a in ARCHITECTURES]
            body.append(cells)
        norm = self.normalized_averages()
        avg = ["Avg (vs NBVA)"]
        for metric in ("energy_uj", "area_mm2", "throughput"):
            avg += [norm[metric][a] for a in ARCHITECTURES]
        body.append(avg)
        return render_table(
            headers, body, title="Table 2 — NBVA-compiled regexes across designs"
        )


def simulate_benchmark(workload: Workload, config: ExperimentConfig) -> Table2Row:
    """Run all five designs on one NBVA subset."""
    patterns = list(workload.benchmark.patterns)
    if not patterns:
        raise ValueError(f"{workload.name} has no NBVA regexes")
    data = workload.data
    depth = workload.chosen_depth

    nbva_rs = compile_forced(patterns, CompiledMode.NBVA, config, bv_depth=depth)
    nfa_rs = compile_forced(patterns, CompiledMode.NFA, config)
    ca_hw = ca_hardware_config()
    ca_rs = compile_forced(patterns, CompiledMode.NFA, config, hw=ca_hw)

    results: dict[str, SimulationResult] = {
        "NBVA": RAPSimulator().run(nbva_rs, data),
        "NFA": RAPSimulator().run(nfa_rs, data),
        "CAMA": CAMASimulator().run(nfa_rs, data),
        "BVAP": BVAPSimulator().run(nbva_rs, data),
        "CA": CASimulator().run(ca_rs, data, mapping=map_ruleset(ca_rs, ca_hw)),
    }
    _assert_consistent(results, workload.name)
    return Table2Row(
        benchmark=workload.name,
        energy_uj={a: r.energy_uj for a, r in results.items()},
        area_mm2={a: r.area_mm2 for a, r in results.items()},
        throughput={a: r.throughput_gchps for a, r in results.items()},
    )


def _assert_consistent(results: dict[str, SimulationResult], name: str) -> None:
    """The paper's Hyperscan-style cross-check, across architectures."""
    reference = results["NFA"].matches
    for arch, result in results.items():
        if result.matches != reference:
            raise AssertionError(
                f"{name}: {arch} match results diverge from NFA mode"
            )


def _benchmark_row(item: tuple[str, ExperimentConfig]) -> Table2Row:
    """Per-benchmark worker: all five designs on one NBVA subset."""
    name, config = item
    workload = build_mode_workload(name, CompiledMode.NBVA, config)
    return simulate_benchmark(workload, config)


def run(config: ExperimentConfig | None = None) -> Table2Result:
    """Regenerate Table 2 and persist the results."""
    config = config or ExperimentConfig()
    rows = map_benchmarks(_benchmark_row, TABLE2_BENCHMARKS, config)
    result = Table2Result(rows)
    save_json(
        "table2_nbva",
        {
            r.benchmark: {
                "energy_uj": r.energy_uj,
                "area_mm2": r.area_mm2,
                "throughput": r.throughput,
            }
            for r in rows
        },
    )
    save_csv(
        "table2_nbva",
        ["benchmark", "metric"] + ARCHITECTURES,
        [
            [r.benchmark, metric] + [getattr(r, metric)[a] for a in ARCHITECTURES]
            for r in rows
            for metric in ("energy_uj", "area_mm2", "throughput")
        ],
    )
    return result


if __name__ == "__main__":
    print(run().to_table())
