"""One-shot evaluation: run every artifact and emit a combined report.

``python -m repro experiment all`` (or calling :func:`run` directly)
regenerates Fig. 1, Fig. 10, Tables 2-4, and Figs. 11-13 in sequence and
writes a single markdown report (``results/summary.md``) with every
table, plus the headline ratios the paper's abstract quotes.  This is
the reproduction's equivalent of running the artifact's full
``main_gap.py --data All`` sweep.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.experiments import (
    fig01_model_mix,
    fig10_dse,
    fig11_breakdown,
    fig12_asic,
    fig13_cpu_gpu,
    table2_nbva,
    table3_lnfa,
    table4_fpga,
)
from repro.experiments.common import ExperimentConfig, results_dir


@dataclass
class SummaryResult:
    """Every artifact's result plus the rendered combined report."""

    report: str
    artifacts: dict[str, object]

    def to_table(self) -> str:
        """The combined markdown report (CLI rendering hook)."""
        return self.report


def headline_claims(artifacts: dict[str, object]) -> list[str]:
    """The abstract's headline numbers, recomputed from this run."""
    fig12 = artifacts["fig12"]
    lines = []
    for arch, label in (("CAMA", "CAMA"), ("CA", "CA")):
        eff = 1.0 / fig12.mean_ratio(arch, "energy_eff")
        density = 1.0 / fig12.mean_ratio(arch, "compute_density")
        lines.append(
            f"- RAP vs {label}: {eff:.1f}x energy efficiency, "
            f"{density:.1f}x compute density (paper: "
            f"{'1.5x / 1.3x' if arch == 'CAMA' else '1.2x / 2.5x'})"
        )
    bvap_density = 1.0 / fig12.mean_ratio("BVAP", "compute_density")
    bvap_eff = 1.0 / fig12.mean_ratio("BVAP", "energy_eff")
    lines.append(
        f"- RAP vs BVAP: {bvap_density:.1f}x compute density at "
        f"{bvap_eff:.2f}x energy efficiency (paper: 1.6x, ~1x)"
    )
    fig13 = artifacts["fig13"]
    gpu = statistics.geometric_mean(
        r.efficiency_vs_gpu for r in fig13.rows
    )
    cpu = statistics.geometric_mean(
        r.efficiency_vs_cpu for r in fig13.rows
    )
    lines.append(
        f"- RAP vs GPU/CPU energy efficiency: {gpu:,.0f}x / {cpu:,.0f}x "
        "(paper: >100x / >1000x)"
    )
    table4 = artifacts["table4"]
    ratios = [r.throughput_ratio for r in table4.rows]
    lines.append(
        f"- RAP vs hAP (FPGA) throughput: {min(ratios):.1f}x-"
        f"{max(ratios):.1f}x (paper: 11.5x-13.8x)"
    )
    return lines


def run(config: ExperimentConfig | None = None) -> SummaryResult:
    """Run all eight artifacts and assemble the combined report."""
    config = config or ExperimentConfig()
    artifacts: dict[str, object] = {}
    sections: list[str] = []
    for key, module in [
        ("fig1", fig01_model_mix),
        ("fig10", fig10_dse),
        ("table2", table2_nbva),
        ("table3", table3_lnfa),
        ("fig11", fig11_breakdown),
        ("fig12", fig12_asic),
        ("fig13", fig13_cpu_gpu),
        ("table4", table4_fpga),
    ]:
        result = module.run(config)
        artifacts[key] = result
        sections.append(f"## {key}\n\n```\n{result.to_table()}\n```")
        if key == "fig12":
            sections.append(f"```\n{result.ratio_table()}\n```")

    header = [
        "# RAP reproduction — full evaluation run",
        "",
        f"Workload: {config.benchmark_size} regexes/benchmark, "
        f"{config.input_length} input characters, seed {config.seed}.",
        "",
        "## Headline claims",
        "",
        *headline_claims(artifacts),
        "",
    ]
    report = "\n".join(header) + "\n\n" + "\n\n".join(sections) + "\n"
    path = results_dir() / "summary.md"
    path.write_text(report)
    return SummaryResult(report=report, artifacts=artifacts)


if __name__ == "__main__":
    print(run().report)
