"""Table 4: RAP vs the hAP FPGA design on ANMLZoo-style suites.

The paper runs RAP on the same ANMLZoo benchmarks hAP reports (Brill,
ClamAV, Dotstar, PowerEN, Snort) and compares power and throughput
directly against hAP's published numbers: RAP sustains 11.5x-13.8x the
throughput at only 1.7x-5.5x the power.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    ExperimentConfig,
    Workload,
    map_benchmarks,
    render_table,
    save_csv,
    save_json,
)
from repro.experiments.fig12_asic import _rap_point
from repro.simulators.sw_models import FPGAModel
from repro.workloads.anmlzoo import ANMLZOO_BENCHMARKS, generate_anmlzoo_benchmark
from repro.workloads.inputs import generate_input


@dataclass
class Table4Row:
    """One ANMLZoo suite's RAP vs hAP point."""
    benchmark: str
    rap_power_w: float
    rap_throughput: float
    fpga_power_w: float
    fpga_throughput: float

    @property
    def throughput_ratio(self) -> float:
        """RAP / FPGA throughput."""
        return self.rap_throughput / self.fpga_throughput

    @property
    def power_ratio(self) -> float:
        """RAP / FPGA power."""
        return self.rap_power_w / self.fpga_power_w


@dataclass
class Table4Result:
    """The Table 4 artifact."""
    rows: list[Table4Row]

    def row(self, benchmark: str) -> Table4Row:
        """The row for one benchmark."""
        return next(r for r in self.rows if r.benchmark == benchmark)

    def to_table(self) -> str:
        """Render the artifact as a monospace table."""
        return render_table(
            [
                "Dataset",
                "RAP W",
                "RAP Gch/s",
                "hAP W",
                "hAP Gch/s",
                "T ratio",
                "P ratio",
            ],
            [
                (
                    r.benchmark,
                    r.rap_power_w,
                    r.rap_throughput,
                    r.fpga_power_w,
                    r.fpga_throughput,
                    r.throughput_ratio,
                    r.power_ratio,
                )
                for r in self.rows
            ],
            title="Table 4 — RAP vs hAP (FPGA) on ANMLZoo",
        )


def _benchmark_row(item: tuple[str, ExperimentConfig]) -> Table4Row:
    """Per-benchmark worker: RAP vs hAP on one ANMLZoo suite."""
    name, config = item
    fpga = FPGAModel()
    benchmark = generate_anmlzoo_benchmark(
        name, size=config.benchmark_size, seed=config.seed
    )
    weights = [
        0.02 if mode == "NBVA" else 1.0
        for mode in benchmark.intended_modes
    ]
    data = generate_input(
        benchmark.profile.domain,
        config.input_length,
        seed=config.seed + 29,
        patterns=benchmark.patterns,
        plant_every=max(250, config.input_length // 10),
        weights=weights,
    )
    workload = Workload(benchmark=benchmark, data=data)
    rap = _rap_point(workload, config)
    fpga_point = fpga.operating_point(name)
    return Table4Row(
        benchmark=name,
        rap_power_w=rap.power_w,
        rap_throughput=rap.throughput,
        fpga_power_w=fpga_point.power_w,
        fpga_throughput=fpga_point.throughput_gchps,
    )


def run(config: ExperimentConfig | None = None) -> Table4Result:
    """Regenerate Table 4 and persist the results."""
    config = config or ExperimentConfig()
    rows = map_benchmarks(_benchmark_row, ANMLZOO_BENCHMARKS, config)
    result = Table4Result(rows)
    save_json(
        "table4_fpga",
        {
            r.benchmark: {
                "rap_power_w": r.rap_power_w,
                "rap_throughput": r.rap_throughput,
                "fpga_power_w": r.fpga_power_w,
                "fpga_throughput": r.fpga_throughput,
            }
            for r in rows
        },
    )
    save_csv(
        "table4_fpga",
        ["benchmark", "rap_w", "rap_gchps", "hap_w", "hap_gchps"],
        [
            (
                r.benchmark,
                r.rap_power_w,
                r.rap_throughput,
                r.fpga_power_w,
                r.fpga_throughput,
            )
            for r in rows
        ],
    )
    return result


if __name__ == "__main__":
    print(run().to_table())
