"""Fig. 10: design-space exploration of BV depth and LNFA bin size.

* **Fig. 10a** — for the NBVA-compiled regexes of each benchmark, sweep
  the BV depth over {4, 8, 16, 32} and report energy / area / throughput
  normalized to depth 4.  Deeper BVs compress more (fewer columns, fewer
  tiles: lower energy and area) but stall longer per bit-vector phase
  (lower throughput).
* **Fig. 10b** — for the LNFA-compiled regexes, sweep the bin size over
  {1, 2, 4, 8, 16, 32} and report energy / area normalized to bin size 1.
  Bigger bins concentrate initial states into fewer always-on tiles
  (lower energy) at the cost of padding redundancy (area).

Prosite has no NBVA regexes and is excluded from the depth sweep, as in
the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler import CompiledMode
from repro.experiments.common import (
    ExperimentConfig,
    build_mode_workload,
    compile_decided,
    compile_forced,
    render_table,
    save_json,
)
from repro.simulators import RAPSimulator
from repro.workloads.profiles import TABLE2_BENCHMARKS, TABLE3_BENCHMARKS

DEPTHS = (4, 8, 16, 32)
BIN_SIZES = (1, 2, 4, 8, 16, 32)


@dataclass
class SweepPoint:
    """Metrics at one DSE parameter value."""
    parameter: int
    energy_uj: float
    area_mm2: float
    throughput: float


@dataclass
class BenchmarkSweep:
    """One benchmark's full parameter sweep."""
    benchmark: str
    points: list[SweepPoint]
    chosen: int

    def normalized(self) -> list[tuple[int, float, float, float]]:
        """Points normalized to the first sweep point."""
        base = self.points[0]
        return [
            (
                p.parameter,
                p.energy_uj / base.energy_uj if base.energy_uj else 0.0,
                p.area_mm2 / base.area_mm2 if base.area_mm2 else 0.0,
                p.throughput / base.throughput if base.throughput else 0.0,
            )
            for p in self.points
        ]

    def point(self, parameter: int) -> SweepPoint:
        """The sweep point at one parameter value."""
        return next(p for p in self.points if p.parameter == parameter)


@dataclass
class Fig10Result:
    """The Fig. 10 artifact: both DSE sweeps."""
    nbva_sweeps: list[BenchmarkSweep]
    lnfa_sweeps: list[BenchmarkSweep]

    def sweep(self, kind: str, benchmark: str) -> BenchmarkSweep:
        """The sweep for one benchmark."""
        sweeps = self.nbva_sweeps if kind == "nbva" else self.lnfa_sweeps
        return next(s for s in sweeps if s.benchmark == benchmark)

    def to_table(self) -> str:
        """Render the artifact as a monospace table."""
        blocks = []
        for title, sweeps, param_name in [
            ("Fig. 10a — NBVA depth sweep (normalized to depth 4)",
             self.nbva_sweeps, "depth"),
            ("Fig. 10b — LNFA bin-size sweep (normalized to bin 1)",
             self.lnfa_sweeps, "bin"),
        ]:
            rows = []
            for sweep in sweeps:
                for param, e, a, t in sweep.normalized():
                    marker = "*" if param == sweep.chosen else ""
                    rows.append(
                        (sweep.benchmark, f"{param}{marker}", e, a, t)
                    )
            blocks.append(
                render_table(
                    ["Benchmark", param_name, "energy", "area", "throughput"],
                    rows,
                    title=title,
                )
            )
        return "\n\n".join(blocks)


def sweep_nbva(name: str, config: ExperimentConfig) -> BenchmarkSweep:
    """Sweep the BV depth for one benchmark."""
    workload = build_mode_workload(name, CompiledMode.NBVA, config)
    points = []
    for depth in DEPTHS:
        ruleset = compile_forced(
            list(workload.benchmark.patterns),
            CompiledMode.NBVA,
            config,
            bv_depth=depth,
        )
        result = RAPSimulator().run(ruleset, workload.data)
        points.append(
            SweepPoint(
                parameter=depth,
                energy_uj=result.energy_uj,
                area_mm2=result.area_mm2,
                throughput=result.throughput_gchps,
            )
        )
    return BenchmarkSweep(
        benchmark=name,
        points=points,
        chosen=workload.chosen_depth,
    )


def sweep_lnfa(name: str, config: ExperimentConfig) -> BenchmarkSweep:
    """Sweep the bin size for one benchmark."""
    workload = build_mode_workload(name, CompiledMode.LNFA, config)
    ruleset = compile_decided(
        list(workload.benchmark.patterns), config, bv_depth=16
    )
    points = []
    for bin_size in BIN_SIZES:
        result = RAPSimulator().run(ruleset, workload.data, bin_size=bin_size)
        points.append(
            SweepPoint(
                parameter=bin_size,
                energy_uj=result.energy_uj,
                area_mm2=result.area_mm2,
                throughput=result.throughput_gchps,
            )
        )
    return BenchmarkSweep(
        benchmark=name,
        points=points,
        chosen=workload.chosen_bin_size,
    )


def run(config: ExperimentConfig | None = None) -> Fig10Result:
    """Regenerate Fig. 10 and persist the results."""
    config = config or ExperimentConfig()
    result = Fig10Result(
        nbva_sweeps=[sweep_nbva(n, config) for n in TABLE2_BENCHMARKS],
        lnfa_sweeps=[sweep_lnfa(n, config) for n in TABLE3_BENCHMARKS],
    )
    save_json(
        "fig10_dse",
        {
            "nbva": {
                s.benchmark: {
                    str(p.parameter): {
                        "energy_uj": p.energy_uj,
                        "area_mm2": p.area_mm2,
                        "throughput": p.throughput,
                    }
                    for p in s.points
                }
                for s in result.nbva_sweeps
            },
            "lnfa": {
                s.benchmark: {
                    str(p.parameter): {
                        "energy_uj": p.energy_uj,
                        "area_mm2": p.area_mm2,
                        "throughput": p.throughput,
                    }
                    for p in s.points
                }
                for s in result.lnfa_sweeps
            },
        },
    )
    return result


if __name__ == "__main__":
    print(run().to_table())
