"""Fig. 11: breakdown of STEs / energy / area across the three modes.

Running every benchmark with its decided modes and chosen DSE parameters,
the figure shows which fraction of hardware states, energy, and area each
automata model accounts for.  The paper's observation: NFAs consume a
*larger* share of energy and area than their share of STEs — i.e. the
NBVA and LNFA modes are doing their job.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler import CompiledMode
from repro.experiments.common import (
    ALL_BENCHMARK_NAMES,
    ExperimentConfig,
    build_workload,
    compile_decided,
    map_benchmarks,
    render_table,
    save_json,
)
from repro.simulators import RAPSimulator


@dataclass
class ModeShare:
    """One mode's aggregate STEs/energy/area."""
    states: int
    energy_uj: float
    area_mm2: float


@dataclass
class Fig11Result:
    """The Fig. 11 artifact: per-mode shares."""
    shares: dict[str, ModeShare]  # mode name -> aggregate share

    def fraction(self, mode: str, metric: str) -> float:
        """One mode's share of a metric."""
        total = sum(getattr(s, metric) for s in self.shares.values())
        return getattr(self.shares[mode], metric) / total if total else 0.0

    def to_table(self) -> str:
        """Render the artifact as a monospace table."""
        rows = []
        for mode, share in self.shares.items():
            rows.append(
                (
                    mode,
                    share.states,
                    self.fraction(mode, "states") * 100,
                    share.energy_uj,
                    self.fraction(mode, "energy_uj") * 100,
                    share.area_mm2,
                    self.fraction(mode, "area_mm2") * 100,
                )
            )
        return render_table(
            ["Mode", "STEs", "STE %", "E (uJ)", "E %", "A (mm2)", "A %"],
            rows,
            title="Fig. 11 — per-mode share of STEs, energy, and area",
        )


def _mode_contributions(
    item: tuple[str, ExperimentConfig],
) -> list[tuple[str, int, float, float]]:
    """Per-benchmark worker: each mode's (states, energy, area) share.

    Contributions come back in :class:`CompiledMode` declaration order so
    the parent's fold adds floats in exactly the sequential order.
    """
    name, config = item
    sim = RAPSimulator()
    workload = build_workload(name, config)
    ruleset = compile_decided(
        workload.benchmark.patterns, config, workload.chosen_depth
    )
    contributions: list[tuple[str, int, float, float]] = []
    for mode in CompiledMode:
        subset = ruleset.by_mode(mode)
        if not subset:
            continue
        from repro.compiler.program import CompiledRuleset

        sub_ruleset = CompiledRuleset(
            regexes=tuple(
                _renumber(regex, idx) for idx, regex in enumerate(subset)
            )
        )
        result = sim.run(
            sub_ruleset,
            workload.data,
            bin_size=workload.chosen_bin_size,
        )
        contributions.append(
            (
                mode.value,
                sub_ruleset.total_states,
                result.energy_uj,
                result.area_mm2,
            )
        )
    return contributions


def run(config: ExperimentConfig | None = None) -> Fig11Result:
    """Regenerate Fig. 11 and persist the results."""
    config = config or ExperimentConfig()
    shares = {
        mode.value: ModeShare(states=0, energy_uj=0.0, area_mm2=0.0)
        for mode in CompiledMode
    }
    per_benchmark = map_benchmarks(
        _mode_contributions, ALL_BENCHMARK_NAMES, config
    )
    for contributions in per_benchmark:
        for mode_value, states, energy_uj, area_mm2 in contributions:
            share = shares[mode_value]
            share.states += states
            share.energy_uj += energy_uj
            share.area_mm2 += area_mm2
    result = Fig11Result(shares)
    save_json(
        "fig11_breakdown",
        {
            mode: {
                "states": share.states,
                "energy_uj": share.energy_uj,
                "area_mm2": share.area_mm2,
            }
            for mode, share in shares.items()
        },
    )
    return result


def _renumber(regex, new_id: int):
    import dataclasses

    return dataclasses.replace(regex, regex_id=new_id)


if __name__ == "__main__":
    print(run().to_table())
