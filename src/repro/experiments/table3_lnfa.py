"""Table 3: RAP's LNFA mode vs its NFA mode and the SotA ASICs.

For the regexes each benchmark compiles to LNFA, the paper reports total
energy, area, and throughput of: RAP-LNFA (baseline, with the chosen bin
size), RAP-NFA, CAMA, BVAP (which runs them as plain NFAs on its CAMA
fabric, dragging its provisioned-but-idle BVMs along), and CA.  All seven
benchmarks participate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler import CompiledMode
from repro.experiments.common import (
    ExperimentConfig,
    Workload,
    build_mode_workload,
    compile_decided,
    compile_forced,
    map_benchmarks,
    render_table,
    save_csv,
    save_json,
)
from repro.mapping.mapper import map_ruleset
from repro.simulators import (
    BVAPSimulator,
    CAMASimulator,
    CASimulator,
    RAPSimulator,
    ca_hardware_config,
)
from repro.simulators.result import SimulationResult
from repro.workloads.profiles import TABLE3_BENCHMARKS

ARCHITECTURES = ["LNFA", "NFA", "CAMA", "BVAP", "CA"]


@dataclass
class Table3Row:
    """One benchmark's Table 3 metrics per design."""
    benchmark: str
    energy_uj: dict[str, float] = field(default_factory=dict)
    area_mm2: dict[str, float] = field(default_factory=dict)
    throughput: dict[str, float] = field(default_factory=dict)


@dataclass
class Table3Result:
    """The Table 3 artifact."""
    rows: list[Table3Row]

    def row(self, benchmark: str) -> Table3Row:
        """The row for one benchmark."""
        return next(r for r in self.rows if r.benchmark == benchmark)

    def normalized_averages(self) -> dict[str, dict[str, float]]:
        """Geometric-mean ratios vs the baseline."""
        out: dict[str, dict[str, float]] = {}
        for metric in ("energy_uj", "area_mm2", "throughput"):
            ratios: dict[str, float] = {}
            for arch in ARCHITECTURES:
                product, count = 1.0, 0
                for row in self.rows:
                    values = getattr(row, metric)
                    base = values["LNFA"]
                    if base > 0 and values[arch] > 0:
                        product *= values[arch] / base
                        count += 1
                ratios[arch] = product ** (1 / count) if count else 0.0
            out[metric] = ratios
        return out

    def to_table(self) -> str:
        """Render the artifact as a monospace table."""
        headers = ["Dataset"]
        for metric in ("E(uJ)", "A(mm2)", "T(Gch/s)"):
            headers += [f"{metric} {a}" for a in ARCHITECTURES]
        body = []
        for row in self.rows:
            cells = [row.benchmark]
            for metric in ("energy_uj", "area_mm2", "throughput"):
                values = getattr(row, metric)
                cells += [values[a] for a in ARCHITECTURES]
            body.append(cells)
        norm = self.normalized_averages()
        avg = ["Avg (vs LNFA)"]
        for metric in ("energy_uj", "area_mm2", "throughput"):
            avg += [norm[metric][a] for a in ARCHITECTURES]
        body.append(avg)
        return render_table(
            headers, body, title="Table 3 — LNFA-compiled regexes across designs"
        )


def simulate_benchmark(workload: Workload, config: ExperimentConfig) -> Table3Row:
    """Run all five designs on one LNFA subset."""
    patterns = list(workload.benchmark.patterns)
    if not patterns:
        raise ValueError(f"{workload.name} has no LNFA regexes")
    data = workload.data

    lnfa_rs = compile_decided(patterns, config, bv_depth=16)
    if any(r.mode is not CompiledMode.LNFA for r in lnfa_rs):
        raise AssertionError("decided modes drifted from the generator's intent")
    nfa_rs = compile_forced(patterns, CompiledMode.NFA, config)
    ca_hw = ca_hardware_config()
    ca_rs = compile_forced(patterns, CompiledMode.NFA, config, hw=ca_hw)

    results: dict[str, SimulationResult] = {
        "LNFA": RAPSimulator().run(
            lnfa_rs, data, bin_size=workload.chosen_bin_size
        ),
        "NFA": RAPSimulator().run(nfa_rs, data),
        "CAMA": CAMASimulator().run(nfa_rs, data),
        "BVAP": BVAPSimulator().run(nfa_rs, data),
        "CA": CASimulator().run(ca_rs, data, mapping=map_ruleset(ca_rs, ca_hw)),
    }
    reference = results["NFA"].matches
    for arch, result in results.items():
        if result.matches != reference:
            raise AssertionError(
                f"{workload.name}: {arch} match results diverge from NFA mode"
            )
    return Table3Row(
        benchmark=workload.name,
        energy_uj={a: r.energy_uj for a, r in results.items()},
        area_mm2={a: r.area_mm2 for a, r in results.items()},
        throughput={a: r.throughput_gchps for a, r in results.items()},
    )


def _benchmark_row(item: tuple[str, ExperimentConfig]) -> Table3Row:
    """Per-benchmark worker: all five designs on one LNFA subset."""
    name, config = item
    workload = build_mode_workload(name, CompiledMode.LNFA, config)
    return simulate_benchmark(workload, config)


def run(config: ExperimentConfig | None = None) -> Table3Result:
    """Regenerate Table 3 and persist the results."""
    config = config or ExperimentConfig()
    rows = map_benchmarks(_benchmark_row, TABLE3_BENCHMARKS, config)
    result = Table3Result(rows)
    save_json(
        "table3_lnfa",
        {
            r.benchmark: {
                "energy_uj": r.energy_uj,
                "area_mm2": r.area_mm2,
                "throughput": r.throughput,
            }
            for r in rows
        },
    )
    save_csv(
        "table3_lnfa",
        ["benchmark", "metric"] + ARCHITECTURES,
        [
            [r.benchmark, metric] + [getattr(r, metric)[a] for a in ARCHITECTURES]
            for r in rows
            for metric in ("energy_uj", "area_mm2", "throughput")
        ],
    )
    return result


if __name__ == "__main__":
    print(run().to_table())
