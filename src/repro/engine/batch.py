"""The batch execution engine: parallel scans with bit-identical output.

Two axes of parallelism, both with deterministic merges:

* **Across tasks** — :meth:`BatchEngine.run_batch` runs many (ruleset x
  input stream) pairs over worker processes; each task executes the
  same code path as a sequential run, so per-task results are identical
  by construction and come back in task order.
* **Within one scan** — :meth:`BatchEngine.scan` parallelizes a single
  (ruleset, stream) pair.  When every regex has bounded state memory
  (see :func:`~repro.engine.partition.required_overlap`) the stream is
  chunked with overlap-window stitching; otherwise work shards per
  regex / per LNFA bin over the whole stream.  Either way workers only
  *collect* integer activity; the parent merges it exactly and prices
  energy once, performing the very float operations a sequential run
  would — output is bit-identical (same match offsets, cycles, and
  picojoule totals).

Workers are seeded once per process with the pickled ruleset, hardware
config, and input stream (fork makes this cheap on Linux); per-unit task
descriptors are tiny tuples.
"""

from __future__ import annotations

import pickle
from contextlib import nullcontext
from dataclasses import dataclass, field

from repro.compiler import CompilerConfig, explain_patterns
from repro.compiler.costmodel import MODE_CHOICES, mode_override, resolve_mode
from repro.compiler.program import CompiledMode, CompiledRuleset
from repro.core import (
    resolve_backend,
    resolve_backend_with_reason,
    set_default_backend,
    use_backend,
)
from repro.engine import faults
from repro.engine.budget import BudgetMonitor, ResourceBudget, validate_degrade
from repro.engine.cache import CompileCache, cached_compile_ruleset
from repro.engine.checkpoint import (
    CheckpointStore,
    DurableScan,
    resolve_input_jobs,
)
from repro.engine.partition import Chunk, plan_chunks, required_overlap
from repro.engine.pool import effective_jobs, parallel_map
from repro.engine.supervisor import SupervisorConfig, run_supervised
from repro.errors import (
    BudgetExceededError,
    CompileError,
    QuarantineEntry,
    QuarantineReport,
    validate_on_error,
)
from repro.hardware.config import TileMode
from repro.simulators.activity import (
    BinActivity,
    RegexActivity,
    collect_bin_activity,
    collect_regex_activity,
)
from repro.simulators.rap import RAPSimulator, RunActivity
from repro.simulators.result import SimulationResult

@dataclass(frozen=True)
class EngineConfig:
    """Batch-engine knobs (the CLI's ``--jobs`` / ``--cache`` flags)."""

    jobs: int = 1
    use_cache: bool = True
    cache_dir: str | None = None  # None: RAP_CACHE_DIR or ~/.cache/rap-repro
    # Step-kernel backend for the hot loops (see repro.core.registry);
    # None keeps the ambient default (RAP_BACKEND or python).  Workers
    # inherit the parent's resolved choice, and the compile-cache key
    # embeds it, so the backend never changes results — only speed.
    backend: str | None = None
    # Execution-mode policy for compiles routed through this engine (the
    # CLI's --mode): "auto" defers to RAP_MODE and then the cost model;
    # any other name is a *soft* preference — eligible regexes take it,
    # the rest keep their cost-model choice.  A CompilerConfig that
    # already carries forced_mode/mode_override wins over this knob.
    mode: str = "auto"
    # Smallest owned-bytes-per-chunk worth forking for; streams shorter
    # than two chunks run unchunked.
    min_chunk_bytes: int = 4096
    # Input-parallel scanning (the CLI's --input-jobs): split one stream
    # into this many chunks and stitch them with simultaneous-automata
    # state mappings (repro.engine.split) — bit-identical to serial by
    # construction.  Requires the fused backend; other backends fall
    # back to ruleset sharding.  None defers to RAP_INPUT_JOBS, <= 1
    # disables.  Composes with ``jobs``: the chunk pool is sized
    # max(jobs, input_jobs).
    input_jobs: int | None = None
    # Force a stitching window instead of deriving the safe bound (tests
    # and experiments with known match lengths); None derives it.
    overlap: int | None = None
    # -- fault tolerance (the CLI's --timeout/--retries/--on-error) --------
    # Per-unit deadline in seconds; None disables deadlines.
    timeout: float | None = None
    # Extra attempts per unit (crashes, timeouts, transient errors)
    # before the in-process last resort.
    retries: int = 2
    # Base for the bounded exponential backoff between retry rounds.
    backoff: float = 0.05
    # What to do with patterns/tasks that fail beyond recovery:
    # "fail" raises the structured error, "skip" drops the offender,
    # "quarantine" drops it and reports it (see BatchEngine.run_batch).
    on_error: str = "fail"
    # Deterministic fault-injection plan (see repro.engine.faults);
    # None defers to RAP_FAULT_PLAN, "" disables injection outright.
    fault_plan: str | None = None
    # -- durability (the CLI's --checkpoint-dir/--resume family) ------------
    # Directory for atomic scan checkpoints; None disables checkpointing.
    checkpoint_dir: str | None = None
    # Durable-scan chunk size: a checkpoint becomes eligible every this
    # many consumed bytes (also the segment granularity of the scan).
    checkpoint_every_bytes: int = 1 << 20
    # Minimum seconds between checkpoint writes; None writes every chunk.
    checkpoint_every_seconds: float | None = None
    # Resume from the newest intact checkpoint in checkpoint_dir.
    resume: bool = False
    # -- resource budgets (the CLI's --max-seconds/--max-rss-mb) ------------
    max_seconds: float | None = None
    max_rss_mb: float | None = None
    # Budget-pressure policy: "fail" raises BudgetExceededError, "shed"
    # quarantines lowest-weight patterns and finishes partial (exit 4).
    degrade: str = "fail"

    def __post_init__(self) -> None:
        validate_on_error(self.on_error)
        validate_degrade(self.degrade)
        if self.mode not in MODE_CHOICES:
            raise ValueError(
                f"unknown mode {self.mode!r}; choose from {MODE_CHOICES}"
            )
        if self.checkpoint_every_bytes <= 0:
            raise ValueError("checkpoint_every_bytes must be positive")


@dataclass(frozen=True)
class BatchReport:
    """The outcome of a batch run under ``on_error="quarantine"``.

    ``results`` is aligned with the input task order; quarantined tasks
    hold ``None``.  ``quarantine`` names every excluded pattern/task
    with its phase and error.
    """

    results: tuple
    quarantine: QuarantineReport

    @property
    def ok(self) -> bool:
        """Whether every task completed healthy."""
        return not self.quarantine

    def healthy(self) -> list:
        """The non-quarantined results, in task order."""
        return [r for r in self.results if r is not None]


@dataclass(frozen=True)
class DurableScanOutcome:
    """The outcome of one durable (checkpointed, budgeted) scan.

    ``result`` is bit-identical to an uninterrupted sequential run when
    nothing was shed; with shedding it prices the partial activity of
    the frozen units, and ``quarantine`` names every shed pattern
    (phase ``"degrade"``).  ``resumed_from`` is the stream offset a
    restored checkpoint provided (``None`` for a fresh start).
    """

    result: SimulationResult
    quarantine: QuarantineReport
    resumed_from: int | None = None
    checkpoints_written: int = 0
    checkpoint_failures: int = 0
    bytes_scanned: int = 0

    @property
    def ok(self) -> bool:
        """Whether the scan finished complete, with nothing shed."""
        return not self.quarantine


@dataclass(frozen=True)
class BatchTask:
    """One unit of batch work: a ruleset (or patterns) and one stream."""

    data: bytes
    patterns: tuple[str, ...] | None = None
    ruleset: CompiledRuleset | None = None
    compiler: CompilerConfig = field(default_factory=CompilerConfig)
    bin_size: int | None = None

    def __post_init__(self) -> None:
        if (self.patterns is None) == (self.ruleset is None):
            raise ValueError("a task needs exactly one of patterns/ruleset")


class BatchEngine:
    """Shards batch and single-stream scans across worker processes."""

    def __init__(self, config: EngineConfig | None = None, hw=None):
        from repro.hardware.config import DEFAULT_CONFIG

        self.config = config or EngineConfig()
        self.hw = hw or DEFAULT_CONFIG
        self.cache = (
            CompileCache(self.config.cache_dir)
            if self.config.use_cache
            else None
        )

    def _backend_scope(self):
        """Scope the configured backend, or keep the ambient default."""
        if self.config.backend is None:
            return nullcontext()
        return use_backend(self.config.backend)

    def _input_jobs(self) -> int:
        """The resolved input-parallelism level (config, else env, else 1)."""
        return resolve_input_jobs(self.config.input_jobs)

    def _supervisor_config(self) -> SupervisorConfig:
        """The retry/deadline knobs as the supervisor sees them."""
        return SupervisorConfig(
            timeout=self.config.timeout,
            retries=self.config.retries,
            backoff=self.config.backoff,
        )

    # -- compilation -------------------------------------------------------

    def _effective_compiler(
        self, compiler: CompilerConfig | None
    ) -> CompilerConfig:
        """The compiler config with the engine's mode policy applied.

        ``EngineConfig.mode`` (then ``RAP_MODE``) becomes the config's
        soft ``mode_override`` unless the caller already pinned a mode
        explicitly; the injected override flows into the compile-cache
        key via ``dataclasses.asdict``, so forcing a mode can never be
        served a cached auto-selection (or vice versa).
        """
        compiler = compiler or CompilerConfig()
        if compiler.forced_mode is not None or compiler.mode_override is not None:
            return compiler
        preferred = mode_override(resolve_mode(self.config.mode))
        if preferred is None:
            return compiler
        return compiler.with_mode_override(preferred)

    def explain(
        self,
        patterns,
        compiler: CompilerConfig | None = None,
    ):
        """Per-pattern decision traces under this engine's mode policy.

        Returns the :class:`~repro.compiler.pipeline.ExplainEntry` list
        behind ``rap scan --explain``: extracted features, per-mode
        predicted byte costs, the chosen mode, and the reason — or the
        compile error for patterns the compiler would reject.  Runs
        under the engine's backend scope so the cost constants scored
        are the ones a real compile on this engine would use.
        """
        with self._backend_scope():
            return explain_patterns(
                list(patterns), self._effective_compiler(compiler)
            )

    def backend_report(self) -> tuple[str, str | None]:
        """The *resolved* step-kernel backend, with the fallback reason.

        Walks the same probe-and-fall-back chain a scan would: the
        returned name is what will actually execute, and the reason is
        ``None`` when the configured (or ambient) backend is available,
        else a human-readable chain like ``"native unavailable: no C
        compiler"``.  Surfaced by ``rap scan --explain`` and the serve
        session ack so a silent fallback is observable.
        """
        return resolve_backend_with_reason(self.config.backend)

    def compile(
        self,
        patterns,
        compiler: CompilerConfig | None = None,
        on_error: str | None = None,
    ) -> CompiledRuleset:
        """Compile through the keyed cache when caching is enabled.

        Under the (default) ``"fail"`` policy a pattern the compiler
        rejects raises its structured :class:`CompileError` /
        :class:`~repro.errors.CapacityError`; under ``"skip"`` and
        ``"quarantine"`` rejections stay recorded on the returned
        ruleset (``ruleset.rejected``) and compilation proceeds with
        the healthy patterns, matching real rule-feed deployments.
        """
        policy = validate_on_error(
            on_error if on_error is not None else self.config.on_error
        )
        patterns = list(patterns)
        compiler = self._effective_compiler(compiler)
        with self._backend_scope():
            if self.cache is not None:
                ruleset = cached_compile_ruleset(patterns, compiler, self.cache)
            else:
                from repro.compiler import compile_ruleset

                ruleset = compile_ruleset(patterns, compiler)
        if policy == "fail" and ruleset.rejected:
            raise _rejection_error(ruleset, patterns)
        return ruleset

    def _resolve(self, task: BatchTask, policy: str) -> CompiledRuleset:
        if task.ruleset is not None:
            return task.ruleset
        return self.compile(task.patterns, task.compiler, on_error=policy)

    # -- batch execution ---------------------------------------------------

    def run_batch(self, tasks, on_error: str | None = None):
        """Run every task, fanned out across processes, in task order.

        Execution is supervised: crashed workers are respawned, units
        that blow ``EngineConfig.timeout`` are retried with backoff,
        and stragglers fall back to in-process execution — results are
        identical to a sequential run regardless.

        The ``on_error`` policy (default ``EngineConfig.on_error``)
        governs failures that survive all of that:

        * ``"fail"`` — raise the first structured error (a list of
          results is returned only when everything succeeded);
        * ``"skip"`` — return a list with ``None`` at failed tasks;
        * ``"quarantine"`` — return a :class:`BatchReport` whose
          ``results`` align with the task order and whose
          ``quarantine`` report names every excluded pattern/task.
        """
        policy = validate_on_error(
            on_error if on_error is not None else self.config.on_error
        )
        tasks = list(tasks)
        if self._input_jobs() > 1:
            # Input-parallel mode: worker processes cannot fork their
            # own pools, so tasks run in the parent, one after another,
            # and each task's *stream* fans out across the chunk pool.
            return self._run_batch_input_parallel(tasks, policy)
        backend = resolve_backend(self.config.backend)
        entries: list[QuarantineEntry] = []
        results: list[SimulationResult | None] = [None] * len(tasks)
        payloads: list[bytes] = []
        payload_tasks: list[int] = []
        for index, task in enumerate(tasks):
            ruleset = self._resolve(task, policy)  # raises under "fail"
            if policy == "quarantine":
                entries.extend(_rejection_entries(ruleset, task, index))
            if task.patterns is not None and ruleset.rejected and not len(ruleset):
                continue  # nothing compiled: quarantine the whole task
            payloads.append(
                pickle.dumps(
                    (ruleset, task.data, task.bin_size, self.hw, backend),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            )
            payload_tasks.append(index)
        outcomes = run_supervised(
            _execute_task,
            payloads,
            jobs=self.config.jobs,
            config=self._supervisor_config(),
            fault_plan=self.config.fault_plan,
        )
        for outcome, index in zip(outcomes, payload_tasks):
            if outcome.error is None:
                results[index] = outcome.result
                continue
            if policy == "fail":
                raise outcome.error
            if policy == "quarantine":
                entries.append(
                    QuarantineEntry(
                        phase="execute",
                        error=str(outcome.error),
                        error_type=type(outcome.error).__name__,
                        task_index=index,
                        attempts=outcome.attempts,
                    )
                )
        if policy == "quarantine":
            return BatchReport(
                results=tuple(results),
                quarantine=QuarantineReport(tuple(entries)),
            )
        return results

    def _run_batch_input_parallel(self, tasks, policy: str):
        """:meth:`run_batch` for ``input_jobs > 1``: per-task results are
        produced by :meth:`scan` (input-parallel within each stream) and
        mapped through the same ``on_error`` policy."""
        entries: list[QuarantineEntry] = []
        results: list[SimulationResult | None] = [None] * len(tasks)
        for index, task in enumerate(tasks):
            ruleset = self._resolve(task, policy)  # raises under "fail"
            if policy == "quarantine":
                entries.extend(_rejection_entries(ruleset, task, index))
            if task.patterns is not None and ruleset.rejected and not len(ruleset):
                continue  # nothing compiled: quarantine the whole task
            try:
                results[index] = self.scan(
                    ruleset, task.data, bin_size=task.bin_size
                )
            except Exception as err:
                if policy == "fail":
                    raise
                if policy == "quarantine":
                    entries.append(
                        QuarantineEntry(
                            phase="execute",
                            error=str(err),
                            error_type=type(err).__name__,
                            task_index=index,
                        )
                    )
        if policy == "quarantine":
            return BatchReport(
                results=tuple(results),
                quarantine=QuarantineReport(tuple(entries)),
            )
        return results

    def merge_results(self, results) -> SimulationResult:
        """Fold shard results with :meth:`SimulationResult.merge`."""
        results = list(results)
        if not results:
            raise ValueError("no results to merge")
        merged = results[0]
        for result in results[1:]:
            merged = merged.merge(result)
        return merged

    # -- single-stream scans -----------------------------------------------

    def scan(
        self,
        source,
        data: bytes,
        bin_size: int | None = None,
        compiler: CompilerConfig | None = None,
    ) -> SimulationResult:
        """Scan one stream, parallelized, bit-identical to sequential.

        ``source`` is a compiled ruleset or an iterable of patterns.

        Execution is supervised (see :meth:`run_batch`): worker
        crashes, deadline overruns, and injected faults are retried and
        re-collected; because retried units recompute the same integer
        activity, the merged result stays bit-identical to the
        sequential reference no matter which faults fired.
        """
        if isinstance(source, CompiledRuleset):
            ruleset = source
        else:
            ruleset = self.compile(source, compiler)
        with self._backend_scope():
            sim = RAPSimulator(self.hw)
            input_jobs = self._input_jobs()
            if (
                input_jobs > 1
                and data
                and len(ruleset)
                and resolve_backend() in ("fused", "native")
            ):
                from repro.engine.split import split_collect

                mapping = sim.build_mapping(ruleset, bin_size=bin_size)
                activity = split_collect(
                    ruleset,
                    mapping,
                    self.hw,
                    data,
                    bin_size=bin_size,
                    backend=resolve_backend(),
                    input_jobs=input_jobs,
                    jobs=effective_jobs(max(self.config.jobs, input_jobs)),
                    min_chunk_bytes=self.config.min_chunk_bytes,
                    timeout=self.config.timeout,
                    retries=self.config.retries,
                    backoff=self.config.backoff,
                    fault_plan=self.config.fault_plan,
                )
                if activity is not None:
                    return sim.run_from_activity(ruleset, activity, mapping)
                # stream too short (or nothing chunkable): fall through
                # to the serial / ruleset-sharded paths below
            jobs = effective_jobs(self.config.jobs)
            if jobs <= 1 or not len(ruleset) or not data:
                return sim.run(ruleset, data, bin_size=bin_size)

            mapping = sim.build_mapping(ruleset, bin_size=bin_size)
            chunks = self._plan(ruleset, len(data), jobs)
            units = self._work_units(ruleset, mapping, chunks)
            if len(units) <= 1:
                return sim.run_from_activity(
                    ruleset,
                    sim.collect_activities(ruleset, data, mapping),
                    mapping,
                )
            # Partitioned chunks run through the same kernel API as the
            # sequential path: workers pin the parent's resolved backend
            # and collect the exact same integer activity.
            payload = pickle.dumps(
                (ruleset, data, bin_size, self.hw, resolve_backend()),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            outcomes = parallel_map(
                _scan_unit,
                units,
                jobs=jobs,
                initializer=_init_scan_worker,
                initargs=(payload,),
                finalizer=_reset_scan_worker,
                timeout=self.config.timeout,
                retries=self.config.retries,
                backoff=self.config.backoff,
                fault_plan=self.config.fault_plan,
            )
            activity = self._merge_outcomes(
                ruleset, mapping, outcomes, len(data)
            )
            return sim.run_from_activity(ruleset, activity, mapping)

    def durable_scan(
        self,
        source,
        data: bytes,
        bin_size: int | None = None,
        compiler: CompilerConfig | None = None,
        weights: dict[int, float] | None = None,
    ) -> DurableScanOutcome:
        """Scan one stream durably: checkpointed, budgeted, resumable.

        The stream is consumed in ``checkpoint_every_bytes`` chunks.
        With ``checkpoint_dir`` set, the scan's complete state lands in
        an atomic checkpoint after each chunk (rate-limited by
        ``checkpoint_every_seconds``); a scan killed at *any* point —
        including ``SIGKILL`` mid-chunk — re-run with ``resume=True``
        continues from the newest intact checkpoint and produces a
        result bit-identical to an uninterrupted run.  A checkpoint
        that fails to write (disk full) is counted and skipped; the
        scan itself keeps going.

        Resource budgets (``max_seconds`` / ``max_rss_mb``) are checked
        between chunks.  Under ``degrade="fail"`` pressure raises
        :class:`~repro.errors.BudgetExceededError`; under ``"shed"``
        the lowest-weight work units (by ``weights``, keyed on regex
        id, default 1.0) are frozen and quarantined, and the scan
        finishes partial — the CLI maps that to exit code 4.
        """
        if isinstance(source, CompiledRuleset):
            ruleset = source
        else:
            ruleset = self.compile(source, compiler)
        config = self.config
        plan = faults.resolve_plan(config.fault_plan)
        with self._backend_scope():
            sim = RAPSimulator(self.hw)
            mapping = sim.build_mapping(ruleset, bin_size=bin_size)
            scan = DurableScan(
                ruleset,
                mapping,
                self.hw,
                bin_size=bin_size,
                weights=weights,
                input_jobs=self._input_jobs(),
                min_chunk_bytes=self.config.min_chunk_bytes,
            )
            store = (
                CheckpointStore(config.checkpoint_dir, plan)
                if config.checkpoint_dir is not None
                else None
            )
            resumed_from = None
            if config.resume and store is not None:
                doc = store.load_latest()
                if doc is not None:
                    scan.restore(doc, data)  # CheckpointError on mismatch
                    resumed_from = scan.offset
            monitor = BudgetMonitor(
                ResourceBudget(
                    max_seconds=config.max_seconds,
                    max_rss_mb=config.max_rss_mb,
                )
            )
            n = len(data)
            start_offset = scan.offset
            checkpoints_written = 0
            checkpoint_failures = 0
            last_write: float | None = None
            ordinal = 0
            while scan.offset < n:
                # The injection point a checkpoint must survive: "kill"
                # SIGKILLs this very process before the chunk is fed.
                faults.inject_chunk(ordinal, plan)
                ordinal += 1
                end = min(scan.offset + config.checkpoint_every_bytes, n)
                scan.feed(data[scan.offset : end], at_end=(end == n))
                if store is not None and scan.offset < n:
                    due = (
                        config.checkpoint_every_seconds is None
                        or last_write is None
                        or monitor.elapsed - last_write
                        >= config.checkpoint_every_seconds
                    )
                    if due:
                        try:
                            store.write(scan.snapshot(), scan.offset)
                            checkpoints_written += 1
                            last_write = monitor.elapsed
                        except OSError:
                            # A full disk costs durability, never the
                            # scan: keep the previous restore point.
                            checkpoint_failures += 1
                pressure = monitor.check()
                if pressure is not None:
                    if config.degrade != "shed":
                        raise BudgetExceededError(
                            str(pressure),
                            phase="execute",
                            limit=pressure.limit,
                        )
                    scan.shed(0.25, str(pressure))
                    if scan.live_units == 0:
                        break
            if store is not None:
                store.clear()
            result = sim.run_from_activity(ruleset, scan.finish(), mapping)
        return DurableScanOutcome(
            result=result,
            quarantine=QuarantineReport(tuple(scan.quarantine_entries)),
            resumed_from=resumed_from,
            checkpoints_written=checkpoints_written,
            checkpoint_failures=checkpoint_failures,
            bytes_scanned=scan.offset - start_offset,
        )

    def _plan(self, ruleset, n: int, jobs: int) -> list[Chunk]:
        """Chunk the stream when safe and worthwhile, else one chunk."""
        overlap = (
            self.config.overlap
            if self.config.overlap is not None
            else required_overlap(ruleset)
        )
        whole = [Chunk(start=0, end=n, warm_start=0)]
        if overlap is None:
            return whole
        min_owned = max(self.config.min_chunk_bytes, 4 * overlap)
        if n < 2 * min_owned:
            return whole
        return plan_chunks(n, jobs, overlap, min_owned=min_owned)

    @staticmethod
    def _work_units(ruleset, mapping, chunks) -> list[tuple]:
        """Flat descriptors: every (regex | bin) x every chunk."""
        units: list[tuple] = []
        for regex in ruleset:
            if regex.mode is CompiledMode.LNFA:
                continue
            for chunk in chunks:
                # NBVA counters cannot be warm-started; they only appear
                # here unchunked (required_overlap forces one chunk).
                units.append(
                    (
                        "regex",
                        regex.regex_id,
                        chunk.start,
                        chunk.end,
                        chunk.warm_start,
                    )
                )
        for index, array in enumerate(mapping.arrays):
            if array.mode is not TileMode.LNFA:
                continue
            for bin_index in range(len(array.bins)):
                for chunk in chunks:
                    units.append(
                        (
                            "bin",
                            index,
                            bin_index,
                            chunk.start,
                            chunk.end,
                            chunk.warm_start,
                        )
                    )
        return units

    @staticmethod
    def _merge_outcomes(ruleset, mapping, outcomes, n: int) -> RunActivity:
        """Fold worker outcomes, in deterministic unit order, into the
        exact activity a sequential run would have collected."""
        regex_parts: dict[int, RegexActivity] = {}
        bin_parts: dict[tuple[int, int], BinActivity] = {}
        for outcome in outcomes:
            kind = outcome[0]
            if kind == "regex":
                _, rid, activity = outcome
                prior = regex_parts.get(rid)
                regex_parts[rid] = (
                    activity if prior is None else prior.merge(activity)
                )
            else:
                _, index, bin_index, cycles, matches, tac, tab = outcome
                activity = BinActivity(
                    bin=mapping.arrays[index].bins[bin_index],
                    cycles=cycles,
                    matches=matches,
                    tile_active_cycles=tac,
                    tile_active_bits=tab,
                )
                key = (index, bin_index)
                prior = bin_parts.get(key)
                bin_parts[key] = (
                    activity if prior is None else prior.merge(activity)
                )
        # Rebuild containers in the sequential collection order so even
        # dict iteration order matches the reference run.
        regex = {
            r.regex_id: regex_parts[r.regex_id]
            for r in ruleset
            if r.mode is not CompiledMode.LNFA
        }
        lnfa_bins = {
            index: [
                bin_parts[(index, bin_index)]
                for bin_index in range(len(array.bins))
            ]
            for index, array in enumerate(mapping.arrays)
            if array.mode is TileMode.LNFA
        }
        return RunActivity(regex=regex, lnfa_bins=lnfa_bins, input_symbols=n)


# -- policy helpers ---------------------------------------------------------


def _rejection_error(ruleset: CompiledRuleset, patterns: list) -> CompileError:
    """The structured error for the first rejected pattern of a compile."""
    pattern, reason = ruleset.rejected[0]
    causes = ruleset.rejected_errors
    cause = causes[0] if causes else None
    # Re-raise as the original class (CapacityError stays CapacityError)
    # even when the ruleset came out of the cache without error objects.
    cls = type(cause) if isinstance(cause, CompileError) else CompileError
    try:
        index = patterns.index(pattern)
    except ValueError:
        index = None
    return cls(
        f"{len(ruleset.rejected)} of {len(patterns)} pattern(s) failed to "
        f"compile; first: {pattern!r}: {reason}",
        pattern=pattern,
        pattern_index=index,
        phase="compile",
    )


def _rejection_entries(
    ruleset: CompiledRuleset, task: BatchTask, task_index: int
) -> list[QuarantineEntry]:
    """Quarantine entries for every pattern a task's compile rejected."""
    causes = ruleset.rejected_errors
    entries = []
    for offset, (pattern, reason) in enumerate(ruleset.rejected):
        cause = causes[offset] if offset < len(causes) else None
        pattern_index = getattr(cause, "pattern_index", None)
        if pattern_index is None and task.patterns is not None:
            try:
                pattern_index = task.patterns.index(pattern)
            except ValueError:
                pattern_index = None
        entries.append(
            QuarantineEntry(
                phase="compile",
                error=reason,
                error_type=type(cause).__name__ if cause else "CompileError",
                pattern=pattern,
                pattern_index=pattern_index,
                task_index=task_index,
            )
        )
    return entries


# -- worker-side functions (module level: picklable by the pool) -----------

_WORKER_STATE: dict = {}


def _init_scan_worker(payload: bytes) -> None:
    """Seed one worker process with the scan's shared state."""
    ruleset, data, bin_size, hw, backend = pickle.loads(payload)
    set_default_backend(backend)
    sim = RAPSimulator(hw)
    _WORKER_STATE["data"] = data
    _WORKER_STATE["hw"] = hw
    _WORKER_STATE["regex_by_id"] = {r.regex_id: r for r in ruleset}
    _WORKER_STATE["mapping"] = sim.build_mapping(ruleset, bin_size=bin_size)


def _reset_scan_worker() -> None:
    """Clear the worker globals.

    Worker processes die with their state, but the in-process fallback
    runs ``_init_scan_worker`` in the *parent* — without this reset the
    seeded ruleset/stream would leak into (and pin memory for) every
    later scan in the process.
    """
    _WORKER_STATE.clear()


def _scan_unit(unit: tuple):
    """Collect one (regex | bin) x chunk activity inside a worker."""
    data = _WORKER_STATE["data"]
    if unit[0] == "regex":
        _, rid, start, end, warm_start = unit
        activity = collect_regex_activity(
            _WORKER_STATE["regex_by_id"][rid],
            data[warm_start:end],
            base=warm_start,
            stats_from=start - warm_start,
        )
        return ("regex", rid, activity)
    _, index, bin_index, start, end, warm_start = unit
    bin_obj = _WORKER_STATE["mapping"].arrays[index].bins[bin_index]
    activity = collect_bin_activity(
        bin_obj,
        data[warm_start:end],
        _WORKER_STATE["hw"],
        base=warm_start,
        stats_from=start - warm_start,
    )
    return (
        "bin",
        index,
        bin_index,
        activity.cycles,
        activity.matches,
        activity.tile_active_cycles,
        activity.tile_active_bits,
    )


def _execute_task(payload: bytes) -> SimulationResult:
    """Run one fully-specified batch task inside a worker."""
    ruleset, data, bin_size, hw, backend = pickle.loads(payload)
    with use_backend(backend):
        return RAPSimulator(hw).run(ruleset, data, bin_size=bin_size)
