"""Durable scans: atomic checkpoints and resumable whole-run state.

A scan over a long stream must survive the process dying under it — an
OOM kill, a host reboot, a deploy — without losing hours of work or,
worse, silently changing its answer.  Two pieces make that possible:

* :class:`DurableScan` drives every functional collector of one run
  (per-regex NFA/NBVA collectors, per-bin LNFA collectors) segment by
  segment and can serialize its **entire** mid-stream state — scanner
  frontiers, counter vectors, activity counters, match lists — as one
  JSON document.  Restoring that document and feeding the remaining
  bytes reproduces the uninterrupted run bit for bit, because every
  engine's segment contract guarantees segmentation independence.
* :class:`CheckpointStore` persists those documents atomically (temp
  file + fsync + ``os.replace``) inside a checksummed envelope — the
  same scheme as the compile cache — so a torn or bit-rotten checkpoint
  is *detected*, discarded, and an older intact one used instead.
  Corruption can cost re-scanned bytes, never correctness.

A checkpoint binds to its scan via :func:`~repro.io.serialize.scan_fingerprint`
(ruleset + hardware + bin size) and to its input via a SHA-256 over the
consumed prefix; resuming under a different ruleset, config, or input
raises :class:`~repro.errors.CheckpointError` instead of producing a
plausible-but-wrong result.
"""

from __future__ import annotations

import contextlib
import errno
import hashlib
import json
import logging
import math
import os
import tempfile
import time
from pathlib import Path

from repro.compiler.program import CompiledMode, CompiledRuleset
from repro.core.registry import resolve_backend
from repro.engine import faults
from repro.errors import CheckpointError, QuarantineEntry
from repro.hardware.config import HardwareConfig, TileMode
from repro.io.serialize import scan_fingerprint
from repro.mapping.mapper import Mapping
from repro.simulators.activity import (
    BinActivityCollector,
    RegexActivityCollector,
)
from repro.simulators.rap import RunActivity

CHECKPOINT_FORMAT = "rap-repro-checkpoint"
CHECKPOINT_VERSION = 1

# Intact checkpoints retained per store: the newest plus one fallback,
# so a torn latest (crash mid-rename, injected truncation) still leaves
# a usable restore point.
KEEP = 2

# Environment fallback for the input-parallelism level (like RAP_BACKEND
# for backends).  It is honored wherever an explicit value is not given
# — including :class:`DurableScan` itself — so a checkpoint writer and
# its resumer running under the same environment always resolve the
# same split layout and therefore the same fingerprint.
INPUT_JOBS_ENV = "RAP_INPUT_JOBS"


def resolve_input_jobs(explicit: int | None = None) -> int:
    """``explicit`` if given, else ``RAP_INPUT_JOBS``, else 1 (floor 1)."""
    if explicit is None:
        raw = os.environ.get(INPUT_JOBS_ENV, "").strip()
        if raw:
            try:
                explicit = int(raw)
            except ValueError as err:
                raise ValueError(
                    f"{INPUT_JOBS_ENV} must be an integer, got {raw!r}"
                ) from err
        else:
            explicit = 1
    return max(1, explicit)


log = logging.getLogger(__name__)

# How long a writer waits on another writer's exclusive lock before
# giving up (the caller treats it like any other failed write: the scan
# keeps its previous restore point).  Lock holders dead longer than the
# stale threshold are broken — a crashed writer must not wedge the
# store forever.
LOCK_TIMEOUT_SECONDS = 5.0
LOCK_STALE_SECONDS = 30.0


def process_start_time(pid: int) -> str | None:
    """The kernel's start-time stamp for ``pid``, or ``None``.

    A bare pid does not identify a process: after the pid space wraps,
    an unrelated live process can wear a dead lock holder's number and
    keep its lock un-breakable.  ``(pid, start time)`` does identify
    one — field 22 of ``/proc/<pid>/stat`` is the jiffy count at which
    the process started, which a recycled pid can never reproduce.
    Returns ``None`` where ``/proc`` is unavailable (non-Linux), making
    the start-time check inert rather than wrong.

    The stat line embeds the comm field in parentheses (itself allowed
    to contain spaces and parens), so fields are counted from the last
    ``)``, not split naively.
    """
    try:
        stat = Path(f"/proc/{pid}/stat").read_text()
    except OSError:
        return None
    # comm ends at the last ')'; field 3 (state) starts after it, so
    # start time — field 22 overall — is the 20th space-split token.
    tail = stat.rpartition(")")[2].split()
    if len(tail) < 20:
        return None
    return tail[19]


def session_dirname(session: str) -> str:
    """A filesystem-safe directory name for one session's namespace.

    Alphanumerics, dash, underscore, and dot pass through; anything
    else percent-encodes, and over-long names truncate with a content
    hash so distinct sessions can never collide on one directory.
    """
    quoted = "".join(
        c if c.isalnum() or c in "-_." else f"%{ord(c):02x}"
        for c in session
    )
    if len(quoted) > 64:
        digest = hashlib.sha256(session.encode()).hexdigest()[:16]
        quoted = f"{quoted[:47]}-{digest}"
    return quoted


class CheckpointStore:
    """A directory of atomic, checksummed scan checkpoints.

    File names encode the stream offset (``ckpt-<offset>.json``) so the
    newest checkpoint sorts last lexicographically.  Writes go through
    a temp file, ``fsync``, and ``os.replace`` — a crash at any instant
    leaves either the previous set or the new file, never a torn
    committed entry (torn files can still appear via injected faults or
    disk corruption, which is what the checksum envelope catches).

    Two safeguards make a *shared* root safe:

    * ``session`` namespaces the store into a per-session subdirectory
      (``root/<session>/``), so independent scans sharing one configured
      root can never prune each other's checkpoints — without it, a
      writer whose offsets sort below a neighbour's would delete its own
      newest entry right after committing it.
    * an exclusive-create lock file serializes the write+prune critical
      section between two stores pointed at the *same* directory (a
      split-brain resume of one session), so an interleaved prune can
      never observe — and delete — a half-committed set.
    """

    def __init__(
        self,
        root: str | Path,
        plan: faults.FaultPlan | None = None,
        *,
        session: str | None = None,
    ):
        self.root = Path(root)
        if session is not None:
            self.root = self.root / session_dirname(session)
        self.session = session
        self.plan = plan  # explicit fault plan; None defers to env
        self.writes = 0  # write ordinal (fault-injection point)
        self.discarded = 0  # corrupt entries dropped during load
        self.lock_breaks = 0  # stale locks broken (diagnostics)

    @contextlib.contextmanager
    def _exclusive(self):
        """Hold the store's exclusive-create lock for one critical
        section.  Raises ``OSError(EWOULDBLOCK)`` after the acquisition
        timeout — callers already treat a failed write as lost
        durability, never a failed scan."""
        lock = self.root / ".lock"
        deadline = time.monotonic() + LOCK_TIMEOUT_SECONDS
        while True:
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                break
            except FileExistsError:
                if self._break_stale_lock(lock):
                    continue
                if time.monotonic() >= deadline:
                    raise OSError(
                        errno.EWOULDBLOCK,
                        f"checkpoint store {self.root} is locked by "
                        "another writer",
                    ) from None
                time.sleep(0.002)
        try:
            stamp = {"pid": os.getpid()}
            start = process_start_time(os.getpid())
            if start is not None:
                stamp["start"] = start
            os.write(fd, json.dumps(stamp).encode())
            os.close(fd)
            yield
        finally:
            try:
                os.unlink(lock)
            except OSError:
                pass

    def _break_stale_lock(self, lock: Path) -> bool:
        """Remove a lock whose holder is provably dead or ancient.

        The stamp is JSON ``{"pid", "start"}``; a holder whose pid is
        alive but whose measured start time differs from the stamped
        one is a pid-reuse impostor — the real holder is dead, so the
        lock breaks immediately instead of wedging behind an unrelated
        process.  Legacy bare-pid stamps (older writers, hand-written
        locks) keep the conservative liveness-only rule.
        """
        try:
            age = time.time() - lock.stat().st_mtime
        except OSError:
            return True  # lock vanished under us: retry immediately
        pid, stamped_start = 0, None
        try:
            raw = lock.read_text().strip()
        except OSError:
            raw = ""
        if raw.startswith("{"):
            try:
                stamp = json.loads(raw)
                pid = int(stamp.get("pid") or 0)
                stamped_start = stamp.get("start")
            except (ValueError, TypeError, AttributeError):
                pid = 0
        else:
            try:
                pid = int(raw or "0")
            except ValueError:
                pid = 0
        if pid <= 0:
            # The holder may be between O_EXCL-create and writing its
            # pid; only break a pid-less lock once it is clearly stale.
            if age < LOCK_STALE_SECONDS:
                return False
        else:
            try:
                os.kill(pid, 0)
                alive = True
            except ProcessLookupError:
                alive = False
            except OSError:
                alive = True  # e.g. EPERM: someone owns it, assume live
            if alive and stamped_start is not None:
                current = process_start_time(pid)
                if current is not None and current != stamped_start:
                    alive = False  # same pid, different process
            if alive and age < LOCK_STALE_SECONDS:
                return False
        try:
            os.unlink(lock)
        except OSError:
            pass
        self.lock_breaks += 1
        return True

    def _paths(self) -> list[Path]:
        """Checkpoint files, oldest first."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("ckpt-*.json"))

    def write(self, payload_doc: dict, offset: int) -> Path:
        """Atomically persist one snapshot taken at ``offset``.

        Raises ``OSError`` when the disk is full (real or injected);
        the caller decides whether a failed checkpoint is fatal — for
        the durable scan it is not, the scan just keeps going with the
        previous restore point.
        """
        ordinal = self.writes
        self.writes += 1
        faults.inject_checkpoint_reserve(ordinal, self.plan)
        self.root.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            payload_doc, sort_keys=True, separators=(",", ":")
        )
        document = {
            "format": CHECKPOINT_FORMAT,
            "entry_version": CHECKPOINT_VERSION,
            "checksum": hashlib.sha256(payload.encode()).hexdigest(),
            "payload": payload,
        }
        path = self.root / f"ckpt-{offset:016d}.json"
        with self._exclusive():
            fd, tmp = tempfile.mkstemp(
                dir=self.root, prefix=".ckpt-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as f:
                    json.dump(document, f)
                    f.flush()
                    os.fsync(f.fileno())
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self._fsync_dir()
            faults.inject_checkpoint_commit(path, ordinal, self.plan)
            self._prune()
        return path

    def _fsync_dir(self) -> None:
        """Best-effort directory fsync so the rename itself is durable."""
        try:
            fd = os.open(self.root, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def _prune(self) -> None:
        """Drop all but the newest ``KEEP`` checkpoints."""
        for path in self._paths()[:-KEEP]:
            try:
                os.unlink(path)
            except OSError:
                pass

    def load_latest(self) -> dict | None:
        """The newest intact snapshot payload, or ``None``.

        Corrupt entries (bad envelope, checksum mismatch, undecodable
        payload) are unlinked and the next-older checkpoint tried — the
        recovery path a torn latest checkpoint exercises.
        """
        for path in reversed(self._paths()):
            payload_doc = self._load_one(path)
            if payload_doc is not None:
                return payload_doc
        return None

    def _load_one(self, path: Path) -> dict | None:
        try:
            with open(path) as f:
                document = json.load(f)
        except (OSError, ValueError) as err:
            return self._discard(path, f"unreadable entry: {err}")
        if not isinstance(document, dict) or "checksum" not in document:
            return self._discard(path, "missing checksum envelope")
        if document.get("format") != CHECKPOINT_FORMAT:
            return self._discard(
                path, f"not a checkpoint (format={document.get('format')!r})"
            )
        if document.get("entry_version") != CHECKPOINT_VERSION:
            return self._discard(
                path,
                f"entry version {document.get('entry_version')!r} "
                f"(this build reads {CHECKPOINT_VERSION})",
            )
        payload = document.get("payload")
        if not isinstance(payload, str):
            return self._discard(path, "payload missing")
        digest = hashlib.sha256(payload.encode()).hexdigest()
        if digest != document["checksum"]:
            return self._discard(path, "checksum mismatch")
        try:
            payload_doc = json.loads(payload)
        except ValueError as err:
            return self._discard(path, f"undecodable payload: {err}")
        if not isinstance(payload_doc, dict):
            return self._discard(path, "payload is not an object")
        return payload_doc

    def _discard(self, path: Path, reason: str) -> None:
        log.debug("checkpoint %s corrupt (%s); discarded", path.name, reason)
        self.discarded += 1
        try:
            os.unlink(path)
        except OSError:
            pass
        return None

    def clear(self) -> None:
        """Remove every checkpoint (the scan completed)."""
        if not self.root.is_dir():
            return
        try:
            with self._exclusive():
                for path in self._paths():
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
        except OSError:
            # A wedged lock must not fail scan completion; leftover
            # checkpoints are garbage-collected by the next writer.
            for path in self._paths():
                try:
                    os.unlink(path)
                except OSError:
                    pass


class DurableScan:
    """One resumable scan: every collector of a run, fed in lockstep.

    Feeding segments whose concatenation is the stream produces, via
    :meth:`finish`, the exact :class:`~repro.simulators.rap.RunActivity`
    a sequential :meth:`RAPSimulator.collect_activities` call would —
    regardless of segmentation and of any snapshot/restore round trips
    in between.  Pricing that activity once then yields a bit-identical
    :class:`~repro.simulators.result.SimulationResult`.

    Under budget pressure with ``degrade="shed"``, :meth:`shed` freezes
    the lowest-weight work units (a regex, or a whole LNFA bin): they
    stop consuming cycles but their partial activity still prices into
    the final (partial) result, and each shed pattern lands in the
    quarantine report with phase ``"degrade"``.
    """

    def __init__(
        self,
        ruleset: CompiledRuleset,
        mapping: Mapping,
        hw: HardwareConfig,
        *,
        bin_size: int | None = None,
        weights: dict[int, float] | None = None,
        input_jobs: int | None = None,
        min_chunk_bytes: int = 4096,
    ):
        input_jobs = resolve_input_jobs(input_jobs)
        self._ruleset = ruleset
        self._mapping = mapping
        self._weights = dict(weights or {})
        self._regex: dict[int, RegexActivityCollector] = {
            r.regex_id: RegexActivityCollector(r)
            for r in ruleset
            if r.mode is not CompiledMode.LNFA
        }
        self._bins: dict[tuple[int, int], BinActivityCollector] = {}
        for index, array in enumerate(mapping.arrays):
            if array.mode is not TileMode.LNFA:
                continue
            for bin_index, bin_obj in enumerate(array.bins):
                self._bins[(index, bin_index)] = BinActivityCollector(
                    bin_obj, hw
                )
        # On the fused backend all LNFA bins step through one lane-packed
        # machine per segment.  The feeder is stateless between feeds (it
        # reads and writes the collectors' KernelState), so snapshot and
        # restore go through the collectors unchanged and resuming stays
        # byte-identical; its layout digest binds the checkpoints to this
        # exact fusion via the fingerprint.
        self._fused = None
        if self._bins and resolve_backend() in ("fused", "native"):
            from repro.simulators.fused import FusedBinFeeder

            self._fused = FusedBinFeeder(
                list(self._bins.values()),
                input_jobs=input_jobs,
                min_chunk_bytes=min_chunk_bytes,
            )
        # The split layout is part of the fingerprint even though split
        # and serial feeds are bit-identical: a checkpoint names the
        # exact execution configuration that wrote it, so a resume under
        # a different parallelism level is a deliberate, visible rebind
        # (drop --input-jobs or re-shard) rather than a silent one.
        self.fingerprint = scan_fingerprint(
            ruleset,
            hw,
            bin_size,
            fused_layout=self._fused.signature if self._fused else None,
            split_layout=self._fused.split_layout if self._fused else None,
        )
        self._offset = 0
        self._hasher = hashlib.sha256()
        self._detached = False
        self._shed: set[tuple] = set()
        self.quarantine_entries: list[QuarantineEntry] = []

    @property
    def offset(self) -> int:
        """Global stream position: bytes consumed so far."""
        return self._offset

    @property
    def live_units(self) -> int:
        """Work units still being fed (not shed)."""
        return len(self._regex) + len(self._bins) - len(self._shed)

    def match_lists(self) -> dict[int, list[int]]:
        """Per-regex match end positions consumed so far.

        The returned lists are the collectors' live, append-only
        containers — callers slice them for incremental event emission
        (the streaming service diffs against a per-regex emitted count
        every segment) and must not mutate them.
        """
        out: dict[int, list[int]] = {}
        for rid, collector in self._regex.items():
            out[rid] = collector.matches
        for collector in self._bins.values():
            for rid, ends in collector.matches.items():
                out[rid] = ends
        return out

    def feed(self, segment: bytes, *, at_end: bool = True) -> None:
        """Consume the next segment of the stream on every live unit."""
        for rid, collector in self._regex.items():
            if ("regex", rid) not in self._shed:
                collector.feed(segment, at_end=at_end)
        if self._fused is not None and not any(
            key[0] == "bin" for key in self._shed
        ):
            # The packed machine steps every bin in lockstep; a shed bin
            # would desynchronize it, so degradation falls back to the
            # per-collector loop below.
            self._fused.feed(segment, at_end=at_end)
        else:
            for (index, bin_index), collector in self._bins.items():
                if ("bin", index, bin_index) not in self._shed:
                    collector.feed(segment, at_end=at_end)
        self._offset += len(segment)
        self._hasher.update(segment)

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> dict:
        """The scan's complete state as one JSON-ready document.

        ``input_sha`` is a plain SHA-256 over the consumed prefix for a
        scan started (or restored with bytes) in this process, and a
        chain digest for a lineage resumed detached — the ``detached``
        flag says which, so :meth:`restore` can refuse what it cannot
        verify.  Undetached snapshots keep their pre-detach bytes
        stable (no new key).
        """
        doc = {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "fingerprint": self.fingerprint,
            "offset": self._offset,
            "input_sha": self._hasher.copy().hexdigest(),
            "regex": [
                [rid, collector.snapshot()]
                for rid, collector in sorted(self._regex.items())
            ],
            "bins": [
                [index, bin_index, collector.snapshot()]
                for (index, bin_index), collector in sorted(
                    self._bins.items()
                )
            ],
            "shed": sorted(list(key) for key in self._shed),
            "quarantine": [
                {
                    "phase": e.phase,
                    "error": e.error,
                    "error_type": e.error_type,
                    "pattern": e.pattern,
                    "pattern_index": e.pattern_index,
                    "task_index": e.task_index,
                    "attempts": e.attempts,
                }
                for e in self.quarantine_entries
            ],
        }
        if self._detached:
            doc["detached"] = True
        return doc

    def _check_header(self, doc: dict) -> None:
        """Refuse a snapshot that does not belong to this exact scan."""
        if doc.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"not a checkpoint document (format={doc.get('format')!r})",
                phase="checkpoint",
            )
        if doc.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {doc.get('version')!r} "
                f"(this build reads {CHECKPOINT_VERSION})",
                phase="checkpoint",
            )
        if doc.get("fingerprint") != self.fingerprint:
            raise CheckpointError(
                "checkpoint belongs to a different scan: ruleset, hardware "
                "config, bin size, or input-parallel split layout "
                "(--input-jobs) changed since it was written",
                phase="checkpoint",
            )

    def _parse_state(self, doc: dict) -> tuple:
        """The snapshot's state fields, structurally validated."""
        try:
            offset = int(doc["offset"])
            input_sha = doc["input_sha"]
            regex_docs = dict(
                (int(rid), sub) for rid, sub in doc["regex"]
            )
            bin_docs = {
                (int(index), int(bin_index)): sub
                for index, bin_index, sub in doc["bins"]
            }
            shed = {tuple(key) for key in doc.get("shed", [])}
            quarantine = [
                QuarantineEntry(**entry) for entry in doc.get("quarantine", [])
            ]
        except (KeyError, TypeError, ValueError) as err:
            raise CheckpointError(
                f"malformed checkpoint document: {err}", phase="checkpoint"
            ) from err
        if set(regex_docs) != set(self._regex) or set(bin_docs) != set(
            self._bins
        ):
            raise CheckpointError(
                "checkpoint work units do not match this scan's mapping",
                phase="checkpoint",
            )
        return offset, input_sha, regex_docs, bin_docs, shed, quarantine

    def _adopt(self, regex_docs: dict, bin_docs: dict) -> None:
        for rid, sub in regex_docs.items():
            self._regex[rid].restore(sub)
        for key, sub in bin_docs.items():
            self._bins[key].restore(sub)

    def restore(self, doc: dict, data: bytes) -> None:
        """Adopt a snapshot, verifying it belongs to *this* scan.

        ``data`` is the full input stream: the snapshot's consumed
        prefix must hash to the recorded digest, or the checkpoint was
        taken over different bytes and resuming would silently corrupt
        the result — that is a :class:`~repro.errors.CheckpointError`.
        """
        self._check_header(doc)
        if doc.get("detached"):
            raise CheckpointError(
                "checkpoint belongs to a detached (streaming) resume "
                "lineage: its input binding is a chain digest, not a "
                "re-hashable prefix — resume it with restore_detached",
                phase="checkpoint",
            )
        (
            offset,
            input_sha,
            regex_docs,
            bin_docs,
            shed,
            quarantine,
        ) = self._parse_state(doc)
        if offset > len(data):
            raise CheckpointError(
                f"checkpoint offset {offset} beyond the input "
                f"({len(data)} bytes): not the same stream",
                phase="checkpoint",
            )
        prefix_sha = hashlib.sha256(data[:offset]).hexdigest()
        if prefix_sha != input_sha:
            raise CheckpointError(
                "checkpoint was taken over a different input: the consumed "
                f"prefix ({offset} bytes) does not hash to the recorded "
                "digest",
                phase="checkpoint",
            )
        self._adopt(regex_docs, bin_docs)
        self._offset = offset
        hasher = hashlib.sha256()
        hasher.update(data[:offset])
        self._hasher = hasher
        self._detached = False
        self._shed = shed
        self.quarantine_entries = quarantine

    def restore_detached(self, doc: dict) -> None:
        """Adopt a snapshot without the consumed prefix bytes.

        The streaming service evicts idle sessions to checkpoints and
        resumes them on reconnect — possibly in another process, where
        the consumed prefix no longer exists to re-hash.  The
        fingerprint check still binds the snapshot to this exact scan
        configuration; the input binding degrades from a re-verifiable
        prefix hash to a *chain digest* seeded from the recorded
        ``input_sha``, so every later snapshot of the resumed lineage
        remains positively bound to the byte sequence actually consumed
        (two lineages that fed different bytes can never converge on
        one digest).
        """
        self._check_header(doc)
        (
            offset,
            input_sha,
            regex_docs,
            bin_docs,
            shed,
            quarantine,
        ) = self._parse_state(doc)
        if not isinstance(input_sha, str) or not input_sha:
            raise CheckpointError(
                "malformed checkpoint document: input_sha missing",
                phase="checkpoint",
            )
        self._adopt(regex_docs, bin_docs)
        self._offset = offset
        self._hasher = hashlib.sha256(
            b"rap-detached-chain:" + input_sha.encode()
        )
        self._detached = True
        self._shed = shed
        self.quarantine_entries = quarantine

    # -- graceful degradation ------------------------------------------------

    def _unit_weight(self, key: tuple) -> float:
        if key[0] == "regex":
            return self._weights.get(key[1], 1.0)
        _, index, bin_index = key
        bin_obj = self._mapping.arrays[index].bins[bin_index]
        return min(
            self._weights.get(item.regex_id, 1.0) for item in bin_obj.items
        )

    def _unit_cost(self, key: tuple) -> int:
        """Accumulated activity — how much work the unit has consumed."""
        if key[0] == "regex":
            return self._regex[key[1]].activity().active_state_cycles
        return self._bins[(key[1], key[2])].activity().woken_tile_cycles

    def shed(self, fraction: float, reason: str) -> list[tuple]:
        """Freeze the lowest-weight live units, quarantining their patterns.

        ``fraction`` of the live units (at least one) stop being fed;
        ties on weight break toward the most expensive unit (shed what
        costs most first), then by key for determinism.  Returns the
        shed unit keys.
        """
        live = [
            key
            for key in (
                [("regex", rid) for rid in self._regex]
                + [("bin", i, b) for (i, b) in self._bins]
            )
            if key not in self._shed
        ]
        if not live:
            return []
        count = min(len(live), max(1, math.ceil(fraction * len(live))))
        live.sort(
            key=lambda key: (
                self._unit_weight(key),
                -self._unit_cost(key),
                key,
            )
        )
        victims = live[:count]
        compiled_by_id = {r.regex_id: r for r in self._ruleset}
        for key in victims:
            self._shed.add(key)
            if key[0] == "regex":
                rids = [key[1]]
            else:
                bin_obj = self._mapping.arrays[key[1]].bins[key[2]]
                rids = sorted({item.regex_id for item in bin_obj.items})
            for rid in rids:
                compiled = compiled_by_id.get(rid)
                self.quarantine_entries.append(
                    QuarantineEntry(
                        phase="degrade",
                        error=reason,
                        error_type="BudgetExceededError",
                        pattern=compiled.pattern if compiled else None,
                        pattern_index=rid,
                    )
                )
        return victims

    # -- completion ----------------------------------------------------------

    def finish(self) -> RunActivity:
        """The accumulated activity, in sequential collection order."""
        regex = {
            r.regex_id: self._regex[r.regex_id].activity()
            for r in self._ruleset
            if r.mode is not CompiledMode.LNFA
        }
        lnfa_bins = {
            index: [
                self._bins[(index, bin_index)].activity()
                for bin_index in range(len(array.bins))
            ]
            for index, array in enumerate(self._mapping.arrays)
            if array.mode is TileMode.LNFA
        }
        return RunActivity(
            regex=regex, lnfa_bins=lnfa_bins, input_symbols=self._offset
        )


__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "KEEP",
    "CheckpointStore",
    "DurableScan",
    "process_start_time",
    "session_dirname",
]
