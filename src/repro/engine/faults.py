"""Deterministic fault injection for exercising every recovery path.

A :class:`FaultPlan` is a list of directives, each firing at one exact
(site, index, attempt) coordinate — never randomly — so a CI run with a
canned plan reproduces the same crash/hang/corruption sequence every
time.  Plans come from ``RAP_FAULT_PLAN`` in the environment or from
``EngineConfig.fault_plan``; an explicit (even empty) plan always
overrides the environment.

Directive kinds and where they fire:

``crash``
    At a work unit: the worker process dies with ``os._exit`` (the pool
    sees ``BrokenProcessPool``).  In-process execution raises
    :class:`~repro.errors.WorkerCrashError` instead — deterministic and
    parent-safe.
``hang``
    At a work unit: sleep ``seconds`` before executing (drives a unit
    past its deadline when one is set; otherwise just delays it).
``error``
    At a work unit: raise ``RuntimeError`` (a generic worker fault).
``pickle``
    At a work unit: raise ``pickle.PicklingError`` (payload/result
    marshalling failure).
``truncate_cache``
    At the *index*-th compile-cache write since the plan was installed:
    truncate the freshly-written entry file to half its size.

Plan specs are compact strings — directives separated by ``;`` or
``,``, each ``kind@index[:attempt][*seconds]``::

    RAP_FAULT_PLAN='crash@0;hang@1:0*2.5'

(crash unit 0 on its first attempt; on unit 1's first attempt sleep
2.5 s before running).  A JSON list of objects with the same field
names is accepted too.

Attempt numbers count *submissions* by the supervisor: a unit whose
future dies with the pool consumes an attempt without executing, so a
directive aimed at that (index, attempt) may never fire — outputs stay
deterministic regardless, because retried units recompute identical
results.
"""

from __future__ import annotations

import json
import os
import pickle
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import WorkerCrashError

FAULT_PLAN_ENV = "RAP_FAULT_PLAN"

UNIT_KINDS = ("crash", "hang", "error", "pickle")
CACHE_KINDS = ("truncate_cache",)


@dataclass(frozen=True)
class FaultDirective:
    """One deterministic fault: fire ``kind`` at (index, attempt)."""

    kind: str
    index: int = 0
    attempt: int = 0
    seconds: float = 1.0  # hang duration

    def __post_init__(self) -> None:
        if self.kind not in UNIT_KINDS + CACHE_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(UNIT_KINDS + CACHE_KINDS)}"
            )

    def spec(self) -> str:
        """The compact-string spelling of this directive."""
        text = f"{self.kind}@{self.index}:{self.attempt}"
        if self.kind == "hang":
            text += f"*{self.seconds:g}"
        return text


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of directives; empty plans inject nothing."""

    directives: tuple[FaultDirective, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.directives)

    @classmethod
    def parse(cls, spec) -> "FaultPlan":
        """Parse a plan spec (compact string, JSON, or plan/None)."""
        if spec is None:
            return cls()
        if isinstance(spec, FaultPlan):
            return spec
        text = spec.strip()
        if not text:
            return cls()
        if text.startswith("["):
            raw = json.loads(text)
            return cls(
                tuple(FaultDirective(**entry) for entry in raw)
            )
        directives = []
        for part in text.replace(",", ";").split(";"):
            part = part.strip()
            if part:
                directives.append(_parse_compact(part))
        return cls(tuple(directives))

    def spec(self) -> str:
        """The canonical compact-string spelling (parse round-trips)."""
        return ";".join(d.spec() for d in self.directives)

    def for_unit(self, index: int, attempt: int) -> FaultDirective | None:
        """The unit directive firing at (index, attempt), if any."""
        for directive in self.directives:
            if (
                directive.kind in UNIT_KINDS
                and directive.index == index
                and directive.attempt == attempt
            ):
                return directive
        return None

    def for_cache_put(self, ordinal: int) -> FaultDirective | None:
        """The cache directive firing at the given write ordinal."""
        for directive in self.directives:
            if directive.kind in CACHE_KINDS and directive.index == ordinal:
                return directive
        return None


def _parse_compact(part: str) -> FaultDirective:
    """``kind@index[:attempt][*seconds]`` -> FaultDirective."""
    seconds = 1.0
    if "*" in part:
        part, _, tail = part.partition("*")
        seconds = float(tail)
    if "@" not in part:
        raise ValueError(
            f"malformed fault directive {part!r}; "
            "expected kind@index[:attempt][*seconds]"
        )
    kind, _, location = part.partition("@")
    attempt = 0
    if ":" in location:
        location, _, raw_attempt = location.partition(":")
        attempt = int(raw_attempt)
    return FaultDirective(
        kind=kind.strip(), index=int(location), attempt=attempt, seconds=seconds
    )


def plan_from_env() -> FaultPlan:
    """The plan in ``RAP_FAULT_PLAN``, or an empty plan."""
    return FaultPlan.parse(os.environ.get(FAULT_PLAN_ENV))


def resolve_plan(spec) -> FaultPlan:
    """An explicit spec (any falsy non-None disables), else the env."""
    if spec is None:
        return plan_from_env()
    return FaultPlan.parse(spec)


# -- injection state (per process) ------------------------------------------

# None: nothing installed, fall back to the environment.  An installed
# plan — even an empty one — always wins, so an explicit empty plan
# disables env-driven injection for this process.
_installed: FaultPlan | None = None
_cache_puts: int = 0


def install_plan(spec) -> FaultPlan:
    """Install a plan in this process (workers call this at init) and
    reset the cache-write ordinal counter."""
    global _installed, _cache_puts
    _installed = resolve_plan(spec)
    _cache_puts = 0
    return _installed


def active_plan() -> FaultPlan:
    """The plan active in this process: installed, else environment."""
    return _installed if _installed is not None else plan_from_env()


def inject_unit(
    index: int,
    attempt: int,
    plan: FaultPlan | None = None,
    in_process: bool = False,
) -> None:
    """Fire the active (or given) plan's directive for one unit call.

    Raises the injected failure, sleeps for a hang, or — in a worker
    process for ``crash`` — terminates the process.
    """
    directive = (plan if plan is not None else active_plan()).for_unit(
        index, attempt
    )
    if directive is None:
        return
    if directive.kind == "crash":
        if in_process:
            raise WorkerCrashError(
                f"injected worker crash at unit {index} attempt {attempt}",
                unit=index,
                attempts=attempt + 1,
            )
        os._exit(71)
    if directive.kind == "hang":
        time.sleep(directive.seconds)
        return
    if directive.kind == "error":
        raise RuntimeError(
            f"injected worker error at unit {index} attempt {attempt}"
        )
    assert directive.kind == "pickle"
    raise pickle.PicklingError(
        f"injected pickling failure at unit {index} attempt {attempt}"
    )


def inject_cache_put(path: str | Path, plan: FaultPlan | None = None) -> None:
    """Fire the plan's cache directive (if any) for one cache write."""
    global _cache_puts
    active = plan if plan is not None else active_plan()
    ordinal = _cache_puts
    _cache_puts += 1
    directive = active.for_cache_put(ordinal)
    if directive is None:
        return
    path = Path(path)
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])


def reset() -> None:
    """Clear injection state (tests)."""
    global _installed, _cache_puts
    _installed = None
    _cache_puts = 0


__all__ = [
    "FAULT_PLAN_ENV",
    "FaultDirective",
    "FaultPlan",
    "active_plan",
    "inject_cache_put",
    "inject_unit",
    "install_plan",
    "plan_from_env",
    "resolve_plan",
    "reset",
]
