"""Deterministic fault injection for exercising every recovery path.

A :class:`FaultPlan` is a list of directives, each firing at one exact
(site, index, attempt) coordinate — never randomly — so a CI run with a
canned plan reproduces the same crash/hang/corruption sequence every
time.  Plans come from ``RAP_FAULT_PLAN`` in the environment or from
``EngineConfig.fault_plan``; an explicit (even empty) plan always
overrides the environment.

Directive kinds and where they fire:

``crash``
    At a work unit: the worker process dies with ``os._exit`` (the pool
    sees ``BrokenProcessPool``).  In-process execution raises
    :class:`~repro.errors.WorkerCrashError` instead — deterministic and
    parent-safe.
``hang``
    At a work unit: sleep ``seconds`` before executing (drives a unit
    past its deadline when one is set; otherwise just delays it).
``error``
    At a work unit: raise ``RuntimeError`` (a generic worker fault).
``pickle``
    At a work unit: raise ``pickle.PicklingError`` (payload/result
    marshalling failure).
``truncate_cache``
    At the *index*-th compile-cache write since the plan was installed:
    truncate the freshly-written entry file to half its size.
``kill``
    At the *index*-th chunk of a durable scan, before the chunk is fed:
    the process dies with ``SIGKILL`` — the unskippable signal, exactly
    what a host OOM killer or operator ``kill -9`` delivers.  CI uses
    this to prove checkpoint resume is bit-identical.
``torn_checkpoint``
    At the *index*-th checkpoint write of a durable scan: truncate the
    freshly-committed checkpoint file to half its size (a torn write
    that survived the rename — e.g. lost fsync semantics).  Resume must
    detect the damage via the envelope checksum and fall back to the
    previous good checkpoint.
``disk_full``
    At the *index*-th checkpoint write of a durable scan: fail the
    write with ``ENOSPC`` before any bytes land.  The scan must degrade
    gracefully — keep scanning, count the failure, rely on an earlier
    checkpoint if interrupted.
``disconnect`` / ``stall`` / ``garbage`` / ``reload``
    At the *index*-th data segment of one scan-service connection
    (``repro.serve``): abort the transport mid-stream, freeze the
    sender for ``seconds``, send an unparsable frame, or trigger a hot
    ruleset reload.  The load generator fires them; the chaos tests
    prove a session torn down by any of them resumes to byte-identical
    matches and energy.
``killworker`` / ``wedge``
    At the *index*-th health round of the fleet supervisor
    (``repro.serve.fleet``): deliver ``SIGKILL`` to one worker (the
    unannounced worker death the supervisor must detect and re-home
    sessions around) or ``SIGSTOP`` it (a wedged worker — alive at the
    process level but unresponsive to pings, exactly the failure the
    health gate exists to catch; the supervisor fences it with
    ``SIGKILL`` once the gate trips).  Victims rotate round-robin over
    the pool in directive firing order, so a canned plan names a
    deterministic kill sequence.

Plan specs are compact strings — directives separated by ``;`` or
``,``, each ``kind@index[:attempt][*seconds]``::

    RAP_FAULT_PLAN='crash@0;hang@1:0*2.5'

(crash unit 0 on its first attempt; on unit 1's first attempt sleep
2.5 s before running).  A JSON list of objects with the same field
names is accepted too.

Attempt numbers count *submissions* by the supervisor: a unit whose
future dies with the pool consumes an attempt without executing, so a
directive aimed at that (index, attempt) may never fire — outputs stay
deterministic regardless, because retried units recompute identical
results.
"""

from __future__ import annotations

import errno
import json
import os
import pickle
import signal
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import WorkerCrashError

FAULT_PLAN_ENV = "RAP_FAULT_PLAN"

UNIT_KINDS = ("crash", "hang", "error", "pickle")
CACHE_KINDS = ("truncate_cache",)
CHUNK_KINDS = ("kill",)
CHECKPOINT_KINDS = ("torn_checkpoint", "disk_full")
# Connection-level kinds, fired at the *index*-th data segment of one
# scan-service connection (see repro.serve): ``disconnect`` aborts the
# transport mid-stream, ``stall`` freezes the sender for ``seconds``
# (driving the server's read deadline / idle watchdog), ``garbage``
# sends an unparsable frame (the server must fail the connection
# without corrupting the session), ``reload`` triggers a hot ruleset
# reload at that segment boundary.  The load generator interprets the
# directives; the service only proves it survives them.
CONN_KINDS = ("disconnect", "stall", "garbage", "reload")
# Fleet-level kinds, fired by the supervisor itself at the *index*-th
# health round (``repro.serve.fleet``): ``killworker`` SIGKILLs one
# worker of the pool, ``wedge`` SIGSTOPs it so the process stays alive
# but stops answering pings.  Both exercise the supervisor's health
# gate, fencing, and session re-homing; neither may cost a client a
# byte of results.
FLEET_KINDS = ("killworker", "wedge")
ALL_KINDS = (
    UNIT_KINDS
    + CACHE_KINDS
    + CHUNK_KINDS
    + CHECKPOINT_KINDS
    + CONN_KINDS
    + FLEET_KINDS
)


@dataclass(frozen=True)
class FaultDirective:
    """One deterministic fault: fire ``kind`` at (index, attempt)."""

    kind: str
    index: int = 0
    attempt: int = 0
    seconds: float = 1.0  # hang duration

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise ValueError(
                f"unknown fault kind in directive {self.spec()!r}; "
                f"expected one of {', '.join(ALL_KINDS)}"
            )
        if self.index < 0:
            raise ValueError(
                f"fault directive {self.spec()!r} has a negative index"
            )
        if self.attempt < 0:
            raise ValueError(
                f"fault directive {self.spec()!r} has a negative attempt"
            )
        if not self.seconds > 0:
            raise ValueError(
                f"fault directive {self.spec()!r} has a non-positive "
                f"duration {self.seconds!r}; *seconds must be > 0"
            )

    def spec(self) -> str:
        """The compact-string spelling of this directive."""
        text = f"{self.kind}@{self.index}:{self.attempt}"
        if self.kind in ("hang", "stall"):
            text += f"*{self.seconds:g}"
        return text


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of directives; empty plans inject nothing."""

    directives: tuple[FaultDirective, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.directives)

    @classmethod
    def parse(cls, spec) -> "FaultPlan":
        """Parse a plan spec (compact string, JSON, or plan/None)."""
        if spec is None:
            return cls()
        if isinstance(spec, FaultPlan):
            return spec
        text = spec.strip()
        if not text:
            return cls()
        if text.startswith("["):
            try:
                raw = json.loads(text)
            except json.JSONDecodeError as err:
                raise ValueError(
                    f"malformed JSON fault plan {text!r}: {err}"
                ) from err
            return cls(tuple(_from_json_entry(entry) for entry in raw))
        directives = []
        for part in text.replace(",", ";").split(";"):
            part = part.strip()
            if part:
                directives.append(_parse_compact(part))
        return cls(tuple(directives))

    def spec(self) -> str:
        """The canonical compact-string spelling (parse round-trips)."""
        return ";".join(d.spec() for d in self.directives)

    def for_unit(self, index: int, attempt: int) -> FaultDirective | None:
        """The unit directive firing at (index, attempt), if any."""
        for directive in self.directives:
            if (
                directive.kind in UNIT_KINDS
                and directive.index == index
                and directive.attempt == attempt
            ):
                return directive
        return None

    def for_cache_put(self, ordinal: int) -> FaultDirective | None:
        """The cache directive firing at the given write ordinal."""
        for directive in self.directives:
            if directive.kind in CACHE_KINDS and directive.index == ordinal:
                return directive
        return None

    def for_chunk(self, ordinal: int) -> FaultDirective | None:
        """The chunk directive firing at the given scan-chunk ordinal."""
        for directive in self.directives:
            if directive.kind in CHUNK_KINDS and directive.index == ordinal:
                return directive
        return None

    def for_checkpoint_write(self, ordinal: int) -> FaultDirective | None:
        """The checkpoint directive firing at the given write ordinal."""
        for directive in self.directives:
            if (
                directive.kind in CHECKPOINT_KINDS
                and directive.index == ordinal
            ):
                return directive
        return None

    def for_conn(self, ordinal: int) -> FaultDirective | None:
        """The connection directive firing at the given segment ordinal."""
        for directive in self.directives:
            if directive.kind in CONN_KINDS and directive.index == ordinal:
                return directive
        return None

    def for_fleet_tick(self, ordinal: int) -> FaultDirective | None:
        """The fleet directive firing at the given health-round ordinal."""
        for directive in self.directives:
            if directive.kind in FLEET_KINDS and directive.index == ordinal:
                return directive
        return None


def _parse_compact(part: str) -> FaultDirective:
    """``kind@index[:attempt][*seconds]`` -> FaultDirective."""
    original = part
    seconds = 1.0
    try:
        if "*" in part:
            part, _, tail = part.partition("*")
            seconds = float(tail)
        if "@" not in part:
            raise ValueError(
                "expected kind@index[:attempt][*seconds]"
            )
        kind, _, location = part.partition("@")
        attempt = 0
        if ":" in location:
            location, _, raw_attempt = location.partition(":")
            attempt = int(raw_attempt)
        return FaultDirective(
            kind=kind.strip(),
            index=int(location),
            attempt=attempt,
            seconds=seconds,
        )
    except ValueError as err:
        raise ValueError(
            f"malformed fault directive {original!r}: {err}"
        ) from err


def _from_json_entry(entry) -> FaultDirective:
    """One JSON plan entry -> FaultDirective, naming the entry on error."""
    if not isinstance(entry, dict):
        raise ValueError(
            f"malformed fault directive {entry!r}: expected a JSON object"
        )
    unknown = set(entry) - {"kind", "index", "attempt", "seconds"}
    if unknown:
        raise ValueError(
            f"malformed fault directive {entry!r}: "
            f"unknown fields {sorted(unknown)}"
        )
    try:
        return FaultDirective(
            kind=str(entry.get("kind", "")),
            index=int(entry.get("index", 0)),
            attempt=int(entry.get("attempt", 0)),
            seconds=float(entry.get("seconds", 1.0)),
        )
    except (TypeError, ValueError) as err:
        raise ValueError(
            f"malformed fault directive {entry!r}: {err}"
        ) from err


def plan_from_env() -> FaultPlan:
    """The plan in ``RAP_FAULT_PLAN``, or an empty plan."""
    return FaultPlan.parse(os.environ.get(FAULT_PLAN_ENV))


def resolve_plan(spec) -> FaultPlan:
    """An explicit spec (any falsy non-None disables), else the env."""
    if spec is None:
        return plan_from_env()
    return FaultPlan.parse(spec)


# -- injection state (per process) ------------------------------------------

# None: nothing installed, fall back to the environment.  An installed
# plan — even an empty one — always wins, so an explicit empty plan
# disables env-driven injection for this process.
_installed: FaultPlan | None = None
_cache_puts: int = 0


def install_plan(spec) -> FaultPlan:
    """Install a plan in this process (workers call this at init) and
    reset the cache-write ordinal counter."""
    global _installed, _cache_puts
    _installed = resolve_plan(spec)
    _cache_puts = 0
    return _installed


def active_plan() -> FaultPlan:
    """The plan active in this process: installed, else environment."""
    return _installed if _installed is not None else plan_from_env()


def inject_unit(
    index: int,
    attempt: int,
    plan: FaultPlan | None = None,
    in_process: bool = False,
) -> None:
    """Fire the active (or given) plan's directive for one unit call.

    Raises the injected failure, sleeps for a hang, or — in a worker
    process for ``crash`` — terminates the process.
    """
    directive = (plan if plan is not None else active_plan()).for_unit(
        index, attempt
    )
    if directive is None:
        return
    if directive.kind == "crash":
        if in_process:
            raise WorkerCrashError(
                f"injected worker crash at unit {index} attempt {attempt}",
                unit=index,
                attempts=attempt + 1,
            )
        os._exit(71)
    if directive.kind == "hang":
        time.sleep(directive.seconds)
        return
    if directive.kind == "error":
        raise RuntimeError(
            f"injected worker error at unit {index} attempt {attempt}"
        )
    assert directive.kind == "pickle"
    raise pickle.PicklingError(
        f"injected pickling failure at unit {index} attempt {attempt}"
    )


def inject_cache_put(path: str | Path, plan: FaultPlan | None = None) -> None:
    """Fire the plan's cache directive (if any) for one cache write."""
    global _cache_puts
    active = plan if plan is not None else active_plan()
    ordinal = _cache_puts
    _cache_puts += 1
    directive = active.for_cache_put(ordinal)
    if directive is None:
        return
    path = Path(path)
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])


def inject_chunk(ordinal: int, plan: FaultPlan | None = None) -> None:
    """Fire the plan's chunk directive before a durable-scan chunk.

    ``kill`` delivers ``SIGKILL`` to this very process — no cleanup, no
    excepthook, exactly the failure a checkpoint must survive.
    """
    active = plan if plan is not None else active_plan()
    directive = active.for_chunk(ordinal)
    if directive is None:
        return
    assert directive.kind == "kill"
    os.kill(os.getpid(), signal.SIGKILL)


def inject_checkpoint_reserve(
    ordinal: int, plan: FaultPlan | None = None
) -> None:
    """Fire a ``disk_full`` directive before checkpoint bytes land."""
    active = plan if plan is not None else active_plan()
    directive = active.for_checkpoint_write(ordinal)
    if directive is None or directive.kind != "disk_full":
        return
    raise OSError(
        errno.ENOSPC,
        f"injected disk-full at checkpoint write {ordinal}",
    )


def inject_checkpoint_commit(
    path: str | Path, ordinal: int, plan: FaultPlan | None = None
) -> None:
    """Fire a ``torn_checkpoint`` directive after a checkpoint commit:
    truncate the committed file to half its size."""
    active = plan if plan is not None else active_plan()
    directive = active.for_checkpoint_write(ordinal)
    if directive is None or directive.kind != "torn_checkpoint":
        return
    path = Path(path)
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])


def reset() -> None:
    """Clear injection state (tests)."""
    global _installed, _cache_puts
    _installed = None
    _cache_puts = 0


__all__ = [
    "ALL_KINDS",
    "CACHE_KINDS",
    "CHECKPOINT_KINDS",
    "CHUNK_KINDS",
    "CONN_KINDS",
    "FAULT_PLAN_ENV",
    "FLEET_KINDS",
    "UNIT_KINDS",
    "FaultDirective",
    "FaultPlan",
    "active_plan",
    "inject_cache_put",
    "inject_checkpoint_commit",
    "inject_checkpoint_reserve",
    "inject_chunk",
    "inject_unit",
    "install_plan",
    "plan_from_env",
    "resolve_plan",
    "reset",
]
