"""On-disk compile cache keyed by workload content.

Every ``scan``/``experiment`` invocation used to recompile its regexes
from scratch; compilation (parsing, the Fig. 9 decision graph, unfolding,
tile planning) dominates start-up for realistic rule sets.  The cache
stores compiled rulesets as the versioned JSON documents of
:mod:`repro.io.serialize` under ``~/.cache/rap-repro/`` (override with
the ``RAP_CACHE_DIR`` environment variable or an explicit root).

The key is a SHA-256 over the canonical JSON of everything that can
change the compiler's output: the pattern list (in order), every
:class:`~repro.compiler.pipeline.CompilerConfig` field including the
full hardware config, and the serializer's ``FORMAT_VERSION`` — plus
the resolved step-kernel backend and
:data:`~repro.core.KERNEL_FORMAT_VERSION`, so switching ``RAP_BACKEND``
(or bumping the kernel encoding) can never serve an artifact produced
under different execution semantics.  Bumping either version therefore
invalidates every cached entry, and two processes racing on the same
key both write the same bytes.

Writes are atomic (temp file + ``os.replace``) and carry a SHA-256
content checksum over the serialized payload; reads verify it before
deserializing, so *any* corruption — truncation, bit rot, a partial
write from a crashed process — is caught positively rather than by
hoping the deserializer chokes.  A failed entry is mapped onto
:class:`~repro.errors.CacheCorruptionError`, logged at debug level,
evicted, and treated as a miss: a broken cache can slow a run down but
never change its results.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import logging
import os
import tempfile
from collections.abc import Iterable
from pathlib import Path

from repro.compiler import CompilerConfig, compile_ruleset
from repro.compiler.program import CompiledRuleset
from repro.core import (
    DFA_FORMAT_VERSION,
    FUSED_FORMAT_VERSION,
    KERNEL_FORMAT_VERSION,
    resolve_backend,
)
from repro.errors import CacheCorruptionError
from repro.io.serialize import (
    FORMAT_NAME,
    FORMAT_VERSION,
    SerializationError,
    ruleset_from_json,
    ruleset_to_json,
)

CACHE_DIR_ENV = "RAP_CACHE_DIR"

# Version of the on-disk envelope (checksum wrapper), independent of
# the payload's FORMAT_VERSION; bumping it invalidates every entry.
ENTRY_VERSION = 1

log = logging.getLogger(__name__)


def default_cache_dir() -> Path:
    """``$RAP_CACHE_DIR`` if set, else ``~/.cache/rap-repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "rap-repro"


def _json_default(value):
    if isinstance(value, enum.Enum):
        return value.value
    raise TypeError(f"unhashable cache-key component: {value!r}")


def ruleset_cache_key(
    patterns: Iterable[str], config: CompilerConfig | None = None
) -> str:
    """Content hash identifying one compile's exact inputs.

    Uses ``dataclasses.asdict`` over the compiler config so that any
    field added to :class:`CompilerConfig` (or to the nested
    :class:`HardwareConfig`) automatically becomes part of the key.
    The active step-kernel backend and the kernel/fused format versions
    are part of the key too: kernels are bit-identical by contract, but
    a cache entry must never outlive the execution semantics it was
    produced under.
    """
    config = config or CompilerConfig()
    doc = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "backend": resolve_backend(),
        "kernel_format": KERNEL_FORMAT_VERSION,
        "fused_format": FUSED_FORMAT_VERSION,
        # Mode selection probes subset construction (the dfa_states
        # feature), so a DFA-encoding bump can change compiler output
        # even for rulesets that end up without a DFA regex.
        "dfa_format": DFA_FORMAT_VERSION,
        "patterns": list(patterns),
        "config": dataclasses.asdict(config),
    }
    if not all(isinstance(p, str) for p in doc["patterns"]):
        raise TypeError("the compile cache keys on string patterns only")
    canonical = json.dumps(
        doc, sort_keys=True, separators=(",", ":"), default=_json_default
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


class CompileCache:
    """A directory of compiled rulesets addressed by content hash.

    Entries are checksummed envelopes::

        {"format": ..., "entry_version": 1,
         "checksum": sha256(payload), "payload": "<ruleset JSON text>"}

    The checksum is computed over the exact payload text written, so a
    read verifies content integrity byte-for-byte before touching the
    deserializer.
    """

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # The last eviction's structured error (diagnostics/tests).
        self.last_corruption: CacheCorruptionError | None = None

    def path(self, key: str) -> Path:
        """Where a key's entry lives on disk."""
        return self.root / f"{key}.json"

    def get(self, key: str) -> CompiledRuleset | None:
        """The cached ruleset, or None on a miss or a corrupted entry."""
        path = self.path(key)
        try:
            with open(path) as f:
                document = json.load(f)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError) as err:
            return self._evict(path, f"unreadable entry: {err}")
        try:
            ruleset = self._verify(document)
        except CacheCorruptionError as err:
            return self._evict(path, str(err))
        self.hits += 1
        return ruleset

    def _verify(self, document) -> CompiledRuleset:
        """Checksum-validate one envelope and deserialize its payload."""
        if not isinstance(document, dict) or "checksum" not in document:
            raise CacheCorruptionError(
                "entry predates the checksummed envelope format"
            )
        if document.get("entry_version") != ENTRY_VERSION:
            raise CacheCorruptionError(
                f"entry version {document.get('entry_version')!r} "
                f"(this build writes {ENTRY_VERSION})"
            )
        payload = document.get("payload")
        if not isinstance(payload, str):
            raise CacheCorruptionError("entry payload missing")
        digest = hashlib.sha256(payload.encode()).hexdigest()
        if digest != document["checksum"]:
            raise CacheCorruptionError(
                f"checksum mismatch: entry says {document['checksum']!r}, "
                f"payload hashes to {digest!r}"
            )
        try:
            return ruleset_from_json(json.loads(payload))
        except (ValueError, KeyError, TypeError, SerializationError) as err:
            # Checksum passed but the payload is version-skewed or was
            # written by a buggy serializer: still an eviction.
            raise CacheCorruptionError(f"undeserializable payload: {err}")

    def _evict(self, path: Path, reason: str) -> None:
        """Drop a corrupt entry, mapping it onto CacheCorruptionError.

        Always returns None (a miss): corruption must never fail the
        run — the caller recompiles and overwrites the entry.
        """
        error = CacheCorruptionError(
            f"cache entry {path.name} corrupt ({reason}); "
            "evicted and recompiling",
            phase="cache",
        )
        log.debug("%s", error)
        self.last_corruption = error
        try:
            os.unlink(path)
        except OSError:
            pass
        self.misses += 1
        self.evictions += 1
        return None

    def put(self, key: str, ruleset: CompiledRuleset) -> Path:
        """Atomically persist a compiled ruleset under ``key``."""
        path = self.path(key)
        self.root.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(ruleset_to_json(ruleset))
        document = {
            "format": FORMAT_NAME,
            "entry_version": ENTRY_VERSION,
            "checksum": hashlib.sha256(payload.encode()).hexdigest(),
            "payload": payload,
        }
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=f".{key[:16]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(document, f)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        # Deterministic fault injection: a "truncate_cache" directive
        # corrupts this write so recovery paths are testable in CI.
        from repro.engine import faults

        faults.inject_cache_put(path)
        return path


def cached_compile_ruleset(
    patterns: Iterable[str],
    config: CompilerConfig | None = None,
    cache: CompileCache | None = None,
) -> CompiledRuleset:
    """``compile_ruleset`` behind the on-disk cache.

    A warm hit skips parsing and compilation entirely (the JSON load is
    an order of magnitude cheaper); a miss compiles and populates the
    cache for the next run.
    """
    patterns = list(patterns)
    config = config or CompilerConfig()
    if cache is None:
        cache = CompileCache()
    key = ruleset_cache_key(patterns, config)
    ruleset = cache.get(key)
    if ruleset is None:
        ruleset = compile_ruleset(patterns, config)
        cache.put(key, ruleset)
    return ruleset
