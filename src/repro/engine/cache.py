"""On-disk compile cache keyed by workload content.

Every ``scan``/``experiment`` invocation used to recompile its regexes
from scratch; compilation (parsing, the Fig. 9 decision graph, unfolding,
tile planning) dominates start-up for realistic rule sets.  The cache
stores compiled rulesets as the versioned JSON documents of
:mod:`repro.io.serialize` under ``~/.cache/rap-repro/`` (override with
the ``RAP_CACHE_DIR`` environment variable or an explicit root).

The key is a SHA-256 over the canonical JSON of everything that can
change the compiler's output: the pattern list (in order), every
:class:`~repro.compiler.pipeline.CompilerConfig` field including the
full hardware config, and the serializer's ``FORMAT_VERSION`` — plus
the resolved step-kernel backend and
:data:`~repro.core.KERNEL_FORMAT_VERSION`, so switching ``RAP_BACKEND``
(or bumping the kernel encoding) can never serve an artifact produced
under different execution semantics.  Bumping either version therefore
invalidates every cached entry, and two processes racing on the same
key both write the same bytes.

Writes are atomic (temp file + ``os.replace``) and carry a SHA-256
content checksum over the serialized payload; reads verify it before
deserializing, so *any* corruption — truncation, bit rot, a partial
write from a crashed process — is caught positively rather than by
hoping the deserializer chokes.  A failed entry is mapped onto
:class:`~repro.errors.CacheCorruptionError`, logged at debug level,
evicted, and treated as a miss: a broken cache can slow a run down but
never change its results.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import logging
import os
import tempfile
from collections.abc import Iterable
from pathlib import Path

from repro.compiler import CompilerConfig, compile_ruleset
from repro.compiler.program import CompiledRuleset
from repro.core import (
    DFA_FORMAT_VERSION,
    FUSED_FORMAT_VERSION,
    KERNEL_FORMAT_VERSION,
    resolve_backend,
)
from repro.errors import CacheCorruptionError
from repro.io.serialize import (
    FORMAT_NAME,
    FORMAT_VERSION,
    SerializationError,
    ruleset_from_json,
    ruleset_to_json,
)

CACHE_DIR_ENV = "RAP_CACHE_DIR"
CACHE_MAX_MB_ENV = "RAP_CACHE_MAX_MB"

# Version of the on-disk envelope (checksum wrapper), independent of
# the payload's FORMAT_VERSION; bumping it invalidates every entry.
ENTRY_VERSION = 1

log = logging.getLogger(__name__)


def default_cache_dir() -> Path:
    """``$RAP_CACHE_DIR`` if set, else ``~/.cache/rap-repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "rap-repro"


def cache_budget_bytes() -> int | None:
    """The ``RAP_CACHE_MAX_MB`` budget in bytes, or None for unbounded.

    Unset, non-numeric, and non-positive values all mean "no bound" —
    a malformed budget must degrade to the historical behaviour, never
    fail a scan.
    """
    raw = os.environ.get(CACHE_MAX_MB_ENV)
    if not raw:
        return None
    try:
        mb = float(raw)
    except ValueError:
        log.debug("ignoring non-numeric %s=%r", CACHE_MAX_MB_ENV, raw)
        return None
    if mb <= 0:
        return None
    return int(mb * 1024 * 1024)


def enforce_cache_budget(
    root: str | Path | None = None, *, keep: str | Path | None = None
) -> int:
    """Evict least-recently-used cache files until under the size budget.

    Walks ``root`` (the whole cache tree, including the ``native/``
    shared-object subdirectory) and, while the total size exceeds
    ``RAP_CACHE_MAX_MB``, deletes files oldest-first by
    ``max(atime, mtime)`` — both :meth:`CompileCache.get` and the
    native loader ``os.utime`` entries they serve, so recency reflects
    *use*, not just creation.  ``keep`` (typically the entry just
    written) is never evicted even if it alone exceeds the budget: the
    artifact the caller is about to use must survive its own publish.

    Returns the number of files evicted.  All I/O is best-effort — a
    racing process deleting the same file is a no-op, and an unreadable
    directory disables enforcement rather than failing the run.
    """
    budget = cache_budget_bytes()
    if budget is None:
        return 0
    root = Path(root) if root is not None else default_cache_dir()
    keep_path = Path(keep).resolve() if keep is not None else None
    entries: list[tuple[float, int, Path]] = []
    total = 0
    try:
        walk = list(os.walk(root))
    except OSError:
        return 0
    for dirpath, _dirnames, filenames in walk:
        for name in filenames:
            if name.startswith("."):
                continue  # in-flight temp files are not evictable
            path = Path(dirpath) / name
            try:
                st = path.stat()
            except OSError:
                continue
            total += st.st_size
            if keep_path is not None and path.resolve() == keep_path:
                continue
            entries.append((max(st.st_atime, st.st_mtime), st.st_size, path))
    if total <= budget:
        return 0
    entries.sort(key=lambda item: item[0])
    evicted = 0
    for _stamp, size, path in entries:
        if total <= budget:
            break
        try:
            os.unlink(path)
        except OSError:
            continue
        total -= size
        evicted += 1
        log.debug("cache budget: evicted %s (%d bytes)", path.name, size)
    return evicted


def _json_default(value):
    if isinstance(value, enum.Enum):
        return value.value
    raise TypeError(f"unhashable cache-key component: {value!r}")


def ruleset_cache_key(
    patterns: Iterable[str], config: CompilerConfig | None = None
) -> str:
    """Content hash identifying one compile's exact inputs.

    Uses ``dataclasses.asdict`` over the compiler config so that any
    field added to :class:`CompilerConfig` (or to the nested
    :class:`HardwareConfig`) automatically becomes part of the key.
    The active step-kernel backend and the kernel/fused format versions
    are part of the key too: kernels are bit-identical by contract, but
    a cache entry must never outlive the execution semantics it was
    produced under.
    """
    from repro.compiler.costmodel import active_constants

    config = config or CompilerConfig()
    constants = active_constants()
    doc = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "backend": resolve_backend(),
        # Mode selection scores against the calibrated cost constants,
        # so recalibrating must orphan entries compiled under the old
        # anchors (NFA/DFA splits are bit-identical, but the cached
        # artifact should match what a fresh compile would choose).
        "cost_constants": {**constants.numbers(), "source": constants.source},
        "kernel_format": KERNEL_FORMAT_VERSION,
        "fused_format": FUSED_FORMAT_VERSION,
        # Mode selection probes subset construction (the dfa_states
        # feature), so a DFA-encoding bump can change compiler output
        # even for rulesets that end up without a DFA regex.
        "dfa_format": DFA_FORMAT_VERSION,
        "patterns": list(patterns),
        "config": dataclasses.asdict(config),
    }
    if not all(isinstance(p, str) for p in doc["patterns"]):
        raise TypeError("the compile cache keys on string patterns only")
    canonical = json.dumps(
        doc, sort_keys=True, separators=(",", ":"), default=_json_default
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


class CompileCache:
    """A directory of compiled rulesets addressed by content hash.

    Entries are checksummed envelopes::

        {"format": ..., "entry_version": 1,
         "checksum": sha256(payload), "payload": "<ruleset JSON text>"}

    The checksum is computed over the exact payload text written, so a
    read verifies content integrity byte-for-byte before touching the
    deserializer.
    """

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # The last eviction's structured error (diagnostics/tests).
        self.last_corruption: CacheCorruptionError | None = None

    def path(self, key: str) -> Path:
        """Where a key's entry lives on disk."""
        return self.root / f"{key}.json"

    def get(self, key: str) -> CompiledRuleset | None:
        """The cached ruleset, or None on a miss or a corrupted entry."""
        path = self.path(key)
        try:
            with open(path) as f:
                document = json.load(f)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError) as err:
            return self._evict(path, f"unreadable entry: {err}")
        try:
            ruleset = self._verify(document)
        except CacheCorruptionError as err:
            return self._evict(path, str(err))
        self.hits += 1
        try:
            # Freshen the entry so LRU budget eviction sees it as used.
            os.utime(path)
        except OSError:
            pass
        return ruleset

    def _verify(self, document) -> CompiledRuleset:
        """Checksum-validate one envelope and deserialize its payload."""
        if not isinstance(document, dict) or "checksum" not in document:
            raise CacheCorruptionError(
                "entry predates the checksummed envelope format"
            )
        if document.get("entry_version") != ENTRY_VERSION:
            raise CacheCorruptionError(
                f"entry version {document.get('entry_version')!r} "
                f"(this build writes {ENTRY_VERSION})"
            )
        payload = document.get("payload")
        if not isinstance(payload, str):
            raise CacheCorruptionError("entry payload missing")
        digest = hashlib.sha256(payload.encode()).hexdigest()
        if digest != document["checksum"]:
            raise CacheCorruptionError(
                f"checksum mismatch: entry says {document['checksum']!r}, "
                f"payload hashes to {digest!r}"
            )
        try:
            return ruleset_from_json(json.loads(payload))
        except (ValueError, KeyError, TypeError, SerializationError) as err:
            # Checksum passed but the payload is version-skewed or was
            # written by a buggy serializer: still an eviction.
            raise CacheCorruptionError(f"undeserializable payload: {err}")

    def _evict(self, path: Path, reason: str) -> None:
        """Drop a corrupt entry, mapping it onto CacheCorruptionError.

        Always returns None (a miss): corruption must never fail the
        run — the caller recompiles and overwrites the entry.
        """
        error = CacheCorruptionError(
            f"cache entry {path.name} corrupt ({reason}); "
            "evicted and recompiling",
            phase="cache",
        )
        log.debug("%s", error)
        self.last_corruption = error
        try:
            os.unlink(path)
        except OSError:
            pass
        self.misses += 1
        self.evictions += 1
        return None

    def put(self, key: str, ruleset: CompiledRuleset) -> Path:
        """Atomically persist a compiled ruleset under ``key``."""
        path = self.path(key)
        self.root.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(ruleset_to_json(ruleset))
        document = {
            "format": FORMAT_NAME,
            "entry_version": ENTRY_VERSION,
            "checksum": hashlib.sha256(payload.encode()).hexdigest(),
            "payload": payload,
        }
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=f".{key[:16]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(document, f)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        # Deterministic fault injection: a "truncate_cache" directive
        # corrupts this write so recovery paths are testable in CI.
        from repro.engine import faults

        faults.inject_cache_put(path)
        self.evictions += enforce_cache_budget(self.root, keep=path)
        return path

    # -- generic checksummed blobs ------------------------------------
    #
    # Small JSON side-documents (e.g. per-backend cost-model
    # calibration) share the cache directory and its integrity story:
    # the same envelope, the same corruption-is-a-miss policy, and the
    # same size budget.  Blobs live under blobs/<name>.json so they can
    # never collide with a content-hash ruleset key.

    def blob_path(self, name: str) -> Path:
        if not name or "/" in name or name.startswith("."):
            raise ValueError(f"invalid blob name: {name!r}")
        return self.root / "blobs" / f"{name}.json"

    def get_blob(self, name: str):
        """The stored JSON value, or None on a miss or corruption."""
        path = self.blob_path(name)
        try:
            with open(path) as f:
                document = json.load(f)
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as err:
            return self._evict(path, f"unreadable blob: {err}")
        if (
            not isinstance(document, dict)
            or document.get("entry_version") != ENTRY_VERSION
            or not isinstance(document.get("payload"), str)
        ):
            return self._evict(path, "malformed blob envelope")
        payload = document["payload"]
        digest = hashlib.sha256(payload.encode()).hexdigest()
        if digest != document.get("checksum"):
            return self._evict(path, "blob checksum mismatch")
        try:
            value = json.loads(payload)
        except ValueError as err:
            return self._evict(path, f"undeserializable blob: {err}")
        try:
            os.utime(path)
        except OSError:
            pass
        return value

    def put_blob(self, name: str, value) -> Path:
        """Atomically persist a JSON-serializable value under ``name``."""
        path = self.blob_path(name)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(value, sort_keys=True)
        document = {
            "format": FORMAT_NAME,
            "entry_version": ENTRY_VERSION,
            "checksum": hashlib.sha256(payload.encode()).hexdigest(),
            "payload": payload,
        }
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{name[:16]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(document, f)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.evictions += enforce_cache_budget(self.root, keep=path)
        return path


def cached_compile_ruleset(
    patterns: Iterable[str],
    config: CompilerConfig | None = None,
    cache: CompileCache | None = None,
) -> CompiledRuleset:
    """``compile_ruleset`` behind the on-disk cache.

    A warm hit skips parsing and compilation entirely (the JSON load is
    an order of magnitude cheaper); a miss compiles and populates the
    cache for the next run.
    """
    patterns = list(patterns)
    config = config or CompilerConfig()
    if cache is None:
        cache = CompileCache()
    key = ruleset_cache_key(patterns, config)
    ruleset = cache.get(key)
    if ruleset is None:
        ruleset = compile_ruleset(patterns, config)
        cache.put(key, ruleset)
    return ruleset
