"""Parallel batch execution engine, keyed compile cache, fault tolerance.

The paper's evaluation is embarrassingly parallel — per-array cycle
counts and per-regex energy ledgers are independent (Section 3) — and
this package exploits exactly that structure: work shards across worker
processes while integer activity merges exactly, so parallel output is
bit-identical to the sequential reference path.

Execution is *supervised* (:mod:`repro.engine.supervisor`): units run
under per-unit deadlines with bounded retries, crashed pools respawn
and re-run only the missing units, and an in-process fallback is the
last resort — with deterministic fault injection
(:mod:`repro.engine.faults`) making every recovery path testable.
Failures that survive recovery follow the engine's ``on_error`` policy
(fail / skip / quarantine, see :class:`~repro.errors.QuarantineReport`).
"""

from repro.engine.batch import (
    BatchEngine,
    BatchReport,
    BatchTask,
    DurableScanOutcome,
    EngineConfig,
)
from repro.engine.budget import (
    DEGRADE_POLICIES,
    BudgetMonitor,
    ResourceBudget,
    current_rss_mb,
    validate_degrade,
)
from repro.engine.cache import (
    CACHE_DIR_ENV,
    CompileCache,
    cached_compile_ruleset,
    default_cache_dir,
    ruleset_cache_key,
)
from repro.engine.checkpoint import (
    INPUT_JOBS_ENV,
    CheckpointStore,
    DurableScan,
    resolve_input_jobs,
)
from repro.engine.faults import FAULT_PLAN_ENV, FaultDirective, FaultPlan
from repro.engine.partition import (
    Chunk,
    plan_chunks,
    required_overlap,
)
from repro.engine.pool import effective_jobs, parallel_map
from repro.engine.supervisor import (
    SupervisorConfig,
    UnitOutcome,
    run_supervised,
)

__all__ = [
    "BatchEngine",
    "BatchReport",
    "BatchTask",
    "BudgetMonitor",
    "CACHE_DIR_ENV",
    "CheckpointStore",
    "Chunk",
    "CompileCache",
    "DEGRADE_POLICIES",
    "DurableScan",
    "DurableScanOutcome",
    "EngineConfig",
    "FAULT_PLAN_ENV",
    "FaultDirective",
    "FaultPlan",
    "INPUT_JOBS_ENV",
    "ResourceBudget",
    "SupervisorConfig",
    "UnitOutcome",
    "cached_compile_ruleset",
    "current_rss_mb",
    "default_cache_dir",
    "effective_jobs",
    "parallel_map",
    "plan_chunks",
    "required_overlap",
    "run_supervised",
    "resolve_input_jobs",
    "ruleset_cache_key",
    "validate_degrade",
]
