"""Parallel batch execution engine and keyed compile cache.

The paper's evaluation is embarrassingly parallel — per-array cycle
counts and per-regex energy ledgers are independent (Section 3) — and
this package exploits exactly that structure: work shards across worker
processes while integer activity merges exactly, so parallel output is
bit-identical to the sequential reference path.
"""

from repro.engine.batch import BatchEngine, BatchTask, EngineConfig
from repro.engine.cache import (
    CACHE_DIR_ENV,
    CompileCache,
    cached_compile_ruleset,
    default_cache_dir,
    ruleset_cache_key,
)
from repro.engine.partition import (
    Chunk,
    plan_chunks,
    required_overlap,
)
from repro.engine.pool import effective_jobs, parallel_map

__all__ = [
    "BatchEngine",
    "BatchTask",
    "CACHE_DIR_ENV",
    "Chunk",
    "CompileCache",
    "EngineConfig",
    "cached_compile_ruleset",
    "default_cache_dir",
    "effective_jobs",
    "parallel_map",
    "plan_chunks",
    "required_overlap",
    "ruleset_cache_key",
]
