"""Per-scan resource budgets: wall-clock and resident-set guards.

A long scan on a shared host must not be allowed to grow without bound:
the ROADMAP's production setting hands the engine effectively unbounded
streams, and the operator — not the input — decides how much time and
memory one scan may consume.  A :class:`ResourceBudget` captures those
limits; a :class:`BudgetMonitor` is the heartbeat the durable-scan
driver polls between chunks.  What happens on pressure is policy
(``degrade="fail"`` raises :class:`~repro.errors.BudgetExceededError`;
``"shed"`` quarantines low-weight patterns) and lives with the driver.

RSS comes from ``resource.getrusage`` — stdlib-only, but the peak
(high-water mark), not the current size, and in platform-dependent
units (kilobytes on Linux, bytes on macOS).  That is the right guard
semantics anyway: a scan that *ever* exceeded the budget is over
budget, even if the allocator has since returned pages.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass

try:
    import resource
except ImportError:  # non-POSIX platform: RSS budgets become inert
    resource = None


def current_rss_mb() -> float | None:
    """Peak resident-set size of this process in MiB, if measurable."""
    if resource is None:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return peak / (1024 * 1024)
    return peak / 1024


@dataclass(frozen=True)
class ResourceBudget:
    """Limits for one scan; ``None`` disables the corresponding guard."""

    max_seconds: float | None = None
    max_rss_mb: float | None = None

    def __post_init__(self) -> None:
        if self.max_seconds is not None and not self.max_seconds > 0:
            raise ValueError("max_seconds must be positive when set")
        if self.max_rss_mb is not None and not self.max_rss_mb > 0:
            raise ValueError("max_rss_mb must be positive when set")

    def __bool__(self) -> bool:
        return self.max_seconds is not None or self.max_rss_mb is not None


class BudgetMonitor:
    """Heartbeat over one budget: call :meth:`check` between chunks."""

    def __init__(self, budget: ResourceBudget):
        self.budget = budget
        self._start = time.monotonic()

    @property
    def elapsed(self) -> float:
        """Seconds since the monitor started."""
        return time.monotonic() - self._start

    def check(self) -> str | None:
        """A pressure description if any guard tripped, else ``None``."""
        budget = self.budget
        if budget.max_seconds is not None:
            elapsed = self.elapsed
            if elapsed > budget.max_seconds:
                return (
                    f"wall-clock budget exceeded: {elapsed:.1f}s elapsed "
                    f"of {budget.max_seconds:g}s allowed"
                )
        if budget.max_rss_mb is not None:
            rss = current_rss_mb()
            if rss is not None and rss > budget.max_rss_mb:
                return (
                    f"memory budget exceeded: peak RSS {rss:.1f} MiB "
                    f"of {budget.max_rss_mb:g} MiB allowed"
                )
        return None


DEGRADE_POLICIES = ("fail", "shed")


def validate_degrade(policy: str) -> str:
    """Check a ``degrade`` policy name, returning it unchanged."""
    if policy not in DEGRADE_POLICIES:
        raise ValueError(
            f"unknown degrade policy {policy!r}; "
            f"expected one of {', '.join(DEGRADE_POLICIES)}"
        )
    return policy


__all__ = [
    "DEGRADE_POLICIES",
    "BudgetMonitor",
    "ResourceBudget",
    "current_rss_mb",
    "validate_degrade",
]
