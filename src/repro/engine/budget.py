"""Per-scan resource budgets and service-level admission policies.

A long scan on a shared host must not be allowed to grow without bound:
the ROADMAP's production setting hands the engine effectively unbounded
streams, and the operator — not the input — decides how much time and
memory one scan may consume.  A :class:`ResourceBudget` captures those
limits; a :class:`BudgetMonitor` is the heartbeat the durable-scan
driver polls between chunks.  What happens on pressure is policy
(``degrade="fail"`` raises :class:`~repro.errors.BudgetExceededError`;
``"shed"`` quarantines low-weight patterns) and lives with the driver.

The scan service layers one more guard on top: an
:class:`AdmissionPolicy` is the budget a *process full of sessions*
lives under — session count, peak RSS, open file descriptors — checked
at connection admission and by the pressure watchdog.  Pressure is
reported as a structured :class:`BudgetPressure` (which limit, measured
value, threshold) so error context and reject frames can name the
tripped guard instead of shipping an opaque string.

The fleet supervisor (``repro.serve.fleet``) adds the last tier: a
:class:`CircuitBreaker` per tenant gates admission to the *whole pool*.
A tenant whose ruleset keeps failing (compile errors, worker-killing
pathologies) trips its breaker open; while open, the supervisor answers
that tenant's opens with a structured ``retry_after`` instead of
spending a worker — and the fleet's restart budget — on it.  After a
cool-down, exactly one half-open probe is admitted: success closes the
breaker, failure re-opens it with an escalated (capped) cool-down.

RSS comes from ``resource.getrusage`` — stdlib-only, but the peak
(high-water mark), not the current size, and in platform-dependent
units (kilobytes on Linux, bytes on macOS).  That is the right guard
semantics anyway: a scan that *ever* exceeded the budget is over
budget, even if the allocator has since returned pages.  On platforms
without the ``resource`` module (or ``/proc`` for FD counts) the
corresponding guards are inert: :func:`current_rss_mb` /
:func:`current_open_fds` return ``None`` and :meth:`check` skips them.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass

try:
    import resource
except ImportError:  # non-POSIX platform: RSS budgets become inert
    resource = None


def current_rss_mb() -> float | None:
    """Peak resident-set size of this process in MiB, if measurable."""
    if resource is None:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return peak / (1024 * 1024)
    return peak / 1024


def current_open_fds() -> int | None:
    """Open file descriptors of this process, if measurable.

    Counts ``/proc/self/fd`` entries on Linux; returns ``None`` where
    no cheap enumeration exists, making FD caps inert rather than
    wrong.
    """
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:
        return None


@dataclass(frozen=True)
class BudgetPressure:
    """One tripped guard: which limit, what was measured, the bound.

    Stringifies to the human-readable message, so call sites that used
    to receive a ``str`` from :meth:`BudgetMonitor.check` keep working;
    structured consumers read ``limit``/``value``/``threshold`` instead
    of parsing it.
    """

    limit: str  # "max_seconds" | "max_rss_mb" | "max_sessions" | ...
    value: float
    threshold: float
    message: str

    def __str__(self) -> str:
        return self.message


@dataclass(frozen=True)
class ResourceBudget:
    """Limits for one scan; ``None`` disables the corresponding guard."""

    max_seconds: float | None = None
    max_rss_mb: float | None = None

    def __post_init__(self) -> None:
        if self.max_seconds is not None and not self.max_seconds > 0:
            raise ValueError("max_seconds must be positive when set")
        if self.max_rss_mb is not None and not self.max_rss_mb > 0:
            raise ValueError("max_rss_mb must be positive when set")

    def __bool__(self) -> bool:
        return self.max_seconds is not None or self.max_rss_mb is not None


class BudgetMonitor:
    """Heartbeat over one budget: call :meth:`check` between chunks."""

    def __init__(self, budget: ResourceBudget):
        self.budget = budget
        self._start = time.monotonic()

    @property
    def elapsed(self) -> float:
        """Seconds since the monitor started."""
        return time.monotonic() - self._start

    def check(self) -> BudgetPressure | None:
        """The first tripped guard as a :class:`BudgetPressure`, else
        ``None``.  An unmeasurable RSS (no ``resource`` module) never
        trips the guard — an inert limit must not fail a healthy scan.
        """
        budget = self.budget
        if budget.max_seconds is not None:
            elapsed = self.elapsed
            if elapsed > budget.max_seconds:
                return BudgetPressure(
                    limit="max_seconds",
                    value=elapsed,
                    threshold=budget.max_seconds,
                    message=(
                        f"wall-clock budget exceeded: {elapsed:.1f}s elapsed "
                        f"of {budget.max_seconds:g}s allowed"
                    ),
                )
        if budget.max_rss_mb is not None:
            rss = current_rss_mb()
            if rss is not None and rss > budget.max_rss_mb:
                return BudgetPressure(
                    limit="max_rss_mb",
                    value=rss,
                    threshold=budget.max_rss_mb,
                    message=(
                        f"memory budget exceeded: peak RSS {rss:.1f} MiB "
                        f"of {budget.max_rss_mb:g} MiB allowed"
                    ),
                )
        return None


@dataclass(frozen=True)
class AdmissionPolicy:
    """Service-level caps: what a whole worker of sessions may consume.

    ``admit`` is the gate a new connection passes before a session is
    created; ``pressure`` is the watchdog poll that decides whether
    already-admitted sessions must be shed.  The difference: admission
    counts the would-be *next* session (``live + 1 > max_sessions``),
    shedding only reacts to limits the process is already over.
    """

    max_sessions: int | None = None
    max_rss_mb: float | None = None
    max_open_fds: int | None = None

    def __post_init__(self) -> None:
        if self.max_sessions is not None and self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1 when set")
        if self.max_rss_mb is not None and not self.max_rss_mb > 0:
            raise ValueError("max_rss_mb must be positive when set")
        if self.max_open_fds is not None and self.max_open_fds < 1:
            raise ValueError("max_open_fds must be >= 1 when set")

    def __bool__(self) -> bool:
        return (
            self.max_sessions is not None
            or self.max_rss_mb is not None
            or self.max_open_fds is not None
        )

    def admit(self, live_sessions: int) -> BudgetPressure | None:
        """Why one *more* session must be refused, or ``None`` to admit."""
        if (
            self.max_sessions is not None
            and live_sessions + 1 > self.max_sessions
        ):
            return BudgetPressure(
                limit="max_sessions",
                value=live_sessions + 1,
                threshold=self.max_sessions,
                message=(
                    f"session cap reached: {live_sessions} live of "
                    f"{self.max_sessions} allowed"
                ),
            )
        return self.pressure(live_sessions)

    def pressure(self, live_sessions: int) -> BudgetPressure | None:
        """The first over-limit guard for the *current* load, or ``None``."""
        if (
            self.max_sessions is not None
            and live_sessions > self.max_sessions
        ):
            return BudgetPressure(
                limit="max_sessions",
                value=live_sessions,
                threshold=self.max_sessions,
                message=(
                    f"session cap exceeded: {live_sessions} live of "
                    f"{self.max_sessions} allowed"
                ),
            )
        if self.max_rss_mb is not None:
            rss = current_rss_mb()
            if rss is not None and rss > self.max_rss_mb:
                return BudgetPressure(
                    limit="max_rss_mb",
                    value=rss,
                    threshold=self.max_rss_mb,
                    message=(
                        f"memory cap exceeded: peak RSS {rss:.1f} MiB of "
                        f"{self.max_rss_mb:g} MiB allowed"
                    ),
                )
        if self.max_open_fds is not None:
            fds = current_open_fds()
            if fds is not None and fds > self.max_open_fds:
                return BudgetPressure(
                    limit="max_open_fds",
                    value=fds,
                    threshold=self.max_open_fds,
                    message=(
                        f"descriptor cap exceeded: {fds} open of "
                        f"{self.max_open_fds} allowed"
                    ),
                )
        return None


class CircuitBreaker:
    """Closed → open on consecutive failures; half-open probe admission.

    The supervisor calls :meth:`admit` before routing a tenant's open,
    :meth:`record_failure` when the tenant's conversation fails
    (structured error frame, abrupt worker-side loss before any
    terminal frame), and :meth:`record_success` on a ``welcome`` or
    ``result``.  Consecutive-failure semantics mean a tenant that
    interleaves successes never trips — only a ruleset that fails
    *every* attempt does, which is exactly the pathological feed the
    breaker exists to contain.

    ``clock`` is injectable so tests can step time deterministically.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_seconds: float = 1.0,
        cooldown_cap: float = 30.0,
        clock=time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if not cooldown_seconds > 0:
            raise ValueError("cooldown_seconds must be positive")
        if cooldown_cap < cooldown_seconds:
            raise ValueError("cooldown_cap must be >= cooldown_seconds")
        self.failure_threshold = failure_threshold
        self.base_cooldown = cooldown_seconds
        self.cooldown_cap = cooldown_cap
        self._clock = clock
        self.state = self.CLOSED
        self.failures = 0  # consecutive failures while closed
        self.trips = 0  # times the breaker opened (diagnostics)
        self._cooldown = cooldown_seconds
        self._opened_at = 0.0

    def admit(self) -> tuple[bool, float]:
        """``(admitted, retry_after)`` for one attempt right now.

        Closed admits everything (``retry_after`` 0).  Open rejects
        with the remaining cool-down until it elapses, then admits
        exactly one half-open probe; further attempts while the probe
        is in flight are rejected so a reconnect herd cannot stampede
        a recovering tenant.
        """
        if self.state == self.CLOSED:
            return True, 0.0
        if self.state == self.OPEN:
            remaining = self._opened_at + self._cooldown - self._clock()
            if remaining > 0:
                return False, remaining
            self.state = self.HALF_OPEN
            return True, 0.0
        # HALF_OPEN: one probe is already in flight.
        return False, self._cooldown

    def record_success(self) -> None:
        """An attempt succeeded: close and forget the failure history."""
        self.state = self.CLOSED
        self.failures = 0
        self._cooldown = self.base_cooldown

    def record_failure(self) -> None:
        """An attempt failed: count it, trip when the threshold is hit.

        A failed half-open probe re-opens immediately with a doubled
        (capped) cool-down — each failed recovery attempt buys the
        fleet a longer quiet period.
        """
        if self.state == self.HALF_OPEN:
            self._cooldown = min(self.cooldown_cap, self._cooldown * 2)
            self._trip()
            return
        self.failures += 1
        if self.state == self.CLOSED and self.failures >= self.failure_threshold:
            self._trip()

    def abandon_probe(self) -> None:
        """The half-open probe never ran (no worker was available, the
        client walked away): re-open without escalating the cool-down —
        the tenant was not at fault, so the next probe may come as soon
        as the original cool-down allows."""
        if self.state == self.HALF_OPEN:
            self.state = self.OPEN

    def _trip(self) -> None:
        self.state = self.OPEN
        self._opened_at = self._clock()
        self.trips += 1


DEGRADE_POLICIES = ("fail", "shed")


def validate_degrade(policy: str) -> str:
    """Check a ``degrade`` policy name, returning it unchanged."""
    if policy not in DEGRADE_POLICIES:
        raise ValueError(
            f"unknown degrade policy {policy!r}; "
            f"expected one of {', '.join(DEGRADE_POLICIES)}"
        )
    return policy


__all__ = [
    "DEGRADE_POLICIES",
    "AdmissionPolicy",
    "BudgetMonitor",
    "BudgetPressure",
    "CircuitBreaker",
    "ResourceBudget",
    "current_open_fds",
    "current_rss_mb",
    "validate_degrade",
]
