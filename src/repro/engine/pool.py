"""Process-pool plumbing shared by the batch engine and experiments.

``parallel_map`` is the one primitive everything else builds on: an
order-preserving map over worker processes that degrades to a plain
in-process loop for ``jobs <= 1`` (the reference path parallel output
is checked against) or single-item inputs.  Since the fault-tolerance
layer it is a thin raising wrapper over
:func:`repro.engine.supervisor.run_supervised`: units get per-unit
deadlines, bounded retries with backoff, pool respawn on worker
crashes, and an in-process last resort — callers that need per-unit
failure reporting instead of fail-fast semantics use the supervisor
directly.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any, TypeVar

from repro.engine.supervisor import (
    SupervisorConfig,
    effective_jobs,
    run_supervised,
)

__all__ = ["effective_jobs", "parallel_map"]

_Item = TypeVar("_Item")


def parallel_map(
    fn: Callable[[_Item], Any],
    items: Sequence[_Item],
    jobs: int = 1,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
    *,
    finalizer: Callable[[], None] | None = None,
    timeout: float | None = None,
    retries: int = 2,
    backoff: float = 0.05,
    fault_plan=None,
) -> list:
    """``[fn(item) for item in items]``, fanned out over processes.

    Results come back in input order regardless of completion order, so
    output is deterministic.  ``fn`` and every item must be picklable
    (module-level functions and plain data).  Transient failures —
    worker crashes, blown ``timeout`` deadlines, injected faults — are
    retried up to ``retries`` times and, as a last resort, re-run
    in-process; the first *unrecovered* unit error propagates to the
    caller unchanged.  ``finalizer`` undoes any parent-side state the
    ``initializer`` leaves behind on the in-process path.
    """
    outcomes = run_supervised(
        fn,
        items,
        jobs=jobs,
        initializer=initializer,
        initargs=initargs,
        finalizer=finalizer,
        config=SupervisorConfig(timeout=timeout, retries=retries, backoff=backoff),
        fault_plan=fault_plan,
    )
    results = []
    for outcome in outcomes:
        if outcome.error is not None:
            raise outcome.error
        results.append(outcome.result)
    return results
