"""Process-pool plumbing shared by the batch engine and experiments.

``parallel_map`` is the one primitive everything else builds on: an
order-preserving map over a :class:`~concurrent.futures.ProcessPoolExecutor`
that degrades to a plain in-process loop for ``jobs <= 1`` (the reference
path parallel output is checked against) or single-item inputs.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import Any, TypeVar

_Item = TypeVar("_Item")


def effective_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: None/0 means one per CPU."""
    if not jobs or jobs < 1:
        return os.cpu_count() or 1
    return jobs


def parallel_map(
    fn: Callable[[_Item], Any],
    items: Sequence[_Item],
    jobs: int = 1,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
) -> list:
    """``[fn(item) for item in items]``, fanned out over processes.

    Results come back in input order regardless of completion order, so
    output is deterministic.  ``fn`` and every item must be picklable
    (module-level functions and plain data).  Worker exceptions
    propagate to the caller.
    """
    jobs = effective_jobs(jobs)
    if jobs <= 1 or len(items) <= 1:
        if initializer is not None:
            initializer(*initargs)
        return [fn(item) for item in items]
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(items)),
        initializer=initializer,
        initargs=initargs,
    ) as pool:
        return list(pool.map(fn, items))
