"""Input-parallel scanning: one stream, many workers, exact stitching.

Ruleset sharding (:meth:`BatchEngine.scan`'s per-regex/per-bin units)
cannot help when one large stream meets many cores.  This module splits
the *input* instead, using the Simultaneous-Finite-Automata construction
(:mod:`repro.core.sfa`): each worker scans its chunk over the fused
backend from every reachable start configuration, and the parent
composes the per-chunk state mappings associatively, so matches,
wake-ups, and the energy ledger are bit-identical to the serial fused
path.

Each compiled unit rides the cheapest sound mechanism:

* **Lane-packed Shift-And / LNFA bins** — a chunk's
  :class:`~repro.core.sfa.ShiftMap` turns *constant* once the chunk
  outlives the widest member, so evaluating it degenerates to a
  warm-up-window scan from the zero word: single pass, near-linear
  speedup.  Chunks too short for their window replay from the stream
  start instead (exact, merely slower), so any split point is sound.
* **Bounded NFA mask stacks** (acyclic Glushkov automata) — the same
  warm-up argument with window ``longest_activation_path + 1``.
* **Cyclic NFA mask stacks** — no window exists, so chunks build a
  bounded :class:`~repro.core.sfa.FrontierMap` table (round one), the
  parent composes entry states through it, and a second round rescans
  each chunk from its exact entry state.  Frontier tables cost one
  frontier per state bit, so units wider than
  :data:`MAX_FRONTIER_STATES` fall back to one serial whole-stream
  task.
* **DFA-tier tables** — acyclic automata ride the bounded warm-up
  window exactly like NFA mask stacks; cyclic ones use the same
  two-round scheme with a :class:`~repro.core.sfa.StateMap` instead of
  a frontier table.  A DFA chunk mapping is plain function composition
  over at most the state budget, so no serial fallback is ever needed.
* **NBVA counter units** — counter vectors carry unbounded history;
  they always run as serial whole-stream tasks (in parallel with the
  chunk tasks, deduped by functional fingerprint).

The parent merges per-chunk activity in chunk order with the same
associative ``merge`` discipline the ruleset-sharding path uses, then
rebuilds containers in sequential collection order — dict iteration,
match ordering, and every counter equal the serial fused run exactly.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

from repro.automata.nfa import NFASimulator
from repro.compiler.program import CompiledMode, CompiledRuleset
from repro.core import set_default_backend
from repro.core.fused import FusedRuleset
from repro.core.trace import regex_fingerprint
from repro.engine.partition import longest_activation_path, plan_chunks
from repro.engine.pool import parallel_map
from repro.hardware.config import HardwareConfig, TileMode
from repro.mapping.mapper import Mapping
from repro.simulators.activity import (
    BinActivity,
    RegexActivity,
    _bin_layout,
    collect_regex_activity,
)
from repro.simulators.fused import FusedLaneScanner
from repro.simulators.rap import RAPSimulator, RunActivity

# Frontier-map tables cost one frontier per state bit; beyond this width
# a cyclic unit is cheaper as one serial whole-stream task.
MAX_FRONTIER_STATES = 64

# Unit mechanisms (see module docstring).
BOUNDED = "bounded"
FRONTIER = "frontier"
STATEMAP = "statemap"
SERIAL = "serial"


@dataclass(frozen=True)
class SplitLayout:
    """The deterministic split policy of one input-parallel scan.

    Everything the chunk plan depends on — and nothing else — so equal
    layouts guarantee equal seams.  ``token`` is the canonical string
    hashed into durable-scan fingerprints.
    """

    input_jobs: int
    warm: int
    min_owned: int

    @property
    def token(self) -> str:
        return (
            f"split:v1:jobs={self.input_jobs}"
            f":warm={self.warm}:min={self.min_owned}"
        )


class SplitCompilation:
    """One ruleset compiled for input-parallel scanning.

    Deterministic from ``(ruleset, mapping, hw)`` alone, so parent and
    workers build identical compilations from the same pickled seed.
    Mirrors :class:`~repro.simulators.fused.FusedRun`'s unit layout —
    bins in mapping order, NFA units deduped by functional fingerprint
    — and adds the split classification: each NFA unit's mechanism and
    the ruleset-wide warm-up window.
    """

    def __init__(
        self, ruleset: CompiledRuleset, mapping: Mapping, hw: HardwareConfig
    ):
        self.bin_keys: list[tuple[int, int]] = []
        self.bins = []
        self.lnfa_array_indexes: list[int] = []
        layouts = []
        for index, array in enumerate(mapping.arrays):
            if array.mode is not TileMode.LNFA:
                continue
            self.lnfa_array_indexes.append(index)
            for bin_index, bin_obj in enumerate(array.bins):
                self.bin_keys.append((index, bin_index))
                self.bins.append(bin_obj)
                layouts.append(_bin_layout(bin_obj, hw))

        self.nfa_unit_of: dict[object, int] = {}
        nfa_programs = []
        self.unit_kind: list[str] = []
        self.dfa_unit_of: dict[object, int] = {}
        dfa_programs = []
        self.dfa_kind: list[str] = []
        warm = 1
        for compiled in ruleset:
            if compiled.mode not in (CompiledMode.NFA, CompiledMode.DFA):
                continue
            is_dfa = compiled.mode is CompiledMode.DFA
            unit_of = self.dfa_unit_of if is_dfa else self.nfa_unit_of
            key = regex_fingerprint(compiled)
            if key in unit_of:
                continue
            program = NFASimulator(compiled.automaton).program(
                anchored_start=compiled.anchored_start,
                anchored_end=compiled.anchored_end,
            )
            bound = longest_activation_path(compiled.automaton)
            if is_dfa:
                unit_of[key] = len(dfa_programs)
                dfa_programs.append(program)
                # Cyclic DFA units never need a serial fallback: their
                # chunk mapping is a StateMap over ≤ budget states.
                if bound is not None:
                    self.dfa_kind.append(BOUNDED)
                    warm = max(warm, bound + 1)
                else:
                    self.dfa_kind.append(STATEMAP)
                continue
            unit_of[key] = len(nfa_programs)
            nfa_programs.append(program)
            if bound is not None:
                self.unit_kind.append(BOUNDED)
                warm = max(warm, bound + 1)
            elif program.width <= MAX_FRONTIER_STATES:
                self.unit_kind.append(FRONTIER)
            else:
                self.unit_kind.append(SERIAL)
        self.nfa_programs = nfa_programs
        self.dfa_programs = dfa_programs

        # One NBVA scan per distinct functional fingerprint, replicated
        # to every sharing regex at assembly time (exactly FusedRun).
        self.nbva_rep: dict[object, int] = {}
        for compiled in ruleset:
            if compiled.mode in (
                CompiledMode.LNFA,
                CompiledMode.NFA,
                CompiledMode.DFA,
            ):
                continue
            key = regex_fingerprint(compiled)
            if key not in self.nbva_rep:
                self.nbva_rep[key] = compiled.regex_id

        self.fused = FusedRuleset(
            [layout.packed.program for layout in layouts],
            nfa_programs,
            dfa_programs,
        )
        self.scanner = (
            FusedLaneScanner(layouts, self.fused) if layouts else None
        )
        if self.scanner is not None:
            warm = max(warm, self.scanner.warm)
        self.warm = warm

    @property
    def splittable(self) -> bool:
        """Whether any unit benefits from input chunking at all."""
        if self.scanner is not None:
            return True
        if self.dfa_kind:
            return True
        return any(kind is not SERIAL for kind in self.unit_kind)


def split_collect(
    ruleset: CompiledRuleset,
    mapping: Mapping,
    hw: HardwareConfig,
    data: bytes,
    *,
    bin_size: int | None,
    backend: str,
    input_jobs: int,
    jobs: int,
    min_chunk_bytes: int = 4096,
    timeout: float | None = None,
    retries: int = 2,
    backoff: float = 0.05,
    fault_plan: str | None = None,
) -> RunActivity | None:
    """Collect one stream's activity with input-parallel chunking.

    Returns the exact :class:`RunActivity` a serial fused
    ``collect_activities`` would produce, or None when splitting is not
    applicable (stream too short for two chunks, or no chunkable units)
    — the caller then falls back to the serial path.  ``jobs`` sizes
    the worker pool; chunk tasks and serial whole-stream tasks (wide
    cyclic NFAs, NBVA counters) share it.
    """
    comp = SplitCompilation(ruleset, mapping, hw)
    n = len(data)
    layout = SplitLayout(
        input_jobs=input_jobs,
        warm=comp.warm,
        min_owned=max(1, min_chunk_bytes),
    )
    chunks = plan_chunks(n, input_jobs, comp.warm, min_owned=layout.min_owned)
    if len(chunks) <= 1 or not comp.splittable:
        return None

    payload = pickle.dumps(
        (ruleset, data, bin_size, hw, backend),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    last = len(chunks) - 1
    tasks: list[tuple] = [
        (
            "chunk",
            ci,
            chunk.start,
            chunk.end,
            chunk.warm_start,
            ci == last,
        )
        for ci, chunk in enumerate(chunks)
    ]
    for unit, kind in enumerate(comp.unit_kind):
        if kind is SERIAL:
            tasks.append(("serial_nfa", unit))
    for rid in comp.nbva_rep.values():
        tasks.append(("nbva", rid))

    pool = dict(
        jobs=jobs,
        initializer=_init_split_worker,
        initargs=(payload,),
        finalizer=_reset_split_worker,
        timeout=timeout,
        retries=retries,
        backoff=backoff,
        fault_plan=fault_plan,
    )
    outcomes = parallel_map(_split_task, tasks, **pool)

    chunk_out: dict[int, tuple] = {}
    serial_nfa: dict[int, tuple] = {}
    nbva_out: dict[int, RegexActivity] = {}
    for task, outcome in zip(tasks, outcomes):
        if task[0] == "chunk":
            chunk_out[task[1]] = outcome
        elif task[0] == "serial_nfa":
            serial_nfa[task[1]] = outcome
        else:
            nbva_out[task[1]] = outcome

    # Two-round composition: chunk 0 scanned fresh and reported its exit
    # state; later chunks reported their chunk mapping (FrontierMap for
    # cyclic NFA units, StateMap for cyclic DFA units), through which
    # the exact entry state of every chunk is composed — then round two
    # rescans those chunks from their true entries, fully in parallel.
    frontier_units = [
        unit for unit, kind in enumerate(comp.unit_kind) if kind is FRONTIER
    ]
    statemap_units = [
        unit for unit, kind in enumerate(comp.dfa_kind) if kind is STATEMAP
    ]
    frontier_parts: dict[tuple[int, int], tuple] = {}
    dfa_parts: dict[tuple[int, int], tuple] = {}
    if (frontier_units or statemap_units) and len(chunks) > 1:
        entries: dict[int, dict[int, int]] = {ci: {} for ci in range(1, len(chunks))}
        for unit in frontier_units:
            _, _, _, exit_state = chunk_out[0][1][unit]
            state = exit_state
            for ci in range(1, len(chunks)):
                entries[ci][unit] = state
                if ci < last:
                    state = chunk_out[ci][2][unit].apply(state)
        dfa_entries: dict[int, dict[int, int]] = {
            ci: {} for ci in range(1, len(chunks))
        }
        for unit in statemap_units:
            _, _, _, exit_state = chunk_out[0][3][unit]
            state = exit_state
            for ci in range(1, len(chunks)):
                dfa_entries[ci][unit] = state
                if ci < last:
                    state = chunk_out[ci][4][unit].apply(state)
        round_two = [
            (
                "round2",
                ci,
                chunks[ci].start,
                chunks[ci].end,
                ci == last,
                entries[ci],
                dfa_entries[ci],
            )
            for ci in range(1, len(chunks))
        ]
        for (_, ci, *_), result in zip(
            round_two, parallel_map(_split_task, round_two, **pool)
        ):
            nfa_result, dfa_result = result
            for unit, part in nfa_result.items():
                frontier_parts[(unit, ci)] = part
            for unit, part in dfa_result.items():
                dfa_parts[(unit, ci)] = part

    return _assemble(
        comp,
        ruleset,
        chunks,
        chunk_out,
        serial_nfa,
        nbva_out,
        frontier_parts,
        dfa_parts,
        n,
    )


def _assemble(
    comp: SplitCompilation,
    ruleset: CompiledRuleset,
    chunks,
    chunk_out,
    serial_nfa,
    nbva_out,
    frontier_parts,
    dfa_parts,
    n: int,
) -> RunActivity:
    """Fold per-chunk results, in chunk order, into the sequential run's
    exact :class:`RunActivity` (containers in collection order)."""
    order = range(len(chunks))

    # -- NFA units: fold (positions, active, cycles) per chunk ----------
    unit_activity: list[tuple[list[int], int, int]] = []
    for unit, kind in enumerate(comp.unit_kind):
        if kind is SERIAL:
            positions, active, cycles, _ = serial_nfa[unit]
            unit_activity.append((positions, active, cycles))
            continue
        positions: list[int] = []
        active = 0
        cycles = 0
        for ci in order:
            if kind is FRONTIER and ci > 0:
                part = frontier_parts[(unit, ci)]
            else:
                part = chunk_out[ci][1][unit]
            positions.extend(part[0])
            active += part[1]
            cycles += part[2]
        unit_activity.append((positions, active, cycles))

    # -- DFA units: the same fold over table-executed chunks ------------
    dfa_activity: list[tuple[list[int], int, int]] = []
    for unit, kind in enumerate(comp.dfa_kind):
        positions: list[int] = []
        active = 0
        cycles = 0
        for ci in order:
            if kind is STATEMAP and ci > 0:
                part = dfa_parts[(unit, ci)]
            else:
                part = chunk_out[ci][3][unit]
            positions.extend(part[0])
            active += part[1]
            cycles += part[2]
        dfa_activity.append((positions, active, cycles))

    regex: dict[int, RegexActivity] = {}
    from dataclasses import replace

    for compiled in ruleset:
        if compiled.mode is CompiledMode.LNFA:
            continue
        key = regex_fingerprint(compiled)
        if compiled.mode in (CompiledMode.NFA, CompiledMode.DFA):
            positions, active, cycles = (
                unit_activity[comp.nfa_unit_of[key]]
                if compiled.mode is CompiledMode.NFA
                else dfa_activity[comp.dfa_unit_of[key]]
            )
            regex[compiled.regex_id] = RegexActivity(
                regex_id=compiled.regex_id,
                mode=compiled.mode,
                cycles=cycles,
                matches=list(positions),
                active_state_cycles=active,
            )
            continue
        found = nbva_out[comp.nbva_rep[key]]
        regex[compiled.regex_id] = replace(
            found,
            regex_id=compiled.regex_id,
            matches=list(found.matches),
            bv_cycle_indices=list(found.bv_cycle_indices),
        )

    # -- LNFA bins: fold lane deltas per chunk --------------------------
    lnfa_bins: dict[int, list] = {
        index: [] for index in comp.lnfa_array_indexes
    }
    if comp.scanner is not None:
        deltas = [chunk_out[ci][0] for ci in order]
        merged = comp.scanner.merge_deltas(deltas)
        for j, ((index, _), bin_obj) in enumerate(
            zip(comp.bin_keys, comp.bins)
        ):
            matches = {item.regex_id: [] for item in bin_obj.items}
            for rid, ends in merged.matches[j].items():
                matches[rid].extend(ends)
            lnfa_bins[index].append(
                BinActivity(
                    bin=bin_obj,
                    cycles=merged.cycles,
                    matches=matches,
                    tile_active_cycles=merged.tile_cycles[j],
                    tile_active_bits=merged.tile_bits[j],
                )
            )

    return RunActivity(regex=regex, lnfa_bins=lnfa_bins, input_symbols=n)


# -- worker-side functions (module level: picklable by the pool) -----------

_SPLIT_STATE: dict = {}


def _init_split_worker(payload: bytes) -> None:
    """Seed one worker with the scan's shared, deterministic state."""
    ruleset, data, bin_size, hw, backend = pickle.loads(payload)
    set_default_backend(backend)
    mapping = RAPSimulator(hw).build_mapping(ruleset, bin_size=bin_size)
    _SPLIT_STATE["data"] = data
    _SPLIT_STATE["comp"] = SplitCompilation(ruleset, mapping, hw)
    _SPLIT_STATE["regex_by_id"] = {r.regex_id: r for r in ruleset}


def _reset_split_worker() -> None:
    """Clear the worker globals (the in-process fallback seeds the
    parent, which must not pin the stream afterwards)."""
    _SPLIT_STATE.clear()


def _split_task(task: tuple):
    """Execute one split work unit inside a worker."""
    comp: SplitCompilation = _SPLIT_STATE["comp"]
    data: bytes = _SPLIT_STATE["data"]
    kind = task[0]
    if kind == "chunk":
        _, ci, start, end, warm_start, at_end = task
        return _run_chunk(comp, data, ci, start, end, warm_start, at_end)
    if kind == "round2":
        _, ci, start, end, at_end, entries, dfa_entries = task
        tin = comp.fused.translate(data[start:end])
        out = {}
        for unit, entry in entries.items():
            events, stats, exit_state = comp.fused.scan_unit_span(
                unit, tin, state=entry, fresh=False, at_end=at_end
            )
            out[unit] = (
                [start + i for i, _ in events],
                stats.active_states,
                stats.cycles,
                exit_state,
            )
        dfa_out = {}
        for unit, entry in dfa_entries.items():
            events, stats, exit_state = comp.fused.scan_dfa_unit_span(
                unit, tin, state=entry, fresh=False, at_end=at_end
            )
            dfa_out[unit] = (
                [start + i for i, _ in events],
                stats.active_states,
                stats.cycles,
                exit_state,
            )
        return (out, dfa_out)
    if kind == "serial_nfa":
        _, unit = task
        tin = comp.fused.translate(data)
        events, stats, exit_state = comp.fused.scan_unit_span(unit, tin)
        return (
            [i for i, _ in events],
            stats.active_states,
            stats.cycles,
            exit_state,
        )
    _, rid = task  # "nbva"
    return collect_regex_activity(_SPLIT_STATE["regex_by_id"][rid], data)


def _run_chunk(
    comp: SplitCompilation,
    data: bytes,
    ci: int,
    start: int,
    end: int,
    warm_start: int,
    at_end: bool,
):
    """Scan one chunk: lanes plus every non-serial NFA unit.

    ``warm_start == 0`` replays from the true stream start (``fresh``),
    which keeps short-chunk plans exact; otherwise the warm-up window
    guarantees the zero-entry scan equals the sequential state by
    ``start``.  Frontier and statemap units are scanned directly only
    on chunk 0; later chunks return their owned-span chunk mapping
    (FrontierMap / StateMap) for round two.
    """
    tin = comp.fused.translate(data[warm_start:end])
    stats_from = start - warm_start
    fresh = warm_start == 0
    lane = None
    if comp.scanner is not None:
        lane = comp.scanner.scan(
            data[warm_start:end],
            entry=0,
            fresh=fresh,
            at_end=at_end,
            base=warm_start,
            stats_from=stats_from,
            tin=tin,
        )
    nfa_out: dict[int, tuple] = {}
    maps_out: dict[int, object] = {}
    for unit, kind in enumerate(comp.unit_kind):
        if kind is SERIAL:
            continue
        if kind is FRONTIER and ci > 0:
            maps_out[unit] = comp.fused.gather_unit_map(
                unit, tin, start=stats_from
            )
            continue
        events, stats, exit_state = comp.fused.scan_unit_span(
            unit, tin, fresh=fresh, stats_from=stats_from, at_end=at_end
        )
        nfa_out[unit] = (
            [warm_start + i for i, _ in events],
            stats.active_states,
            stats.cycles,
            exit_state,
        )
    dfa_out: dict[int, tuple] = {}
    dfa_maps_out: dict[int, object] = {}
    for unit, kind in enumerate(comp.dfa_kind):
        if kind is STATEMAP and ci > 0:
            dfa_maps_out[unit] = comp.fused.dfa_unit_map(
                unit, tin, start=stats_from
            )
            continue
        events, stats, exit_state = comp.fused.scan_dfa_unit_span(
            unit, tin, fresh=fresh, stats_from=stats_from, at_end=at_end
        )
        dfa_out[unit] = (
            [warm_start + i for i, _ in events],
            stats.active_states,
            stats.cycles,
            exit_state,
        )
    return (lane, nfa_out, maps_out, dfa_out, dfa_maps_out)
