"""Supervised process-pool execution: deadlines, retries, respawn.

``run_supervised`` is the fault-tolerant replacement for a bare
``pool.map``.  Work units are submitted as individual futures and
supervised through three lines of defense:

1. **Per-unit deadlines** — each future is awaited with a timeout
   (head-of-line: the clock starts when the unit reaches the front of
   the collection order, so queued units are not charged for a hung
   predecessor).  A blown deadline becomes a retryable
   :class:`~repro.errors.TaskTimeoutError`; the pool is torn down (hung
   worker processes are terminated) so the stall cannot leak into the
   next round.
2. **Bounded retries with exponential backoff** — failed or timed-out
   units are re-submitted to a fresh pool, up to ``retries`` extra
   attempts, sleeping ``backoff * 2**round`` (capped) between rounds.
   A ``BrokenProcessPool`` marks every unfinished unit as a retryable
   :class:`~repro.errors.WorkerCrashError` and respawns the pool for
   *only the missing units*; completed results are kept.
3. **In-process sequential fallback** — units that exhaust their pool
   retries get one final attempt inline in the parent (no pool, no
   pickling), so a flaky pool can degrade the run to sequential speed
   but never to failure.

Work units must be *pure* (re-running one recomputes the identical
result): the engine's units only collect integer activity, so a merged
result after any combination of retries is bit-identical to a
sequential run.

Deterministic faults (:mod:`repro.engine.faults`) are injected at the
unit-call boundary — in workers via an installed plan, inline via an
explicit plan object — which is how CI exercises every path above.

Failures are *collected*, not raised: each unit ends with a
:class:`UnitOutcome` carrying its result or its final exception plus
the attempt count, leaving policy (fail / skip / quarantine) to the
caller.  Deterministic input errors (``ValueError`` / ``TypeError``,
which includes :class:`~repro.errors.CompileError`) are never retried.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any

from repro.engine import faults
from repro.errors import TaskTimeoutError, WorkerCrashError


def effective_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: None/0 means one per CPU."""
    if not jobs or jobs < 1:
        return os.cpu_count() or 1
    return jobs


@dataclass(frozen=True)
class SupervisorConfig:
    """Retry/deadline knobs for one supervised map."""

    # Per-unit deadline in seconds; None disables deadlines (a hung
    # unit then blocks like a bare pool.map would).
    timeout: float | None = None
    # Extra attempts per unit after the first, across pool rounds.
    retries: int = 2
    # Base backoff between retry rounds; round r sleeps
    # min(backoff * 2**(r-1), backoff_cap).  Deterministic (no jitter).
    backoff: float = 0.05
    backoff_cap: float = 2.0


@dataclass
class UnitOutcome:
    """Terminal state of one work unit after supervision."""

    index: int
    result: Any = None
    error: BaseException | None = None
    attempts: int = 0

    @property
    def ok(self) -> bool:
        """Whether the unit ended with a result."""
        return self.error is None


def run_supervised(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: int = 1,
    *,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
    finalizer: Callable[[], None] | None = None,
    config: SupervisorConfig | None = None,
    fault_plan=None,
) -> list[UnitOutcome]:
    """Supervised order-preserving map; never raises for unit failures.

    Returns one :class:`UnitOutcome` per item, in item order.  ``fn``
    and items must be picklable module-level objects for the pool path;
    ``initializer(*initargs)`` seeds each worker process (and the
    parent, on the in-process path — ``finalizer()`` then undoes any
    parent-side state it left behind).  ``fault_plan`` overrides
    ``RAP_FAULT_PLAN`` (pass ``""`` to force no injection).
    """
    cfg = config or SupervisorConfig()
    plan = faults.resolve_plan(fault_plan)
    items = list(items)
    outcomes = [UnitOutcome(index=i) for i in range(len(items))]
    if not items:
        return outcomes
    jobs = effective_jobs(jobs)
    attempts = [0] * len(items)
    if jobs > 1 and len(items) > 1:
        pending = _run_pooled(
            fn, items, attempts, jobs, initializer, initargs, plan, cfg,
            outcomes,
        )
    else:
        pending = list(range(len(items)))
    if pending:
        _run_inline(
            fn, items, pending, attempts, initializer, initargs, finalizer,
            plan, cfg, outcomes,
        )
    return outcomes


def _retryable(err: BaseException) -> bool:
    """Whether re-running the unit could plausibly change the outcome.

    Deterministic input errors (ValueError/TypeError — including
    CompileError/CapacityError) fail identically every attempt; crashes,
    timeouts, pickling hiccups, and generic runtime errors are retried.
    """
    if isinstance(err, (WorkerCrashError, TaskTimeoutError)):
        return True
    return not isinstance(err, (ValueError, TypeError))


def _backoff_sleep(cfg: SupervisorConfig, round_no: int) -> None:
    if cfg.backoff > 0:
        time.sleep(min(cfg.backoff * (2 ** (round_no - 1)), cfg.backoff_cap))


def _run_pooled(
    fn, items, attempts, jobs, initializer, initargs, plan, cfg, outcomes
) -> list[int]:
    """Pool rounds with respawn; returns indices still worth retrying."""
    pending = list(range(len(items)))
    for round_no in range(cfg.retries + 1):
        if not pending:
            return []
        if round_no:
            _backoff_sleep(cfg, round_no)
        pending = _pool_round(
            fn, items, pending, attempts, jobs, initializer, initargs,
            plan, cfg, outcomes,
        )
    return pending


def _pool_round(
    fn, items, pending, attempts, jobs, initializer, initargs, plan, cfg,
    outcomes,
) -> list[int]:
    """One submit/collect round over a fresh pool.

    Returns the units that failed retryably this round (to re-run);
    non-retryable failures become final outcomes immediately.
    """
    retry: list[int] = []
    degraded = False  # a worker crashed or a unit timed out
    pool = ProcessPoolExecutor(
        max_workers=min(jobs, len(pending)),
        initializer=_init_worker,
        initargs=(plan.spec(), initializer, initargs),
    )
    try:
        futures = []
        for i in pending:
            payload = (fn, i, attempts[i], items[i])
            attempts[i] += 1
            outcomes[i].attempts += 1
            futures.append((i, pool.submit(_call_unit, payload)))
        for i, future in futures:
            try:
                result = future.result(timeout=cfg.timeout)
            except FuturesTimeoutError:
                future.cancel()
                degraded = True
                outcomes[i].error = TaskTimeoutError(
                    f"unit {i} exceeded its {cfg.timeout:g}s deadline "
                    f"(attempt {attempts[i]})",
                    unit=i,
                    attempts=attempts[i],
                    phase="execute",
                )
                retry.append(i)
            except BrokenProcessPool:
                degraded = True
                outcomes[i].error = WorkerCrashError(
                    f"worker crashed with unit {i} in flight "
                    f"(attempt {attempts[i]})",
                    unit=i,
                    attempts=attempts[i],
                    phase="execute",
                )
                retry.append(i)
            except Exception as err:
                outcomes[i].error = err
                if _retryable(err):
                    retry.append(i)
            else:
                outcomes[i].result = result
                outcomes[i].error = None
    finally:
        if degraded:
            # Reclaim hung/orphaned workers: a clean shutdown would
            # join a sleeping process and stall the whole run.
            for process in list(getattr(pool, "_processes", {}).values()):
                process.terminate()
            pool.shutdown(wait=False, cancel_futures=True)
        else:
            pool.shutdown(wait=True)
    return retry


def _run_inline(
    fn, items, indices, attempts, initializer, initargs, finalizer, plan,
    cfg, outcomes,
) -> None:
    """In-process execution with the same retry budget and injection.

    Serves both the ``jobs <= 1`` fast path and the last-resort
    fallback for units the pool could not finish (those get one extra
    attempt beyond their pool budget).  Worker-global state seeded by
    ``initializer`` is scoped: ``finalizer`` runs even on failure so
    nothing leaks into the parent process.
    """
    if initializer is not None:
        initializer(*initargs)
    try:
        for i in indices:
            budget = max(attempts[i] + 1, cfg.retries + 1)
            while attempts[i] < budget:
                attempt = attempts[i]
                attempts[i] += 1
                outcomes[i].attempts += 1
                try:
                    faults.inject_unit(i, attempt, plan=plan, in_process=True)
                    outcomes[i].result = fn(items[i])
                    outcomes[i].error = None
                    break
                except Exception as err:
                    outcomes[i].error = err
                    if not _retryable(err) or attempts[i] >= budget:
                        break
                    _backoff_sleep(cfg, attempts[i])
    finally:
        if finalizer is not None:
            finalizer()


# -- worker-side functions (module level: picklable by the pool) -----------


def _init_worker(plan_spec: str, initializer, initargs) -> None:
    """Install the fault plan, then run the caller's initializer."""
    faults.install_plan(plan_spec)
    if initializer is not None:
        initializer(*initargs)


def _call_unit(payload: tuple):
    """Trampoline: inject any planned fault, then run the unit."""
    fn, index, attempt, item = payload
    faults.inject_unit(index, attempt)
    return fn(item)


__all__ = [
    "SupervisorConfig",
    "UnitOutcome",
    "effective_jobs",
    "run_supervised",
]
