"""Input-stream chunking with overlap-window stitching.

A long stream can be split into chunks and matched in parallel, provided
every chunk is preceded by a *warm-up window* long enough that the
automaton state at the chunk's first owned byte equals the state a
sequential run would have there.  Warm-up bytes drive the state but are
excluded from statistics and match reporting, so summing per-chunk
activity reproduces the sequential run exactly (see
``collect_regex_activity``'s ``stats_from``).

The window is only sound when state memory is bounded:

* **NFA mode** — an active Glushkov position at cycle ``i`` sits at the
  end of an activation chain consuming at most ``longest_path`` edges,
  so it depends on at most the last ``longest_path + 1`` symbols.  A
  cyclic automaton (unbounded repetition) has no such bound.
* **LNFA mode** — a Shift-And bit ``j`` requires the last ``j + 1``
  symbols to have matched, bounded by the sequence length.
* **NBVA mode** — counter vectors carry history across arbitrarily long
  gaps, so chunking is never attempted (``required_overlap`` returns
  None and the engine falls back to sharding work per regex instead).

Anchors also disable chunking: ``^`` must see the true start of data and
``$`` the true end.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.glushkov import Automaton
from repro.compiler.program import CompiledMode, CompiledRuleset


@dataclass(frozen=True)
class Chunk:
    """One chunk of a stream: owned range plus its warm-up prefix."""

    start: int  # first owned byte (global offset)
    end: int  # one past the last owned byte
    warm_start: int  # where the simulated slice begins (<= start)

    @property
    def stats_from(self) -> int:
        """Slice-local index of the first owned byte."""
        return self.start - self.warm_start

    @property
    def owned(self) -> int:
        """Number of bytes this chunk owns."""
        return self.end - self.start


def longest_activation_path(automaton: Automaton) -> int | None:
    """Longest chain of activations in edges, or None if cyclic."""
    n = automaton.state_count
    succ: list[list[int]] = [[] for _ in range(n)]
    indegree = [0] * n
    for edge in automaton.edges:
        succ[edge.src].append(edge.dst)
        indegree[edge.dst] += 1
    # Kahn's algorithm, tracking the longest distance to each node.
    queue = [v for v in range(n) if indegree[v] == 0]
    distance = [0] * n
    seen = 0
    while queue:
        v = queue.pop()
        seen += 1
        for w in succ[v]:
            distance[w] = max(distance[w], distance[v] + 1)
            indegree[w] -= 1
            if indegree[w] == 0:
                queue.append(w)
    if seen != n:
        return None  # cycle: unbounded repetition
    return max(distance, default=0)


def required_overlap(ruleset: CompiledRuleset) -> int | None:
    """The smallest safe warm-up window for a ruleset, in bytes.

    None means the ruleset is not chunkable: some regex has unbounded
    state memory (a cyclic NFA or any NBVA counter) or is anchored.
    """
    worst = 1
    for regex in ruleset:
        if regex.anchored_start or regex.anchored_end:
            return None
        if regex.mode is CompiledMode.LNFA:
            worst = max(worst, max(len(lnfa) for lnfa in regex.lnfas))
            continue
        if regex.mode is CompiledMode.NBVA:
            return None
        assert regex.automaton is not None
        if not regex.automaton.is_plain:
            return None
        bound = longest_activation_path(regex.automaton)
        if bound is None:
            return None
        worst = max(worst, bound + 1)
    return worst


def plan_chunks(
    n: int, pieces: int, overlap: int, min_owned: int = 1
) -> list[Chunk]:
    """Split ``[0, n)`` into up to ``pieces`` contiguous owned ranges.

    Each chunk's simulated slice starts ``overlap`` bytes early (clamped
    at 0).  Chunks own at least ``min_owned`` bytes, so fewer than
    ``pieces`` chunks come back for short streams.  The plan depends
    only on the arguments — never on worker scheduling — so the merge
    order downstream is deterministic.
    """
    if n <= 0:
        return []
    pieces = max(1, min(pieces, n // max(min_owned, 1)) or 1)
    base, extra = divmod(n, pieces)
    chunks: list[Chunk] = []
    start = 0
    for index in range(pieces):
        size = base + (1 if index < extra else 0)
        if size == 0:
            continue
        end = start + size
        chunks.append(
            Chunk(start=start, end=end, warm_start=max(0, start - overlap))
        )
        start = end
    return chunks
