"""Structured exception taxonomy for the whole reproduction.

Every failure the execution layer can recover from (or report on) is an
instance of :class:`ReproError`, carrying machine-readable context —
which pattern, which work unit, how many attempts — so supervisors,
quarantine reports, and the CLI can act on failures without parsing
message strings.

The taxonomy mirrors the failure domains of a production automata
service ingesting adversarial rule feeds:

* :class:`CompileError` — a pattern the compiler cannot lower
  (syntax, unsupported fragment, semantic guard).  Subclasses
  ``ValueError`` so pre-taxonomy ``except ValueError`` call sites keep
  working.
* :class:`CapacityError` — a *well-formed* pattern that exceeds a
  hardware limit (tile columns, one-array state budget, BV width).
  Distinguished from :class:`CompileError` because real rulesets
  (Snort/ClamAV-scale feeds) routinely contain such stragglers and
  deployments quarantine rather than reject the whole feed.
* :class:`WorkerCrashError` — a worker process died (segfault, OOM
  kill, ``os._exit``); the unit may be re-run, the pool respawned.
* :class:`TaskTimeoutError` — a unit exceeded its deadline; subclasses
  ``TimeoutError`` for interoperability.
* :class:`CacheCorruptionError` — an on-disk compile-cache entry failed
  its checksum or failed to deserialize; always recoverable (evict and
  recompile).

Errors are picklable across process boundaries with their context
intact (``__reduce__`` preserves keyword state).
"""

from __future__ import annotations

from dataclasses import dataclass, field


class ReproError(Exception):
    """Base class: a failure with machine-readable context attached.

    ``pattern`` / ``pattern_index`` locate a failing regex inside its
    workload; ``unit`` names the execution work unit (an index or a
    descriptor tuple); ``attempts`` counts how many times a supervisor
    tried the unit before giving up; ``phase`` says where in the
    pipeline the failure happened (``"compile"`` / ``"execute"`` /
    ``"cache"``).
    """

    def __init__(
        self,
        message: str = "",
        *,
        pattern: str | None = None,
        pattern_index: int | None = None,
        unit=None,
        attempts: int | None = None,
        phase: str | None = None,
    ):
        super().__init__(message)
        self.pattern = pattern
        self.pattern_index = pattern_index
        self.unit = unit
        self.attempts = attempts
        self.phase = phase

    def context(self) -> dict:
        """The non-empty context fields, as a plain dict."""
        fields = {
            "pattern": self.pattern,
            "pattern_index": self.pattern_index,
            "unit": self.unit,
            "attempts": self.attempts,
            "phase": self.phase,
        }
        return {k: v for k, v in fields.items() if v is not None}

    def __reduce__(self):
        # Exception's default __reduce__ only replays positional args;
        # carry the keyword context across pickling (worker -> parent).
        return (self.__class__, self.args, self.__dict__)

    def __setstate__(self, state):
        self.__dict__.update(state)


class CompileError(ReproError, ValueError):
    """A regex cannot be compiled for the target hardware."""


class CapacityError(CompileError):
    """A well-formed regex exceeds a hardware capacity limit."""


class WorkerCrashError(ReproError):
    """A worker process died while (or before) executing a unit."""


class TaskTimeoutError(ReproError, TimeoutError):
    """A work unit exceeded its per-unit deadline."""


class CacheCorruptionError(ReproError):
    """An on-disk cache entry failed validation; evicted and recompiled."""


class CheckpointError(ReproError):
    """A checkpoint cannot be used: it belongs to a different scan
    (ruleset/hardware fingerprint or input-prefix mismatch) or is
    structurally unusable beyond the recoverable corrupt-entry path."""


class BudgetExceededError(ReproError):
    """A scan blew its wall-clock or RSS resource budget.

    Raised under the (default) ``degrade="fail"`` policy; under
    ``"shed"`` the budget pressure quarantines low-weight patterns
    instead and the scan finishes partial (exit code 4).  ``limit``
    names the guard that tripped (``"max_seconds"`` / ``"max_rss_mb"``
    / ...) so callers can branch on *which* budget failed without
    parsing the message."""

    def __init__(self, message: str = "", *, limit: str | None = None, **kw):
        super().__init__(message, **kw)
        self.limit = limit

    def context(self) -> dict:
        fields = super().context()
        if self.limit is not None:
            fields["limit"] = self.limit
        return fields


class ServeError(ReproError):
    """A failure in the streaming scan service (``repro.serve``)."""


class ServeConfigError(ServeError, ValueError):
    """An invalid service configuration (bad flag value, port, limit).

    Subclasses ``ValueError`` so generic validation call sites keep
    working, but carries the structured :class:`ReproError` context the
    CLI renders on exit code 2."""


class AdmissionError(ServeError):
    """A connection the service refused to admit (session/RSS/FD cap).

    ``retry_after`` is the server's backoff hint in seconds — the same
    value the wire protocol's reject frame carries."""

    def __init__(
        self,
        message: str = "",
        *,
        retry_after: float | None = None,
        limit: str | None = None,
        **kw,
    ):
        super().__init__(message, **kw)
        self.retry_after = retry_after
        self.limit = limit

    def context(self) -> dict:
        fields = super().context()
        if self.retry_after is not None:
            fields["retry_after"] = self.retry_after
        if self.limit is not None:
            fields["limit"] = self.limit
        return fields


class ProtocolError(ServeError):
    """A malformed, oversized, or out-of-sequence wire frame."""


@dataclass(frozen=True)
class QuarantineEntry:
    """One quarantined pattern or task: what failed, where, and why."""

    phase: str  # "compile" | "execute"
    error: str  # human-readable reason
    error_type: str = "ReproError"  # exception class name
    pattern: str | None = None
    pattern_index: int | None = None
    task_index: int | None = None
    attempts: int | None = None

    def describe(self) -> str:
        """One log line for this entry."""
        where = (
            f"pattern {self.pattern!r}"
            if self.pattern is not None
            else f"task {self.task_index}"
        )
        return f"[{self.phase}] {where}: {self.error_type}: {self.error}"


@dataclass(frozen=True)
class QuarantineReport:
    """The offenders excluded from a batch run under ``on_error`` !=
    ``fail``, returned alongside the healthy results."""

    entries: tuple[QuarantineEntry, ...] = field(default=())

    def __bool__(self) -> bool:
        return bool(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def patterns(self) -> tuple[str, ...]:
        """The quarantined pattern strings (compile-phase offenders)."""
        return tuple(
            e.pattern for e in self.entries if e.pattern is not None
        )

    def by_phase(self, phase: str) -> tuple[QuarantineEntry, ...]:
        """Entries from one pipeline phase."""
        return tuple(e for e in self.entries if e.phase == phase)

    def describe(self) -> str:
        """A multi-line human-readable summary."""
        if not self.entries:
            return "quarantine: empty"
        noun = "entry" if len(self.entries) == 1 else "entries"
        lines = [f"quarantine: {len(self.entries)} {noun}"]
        lines.extend(f"  {entry.describe()}" for entry in self.entries)
        return "\n".join(lines)


ON_ERROR_POLICIES = ("fail", "skip", "quarantine")


def validate_on_error(policy: str) -> str:
    """Check an ``on_error`` policy name, returning it unchanged."""
    if policy not in ON_ERROR_POLICIES:
        raise ValueError(
            f"unknown on_error policy {policy!r}; "
            f"expected one of {', '.join(ON_ERROR_POLICIES)}"
        )
    return policy


__all__ = [
    "ON_ERROR_POLICIES",
    "AdmissionError",
    "BudgetExceededError",
    "CacheCorruptionError",
    "CapacityError",
    "CheckpointError",
    "CompileError",
    "ProtocolError",
    "QuarantineEntry",
    "QuarantineReport",
    "ReproError",
    "ServeConfigError",
    "ServeError",
    "TaskTimeoutError",
    "WorkerCrashError",
    "validate_on_error",
]
