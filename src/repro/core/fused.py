"""Fused ruleset-wide scanning (``RAP_BACKEND=fused``).

The per-pattern kernels in this package step each compiled unit through
its own scan loop with a private 256-entry byte LUT, so on multi-pattern
rule sets the per-unit Python overhead — not the automata math —
dominates wall clock.  Data-parallel regex engines (SFA-style lockstep
execution, the BVAP compressed match tables) recover the lost
throughput with three ruleset-level tricks, and this module implements
all three on top of the NumPy backend:

1. **Alphabet equivalence classes** (:class:`AlphabetClasses`): two
   bytes that every unit's label table treats identically are the same
   symbol.  The shared 256→k class map is computed once per ruleset and
   the input is translated once (one vectorized gather) instead of
   being re-examined per pattern.

2. **Lane packing** (:class:`FusedRuleset`): every Shift-And/LNFA unit
   is concatenated into one wide state word laid out as ``uint64``
   lanes, with per-class label/revival rows forming 2-D ``(k, lanes)``
   matrices.  One pass steps the whole ruleset per input symbol, and
   live state rows are buffered into a ``(block, lanes)`` matrix so
   activity pricing (per-tile popcounts) is vectorized per block
   instead of per cycle.  Plain-NFA units are grouped into class-indexed
   mask stacks and scanned over the shared translated input.

3. **Literal prefiltering**: the classes that can revive an empty
   machine are known at compile time, so cold stretches are skipped by
   jumping between precomputed hot positions — found with
   ``bytes.find`` chains when few distinct byte values are hot, or one
   vectorized LUT pass otherwise.  Both prefilters yield identical
   position streams.

Exactness is the contract: the packed machine evolves each unit's state
word bit-identically to a standalone scan (the cross-unit shift leak is
absorbed exactly as the packed multi-pattern layout absorbs its
internal boundaries), and every counter is priced from per-class
popcounts that equal the per-byte sums by construction.  The
differential suite asserts bit-identity against the ``python`` and
``numpy`` backends.

Only construct :class:`FusedKernel` through
:func:`repro.core.registry.get_kernel`, which falls back to ``numpy``
and then ``python`` when prerequisites are missing.
"""

from __future__ import annotations

import hashlib
import logging
from collections.abc import Callable, Iterable, Sequence

import numpy as np

# The DFA tier's subset construction lives with the automata oracles;
# this module is a lazily-loaded backend leaf, so the upward import does
# not create a cycle (repro.automata never imports repro.core.fused).
from repro.automata.dfa import determinize_classes
from repro.core.kernel import MatchEvent, StepStats
from repro.core.npkernel import NumpyKernel
from repro.core.program import KernelProgram, ProgramKind
from repro.core.registry import (
    DFA_FORMAT_VERSION,
    FUSED_FORMAT_VERSION,
    resolve_backend,
)
from repro.core.sfa import (
    FrontierMap,
    ShiftMap,
    StateMap,
    gather_map_over,
    shift_map_over,
    state_map_over,
)

# Use a `bytes.find` chain when at most this many distinct byte values
# can revive the machine; beyond that one vectorized LUT pass wins.
_PREFILTER_FIND_MAX = 4

# Live state rows are flushed to the stats sink in blocks of this many
# cycles, bounding buffer memory while amortizing the vectorized pricing.
_FLUSH_BLOCK = 4096

log = logging.getLogger(__name__)

if hasattr(np, "bitwise_count"):

    def popcount_words(words: np.ndarray) -> np.ndarray:
        """Elementwise population count of a ``uint64`` array."""
        return np.bitwise_count(words).astype(np.int64)

else:  # pragma: no cover - exercised only on older NumPy
    _POP8 = np.array([bin(v).count("1") for v in range(256)], dtype=np.int64)

    def popcount_words(words: np.ndarray) -> np.ndarray:
        """Elementwise population count of a ``uint64`` array."""
        grouped = words.view(np.uint8).reshape(words.shape + (8,))
        return _POP8[grouped].sum(axis=-1)


def words_from_int(value: int, lanes: int) -> np.ndarray:
    """A non-negative int as ``lanes`` little-endian ``uint64`` words."""
    return np.frombuffer(value.to_bytes(lanes * 8, "little"), dtype=np.uint64)


def int_from_words(words: np.ndarray) -> int:
    """Inverse of :func:`words_from_int`."""
    return int.from_bytes(np.ascontiguousarray(words).tobytes(), "little")


class AlphabetClasses:
    """Shared byte equivalence classes over a set of label tables.

    Two byte values are equivalent iff *every* table maps them to the
    same mask — then no unit in the ruleset can distinguish them, and
    the scan may run over class indices instead of raw bytes.  ``k``
    is the class count (≤ 256), ``class_of`` the 256-entry map, and
    ``representatives`` one canonical byte per class (the smallest).
    """

    __slots__ = ("class_of", "representatives", "k", "np_map")

    def __init__(self, label_tables: Iterable[Sequence[int]]):
        tables = [tuple(table) for table in label_tables]
        signatures: dict[tuple[int, ...], int] = {}
        class_of = []
        representatives: list[int] = []
        for byte in range(256):
            sig = tuple(table[byte] for table in tables)
            cls = signatures.get(sig)
            if cls is None:
                cls = len(representatives)
                signatures[sig] = cls
                representatives.append(byte)
            class_of.append(cls)
        self.class_of: tuple[int, ...] = tuple(class_of)
        self.representatives: tuple[int, ...] = tuple(representatives)
        self.k: int = len(representatives)
        # k ≤ 256 so class indices always fit a byte; uint8 keeps the
        # translated input as compact as the raw one.
        self.np_map = np.array(class_of, dtype=np.uint8)

    def project(self, table: Sequence[int]) -> tuple[int, ...]:
        """A 256-entry table as its k-entry per-class form."""
        return tuple(table[rep] for rep in self.representatives)


class TranslatedSegment:
    """One input segment translated to class indices, shared by every
    unit of the fused ruleset.

    ``cls_bytes`` is the class stream as a ``bytes`` object (fastest
    per-symbol indexing from Python), ``hot_idx`` the ascending
    positions that can revive *any* unit (the union prefilter), and
    ``counts`` the lazy per-class histogram used to price
    ``matched_states`` in one dot product.  ``hot_idx`` may be passed
    as a zero-argument factory, materialized on first use — the native
    backend's compiled kernels do their own cold skipping and never
    touch the Python-side index.
    """

    __slots__ = (
        "data",
        "cls_arr",
        "cls_bytes",
        "k",
        "_hot_factory",
        "_hot_idx",
        "_hot_np",
        "_counts",
    )

    def __init__(self, data: bytes, cls_arr: np.ndarray, k: int, hot_idx):
        self.data = data
        self.cls_arr = cls_arr
        self.cls_bytes = cls_arr.tobytes()
        self.k = k
        if callable(hot_idx):
            self._hot_factory = hot_idx
            self._hot_idx: list[int] | None = None
        else:
            self._hot_factory = None
            self._hot_idx = hot_idx
        self._hot_np: np.ndarray | None = None
        self._counts: np.ndarray | None = None

    @property
    def hot_idx(self) -> list[int]:
        """The union prefilter's hot positions (materialized lazily)."""
        if self._hot_idx is None:
            self._hot_idx = self._hot_factory()
        return self._hot_idx

    @property
    def counts(self) -> np.ndarray:
        """Per-class symbol counts over the whole segment (int64)."""
        if self._counts is None:
            self._counts = np.bincount(
                self.cls_arr, minlength=self.k
            ).astype(np.int64)
        return self._counts

    def counts_from(self, start: int) -> np.ndarray:
        """Per-class symbol counts over ``[start, len)`` (int64).

        ``start`` is the owned-region boundary of a chunked scan: the
        warm-up prefix drives state but is excluded from pricing.
        """
        if start <= 0:
            return self.counts
        return np.bincount(self.cls_arr[start:], minlength=self.k).astype(
            np.int64
        )

    def hot_for(self, hot_cls: np.ndarray) -> list[int]:
        """The union hot positions restricted to one unit's hot classes.

        Every unit's revival classes are a subset of the union the
        prefilter indexed, so filtering (one vectorized gather) is
        position-identical to scanning for that unit's classes directly.
        """
        if self._hot_np is None:
            self._hot_np = np.asarray(self.hot_idx, dtype=np.int64)
        idx = self._hot_np
        if idx.size == 0:
            return []
        return idx[hot_cls[self.cls_arr[idx]]].tolist()


class _GatherUnit:
    """Class-indexed tables for one GATHER (plain NFA) unit."""

    __slots__ = ("program", "labels", "cold", "hot_cls", "pops")

    def __init__(self, program: KernelProgram, classes: AlphabetClasses):
        self.program = program
        self.labels = classes.project(program.labels)
        self.cold = tuple(program.inject_always & m for m in self.labels)
        self.hot_cls = np.fromiter(
            (m != 0 for m in self.cold), dtype=bool, count=classes.k
        )
        self.pops = np.fromiter(
            (m.bit_count() for m in self.labels),
            dtype=np.int64,
            count=classes.k,
        )


class _DfaUnit:
    """Subset-constructed class table for one DFA-tier unit.

    Built from the same GATHER program an NFA scan of the regex would
    execute — the determinization bakes the unanchored restart in, so
    DFA state ``s`` stands for exactly the NFA active set
    ``dfa.subsets[s]`` and every counter the sink prices is recovered
    from that memory (:mod:`repro.automata.dfa`).
    """

    __slots__ = ("program", "labels", "dfa", "hot_cls", "label_pops")

    def __init__(self, program: KernelProgram, classes: AlphabetClasses):
        self.program = program
        self.labels = classes.project(program.labels)
        self.dfa = determinize_classes(
            self.labels,
            program.succ,
            program.inject_always,
            program.final,
        )
        # The revival classes are state 0's live transitions — the same
        # ``inject_always & labels[c]`` masks the gather units index, so
        # the shared union prefilter covers this unit too.
        trans = self.dfa.transitions
        self.hot_cls = np.fromiter(
            (trans[c] != 0 for c in range(classes.k)),
            dtype=bool,
            count=classes.k,
        )
        self.label_pops = np.fromiter(
            (m.bit_count() for m in self.labels),
            dtype=np.int64,
            count=classes.k,
        )


# A stats sink receives each flushed block of live cycles: the segment
# positions (int64) and the matching state rows as a (len, lanes)
# uint64 matrix.
StatsSink = Callable[[np.ndarray, np.ndarray], None]


class FusedRuleset:
    """One ruleset compiled for lockstep execution.

    All SHIFT_LEFT programs (packed LNFA bins, standalone Shift-And
    units) are concatenated into a single wide machine word; GATHER
    programs keep their own state words but share the class-translated
    input and prefilter.  ``dfa_programs`` are GATHER programs executed
    through the DFA tier instead: each is subset-constructed over the
    shared classes into a dense table consuming one lookup per symbol
    (:class:`_DfaUnit`), with the same translated input and prefilter.  The packed machine's per-unit projection
    ``(word >> base) & (2**width - 1)`` evolves bit-identically to a
    standalone scan of that unit: within a SHIFT_LEFT program the low
    bit is only ever set by injection, so a neighbour's top bit leaking
    across the concatenation boundary is either absorbed by the very
    injection that would set it anyway or force-cleared — the same
    absorption argument the packed multi-pattern layout uses for its
    internal pattern boundaries.
    """

    def __init__(
        self,
        shift_programs: Sequence[KernelProgram] = (),
        gather_programs: Sequence[KernelProgram] = (),
        dfa_programs: Sequence[KernelProgram] = (),
    ):
        self._shift = tuple(shift_programs)
        for program in self._shift:
            if program.kind is not ProgramKind.SHIFT_LEFT:
                raise ValueError(
                    "fused lane packing requires SHIFT_LEFT programs, "
                    f"got {program.kind.value}"
                )
        gathers = tuple(gather_programs)
        for program in gathers:
            if program.kind is not ProgramKind.GATHER:
                raise ValueError(
                    "fused mask stacks require GATHER programs, "
                    f"got {program.kind.value}"
                )
        dfas = tuple(dfa_programs)
        for program in dfas:
            # The DFA table bakes unanchored scanning in (every state
            # re-includes the restart injection); anchored programs
            # would need a different construction, and the compiler's
            # eligibility gate never sends them here.
            if program.kind is not ProgramKind.GATHER:
                raise ValueError(
                    "the DFA tier determinizes GATHER programs, "
                    f"got {program.kind.value}"
                )
            if program.inject_first != program.inject_always:
                raise ValueError(
                    "the DFA tier requires unanchored programs "
                    "(inject_first == inject_always)"
                )
            if program.end_anchored_finals:
                raise ValueError(
                    "the DFA tier cannot execute end-anchored finals"
                )

        self.classes = AlphabetClasses(
            [p.labels for p in self._shift]
            + [p.labels for p in gathers]
            + [p.labels for p in dfas]
        )
        k = self.classes.k

        # -- lane-pack the shift programs into one wide word ------------
        bases = []
        offset = 0
        for program in self._shift:
            bases.append(offset)
            offset += program.width
        self.bases: tuple[int, ...] = tuple(bases)
        self.widths: tuple[int, ...] = tuple(p.width for p in self._shift)
        self.width: int = offset
        self.lanes: int = max(1, -(-offset // 64)) if offset else 0
        self._lane_bytes = self.lanes * 8

        inject_first = inject_always = final = end_anchored = clear = 0
        for base, program in zip(self.bases, self._shift):
            inject_first |= program.inject_first << base
            inject_always |= program.inject_always << base
            final |= program.final << base
            end_anchored |= program.end_anchored_finals << base
            clear |= program.clear_after_shift << base
            # The concatenation boundary: the previous unit's top bit
            # shifts onto this unit's bit 0.  Harmless when bit 0 is
            # injected every cycle anyway; otherwise it must be cleared
            # (exact, because a SHIFT_LEFT unit's bit 0 is only ever
            # activated by injection, never by its own shift).
            if not program.inject_always & 1:
                clear |= 1 << base
        self.inject_first = inject_first
        self.inject_always = inject_always
        self.final = final
        self.end_anchored = end_anchored
        self.keep = ~clear

        labels_cls = []
        cold_cls = []
        for rep in self.classes.representatives:
            word = 0
            for base, program in zip(self.bases, self._shift):
                word |= program.labels[rep] << base
            labels_cls.append(word)
            cold_cls.append(inject_always & word)
        self._labels_cls = tuple(labels_cls)
        self._cold_cls = tuple(cold_cls)
        self.lane_hot_cls = np.fromiter(
            (m != 0 for m in cold_cls), dtype=bool, count=k
        )
        # The canonical lane-packed artifacts: per-class label/revival
        # rows as 2-D uint64 matrices (k rows × lanes columns).
        if self.lanes:
            self.labels_matrix = np.vstack(
                [words_from_int(m, self.lanes) for m in labels_cls]
            )
            self.cold_matrix = np.vstack(
                [words_from_int(m, self.lanes) for m in cold_cls]
            )
        else:
            self.labels_matrix = np.zeros((k, 0), dtype=np.uint64)
            self.cold_matrix = np.zeros((k, 0), dtype=np.uint64)

        # -- class-indexed mask stacks for the gather programs ----------
        self._gather = tuple(_GatherUnit(p, self.classes) for p in gathers)

        # -- subset-constructed tables for the DFA-tier programs --------
        self._dfa = tuple(_DfaUnit(p, self.classes) for p in dfas)

        # -- the union prefilter ----------------------------------------
        union_hot = self.lane_hot_cls.copy()
        for unit in self._gather:
            union_hot |= unit.hot_cls
        for unit in self._dfa:
            union_hot |= unit.hot_cls
        self.union_hot_cls = union_hot
        self._hot_lut = union_hot[self.classes.np_map]  # per raw byte
        self._hot_bytes = bytes(np.flatnonzero(self._hot_lut).tolist())

        # -- native-codegen attachment (lazy, silent-fallback) ----------
        # Decided at construction time so pickled copies shipped to
        # worker processes re-attach under the same policy; the compiled
        # library itself is rebuilt (from the .so cache) on first use.
        self._native_requested = resolve_backend() == "native"
        self._native_units = None
        self._native_tried = False

    def __getstate__(self):
        # Compiled-library handles are process-local (dlopen'd shared
        # objects); workers rebuild them lazily from the on-disk cache.
        state = self.__dict__.copy()
        state["_native_units"] = None
        state["_native_tried"] = False
        return state

    def _native_scanner(self):
        """The compiled unit kernels, or None (unrequested/unbuildable).

        Any build or load failure falls back to the interpreted scan —
        results are identical by the bit-identity contract, only speed
        changes — so a missing compiler can never fail a run.
        """
        if not self._native_requested:
            return None
        if not self._native_tried:
            self._native_tried = True
            try:
                from repro.core.native import NativeUnitScanner

                self._native_units = NativeUnitScanner(self)
            except Exception as err:
                log.debug("native unit kernels unavailable: %s", err)
                self._native_units = None
        return self._native_units

    # -- identity -------------------------------------------------------

    @property
    def signature(self) -> str:
        """Digest of the class map and lane layout.

        Cache keys and durable-scan fingerprints embed this so an
        artifact produced under one fusion layout can never be decoded
        under another.
        """
        doc = (
            FUSED_FORMAT_VERSION,
            self.classes.k,
            self.classes.class_of,
            tuple(zip(self.bases, self.widths)),
            tuple(unit.program.width for unit in self._gather),
        )
        if self._dfa:
            # Appended only when DFA units exist so rulesets without the
            # tier keep their pre-DFA signatures byte-for-byte.
            doc = doc + (
                DFA_FORMAT_VERSION,
                tuple(
                    (unit.program.width, unit.dfa.state_count)
                    for unit in self._dfa
                ),
            )
        return hashlib.sha256(repr(doc).encode("ascii")).hexdigest()

    def extract(self, word: int, index: int) -> int:
        """Unit ``index``'s state projected out of the packed word."""
        return (word >> self.bases[index]) & ((1 << self.widths[index]) - 1)

    def pack(self, states: Sequence[int]) -> int:
        """Per-unit state words combined into one packed word."""
        word = 0
        for base, width, state in zip(self.bases, self.widths, states):
            word |= (state & ((1 << width) - 1)) << base
        return word

    # -- translation + prefilter ----------------------------------------

    def translate(self, data: bytes) -> TranslatedSegment:
        """Translate one segment to class indices and prefilter it.

        The prefilter index is lazy: it materializes the first time an
        interpreted scan asks for hot positions, and never does when
        every consumer runs a compiled native kernel.
        """
        arr = np.frombuffer(data, dtype=np.uint8)
        cls_arr = self.classes.np_map[arr]
        return TranslatedSegment(
            data,
            cls_arr,
            self.classes.k,
            lambda: self._hot_positions(data, arr),
        )

    def _hot_positions(self, data: bytes, arr: np.ndarray) -> list[int]:
        hot_bytes = self._hot_bytes
        if not hot_bytes:
            return []
        if len(hot_bytes) <= _PREFILTER_FIND_MAX:
            positions: list[int] = []
            for value in hot_bytes:
                pos = data.find(value)
                while pos != -1:
                    positions.append(pos)
                    pos = data.find(value, pos + 1)
            positions.sort()
            return positions
        return np.flatnonzero(self._hot_lut[arr]).tolist()

    # -- the packed shift machine ---------------------------------------

    def lane_feed(
        self,
        tin: TranslatedSegment,
        state: int,
        *,
        fresh: bool,
        at_end: bool,
        sink: StatsSink,
        block: int = _FLUSH_BLOCK,
        stats_from: int = 0,
    ) -> int:
        """Step the packed machine over one translated segment.

        ``state`` is the packed word after the previous segment
        (``fresh`` marks the true stream start, which receives
        ``inject_first``); the returned word continues the stream.
        Every cycle with a non-empty active set is recorded and flushed
        to ``sink`` in ``(positions, rows)`` blocks for vectorized
        pricing; empty stretches are skipped via the prefilter exactly
        like the per-unit NumPy kernel.  ``at_end`` is accepted for
        symmetry with the segment API — final-hit masking happens in
        the sink, which knows the positions.  ``stats_from`` marks the
        first owned position of a chunked scan: earlier symbols still
        drive the state word (the warm-up window) but are never
        recorded.
        """
        del at_end  # finals are decomposed (and masked) by the sink
        if not self._shift:
            return state
        data = tin.data
        n = len(data)
        if n == 0:
            return state
        cls = tin.cls_bytes
        labels = self._labels_cls
        cold = self._cold_cls
        keep = self.keep
        inject = self.inject_always
        hot_idx = tin.hot_for(self.lane_hot_cls)
        n_hot = len(hot_idx)
        positions: list[int] = []
        rows: list[int] = []
        states = state
        i = 0
        if fresh:
            states = self.inject_first & labels[cls[0]]
            if states and stats_from <= 0:
                positions.append(0)
                rows.append(states)
            i = 1
        k = 0  # monotone cursor into hot_idx (indices only grow)
        while i < n:
            if not states:
                while k < n_hot and hot_idx[k] < i:
                    k += 1
                if k == n_hot:
                    break
                i = hot_idx[k]
                k += 1
                states = cold[cls[i]]
            else:
                states = ((states << 1) & keep | inject) & labels[cls[i]]
            if states and i >= stats_from:
                positions.append(i)
                rows.append(states)
                if len(rows) >= block:
                    self._flush(positions, rows, sink)
                    positions, rows = [], []
            i += 1
        if rows:
            self._flush(positions, rows, sink)
        return states

    def _flush(
        self, positions: list[int], rows: list[int], sink: StatsSink
    ) -> None:
        nbytes = self._lane_bytes
        buf = b"".join(word.to_bytes(nbytes, "little") for word in rows)
        matrix = np.frombuffer(buf, dtype=np.uint64).reshape(
            len(rows), self.lanes
        )
        sink(np.asarray(positions, dtype=np.int64), matrix)

    # -- the gather mask stacks -----------------------------------------

    def scan_unit(
        self, index: int, tin: TranslatedSegment
    ) -> tuple[list[MatchEvent], StepStats]:
        """Scan GATHER unit ``index`` over the shared translated input.

        A class-indexed mirror of :meth:`NumpyKernel.scan`: identical
        events and counters, but the byte LUTs shrink to k entries, the
        prefilter positions are shared, and ``matched_states`` is one
        per-class dot product instead of a 256-entry gather.
        """
        events, stats, _ = self.scan_unit_span(index, tin)
        return events, stats

    def scan_unit_span(
        self,
        index: int,
        tin: TranslatedSegment,
        *,
        state: int = 0,
        fresh: bool = True,
        stats_from: int = 0,
        at_end: bool = True,
    ) -> tuple[list[MatchEvent], StepStats, int]:
        """Scan GATHER unit ``index`` over one span of a longer stream.

        The chunked generalization of :meth:`scan_unit`: ``state`` is
        the active set entering the span (ignored when ``fresh``, which
        marks the true stream start and applies ``inject_first``),
        ``stats_from`` the first owned position (earlier symbols only
        warm the active set up — no events, no counters), and
        ``at_end`` whether the span's last symbol is the stream's last
        (end-anchored finals fire nowhere else).  Returns the events,
        the owned-region counters, and the exit state continuing the
        stream.
        """
        unit = self._gather[index]
        program = unit.program
        data = tin.data
        n = len(data)
        if n == 0:
            return [], StepStats(), state
        native = self._native_scanner()
        if native is not None and native.has_gather(index):
            events, active, exit_state = native.gather_span(
                index,
                tin.cls_bytes,
                state=state,
                fresh=fresh,
                at_end=at_end,
                stats_from=stats_from,
            )
            matched = (
                int(tin.counts_from(stats_from) @ unit.pops)
                if program.track_matched
                else 0
            )
            stats = StepStats(
                cycles=n - max(0, stats_from),
                active_states=active,
                matched_states=matched,
                reports=len(events),
            )
            return events, stats, exit_state
        cls = tin.cls_bytes
        labels = unit.labels
        cold_next = unit.cold
        hot_idx = tin.hot_for(unit.hot_cls)
        n_hot = len(hot_idx)

        succ = program.succ
        final = program.final
        end_anchored = program.end_anchored_finals
        inject = program.inject_always
        last = n - 1
        events: list[MatchEvent] = []
        active = 0
        i = 0
        if fresh:
            states = program.inject_first & labels[cls[0]]
            if states and stats_from <= 0:
                active += states.bit_count()
                hits = states & final
                if hits and not (at_end and last == 0):
                    hits &= ~end_anchored
                if hits:
                    events.append((0, hits))
            i = 1
        else:
            states = state
        k = 0  # monotone cursor into hot_idx (indices only grow)
        while i < n:
            if not states:
                while k < n_hot and hot_idx[k] < i:
                    k += 1
                if k == n_hot:
                    break
                i = hot_idx[k]
                k += 1
                states = cold_next[cls[i]]
            else:
                avail = inject
                a = states
                while a:
                    low = a & -a
                    avail |= succ[low.bit_length() - 1]
                    a ^= low
                states = avail & labels[cls[i]]
            if states and i >= stats_from:
                active += states.bit_count()
                hits = states & final
                if hits:
                    if not (at_end and i == last):
                        hits &= ~end_anchored
                    if hits:
                        events.append((i, hits))
            i += 1
        matched = (
            int(tin.counts_from(stats_from) @ unit.pops)
            if program.track_matched
            else 0
        )
        stats = StepStats(
            cycles=n - max(0, stats_from),
            active_states=active,
            matched_states=matched,
            reports=len(events),
        )
        return events, stats, states

    # -- the DFA-tier tables --------------------------------------------

    def scan_dfa_unit(
        self, index: int, tin: TranslatedSegment
    ) -> tuple[list[MatchEvent], StepStats]:
        """Scan DFA unit ``index`` over the shared translated input."""
        events, stats, _ = self.scan_dfa_unit_span(index, tin)
        return events, stats

    def scan_dfa_unit_span(
        self,
        index: int,
        tin: TranslatedSegment,
        *,
        state: int = 0,
        fresh: bool = True,
        stats_from: int = 0,
        at_end: bool = True,
    ) -> tuple[list[MatchEvent], StepStats, int]:
        """Scan DFA unit ``index`` over one span of a longer stream.

        The deterministic mirror of :meth:`scan_unit_span`: one table
        lookup per symbol replaces the per-state gather union, and the
        subset each state remembers recovers the exact events and
        counters the NFA scan reports.  ``state`` is the DFA state index
        entering the span.  ``fresh`` and ``at_end`` are accepted for
        API symmetry but irrelevant here: the constructor only admits
        unanchored programs, whose first-byte and mid-stream step rules
        coincide (state 0 *is* the fresh start) and which have no
        end-anchored finals to mask.  Returns the events, the
        owned-region counters, and the exit DFA state.
        """
        del fresh, at_end
        unit = self._dfa[index]
        dfa = unit.dfa
        trans = dfa.transitions
        pops = dfa.pops
        final_hits = dfa.final_hits
        kcls = dfa.k
        n = len(tin.data)
        if n == 0:
            return [], StepStats(), state
        native = self._native_scanner()
        if native is not None:
            raw, active, exit_state = native.dfa_span(
                index, tin.cls_bytes, state=state, stats_from=stats_from
            )
            # The C kernel records (position, DFA state); the subset
            # memory decodes each state to its final-position mask,
            # which can exceed 64 bits and so stays on this side.
            events = [(pos, final_hits[s]) for pos, s in raw]
            matched = (
                int(tin.counts_from(stats_from) @ unit.label_pops)
                if unit.program.track_matched
                else 0
            )
            stats = StepStats(
                cycles=n - max(0, stats_from),
                active_states=active,
                matched_states=matched,
                reports=len(events),
            )
            return events, stats, exit_state
        cls = tin.cls_bytes
        hot_idx = tin.hot_for(unit.hot_cls)
        n_hot = len(hot_idx)
        events: list[MatchEvent] = []
        active = 0
        s = state
        i = 0
        cursor = 0  # monotone cursor into hot_idx (indices only grow)
        while i < n:
            if not s:
                while cursor < n_hot and hot_idx[cursor] < i:
                    cursor += 1
                if cursor == n_hot:
                    break
                i = hot_idx[cursor]
                cursor += 1
            s = trans[s * kcls + cls[i]]
            if s and i >= stats_from:
                active += pops[s]
                hits = final_hits[s]
                if hits:
                    events.append((i, hits))
            i += 1
        matched = (
            int(tin.counts_from(stats_from) @ unit.label_pops)
            if unit.program.track_matched
            else 0
        )
        stats = StepStats(
            cycles=n - max(0, stats_from),
            active_states=active,
            matched_states=matched,
            reports=len(events),
        )
        return events, stats, s

    # -- chunk mappings (SFA stitching) ---------------------------------

    def lane_chunk_map(
        self, tin: TranslatedSegment, *, start: int = 0
    ) -> ShiftMap:
        """The packed machine's :class:`ShiftMap` over ``tin[start:]``.

        The mid-stream mapping of the whole lane word; because every
        surviving bit rides the shift chain of its own unit, it turns
        constant within the widest unit's width — the bound the split
        engine's warm-up windows rest on.
        """
        return shift_map_over(
            tin.cls_bytes[start:] if start else tin.cls_bytes,
            self._labels_cls,
            keep=self.keep,
            inject=self.inject_always,
        )

    def gather_unit_map(
        self, index: int, tin: TranslatedSegment, *, start: int = 0
    ) -> FrontierMap:
        """GATHER unit ``index``'s :class:`FrontierMap` over ``tin[start:]``.

        The bounded frontier-function table of one chunk: sound even
        for cyclic units, where no warm-up window exists.
        """
        unit = self._gather[index]
        return gather_map_over(
            tin.cls_bytes[start:] if start else tin.cls_bytes,
            unit.labels,
            unit.program.succ,
            inject=unit.program.inject_always,
            width=unit.program.width,
        )

    def dfa_unit_map(
        self, index: int, tin: TranslatedSegment, *, start: int = 0
    ) -> StateMap:
        """DFA unit ``index``'s :class:`StateMap` over ``tin[start:]``.

        Function composition over at most the DFA's state count — the
        trivially composable form the input-parallel split engine folds
        for cyclic DFA-tier units.
        """
        unit = self._dfa[index]
        dfa = unit.dfa
        return state_map_over(
            tin.cls_bytes[start:] if start else tin.cls_bytes,
            dfa.transitions,
            dfa.k,
            states=dfa.state_count,
        )

    @property
    def gather_count(self) -> int:
        """Number of GATHER units in the fused compilation."""
        return len(self._gather)

    @property
    def dfa_count(self) -> int:
        """Number of DFA-tier units in the fused compilation."""
        return len(self._dfa)

    def dfa_state_count(self, index: int) -> int:
        """Reachable subset count of DFA unit ``index``."""
        return self._dfa[index].dfa.state_count


class FusedKernel(NumpyKernel):
    """The ``fused`` backend tier.

    As a :class:`~repro.core.kernel.StepKernel` it executes single
    programs exactly like :class:`NumpyKernel` (the per-program API is
    inherited unchanged, so it honours the bit-identity contract by
    construction).  The ruleset-wide fusion — shared alphabet classes,
    lane packing, prefiltering — engages one layer up, where the
    simulator and engine hand whole rulesets to :class:`FusedRuleset`.
    """

    name = "fused"
