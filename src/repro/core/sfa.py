"""Simultaneous-automata chunk mappings (SFA stitching).

Sin'ya & Matsuzaki's *Simultaneous Finite Automata* parallelize a
single-stream scan by having each worker scan its chunk from **every**
possible start state at once.  The chunk then denotes a *state-mapping
function*, and mapping composition is associative, so the parent can
fold per-chunk mappings in chunk order and recover the exact state a
sequential scan would have had at every seam.

Both step rules of :mod:`repro.core.program` are OR-affine over the
Boolean semiring — ``step(s) = linear(s) | constant`` with ``linear``
distributing over union — so a chunk's mapping has a closed form and
composes in O(width) instead of O(2^width):

* **SHIFT_LEFT** (Shift-And lanes, packed LNFA bins).  One step is
  ``s ↦ (((s << 1) & keep) | inject) & label``, so an m-symbol chunk
  maps ``s ↦ ((s << m) & survive) | cold``: a diagonal shift masked by
  one ``survive`` word (which symbols let an entry bit ride through)
  plus the entry-independent ``cold`` scan.  :class:`ShiftMap` carries
  ``(length, survive, cold)``.  Because every surviving bit must ride
  the shift chain, ``survive`` decays to zero within the machine's
  width: any chunk at least ``width`` symbols long denotes a *constant*
  mapping, which is why the engine can evaluate it with a plain
  warm-up-window scan instead of a table.

* **GATHER** (Glushkov NFA mask stacks).  One step is
  ``s ↦ (inject | ⋃_{b∈s} succ[b]) & label``; the union over active
  bits distributes, so an m-symbol chunk maps
  ``s ↦ (⋃_{j∈s} images[j]) | cold`` — one frontier image per start
  bit plus the cold scan.  :class:`FrontierMap` carries the image
  table; it stays sound for *cyclic* automata, where no warm-up window
  exists, at a build cost of one frontier per state bit.

* **DFA tables** (the subset-constructed execution tier).  A DFA state
  is a single small integer, so a chunk's mapping is just a function
  over ≤ ``dfa_state_budget`` states: :class:`StateMap` carries the
  table and composes by plain indexing.  Because composition can only
  merge states, the builder tracks the shrinking set of *distinct*
  images and pays the full table width only when a merge happens —
  after the warm region most chunks collapse to a constant map.

Everything here is pure ``int`` bitset algebra — no NumPy — so the
same maps drive both the raw per-program kernels and the fused
class-translated machine (which passes its class-projected tables to
the ``*_map_over`` builders).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.program import KernelProgram, ProgramKind

__all__ = [
    "FrontierMap",
    "ShiftMap",
    "StateMap",
    "frontier_identity",
    "gather_chunk_map",
    "gather_map_over",
    "shift_chunk_map",
    "shift_identity",
    "shift_map_over",
    "state_identity",
    "state_map_over",
]


@dataclass(frozen=True)
class ShiftMap:
    """The state mapping of one SHIFT_LEFT chunk.

    ``apply(s) = ((s << length) & survive) | cold``.  ``survive`` has
    its low ``length`` bits clear by construction (an entry bit must
    shift once per symbol), which is what makes :func:`shift_identity`
    (``survive = -1``, Python's all-ones integer) a two-sided identity
    under :meth:`then`.
    """

    length: int
    survive: int
    cold: int

    def apply(self, state: int) -> int:
        """The exit state for entry state ``state``."""
        return ((state << self.length) & self.survive) | self.cold

    def then(self, later: "ShiftMap") -> "ShiftMap":
        """The mapping of this chunk followed by ``later`` (associative)."""
        return ShiftMap(
            length=self.length + later.length,
            survive=(self.survive << later.length) & later.survive,
            cold=((self.cold << later.length) & later.survive) | later.cold,
        )

    @property
    def constant(self) -> bool:
        """Whether the mapping ignores its entry state entirely."""
        return self.survive == 0


def shift_identity() -> ShiftMap:
    """The mapping of the empty chunk."""
    return ShiftMap(length=0, survive=-1, cold=0)


def shift_map_over(
    symbols: Iterable[int],
    labels: Sequence[int],
    *,
    keep: int = -1,
    inject: int = 0,
) -> ShiftMap:
    """The :class:`ShiftMap` of one symbol sequence.

    ``labels`` is indexed by symbol (raw bytes or fused class indices),
    ``keep`` masks bits force-cleared after the shift, and ``inject``
    is the per-cycle injection word.  Mirrors the mid-stream step rule
    — the true stream start (``inject_first``) needs no mapping, since
    its entry state is known.
    """
    length = 0
    survive = -1
    cold = 0
    for symbol in symbols:
        label = labels[symbol]
        survive = ((survive << 1) & keep) & label
        cold = (((cold << 1) & keep) | inject) & label
        length += 1
    return ShiftMap(length=length, survive=survive, cold=cold)


def shift_chunk_map(program: KernelProgram, data: bytes) -> ShiftMap:
    """The mapping of ``data`` under one SHIFT_LEFT kernel program."""
    if program.kind is not ProgramKind.SHIFT_LEFT:
        raise ValueError(
            f"shift maps require SHIFT_LEFT programs, got {program.kind.value}"
        )
    return shift_map_over(
        data,
        program.labels,
        keep=~program.clear_after_shift,
        inject=program.inject_always,
    )


@dataclass(frozen=True)
class FrontierMap:
    """The state mapping of one GATHER chunk.

    ``images[j]`` is the exit frontier seeded by entry bit ``j`` alone
    (injection excluded — it is entry-independent and lives in
    ``cold``), so ``apply(s) = (⋃_{j∈s} images[j]) | cold``.
    """

    length: int
    images: tuple[int, ...]
    cold: int

    @property
    def width(self) -> int:
        """State bits of the underlying program."""
        return len(self.images)

    def lin(self, state: int) -> int:
        """The linear part: image of ``state`` without the cold scan."""
        out = 0
        images = self.images
        while state:
            low = state & -state
            out |= images[low.bit_length() - 1]
            state ^= low
        return out

    def apply(self, state: int) -> int:
        """The exit state for entry state ``state``."""
        return self.lin(state) | self.cold

    def then(self, later: "FrontierMap") -> "FrontierMap":
        """The mapping of this chunk followed by ``later`` (associative)."""
        if len(self.images) != len(later.images):
            raise ValueError("cannot compose frontier maps of different widths")
        return FrontierMap(
            length=self.length + later.length,
            images=tuple(later.lin(image) for image in self.images),
            cold=later.apply(self.cold),
        )


def frontier_identity(width: int) -> FrontierMap:
    """The mapping of the empty chunk over ``width`` state bits."""
    return FrontierMap(
        length=0, images=tuple(1 << j for j in range(width)), cold=0
    )


def gather_map_over(
    symbols: Iterable[int],
    labels: Sequence[int],
    succ: Sequence[int],
    *,
    inject: int = 0,
    width: int | None = None,
) -> FrontierMap:
    """The :class:`FrontierMap` of one symbol sequence.

    ``labels`` is indexed by symbol, ``succ[b]`` gathers the successors
    of state bit ``b``, and ``inject`` is the per-cycle injection word
    (mid-stream rule, as in :func:`shift_map_over`).  Dead frontiers
    stay dead — the inner union is skipped for them — so the build cost
    tracks how long entry bits actually survive, not the worst case.
    """
    if width is None:
        width = len(succ)
    length = 0
    images = [1 << j for j in range(width)]
    cold = 0
    for symbol in symbols:
        label = labels[symbol]
        for j in range(width):
            frontier = images[j]
            if not frontier:
                continue
            gathered = 0
            while frontier:
                low = frontier & -frontier
                gathered |= succ[low.bit_length() - 1]
                frontier ^= low
            images[j] = gathered & label
        gathered = inject
        frontier = cold
        while frontier:
            low = frontier & -frontier
            gathered |= succ[low.bit_length() - 1]
            frontier ^= low
        cold = gathered & label
        length += 1
    return FrontierMap(length=length, images=tuple(images), cold=cold)


@dataclass(frozen=True)
class StateMap:
    """The state mapping of one chunk under a deterministic table.

    ``table[s]`` is the exit state for entry state ``s`` — the trivially
    composable form every DFA-tier unit enjoys: ``then`` is one indexed
    gather over at most the DFA's state count, with no bitset algebra at
    all.
    """

    length: int
    table: tuple[int, ...]

    @property
    def width(self) -> int:
        """Number of DFA states the mapping is defined over."""
        return len(self.table)

    def apply(self, state: int) -> int:
        """The exit state for entry state ``state``."""
        return self.table[state]

    def then(self, later: "StateMap") -> "StateMap":
        """The mapping of this chunk followed by ``later`` (associative)."""
        if len(self.table) != len(later.table):
            raise ValueError("cannot compose state maps of different widths")
        return StateMap(
            length=self.length + later.length,
            table=tuple(later.table[t] for t in self.table),
        )

    @property
    def constant(self) -> bool:
        """Whether the mapping ignores its entry state entirely."""
        return len(set(self.table)) <= 1


def state_identity(states: int) -> StateMap:
    """The mapping of the empty chunk over ``states`` DFA states."""
    return StateMap(length=0, table=tuple(range(states)))


def state_map_over(
    symbols: Iterable[int],
    transitions: Sequence[int],
    k: int,
    *,
    states: int,
) -> StateMap:
    """The :class:`StateMap` of one symbol sequence over a dense table.

    ``transitions[s * k + c]`` is the DFA step (``symbols`` are raw
    bytes or fused class indices).  Deterministic composition can only
    merge entry states, so the distinct-image set shrinks monotonically:
    each symbol steps only the surviving distinct values, and the full
    ``states``-wide slot table is rewritten just when a merge happens
    (at most ``states - 1`` times over any sequence).
    """
    # entry s currently maps to values[slot[s]]
    slot = list(range(states))
    values = list(range(states))
    length = 0
    for symbol in symbols:
        base = symbol
        new_values = [transitions[v * k + base] for v in values]
        seen: dict[int, int] = {}
        remap: list[int] = []
        merged: list[int] = []
        for value in new_values:
            j = seen.get(value)
            if j is None:
                j = len(merged)
                seen[value] = j
                merged.append(value)
            remap.append(j)
        if len(merged) != len(values):
            slot = [remap[j] for j in slot]
            values = merged
        else:
            values = new_values
        length += 1
    return StateMap(length=length, table=tuple(values[j] for j in slot))


def gather_chunk_map(program: KernelProgram, data: bytes) -> FrontierMap:
    """The mapping of ``data`` under one GATHER kernel program."""
    if program.kind is not ProgramKind.GATHER:
        raise ValueError(
            f"frontier maps require GATHER programs, got {program.kind.value}"
        )
    assert program.succ is not None
    return gather_map_over(
        data,
        program.labels,
        program.succ,
        inject=program.inject_always,
        width=program.width,
    )
