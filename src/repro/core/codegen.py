"""C source emission for the ``native`` backend.

Each compiled ruleset becomes its *own* C translation unit: the lane
count is a compile-time constant, per-class label/revival rows and tile
masks are baked in as ``static const`` arrays, gather units carry their
successor tables inline, and DFA-tier units become flat
``next[state][class]`` tables.  The emitted loops are line-for-line
mirrors of the interpreted scans in :mod:`repro.core.fused` — same hot
skip, same warm-up (``stats_from``) gating, same end-anchored masking —
so the bit-identity contract holds by construction rather than by
translation-layer luck.

Two translation units per ruleset:

* :func:`lane_scan_source` — the lane-packed SHIFT_LEFT machine plus
  per-tile wake-up accounting and final-hit extraction (the whole
  :meth:`~repro.simulators.fused.FusedLaneScanner.scan` hot path).
* :func:`unit_scan_source` — one function per GATHER unit whose state
  word fits 64 bits, and one per DFA-tier unit.  Wider gather units
  keep the interpreted path (identical results, just slower).

Every source begins with a header naming
:data:`~repro.core.registry.NATIVE_FORMAT_VERSION`, so the SHA-256 of
the source text — the shared-object cache key — rolls over whenever the
ABI or the emitted semantics change.

Match events cross the ABI as bounded ``(position, word)`` buffers with
a continuation protocol: when a buffer fills the kernel returns 1 with
the resume index and the exit state, the caller drains and re-enters.
Counters (tile cycles/bits, active-state sums) accumulate in caller
memory across continuations, so the drained stream is identical to an
unbounded one.

This module only *writes* C; building and loading live in
:mod:`repro.core.native`.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.registry import NATIVE_FORMAT_VERSION

# GATHER units wider than one machine word stay on the interpreted
# path: the per-bit successor walk no longer fits a single uint64.
GATHER_NATIVE_MAX_WIDTH = 64

# Bounded event buffers (entries) between continuation returns.
HIT_BUFFER_ENTRIES = 4096


def _u64(value: int) -> str:
    return f"0x{value & 0xFFFFFFFFFFFFFFFF:016x}ULL"


def _words(value: int, lanes: int) -> list[int]:
    """A (possibly huge) Python int as little-endian 64-bit words."""
    return [(value >> (64 * w)) & 0xFFFFFFFFFFFFFFFF for w in range(lanes)]


def _u64_array(name: str, values: Iterable[int]) -> str:
    body = ", ".join(_u64(v) for v in values)
    return f"static const uint64_t {name}[] = {{ {body} }};"


def _u64_matrix(name: str, rows: Sequence[Sequence[int]], lanes: int) -> str:
    lines = [f"static const uint64_t {name}[][{lanes}] = {{"]
    for row in rows:
        lines.append("  { " + ", ".join(_u64(v) for v in row) + " },")
    lines.append("};")
    return "\n".join(lines)


def _u8_array(name: str, values: Iterable[int]) -> str:
    body = ", ".join(str(int(v) & 0xFF) for v in values)
    return f"static const uint8_t {name}[] = {{ {body} }};"


def _i64_array(name: str, values: Iterable[int]) -> str:
    body = ", ".join(f"{int(v)}LL" for v in values)
    return f"static const long long {name}[] = {{ {body} }};"


def _i32_array(name: str, values: Iterable[int]) -> str:
    body = ", ".join(str(int(v)) for v in values)
    return f"static const int32_t {name}[] = {{ {body} }};"


def _header(kind: str, layout_digest: str) -> str:
    return (
        f"/* rap native kernel: {kind}\n"
        f" * native_format_version: {NATIVE_FORMAT_VERSION}\n"
        f" * layout: {layout_digest}\n"
        " * generated; do not edit.\n"
        " */\n"
        "#include <stdint.h>\n"
        "#define POP(x) ((long long)__builtin_popcountll(x))\n"
    )


# -- the lane-packed machine --------------------------------------------------

LANE_CDEF = (
    "int rap_lane_scan(const uint8_t *cls, long long n, long long start_i,\n"
    "    uint64_t *state, int fresh, int at_end, long long stats_from,\n"
    "    long long *tile_cycles, long long *tile_bits,\n"
    "    long long *hit_pos, uint64_t *hit_words, long long hit_cap,\n"
    "    long long *n_hits, long long *resume_i);"
)


def lane_scan_source(fused, tile_rows: Sequence[Sequence[int]]) -> str:
    """The C mirror of ``lane_feed`` + the scanner's stats sink.

    ``fused`` is a :class:`~repro.core.fused.FusedRuleset` with at least
    one SHIFT_LEFT program; ``tile_rows`` the scanner's flattened
    (bin, tile) full-width masks, each already expressed as ``lanes``
    little-endian 64-bit words.  Positions with a live packed word feed
    per-tile cycle/bit counters; final hits are emitted as
    ``(position, word)`` pairs with end-anchored finals already masked,
    exactly as the interpreted sink computes them.
    """
    lanes = fused.lanes
    if lanes <= 0:
        raise ValueError("lane codegen requires at least one shift program")
    k = fused.classes.k
    tiles = [list(row) for row in tile_rows]

    parts = [_header("lane machine", fused.signature)]
    parts.append(f"#define LANES {lanes}")
    parts.append(f"#define NCLS {k}")
    parts.append(
        _u64_matrix(
            "LABELS",
            [_words(m, lanes) for m in fused._labels_cls],
            lanes,
        )
    )
    parts.append(
        _u64_matrix(
            "COLD", [_words(m, lanes) for m in fused._cold_cls], lanes
        )
    )
    parts.append(_u64_array("KEEP", _words(fused.keep, lanes)))
    parts.append(_u64_array("INJECT", _words(fused.inject_always, lanes)))
    parts.append(_u64_array("INJECT_FIRST", _words(fused.inject_first, lanes)))
    parts.append(_u64_array("FINAL", _words(fused.final, lanes)))
    parts.append(
        _u64_array("END_ANCH", _words(fused.end_anchored, lanes))
    )
    parts.append(
        _u8_array("HOT", (1 if h else 0 for h in fused.lane_hot_cls))
    )

    # Per-tile stats, fully unrolled over only the lanes the tile's mask
    # touches (tile masks are narrow slices of the packed word).
    tile_stats: list[str] = []
    for m, row in enumerate(tiles):
        live = [(w, v) for w, v in enumerate(row) if v]
        if not live:
            continue
        block = ["      { uint64_t acc = 0; long long bits = 0; uint64_t x;"]
        for w, v in live:
            block.append(
                f"        x = s[{w}] & {_u64(v)}; acc |= x; bits += POP(x);"
            )
        block.append(
            f"        if (acc) {{ tile_cycles[{m}]++; "
            f"tile_bits[{m}] += bits; }} }}"
        )
        tile_stats.append("\n".join(block))
    tile_stats_code = "\n".join(tile_stats)

    step_lines = []
    step_lines.append("        uint64_t carry = 0, ns; any = 0;")
    for w in range(lanes):
        step_lines.append(
            f"        ns = (s[{w}] << 1) | carry; carry = s[{w}] >> 63;\n"
            f"        ns = ((ns & KEEP[{w}]) | INJECT[{w}]) "
            f"& LABELS[c][{w}]; s[{w}] = ns; any |= ns;"
        )
    step_code = "\n".join(step_lines)

    cold_load = "\n".join(
        f"        s[{w}] = COLD[c][{w}]; any |= s[{w}];"
        for w in range(lanes)
    )
    fresh_load = "\n".join(
        f"      s[{w}] = INJECT_FIRST[{w}] & LABELS[c][{w}]; any |= s[{w}];"
        for w in range(lanes)
    )
    hit_load = "\n".join(
        f"      h[{w}] = s[{w}] & FINAL[{w}]; hany |= h[{w}];"
        for w in range(lanes)
    )
    hit_mask = "\n".join(
        f"        h[{w}] &= ~END_ANCH[{w}]; hany |= h[{w}];"
        for w in range(lanes)
    )
    hit_store = "\n".join(
        f"        hit_words[nh * LANES + {w}] = h[{w}];"
        for w in range(lanes)
    )
    state_out = "\n".join(
        f"  state[{w}] = s[{w}];" for w in range(lanes)
    )
    state_in = "\n".join(
        f"  s[{w}] = state[{w}]; any |= s[{w}];" for w in range(lanes)
    )

    parts.append(
        f"""
{LANE_CDEF[:-1]}
{{
  long long i = start_i, last = n - 1, nh = 0;
  uint64_t s[LANES], any = 0;
{state_in}
  if (fresh && i == 0 && n > 0) {{
    int c = cls[0];
    any = 0;
{fresh_load}
    if (any && stats_from <= 0) {{
      uint64_t h[LANES], hany = 0;
{hit_load}
      if (hany && !(at_end && last == 0)) {{
        hany = 0;
{hit_mask}
      }}
{tile_stats_code}
      if (hany) {{
        hit_pos[nh] = 0;
{hit_store}
        nh++;
      }}
    }}
    i = 1;
  }}
  while (i < n) {{
    int c;
    if (!any) {{
      while (i < n && !HOT[cls[i]]) i++;
      if (i >= n) break;
      c = cls[i];
{cold_load}
    }} else {{
      c = cls[i];
{step_code}
    }}
    if (any && i >= stats_from) {{
{tile_stats_code}
      uint64_t h[LANES], hany = 0;
{hit_load}
      if (hany) {{
        if (!(at_end && i == last)) {{
          hany = 0;
{hit_mask}
        }}
        if (hany) {{
          hit_pos[nh] = i;
{hit_store}
          nh++;
          if (nh >= hit_cap) {{
{state_out}
            *n_hits = nh; *resume_i = i + 1; return 1;
          }}
        }}
      }}
    }}
    i++;
  }}
{state_out}
  *n_hits = nh; *resume_i = n; return 0;
}}
"""
    )
    return "\n".join(parts)


# -- GATHER + DFA units -------------------------------------------------------


def gather_cdef(index: int) -> str:
    return (
        f"int rap_gather_scan_{index}(const uint8_t *cls, long long n,\n"
        "    long long start_i, uint64_t *state, int fresh, int at_end,\n"
        "    long long stats_from, long long *active,\n"
        "    long long *ev_pos, uint64_t *ev_word, long long cap,\n"
        "    long long *n_ev, long long *resume_i);"
    )


def dfa_cdef(index: int) -> str:
    return (
        f"int rap_dfa_scan_{index}(const uint8_t *cls, long long n,\n"
        "    long long start_i, int32_t *state, long long stats_from,\n"
        "    long long *active, long long *ev_pos, int32_t *ev_state,\n"
        "    long long cap, long long *n_ev, long long *resume_i);"
    )


def native_gather_indices(fused) -> tuple[int, ...]:
    """The GATHER units narrow enough for the single-word C kernel."""
    return tuple(
        j
        for j in range(fused.gather_count)
        if fused._gather[j].program.width <= GATHER_NATIVE_MAX_WIDTH
    )


def _gather_function(fused, index: int) -> str:
    unit = fused._gather[index]
    program = unit.program
    p = f"G{index}"
    parts = [
        _u64_array(f"{p}_LABELS", unit.labels),
        _u64_array(f"{p}_COLD", unit.cold),
        _u64_array(f"{p}_SUCC", program.succ),
        _u8_array(f"{p}_HOT", (1 if h else 0 for h in unit.hot_cls)),
    ]
    parts.append(
        f"""
{gather_cdef(index)[:-1]}
{{
  const uint64_t FINALW = {_u64(program.final)};
  const uint64_t ENDA = {_u64(program.end_anchored_finals)};
  const uint64_t INJ = {_u64(program.inject_always)};
  const uint64_t INJF = {_u64(program.inject_first)};
  long long i = start_i, last = n - 1, ne = 0, act = 0;
  uint64_t s = *state;
  if (fresh && i == 0 && n > 0) {{
    s = INJF & {p}_LABELS[cls[0]];
    if (s && stats_from <= 0) {{
      act += POP(s);
      uint64_t hits = s & FINALW;
      if (hits && !(at_end && last == 0)) hits &= ~ENDA;
      if (hits) {{ ev_pos[ne] = 0; ev_word[ne] = hits; ne++; }}
    }}
    i = 1;
  }}
  while (i < n) {{
    if (!s) {{
      while (i < n && !{p}_HOT[cls[i]]) i++;
      if (i >= n) break;
      s = {p}_COLD[cls[i]];
    }} else {{
      uint64_t avail = INJ, a = s;
      while (a) {{
        avail |= {p}_SUCC[__builtin_ctzll(a)];
        a &= a - 1;
      }}
      s = avail & {p}_LABELS[cls[i]];
    }}
    if (s && i >= stats_from) {{
      act += POP(s);
      uint64_t hits = s & FINALW;
      if (hits) {{
        if (!(at_end && i == last)) hits &= ~ENDA;
        if (hits) {{
          ev_pos[ne] = i; ev_word[ne] = hits; ne++;
          if (ne >= cap) {{
            *state = s; *active += act;
            *n_ev = ne; *resume_i = i + 1; return 1;
          }}
        }}
      }}
    }}
    i++;
  }}
  *state = s; *active += act; *n_ev = ne; *resume_i = n; return 0;
}}
"""
    )
    return "\n".join(parts)


def _dfa_function(fused, index: int) -> str:
    unit = fused._dfa[index]
    dfa = unit.dfa
    p = f"D{index}"
    parts = [
        f"#define {p}_K {dfa.k}",
        _i32_array(f"{p}_TRANS", dfa.transitions),
        _i64_array(f"{p}_POPS", dfa.pops),
        _u8_array(f"{p}_HOT", (1 if h else 0 for h in unit.hot_cls)),
        _u8_array(f"{p}_HASHIT", (1 if m else 0 for m in dfa.final_hits)),
    ]
    parts.append(
        f"""
{dfa_cdef(index)[:-1]}
{{
  long long i = start_i, ne = 0, act = 0;
  int32_t s = *state;
  while (i < n) {{
    if (!s) {{
      while (i < n && !{p}_HOT[cls[i]]) i++;
      if (i >= n) break;
    }}
    s = {p}_TRANS[(long long)s * {p}_K + cls[i]];
    if (s && i >= stats_from) {{
      act += {p}_POPS[s];
      if ({p}_HASHIT[s]) {{
        ev_pos[ne] = i; ev_state[ne] = s; ne++;
        if (ne >= cap) {{
          *state = s; *active += act;
          *n_ev = ne; *resume_i = i + 1; return 1;
        }}
      }}
    }}
    i++;
  }}
  *state = s; *active += act; *n_ev = ne; *resume_i = n; return 0;
}}
"""
    )
    return "\n".join(parts)


def unit_scan_source(fused) -> str:
    """One translation unit covering every native-eligible scan unit.

    Emits ``rap_gather_scan_<j>`` for each GATHER unit of width ≤ 64
    (see :func:`native_gather_indices`) and ``rap_dfa_scan_<j>`` for
    every DFA-tier unit.  Returns an empty string when nothing is
    native-eligible, so callers can skip the build entirely.
    """
    gathers = native_gather_indices(fused)
    if not gathers and not fused.dfa_count:
        return ""
    parts = [_header("scan units", fused.signature)]
    for j in gathers:
        parts.append(_gather_function(fused, j))
    for j in range(fused.dfa_count):
        parts.append(_dfa_function(fused, j))
    return "\n".join(parts)


def unit_cdefs(fused) -> str:
    """The cffi ``cdef`` block matching :func:`unit_scan_source`."""
    decls = [gather_cdef(j) for j in native_gather_indices(fused)]
    decls.extend(dfa_cdef(j) for j in range(fused.dfa_count))
    return "\n".join(decls)
