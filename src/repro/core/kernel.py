"""The step-kernel contract: one inner loop for every bitset machine.

Every automata model in this reproduction executes the paper's two-phase
loop (Section 2.2): a *state-transition* step derives the set of
available states from the previous cycle's active set, and a
*state-matching* step intersects it with the per-byte label mask of the
current input symbol.  The models differ only in how availability is
derived — a successor-mask gather for plain NFAs, a shift for (multi-)
Shift-And and the bit-serial tile datapath — which a
:class:`~repro.core.program.KernelProgram` captures declaratively.

A :class:`StepKernel` executes a program over a byte chunk and emits the
exact integer counters (:class:`StepStats`) the hardware simulators
price.  Kernels are interchangeable by contract: every backend must
produce bit-identical match events and counters for the same program and
input, so switching ``RAP_BACKEND`` can never change a reported number —
only how fast it is computed.  The differential test suite enforces the
contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:
    from repro.core.program import KernelProgram
    from repro.core.state import KernelState

# A reporting cycle: (end position, mask of final bits that fired).
MatchEvent = tuple[int, int]


@dataclass
class StepStats:
    """Aggregate activity counters accumulated over a run.

    All fields are exact integers, so merging per-chunk stats in chunk
    order reproduces a whole-stream run bit for bit — the invariant both
    the parallel engine and the backend registry rest on.
    """

    cycles: int = 0
    active_states: int = 0  # sum over cycles of |active set|
    matched_states: int = 0  # sum over cycles of |states matching the symbol|
    reports: int = 0

    @property
    def mean_active(self) -> float:
        """Average number of active states/bits per cycle."""
        return self.active_states / self.cycles if self.cycles else 0.0

    def merge(self, other: "StepStats") -> "StepStats":
        """Associative combination of two runs' counters (all integers,
        so merging is exact — the parallel engine relies on this)."""
        return StepStats(
            cycles=self.cycles + other.cycles,
            active_states=self.active_states + other.active_states,
            matched_states=self.matched_states + other.matched_states,
            reports=self.reports + other.reports,
        )

    __add__ = merge


@runtime_checkable
class StepKernel(Protocol):
    """Executes :class:`~repro.core.program.KernelProgram` byte chunks.

    ``scan`` is the one required operation; backends that cannot
    accelerate the per-cycle views simply inherit the pure-Python ones.
    """

    name: str

    def scan(
        self,
        program: "KernelProgram",
        data: bytes,
        *,
        stats_from: int = 0,
    ) -> tuple[list[MatchEvent], StepStats]:
        """Run ``program`` over ``data``.

        Returns the reporting cycles — ``(end_position, final_hits)``
        pairs — together with fresh exact counters.  The first
        ``stats_from`` bytes are a warm-up prefix: they drive the active
        set but contribute neither events nor counters (the parallel
        engine's overlap-window stitching).
        """
        ...

    def scan_segment(
        self,
        program: "KernelProgram",
        data: bytes,
        state: "KernelState | None" = None,
        *,
        at_end: bool = True,
    ) -> tuple[list[MatchEvent], StepStats, "KernelState"]:
        """Run ``program`` over one segment of a longer stream.

        ``state`` is the frontier left by the previous segment (``None``
        for a fresh stream); the returned state continues the scan.
        Event positions are *global* stream offsets.  ``at_end=False``
        says more input follows, so end-anchored finals are masked even
        on the segment's last byte.  Feeding a stream in any segmentation
        yields the same concatenated events and merged stats as one
        ``scan`` over the whole stream — the durable-scan invariant.
        """
        ...

    def iter_states(self, program: "KernelProgram", data: bytes):
        """Per-cycle ``(index, packed_state_vector)`` view (lazy)."""
        ...
