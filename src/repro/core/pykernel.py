"""The default stdlib-only step kernel: Python ints as bitsets.

The scan loops are deliberately monolithic — one flat loop per
:class:`~repro.core.program.ProgramKind` with every hot name bound to a
local — because this kernel sits under every simulator and experiment.
Two structural tricks keep the exact counters nearly free:

* ``cycles`` and ``matched_states`` do not depend on the state vector at
  all (``matched_states`` is the popcount of the byte's label mask, a
  pure function of the input), so both are computed outside the loop —
  ``matched_states`` with C-level ``bytes.count`` over the handful of
  byte values that carry labels;
* ``active_states`` only changes on cycles with a non-empty active set,
  so the loop popcounts exactly when ``states`` is truthy.

The result is that a full stats-collecting scan costs no more than the
old stats-free loop it replaced.
"""

from __future__ import annotations

from repro.core.kernel import MatchEvent, StepStats
from repro.core.program import KernelProgram, ProgramKind
from repro.core.state import KernelState

# Above this many label-carrying byte values, per-value ``bytes.count``
# sweeps cost more than one C-level map over the whole input.
_COUNT_SWEEP_LIMIT = 32


def _matched_tables(program: KernelProgram) -> tuple[list[int], list[int]]:
    """Cached per-byte label popcounts (and which bytes are non-zero)."""
    cached = getattr(program, "_py_matched_tables", None)
    if cached is None:
        pops = [mask.bit_count() for mask in program.labels]
        cached = (pops, [b for b, p in enumerate(pops) if p])
        object.__setattr__(program, "_py_matched_tables", cached)
    return cached


def _matched_states(program: KernelProgram, data: bytes, start: int) -> int:
    """Sum of ``popcount(labels[b])`` over ``data[start:]``, exactly."""
    pops, labeled = _matched_tables(program)
    if len(labeled) <= _COUNT_SWEEP_LIMIT:
        return sum(pops[b] * data.count(b, start) for b in labeled)
    return sum(map(pops.__getitem__, memoryview(data)[start:]))


class PythonKernel:
    """Pure-Python reference execution of kernel programs."""

    name = "python"

    def scan(
        self,
        program: KernelProgram,
        data: bytes,
        *,
        stats_from: int = 0,
    ) -> tuple[list[MatchEvent], StepStats]:
        """Run ``program`` over ``data`` (see :class:`~repro.core.kernel.
        StepKernel` for the contract)."""
        n = len(data)
        stats_from = min(max(stats_from, 0), n)
        if program.kind is ProgramKind.GATHER:
            events, active = self._scan_gather(program, data, stats_from)
        else:
            events, active = self._scan_shift(program, data, stats_from)
        matched = (
            _matched_states(program, data, stats_from)
            if program.track_matched
            else 0
        )
        return events, StepStats(
            cycles=n - stats_from,
            active_states=active,
            matched_states=matched,
            reports=len(events),
        )

    # -- kind-specific monolithic loops -------------------------------------

    def _scan_gather(
        self, program: KernelProgram, data: bytes, stats_from: int
    ) -> tuple[list[MatchEvent], int]:
        labels = program.labels
        succ = program.succ
        final = program.final
        end_anchored = program.end_anchored_finals
        inject = program.inject_always
        last = len(data) - 1
        events: list[MatchEvent] = []
        active = 0
        states = 0
        if data:
            states = program.inject_first & labels[data[0]]
            if stats_from == 0 and states:
                active += states.bit_count()
                hits = states & final
                if hits and last != 0:
                    hits &= ~end_anchored
                if hits:
                    events.append((0, hits))
        start = max(1, stats_from)
        for byte in memoryview(data)[1:start]:
            avail = inject
            a = states
            while a:
                low = a & -a
                avail |= succ[low.bit_length() - 1]
                a ^= low
            states = avail & labels[byte]
        for i, byte in enumerate(memoryview(data)[start:], start):
            avail = inject
            a = states
            while a:
                low = a & -a
                avail |= succ[low.bit_length() - 1]
                a ^= low
            states = avail & labels[byte]
            if states:
                active += states.bit_count()
                hits = states & final
                if hits:
                    if i != last:
                        hits &= ~end_anchored
                    if hits:
                        events.append((i, hits))
        return events, active

    def _scan_shift(
        self, program: KernelProgram, data: bytes, stats_from: int
    ) -> tuple[list[MatchEvent], int]:
        labels = program.labels
        final = program.final
        end_anchored = program.end_anchored_finals
        inject = program.inject_always
        left = program.kind is ProgramKind.SHIFT_LEFT
        keep = ~program.clear_after_shift
        last = len(data) - 1
        events: list[MatchEvent] = []
        active = 0
        states = 0
        if data:
            states = program.inject_first & labels[data[0]]
            if stats_from == 0 and states:
                active += states.bit_count()
                hits = states & final
                if hits and last != 0:
                    hits &= ~end_anchored
                if hits:
                    events.append((0, hits))
        start = max(1, stats_from)
        if left:
            for byte in memoryview(data)[1:start]:
                states = ((states << 1) & keep | inject) & labels[byte]
            for i, byte in enumerate(memoryview(data)[start:], start):
                states = ((states << 1) & keep | inject) & labels[byte]
                if states:
                    active += states.bit_count()
                    hits = states & final
                    if hits:
                        if i != last:
                            hits &= ~end_anchored
                        if hits:
                            events.append((i, hits))
        else:
            for byte in memoryview(data)[1:start]:
                states = (states >> 1 | inject) & labels[byte]
            for i, byte in enumerate(memoryview(data)[start:], start):
                states = (states >> 1 | inject) & labels[byte]
                if states:
                    active += states.bit_count()
                    hits = states & final
                    if hits:
                        if i != last:
                            hits &= ~end_anchored
                        if hits:
                            events.append((i, hits))
        return events, active

    # -- resumable segment scan ----------------------------------------------

    def scan_segment(
        self,
        program: KernelProgram,
        data: bytes,
        state: KernelState | None = None,
        *,
        at_end: bool = True,
    ) -> tuple[list[MatchEvent], StepStats, KernelState]:
        """Resumable scan over one stream segment (see
        :class:`~repro.core.kernel.StepKernel` for the contract)."""
        state = state or KernelState()
        n = len(data)
        if n == 0:
            return [], StepStats(), state
        labels = program.labels
        succ = program.succ
        final = program.final
        end_anchored = program.end_anchored_finals
        inject = program.inject_always
        gather = program.kind is ProgramKind.GATHER
        left = program.kind is ProgramKind.SHIFT_LEFT
        keep = ~program.clear_after_shift
        offset = state.offset
        last = n - 1
        events: list[MatchEvent] = []
        active = 0
        states = state.states
        start = 0
        if offset == 0:
            # The stream's true first symbol: availability is the
            # injection mask alone (transition of the empty set is
            # empty), matching the whole-stream loops bit for bit.
            states = program.inject_first & labels[data[0]]
            if states:
                active += states.bit_count()
                hits = states & final
                if hits and not (at_end and last == 0):
                    hits &= ~end_anchored
                if hits:
                    events.append((0, hits))
            start = 1
        for i, byte in enumerate(memoryview(data)[start:], start):
            if gather:
                avail = inject
                a = states
                while a:
                    low = a & -a
                    avail |= succ[low.bit_length() - 1]
                    a ^= low
            elif left:
                avail = (states << 1) & keep | inject
            else:
                avail = states >> 1 | inject
            states = avail & labels[byte]
            if states:
                active += states.bit_count()
                hits = states & final
                if hits:
                    if not (at_end and i == last):
                        hits &= ~end_anchored
                    if hits:
                        events.append((offset + i, hits))
        matched = _matched_states(program, data, 0) if program.track_matched else 0
        stats = StepStats(
            cycles=n,
            active_states=active,
            matched_states=matched,
            reports=len(events),
        )
        return events, stats, KernelState(offset=offset + n, states=states)

    # -- lazy per-cycle view -------------------------------------------------

    def iter_states(self, program: KernelProgram, data: bytes):
        """Yield ``(index, packed_state_vector)`` per input byte."""
        labels = program.labels
        inject_first = program.inject_first
        inject = program.inject_always
        states = 0
        if program.kind is ProgramKind.GATHER:
            succ = program.succ
            for i, byte in enumerate(data):
                avail = inject_first if i == 0 else inject
                a = states
                while a:
                    low = a & -a
                    avail |= succ[low.bit_length() - 1]
                    a ^= low
                states = avail & labels[byte]
                yield i, states
        elif program.kind is ProgramKind.SHIFT_LEFT:
            keep = ~program.clear_after_shift
            for i, byte in enumerate(data):
                states = (
                    (states << 1) & keep
                    | (inject_first if i == 0 else inject)
                ) & labels[byte]
                yield i, states
        else:
            for i, byte in enumerate(data):
                states = (
                    states >> 1 | (inject_first if i == 0 else inject)
                ) & labels[byte]
                yield i, states
