"""The ``native`` backend: runtime-compiled C kernels for fused scans.

:mod:`repro.core.codegen` emits a specialized C translation unit per
compiled ruleset; this module owns everything after that — the
capability probe (a working C compiler, cached per process), the build
(``cc -O3 -shared`` into the keyed on-disk compile cache, loaded via
``cffi`` with a ``ctypes`` fallback), and the thin scanner wrappers the
fused layers call.

Contracts:

* **Silent fallback.**  Every failure mode — no compiler, a build
  error, a load error — degrades to the interpreted fused path with
  identical results; callers catch :class:`NativeBuildError` (or see
  the registry resolve ``native`` down to ``fused``).  Set
  ``RAP_NATIVE_DISABLE=1`` to force this without uninstalling anything.
* **Keyed shared objects.**  A library's cache key is the SHA-256 of
  its generated source, which embeds
  :data:`~repro.core.registry.NATIVE_FORMAT_VERSION` — same layout,
  same key; any codegen change rolls every key over.  Artifacts live
  under ``<cache>/native/`` beside the compiled-ruleset entries and are
  subject to the same ``RAP_CACHE_MAX_MB`` size bound.
* **Byte-identical state.**  Kernel entry/exit states cross the ABI as
  the same little-endian ``uint64`` words
  :func:`~repro.core.fused.words_from_int` defines, so every
  :class:`~repro.core.state.KernelState` a native scan round-trips is
  the one the interpreted scan would have produced.
"""

from __future__ import annotations

import ctypes
import hashlib
import logging
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

from repro.core import codegen
from repro.core.fused import FusedKernel, int_from_words, words_from_int

NATIVE_DISABLE_ENV = "RAP_NATIVE_DISABLE"

log = logging.getLogger(__name__)


class NativeBuildError(Exception):
    """A native kernel could not be built or loaded (callers fall back)."""


# -- capability probe ---------------------------------------------------------

_SMOKE: dict[str, str | None] = {}  # cc path -> failure reason (None = ok)

_SMOKE_SOURCE = "int rap_probe(void) { return 42; }\n"


def _find_compiler() -> str | None:
    for candidate in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if not candidate:
            continue
        found = shutil.which(candidate)
        if found:
            return found
    return None


def _smoke_test(cc: str) -> str | None:
    """Compile-and-load a trivial shared object once per process."""
    cached = _SMOKE.get(cc, _SMOKE)
    if cached is not _SMOKE:
        return cached
    reason: str | None = None
    try:
        with tempfile.TemporaryDirectory(prefix="rap-native-probe-") as tmp:
            src = Path(tmp) / "probe.c"
            out = Path(tmp) / "probe.so"
            src.write_text(_SMOKE_SOURCE)
            proc = subprocess.run(
                [cc, "-O2", "-fPIC", "-shared", "-o", str(out), str(src)],
                capture_output=True,
                timeout=60,
            )
            if proc.returncode != 0:
                reason = "C compiler cannot build shared objects"
            else:
                lib = ctypes.CDLL(str(out))
                if lib.rap_probe() != 42:
                    reason = "probe shared object misbehaved"
    except Exception as err:  # pragma: no cover - environment-specific
        reason = f"C compiler probe failed: {err}"
    _SMOKE[cc] = reason
    return reason


def native_unavailable_reason() -> str | None:
    """Why the native backend cannot run here, or None when it can."""
    if os.environ.get(NATIVE_DISABLE_ENV, "").strip():
        return f"disabled by {NATIVE_DISABLE_ENV}"
    cc = _find_compiler()
    if cc is None:
        return "no C compiler"
    return _smoke_test(cc)


def native_available() -> bool:
    """The registry's capability probe for ``native``."""
    return native_unavailable_reason() is None


# -- build + load -------------------------------------------------------------

_LIB_MEMO: dict[str, "_Library"] = {}
_LIB_FAILED: set[str] = set()


def _native_cache_dir() -> Path:
    from repro.engine.cache import default_cache_dir

    return default_cache_dir() / "native"


def source_key(source: str) -> str:
    """The shared-object cache key: SHA-256 of the generated source."""
    return hashlib.sha256(source.encode()).hexdigest()


def _compile_shared(cc: str, source: str, target: Path) -> None:
    target.parent.mkdir(parents=True, exist_ok=True)
    with tempfile.TemporaryDirectory(prefix="rap-native-build-") as tmp:
        src = Path(tmp) / "kernel.c"
        out = Path(tmp) / "kernel.so"
        src.write_text(source)
        base = [cc, "-O3", "-fPIC", "-shared", "-o", str(out), str(src)]
        # -march=native first (the recurrence vectorizes well); retry
        # portable when the toolchain rejects it.
        proc = subprocess.run(
            base[:2] + ["-march=native"] + base[2:],
            capture_output=True,
            timeout=300,
        )
        if proc.returncode != 0:
            proc = subprocess.run(base, capture_output=True, timeout=300)
        if proc.returncode != 0:
            raise NativeBuildError(
                "cc failed: " + proc.stderr.decode(errors="replace")[:500]
            )
        # Atomic publish: racing processes both compile, last replace
        # wins, every loader sees a complete file.
        fd, tmp_so = tempfile.mkstemp(
            dir=target.parent, prefix=".so-", suffix=".tmp"
        )
        os.close(fd)
        shutil.copyfile(out, tmp_so)
        os.replace(tmp_so, target)


class _CffiLibrary:
    """A built shared object behind cffi's ABI-mode loader."""

    kind = "cffi"

    def __init__(self, path: Path, cdef: str):
        import cffi

        self._ffi = cffi.FFI()
        self._ffi.cdef(cdef)
        self._lib = self._ffi.dlopen(str(path))

    def fn(self, name: str):
        raw = getattr(self._lib, name)
        cast = self._ffi.cast

        def call(*args):
            return raw(
                *(
                    cast("void *", a) if isinstance(a, _Ptr) else a
                    for a in args
                )
            )

        return call


class _CtypesLibrary:
    """The same shared object behind plain ctypes (cffi-free hosts)."""

    kind = "ctypes"

    def __init__(self, path: Path, cdef: str):
        del cdef  # ctypes needs no declarations; args are pre-wrapped
        self._lib = ctypes.CDLL(str(path))

    def fn(self, name: str):
        raw = getattr(self._lib, name)
        raw.restype = ctypes.c_int

        def call(*args):
            return raw(
                *(
                    ctypes.c_void_p(int(a))
                    if isinstance(a, _Ptr)
                    else ctypes.c_longlong(a)
                    for a in args
                )
            )

        return call


class _Ptr(int):
    """An argument that is a raw data pointer, not an integer scalar."""


def _ptr(buf) -> _Ptr:
    """The data address of a bytes object or a C-contiguous ndarray."""
    if isinstance(buf, np.ndarray):
        return _Ptr(buf.ctypes.data)
    return _Ptr(
        ctypes.cast(ctypes.c_char_p(buf), ctypes.c_void_p).value or 0
    )


_Library = _CffiLibrary | _CtypesLibrary


def load_source(source: str, cdef: str) -> _Library:
    """Build (or reuse) and load the shared object for one source text.

    Raises :class:`NativeBuildError` on any failure; failures are
    memoized per key so a broken toolchain costs one attempt, not one
    per scan.
    """
    key = source_key(source)
    lib = _LIB_MEMO.get(key)
    if lib is not None:
        return lib
    if key in _LIB_FAILED:
        raise NativeBuildError("previous build of this layout failed")
    reason = native_unavailable_reason()
    if reason is not None:
        raise NativeBuildError(reason)
    try:
        path = _native_cache_dir() / f"{key}.so"
        if not path.is_file():
            cc = _find_compiler()
            assert cc is not None  # the probe above just found one
            _compile_shared(cc, source, path)
            from repro.engine.cache import enforce_cache_budget

            enforce_cache_budget(keep=path)
        else:
            # Loading counts as use for the cache's LRU eviction order.
            try:
                os.utime(path)
            except OSError:
                pass
        try:
            lib = _CffiLibrary(path, cdef)
        except ImportError:
            lib = _CtypesLibrary(path, cdef)
    except NativeBuildError:
        _LIB_FAILED.add(key)
        raise
    except Exception as err:
        _LIB_FAILED.add(key)
        raise NativeBuildError(f"load failed: {err}") from err
    _LIB_MEMO[key] = lib
    return lib


# -- scanner wrappers ---------------------------------------------------------


class NativeLaneScanner:
    """The compiled lane machine of one scanner layout.

    Mirrors :meth:`FusedLaneScanner.scan`'s inner work: one call (plus
    continuations when the hit buffer fills) returns the per-tile
    cycle/bit counters, the ``(position, packed-final-word)`` hit pairs
    with end-anchored finals already masked, and the exit word.
    """

    def __init__(self, fused, tile_rows):
        self._source = codegen.lane_scan_source(fused, tile_rows)
        self._fn = load_source(self._source, codegen.LANE_CDEF).fn(
            "rap_lane_scan"
        )
        self._lanes = fused.lanes
        self._tiles = len(tile_rows)
        self._cap = codegen.HIT_BUFFER_ENTRIES

    def scan(
        self,
        cls_bytes: bytes,
        *,
        entry: int,
        fresh: bool,
        at_end: bool,
        stats_from: int,
    ) -> tuple[np.ndarray, np.ndarray, list[tuple[int, int]], int]:
        n = len(cls_bytes)
        lanes = self._lanes
        cap = self._cap
        state = words_from_int(entry, lanes).copy()
        tile_cycles = np.zeros(self._tiles, dtype=np.int64)
        tile_bits = np.zeros(self._tiles, dtype=np.int64)
        hit_pos = np.empty(cap, dtype=np.int64)
        hit_words = np.empty(cap * lanes, dtype=np.uint64)
        n_hits = np.zeros(1, dtype=np.int64)
        resume = np.zeros(1, dtype=np.int64)
        hits: list[tuple[int, int]] = []
        i = 0
        while True:
            rc = self._fn(
                _ptr(cls_bytes),
                n,
                i,
                _ptr(state),
                1 if fresh else 0,
                1 if at_end else 0,
                stats_from,
                _ptr(tile_cycles),
                _ptr(tile_bits),
                _ptr(hit_pos),
                _ptr(hit_words),
                cap,
                _ptr(n_hits),
                _ptr(resume),
            )
            nh = int(n_hits[0])
            for r in range(nh):
                hits.append(
                    (
                        int(hit_pos[r]),
                        int_from_words(
                            hit_words[r * lanes : (r + 1) * lanes]
                        ),
                    )
                )
            i = int(resume[0])
            if rc == 0:
                break
        return tile_cycles, tile_bits, hits, int_from_words(state)


class NativeUnitScanner:
    """Compiled GATHER/DFA span kernels of one fused ruleset."""

    def __init__(self, fused):
        source = codegen.unit_scan_source(fused)
        if not source:
            raise NativeBuildError("no native-eligible scan units")
        lib = load_source(source, codegen.unit_cdefs(fused))
        self._gather_fns = {
            j: lib.fn(f"rap_gather_scan_{j}")
            for j in codegen.native_gather_indices(fused)
        }
        self._dfa_fns = {
            j: lib.fn(f"rap_dfa_scan_{j}") for j in range(fused.dfa_count)
        }
        self._cap = codegen.HIT_BUFFER_ENTRIES

    def has_gather(self, index: int) -> bool:
        return index in self._gather_fns

    def gather_span(
        self,
        index: int,
        cls_bytes: bytes,
        *,
        state: int,
        fresh: bool,
        at_end: bool,
        stats_from: int,
    ) -> tuple[list[tuple[int, int]], int, int]:
        """``(events, active_state_sum, exit_state)`` for one span."""
        fn = self._gather_fns[index]
        n = len(cls_bytes)
        cap = self._cap
        word = np.array([state], dtype=np.uint64)
        active = np.zeros(1, dtype=np.int64)
        ev_pos = np.empty(cap, dtype=np.int64)
        ev_word = np.empty(cap, dtype=np.uint64)
        n_ev = np.zeros(1, dtype=np.int64)
        resume = np.zeros(1, dtype=np.int64)
        events: list[tuple[int, int]] = []
        i = 0
        while True:
            rc = fn(
                _ptr(cls_bytes),
                n,
                i,
                _ptr(word),
                1 if fresh else 0,
                1 if at_end else 0,
                stats_from,
                _ptr(active),
                _ptr(ev_pos),
                _ptr(ev_word),
                cap,
                _ptr(n_ev),
                _ptr(resume),
            )
            for r in range(int(n_ev[0])):
                events.append((int(ev_pos[r]), int(ev_word[r])))
            i = int(resume[0])
            if rc == 0:
                break
        return events, int(active[0]), int(word[0])

    def dfa_span(
        self,
        index: int,
        cls_bytes: bytes,
        *,
        state: int,
        stats_from: int,
    ) -> tuple[list[tuple[int, int]], int, int]:
        """``(raw (pos, dfa_state) events, active_sum, exit_state)``."""
        fn = self._dfa_fns[index]
        n = len(cls_bytes)
        cap = self._cap
        word = np.array([state], dtype=np.int32)
        active = np.zeros(1, dtype=np.int64)
        ev_pos = np.empty(cap, dtype=np.int64)
        ev_state = np.empty(cap, dtype=np.int32)
        n_ev = np.zeros(1, dtype=np.int64)
        resume = np.zeros(1, dtype=np.int64)
        events: list[tuple[int, int]] = []
        i = 0
        while True:
            rc = fn(
                _ptr(cls_bytes),
                n,
                i,
                _ptr(word),
                stats_from,
                _ptr(active),
                _ptr(ev_pos),
                _ptr(ev_state),
                cap,
                _ptr(n_ev),
                _ptr(resume),
            )
            for r in range(int(n_ev[0])):
                events.append((int(ev_pos[r]), int(ev_state[r])))
            i = int(resume[0])
            if rc == 0:
                break
        return events, int(active[0]), int(word[0])


class NativeKernel(FusedKernel):
    """The ``native`` backend tier.

    Per-program execution is inherited from the fused/NumPy kernels
    (bit-identical by construction); the compiled-C acceleration
    engages one layer up, where :class:`~repro.core.fused.FusedRuleset`
    and the simulators attach the scanners above whenever the registry
    resolves ``native``.
    """

    name = "native"
