"""The execution-core layer: one inner loop for every bitset machine.

``repro.core`` is the seam between the automata models and the machine
they actually run on.  The automata layer describes each engine as a
:class:`~repro.core.program.KernelProgram`; a pluggable
:class:`~repro.core.kernel.StepKernel` executes it.  Backends register
in :mod:`repro.core.registry` (``RAP_BACKEND`` / ``--backend`` select
one, with silent fallback to the stdlib kernel) and are bit-identical
by contract — switching backends can change speed, never results.

:mod:`repro.core.trace` (the scan-once/price-many
:class:`~repro.core.trace.ActivityTrace`) bridges to the simulator
layer and is imported directly rather than re-exported here, keeping
this package importable from the automata layer without cycles.
"""

from repro.core.kernel import MatchEvent, StepKernel, StepStats
from repro.core.program import KernelProgram, ProgramKind
from repro.core.sfa import (
    FrontierMap,
    ShiftMap,
    StateMap,
    frontier_identity,
    gather_chunk_map,
    shift_chunk_map,
    shift_identity,
    state_identity,
)
from repro.core.registry import (
    BACKEND_ENV,
    DFA_FORMAT_VERSION,
    FUSED_FORMAT_VERSION,
    KERNEL_FORMAT_VERSION,
    NATIVE_FORMAT_VERSION,
    available_backends,
    backend_names,
    get_kernel,
    resolve_backend,
    resolve_backend_with_reason,
    set_default_backend,
    use_backend,
)
from repro.core.state import (
    STATE_FORMAT_VERSION,
    KernelState,
    iter_states_from,
)

__all__ = [
    "BACKEND_ENV",
    "DFA_FORMAT_VERSION",
    "FUSED_FORMAT_VERSION",
    "KERNEL_FORMAT_VERSION",
    "NATIVE_FORMAT_VERSION",
    "STATE_FORMAT_VERSION",
    "FrontierMap",
    "KernelProgram",
    "KernelState",
    "MatchEvent",
    "ProgramKind",
    "ShiftMap",
    "StateMap",
    "StepKernel",
    "StepStats",
    "frontier_identity",
    "gather_chunk_map",
    "iter_states_from",
    "shift_chunk_map",
    "shift_identity",
    "state_identity",
    "available_backends",
    "backend_names",
    "get_kernel",
    "resolve_backend",
    "resolve_backend_with_reason",
    "set_default_backend",
    "use_backend",
]
