"""Snapshotable mid-stream state for kernel programs.

A :class:`KernelState` captures everything a bitset machine carries
between input symbols: the packed active-state vector after the last
consumed symbol and the global input offset.  Together with the
(immutable) :class:`~repro.core.program.KernelProgram` it fully
determines the rest of a scan, which is what makes durable scans
possible — serialize the state at a chunk boundary, and a resumed scan
replays the *identical* sequence of integer operations an uninterrupted
run would have performed.

Serialization is deterministic and exact: the state word is a hex
string (Python ints are arbitrary precision, so no width assumptions),
and the document carries :data:`STATE_FORMAT_VERSION` so a checkpoint
can never be silently decoded under different semantics.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.core.program import KernelProgram

# Version of the serialized state encoding.  Bump on any change to the
# meaning of the fields below; checkpoint envelopes embed it.
STATE_FORMAT_VERSION = 1


@dataclass(frozen=True)
class KernelState:
    """Mid-stream state of one kernel program.

    ``offset`` counts the input symbols consumed so far (global stream
    position); ``states`` is the packed active-state vector *after* the
    symbol at ``offset - 1``.  The zero state (``offset=0, states=0``)
    is a fresh scan: the next symbol is the stream's first and receives
    the program's ``inject_first`` mask.
    """

    offset: int = 0
    states: int = 0

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError("state offset must be non-negative")
        if self.states < 0:
            raise ValueError("state vector must be non-negative")

    def to_json(self) -> dict:
        """JSON-ready document (hex state word, exact at any width)."""
        return {
            "version": STATE_FORMAT_VERSION,
            "offset": self.offset,
            "states": f"{self.states:x}",
        }

    @classmethod
    def from_json(cls, doc: dict) -> KernelState:
        """Decode :meth:`to_json` output, validating the version."""
        try:
            version = doc["version"]
            if version != STATE_FORMAT_VERSION:
                raise ValueError(
                    f"kernel-state version {version!r} "
                    f"(this build reads {STATE_FORMAT_VERSION})"
                )
            return cls(offset=int(doc["offset"]), states=int(doc["states"], 16))
        except (KeyError, TypeError) as err:
            raise ValueError(f"malformed kernel-state document: {err}") from err


def iter_states_from(
    program: KernelProgram, data: bytes, state: KernelState | None = None
) -> Iterator[tuple[int, int]]:
    """Per-cycle ``(segment_index, packed_state_vector)`` continuation.

    Generalizes ``StepKernel.iter_states`` to start from a saved
    :class:`KernelState`: symbol ``i`` of ``data`` is global symbol
    ``state.offset + i``, and only the true global first symbol receives
    ``inject_first``.  The loop is pure Python and backend-independent —
    callers that consume every cycle's vector (the LNFA bin collectors)
    pay the same cost on every backend, exactly like ``iter_states``.

    The caller reconstructs the continuation state from the last yielded
    vector: ``KernelState(state.offset + len(data), last_states)``.
    """
    from repro.core.program import ProgramKind

    state = state or KernelState()
    labels = program.labels
    inject_first = program.inject_first
    inject = program.inject_always
    fresh = state.offset == 0
    states = state.states
    if program.kind is ProgramKind.GATHER:
        succ = program.succ
        for i, byte in enumerate(data):
            if fresh and i == 0:
                states = inject_first & labels[byte]
            else:
                avail = inject
                a = states
                while a:
                    low = a & -a
                    avail |= succ[low.bit_length() - 1]
                    a ^= low
                states = avail & labels[byte]
            yield i, states
    elif program.kind is ProgramKind.SHIFT_LEFT:
        keep = ~program.clear_after_shift
        for i, byte in enumerate(data):
            if fresh and i == 0:
                states = inject_first & labels[byte]
            else:
                states = ((states << 1) & keep | inject) & labels[byte]
            yield i, states
    else:
        for i, byte in enumerate(data):
            if fresh and i == 0:
                states = inject_first & labels[byte]
            else:
                states = (states >> 1 | inject) & labels[byte]
            yield i, states


__all__ = ["STATE_FORMAT_VERSION", "KernelState", "iter_states_from"]
