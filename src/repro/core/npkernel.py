"""Optional NumPy-accelerated step kernel (``RAP_BACKEND=numpy``).

An unanchored bitset scan is inherently sequential while states are
live, but real rule sets spend most cycles with an *empty* active set —
and from the empty set the next state depends only on the input byte
(``states' = inject_always & labels[b]``).  This kernel exploits that
SFA-style data-parallel observation:

* a 256-entry boolean LUT marks the "hot" byte values that can revive
  an empty machine; ``np.flatnonzero`` over the LUT-mapped input yields
  every hot position up front;
* whenever the active set empties, the scan jumps straight to the next
  hot position by advancing a monotone cursor over that index array
  instead of stepping byte by byte — cold stretches cost O(1) amortized
  Python work regardless of length;
* ``matched_states`` (a pure function of the input bytes) is one
  vectorized LUT-gather-and-sum.

Live stretches still step through the exact integer datapath of the
pure-Python kernel, so every counter and match event is bit-identical
to :class:`~repro.core.pykernel.PythonKernel` — the differential suite
asserts this.  Only construct this kernel through
:func:`repro.core.registry.get_kernel`, which falls back to pure Python
when NumPy is absent.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.core.kernel import MatchEvent, StepStats
from repro.core.program import KernelProgram, ProgramKind
from repro.core.pykernel import PythonKernel
from repro.core.state import KernelState

# Derived LUTs are keyed on the (frozen, hashable) program itself in a
# bounded LRU, so long-lived processes cycling through many rulesets
# cannot grow memory without limit.  256 entries comfortably covers the
# working set of one ruleset compile while capping retained tables.
_NP_TABLES_CAP = 256
_np_tables_cache: OrderedDict[
    KernelProgram, tuple[tuple[int, ...], np.ndarray, np.ndarray]
] = OrderedDict()


def _np_tables(program: KernelProgram):
    """Cached LUTs: cold-revival masks, hot flags, label popcounts."""
    cached = _np_tables_cache.get(program)
    if cached is not None:
        _np_tables_cache.move_to_end(program)
        return cached
    cold_next = tuple(program.inject_always & mask for mask in program.labels)
    hot = np.fromiter(
        (mask != 0 for mask in cold_next), dtype=bool, count=len(cold_next)
    )
    pops = np.fromiter(
        (mask.bit_count() for mask in program.labels),
        dtype=np.int64,
        count=len(program.labels),
    )
    cached = (cold_next, hot, pops)
    _np_tables_cache[program] = cached
    while len(_np_tables_cache) > _NP_TABLES_CAP:
        _np_tables_cache.popitem(last=False)
    return cached


class NumpyKernel:
    """Block-vectorized scan: skip cold stretches, step hot ones exactly."""

    name = "numpy"

    def __init__(self) -> None:
        self._py = PythonKernel()

    def scan(
        self,
        program: KernelProgram,
        data: bytes,
        *,
        stats_from: int = 0,
    ) -> tuple[list[MatchEvent], StepStats]:
        """Run ``program`` over ``data``; bit-identical to the Python
        kernel (see :class:`~repro.core.kernel.StepKernel`)."""
        n = len(data)
        stats_from = min(max(stats_from, 0), n)
        if n == 0:
            return [], StepStats()
        cold_next, hot, pops = _np_tables(program)
        arr = np.frombuffer(data, dtype=np.uint8)
        # A plain list: the cursor below reads one element per revival,
        # where NumPy scalar indexing (or a per-event searchsorted)
        # would dominate the scan on hot-dense streams.
        hot_idx = np.flatnonzero(hot[arr]).tolist()
        n_hot = len(hot_idx)

        labels = program.labels
        succ = program.succ
        final = program.final
        end_anchored = program.end_anchored_finals
        inject = program.inject_always
        gather = program.kind is ProgramKind.GATHER
        left = program.kind is ProgramKind.SHIFT_LEFT
        keep = ~program.clear_after_shift
        last = n - 1
        events: list[MatchEvent] = []
        active = 0
        states = program.inject_first & labels[data[0]]
        if stats_from == 0 and states:
            active += states.bit_count()
            hits = states & final
            if hits and last != 0:
                hits &= ~end_anchored
            if hits:
                events.append((0, hits))
        i = 1
        k = 0  # monotone cursor into hot_idx (indices only grow)
        while i < n:
            if not states:
                # Cold: the machine stays empty until the next hot byte.
                # The skipped cycles contribute nothing to active_states
                # or events; cycles/matched_states are accounted globally.
                while k < n_hot and hot_idx[k] < i:
                    k += 1
                if k == n_hot:
                    break
                i = hot_idx[k]
                k += 1
                states = cold_next[data[i]]
            else:
                byte = data[i]
                if gather:
                    avail = inject
                    a = states
                    while a:
                        low = a & -a
                        avail |= succ[low.bit_length() - 1]
                        a ^= low
                elif left:
                    avail = (states << 1) & keep | inject
                else:
                    avail = states >> 1 | inject
                states = avail & labels[byte]
            if states and i >= stats_from:
                active += states.bit_count()
                hits = states & final
                if hits:
                    if i != last:
                        hits &= ~end_anchored
                    if hits:
                        events.append((i, hits))
            i += 1
        matched = (
            int(pops[arr[stats_from:]].sum()) if program.track_matched else 0
        )
        return events, StepStats(
            cycles=n - stats_from,
            active_states=active,
            matched_states=matched,
            reports=len(events),
        )

    def scan_segment(
        self,
        program: KernelProgram,
        data: bytes,
        state: KernelState | None = None,
        *,
        at_end: bool = True,
    ) -> tuple[list[MatchEvent], StepStats, KernelState]:
        """Resumable segment scan with the same cold-skip acceleration;
        bit-identical to :meth:`PythonKernel.scan_segment`."""
        state = state or KernelState()
        n = len(data)
        if n == 0:
            return [], StepStats(), state
        cold_next, hot, pops = _np_tables(program)
        arr = np.frombuffer(data, dtype=np.uint8)
        hot_idx = np.flatnonzero(hot[arr]).tolist()
        n_hot = len(hot_idx)

        labels = program.labels
        succ = program.succ
        final = program.final
        end_anchored = program.end_anchored_finals
        inject = program.inject_always
        gather = program.kind is ProgramKind.GATHER
        left = program.kind is ProgramKind.SHIFT_LEFT
        keep = ~program.clear_after_shift
        offset = state.offset
        last = n - 1
        events: list[MatchEvent] = []
        active = 0
        states = state.states
        i = 0
        if offset == 0:
            states = program.inject_first & labels[data[0]]
            if states:
                active += states.bit_count()
                hits = states & final
                if hits and not (at_end and last == 0):
                    hits &= ~end_anchored
                if hits:
                    events.append((0, hits))
            i = 1
        k = 0  # monotone cursor into hot_idx (indices only grow)
        while i < n:
            if not states:
                while k < n_hot and hot_idx[k] < i:
                    k += 1
                if k == n_hot:
                    break
                i = hot_idx[k]
                k += 1
                states = cold_next[data[i]]
            else:
                byte = data[i]
                if gather:
                    avail = inject
                    a = states
                    while a:
                        low = a & -a
                        avail |= succ[low.bit_length() - 1]
                        a ^= low
                elif left:
                    avail = (states << 1) & keep | inject
                else:
                    avail = states >> 1 | inject
                states = avail & labels[byte]
            if states:
                active += states.bit_count()
                hits = states & final
                if hits:
                    if not (at_end and i == last):
                        hits &= ~end_anchored
                    if hits:
                        events.append((offset + i, hits))
            i += 1
        matched = int(pops[arr].sum()) if program.track_matched else 0
        stats = StepStats(
            cycles=n,
            active_states=active,
            matched_states=matched,
            reports=len(events),
        )
        return events, stats, KernelState(offset=offset + n, states=states)

    def iter_states(self, program: KernelProgram, data: bytes):
        """Lazy per-cycle view (no block skipping — delegated)."""
        return self._py.iter_states(program, data)
