"""Backend registry: which step kernel executes the hot loops.

Selection order (first hit wins):

1. an explicit name passed to :func:`get_kernel` / :func:`resolve_backend`;
2. the process default set via :func:`set_default_backend` /
   :func:`use_backend` (the CLI's ``--backend`` lands here);
3. the ``RAP_BACKEND`` environment variable;
4. ``"python"``.

Every backend is capability-flagged: requesting ``numpy`` (or the
ruleset-fusing ``fused`` tier layered on top of it) on a machine
without NumPy *silently* resolves down the fallback chain
(``fused`` → ``numpy`` → ``python``), so scripts and CI recipes can pin
``RAP_BACKEND=fused`` unconditionally.  This is safe because kernels
are bit-identical by contract — the backend only changes speed, never
results.  Anything that persists derived artifacts (the engine's
compile cache, durable-scan checkpoints) must embed
:data:`KERNEL_FORMAT_VERSION` / :data:`FUSED_FORMAT_VERSION` and the
resolved backend in its keys.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterator
from contextlib import contextmanager

from repro.core.kernel import StepKernel

BACKEND_ENV = "RAP_BACKEND"

# Version of the kernel program encoding / step semantics.  Bump on any
# change to KernelProgram's meaning so keyed caches can never serve an
# artifact produced under different execution semantics.
KERNEL_FORMAT_VERSION = 1

# Version of the fused ruleset compilation (alphabet class maps, lane
# packing, prefilter semantics).  Bump on any change to how
# repro.core.fused lays out lanes or prices activity; lives here rather
# than in repro.core.fused so NumPy-free importers (the compile cache)
# can embed it in keys.
FUSED_FORMAT_VERSION = 1

# Version of the DFA execution tier (subset construction over alphabet
# classes, transition-table layout, scanner snapshot encoding).  Bump on
# any change to repro.automata.dfa's table semantics; lives here rather
# than beside the DFA code so NumPy-free importers (the compile cache,
# scan fingerprints) can embed it in keys.
DFA_FORMAT_VERSION = 1

# Version of the native-codegen tier: the C source the ``native``
# backend emits per compiled ruleset, its call ABI, and the shared-object
# cache layout.  Bump on any change to repro.core.codegen's emitted
# kernels so a cached ``.so`` (or a checkpoint whose fingerprint names a
# native layout) can never be used under different codegen semantics.
# Lives here so compiler-free importers can embed it in keys.
NATIVE_FORMAT_VERSION = 1


def _numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def _make_python() -> StepKernel:
    from repro.core.pykernel import PythonKernel

    return PythonKernel()


def _make_numpy() -> StepKernel:
    from repro.core.npkernel import NumpyKernel

    return NumpyKernel()


def _make_fused() -> StepKernel:
    from repro.core.fused import FusedKernel

    return FusedKernel()


def _native_available() -> bool:
    # NumPy first: the native tier layers on the fused compilation, and
    # checking it here keeps repro.core.native importable only on
    # machines that could ever run it.
    if not _numpy_available():
        return False
    from repro.core.native import native_available

    return native_available()


def _make_native() -> StepKernel:
    from repro.core.native import NativeKernel

    return NativeKernel()


# name -> (capability probe, factory)
_BACKENDS: dict[str, tuple[Callable[[], bool], Callable[[], StepKernel]]] = {
    "python": (lambda: True, _make_python),
    "numpy": (_numpy_available, _make_numpy),
    "fused": (_numpy_available, _make_fused),
    "native": (_native_available, _make_native),
}

# Where an unavailable backend degrades to.  Names absent from this map
# fall straight back to "python" (always available).
_FALLBACKS: dict[str, str] = {
    "native": "fused",
    "fused": "numpy",
    "numpy": "python",
}


def _unavailable_reason(name: str) -> str:
    """Why ``name``'s capability probe fails right now (best effort)."""
    if name == "native":
        if not _numpy_available():
            return "NumPy unavailable"
        from repro.core.native import native_unavailable_reason

        return native_unavailable_reason() or "capability probe failed"
    if name in ("numpy", "fused"):
        return "NumPy unavailable"
    return "capability probe failed"

_default: str | None = None
_instances: dict[str, StepKernel] = {}


def backend_names() -> tuple[str, ...]:
    """Every registered backend name, available or not."""
    return tuple(_BACKENDS)


def available_backends() -> tuple[str, ...]:
    """The backends whose capability probe passes on this machine."""
    return tuple(
        name for name, (probe, _) in _BACKENDS.items() if probe()
    )


def resolve_backend(name: str | None = None) -> str:
    """The backend that would actually execute, after fallbacks.

    An explicitly passed unknown name raises; an unknown ``RAP_BACKEND``
    value quietly resolves to ``python`` (a stale environment must not
    break a run).  A known-but-unavailable backend silently walks the
    fallback chain (``fused`` → ``numpy`` → ``python``) in both cases.
    """
    if name is None:
        name = _default
    if name is None:
        name = os.environ.get(BACKEND_ENV, "").strip().lower() or "python"
        if name not in _BACKENDS:
            return "python"
    else:
        name = name.strip().lower()
        if name not in _BACKENDS:
            raise ValueError(
                f"unknown backend {name!r}; registered: {sorted(_BACKENDS)}"
            )
    while not _BACKENDS[name][0]():
        name = _FALLBACKS.get(name, "python")
        if name == "python":
            break
    return name


def resolve_backend_with_reason(
    name: str | None = None,
) -> tuple[str, str | None]:
    """Like :func:`resolve_backend`, plus *why* any fallback happened.

    Returns ``(resolved, reason)`` where ``reason`` is ``None`` when the
    requested backend runs as asked, and otherwise a human-readable
    chain such as ``"native unavailable: no C compiler"`` — what
    ``rap scan --explain`` and the serve ``open`` ack surface so a
    silent capability fallback is silent for results, never for
    operators.
    """
    if name is None:
        name = _default
    if name is None:
        name = os.environ.get(BACKEND_ENV, "").strip().lower() or "python"
        if name not in _BACKENDS:
            return "python", f"unknown backend {name!r}"
    else:
        name = name.strip().lower()
        if name not in _BACKENDS:
            raise ValueError(
                f"unknown backend {name!r}; registered: {sorted(_BACKENDS)}"
            )
    reasons: list[str] = []
    while not _BACKENDS[name][0]():
        reasons.append(f"{name} unavailable: {_unavailable_reason(name)}")
        name = _FALLBACKS.get(name, "python")
        if name == "python":
            break
    return name, ("; ".join(reasons) or None)


def get_kernel(name: str | None = None) -> StepKernel:
    """The (shared) kernel instance for a backend, after resolution."""
    resolved = resolve_backend(name)
    kernel = _instances.get(resolved)
    if kernel is None:
        kernel = _BACKENDS[resolved][1]()
        _instances[resolved] = kernel
    return kernel


def set_default_backend(name: str | None) -> None:
    """Pin the process-wide default backend (``None`` unpins it).

    The name is resolved eagerly, so pinning ``numpy`` without NumPy
    pins ``python`` — later probes cannot flip the choice mid-run.
    """
    global _default
    _default = None if name is None else resolve_backend(name)


@contextmanager
def use_backend(name: str | None) -> Iterator[str]:
    """Scoped :func:`set_default_backend`; yields the resolved name."""
    global _default
    previous = _default
    set_default_backend(name)
    try:
        yield resolve_backend()
    finally:
        _default = previous
