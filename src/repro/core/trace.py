"""Scan once, price many: memoized functional activity over one input.

The architecture simulators (RAP, BVAP, CAMA, CA) price *events*, not
architectures: two simulators executing the same automaton over the same
input consume identical activity counts and differ only in the Table 1
cost model they apply.  An :class:`ActivityTrace` makes that sharing
explicit — it memoizes each functional scan by the regex's *functional
fingerprint* (mode, anchors, automaton structure), so e.g. the CAMA and
CA points of Fig. 12 (both forced-NFA compiles of the same patterns)
reuse one scan, and all four designs are priced from a single pass over
each input.

This module bridges the core layer to the simulators' activity
collectors, so unlike the rest of :mod:`repro.core` it imports upward;
import it as ``repro.core.trace`` (it is deliberately not re-exported
from ``repro.core`` to keep the kernel layer import-cycle-free).
"""

from __future__ import annotations

from dataclasses import replace

from repro.compiler.program import CompiledRegex
from repro.hardware.config import HardwareConfig
from repro.mapping.binning import Bin
from repro.simulators.activity import (
    BinActivity,
    RegexActivity,
    collect_bin_activity,
    collect_regex_activity,
)


def regex_fingerprint(compiled: CompiledRegex):
    """What determines a regex's functional behavior on an input.

    Everything the execution engines consult: mode, anchors, and the
    automaton's structure (positions, character classes, edges, counter
    groups — all frozen, structurally hashable dataclasses).  The
    ``regex_id`` and source pattern text are deliberately excluded; two
    differently numbered compiles of equivalent automata share one scan.
    """
    return (
        compiled.mode,
        compiled.anchored_start,
        compiled.anchored_end,
        compiled.automaton,
    )


class ActivityTrace:
    """Memoized per-regex / per-bin functional activity of one input."""

    def __init__(self, data: bytes):
        self.data = data
        #: Functional scans actually executed (cache misses).  The
        #: fig12 scan-count test pins this to the number of distinct
        #: fingerprints, proving no input is ever scanned twice.
        self.scan_count = 0
        self._regex: dict[object, RegexActivity] = {}
        # Bins are mutable-ish aggregates without a cheap structural
        # key, so they memoize by identity; holding the (bin, hw) refs
        # keeps their ids unique for the trace's lifetime.
        self._bins: dict[tuple[int, int], tuple[Bin, HardwareConfig, BinActivity]] = {}

    def regex_activity(self, compiled: CompiledRegex) -> RegexActivity:
        """This regex's activity, scanning only on the first request.

        The result is rebound to ``compiled.regex_id`` with fresh list
        copies, so simulators that share a scan can never alias each
        other's match lists.
        """
        key = regex_fingerprint(compiled)
        found = self._regex.get(key)
        if found is None:
            found = collect_regex_activity(compiled, self.data)
            self.scan_count += 1
            self._regex[key] = found
        return replace(
            found,
            regex_id=compiled.regex_id,
            matches=list(found.matches),
            bv_cycle_indices=list(found.bv_cycle_indices),
        )

    def bin_activity(self, bin_obj: Bin, hw: HardwareConfig) -> BinActivity:
        """One LNFA bin's activity, scanning only on the first request."""
        key = (id(bin_obj), id(hw))
        entry = self._bins.get(key)
        if entry is None:
            activity = collect_bin_activity(bin_obj, self.data, hw)
            self.scan_count += 1
            entry = (bin_obj, hw, activity)
            self._bins[key] = entry
        return entry[2]
