"""Declarative description of one bitset machine for the step kernels.

All the bitset engines in :mod:`repro.automata` run the same two-phase
loop and differ only in how the *available* set is derived from the
previous cycle's active set:

* plain NFAs OR together the successor masks of the active states
  (:attr:`ProgramKind.GATHER`);
* classic Shift-And and the packed multi-pattern variant shift the
  vector left (:attr:`ProgramKind.SHIFT_LEFT`);
* the Fig. 6 bit-serial tile datapath shifts right, with the initial
  state at the MSB (:attr:`ProgramKind.SHIFT_RIGHT`).

A :class:`KernelProgram` captures one machine declaratively — label
table, injection masks, finals, and the transition rule — so any
registered backend can execute it.  Programs are frozen and hashable,
which also makes them usable as memoization keys.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.regex.charclass import ALPHABET_SIZE


class ProgramKind(enum.Enum):
    """How the state-transition phase derives availability."""

    GATHER = "gather"  # OR of per-state successor masks (plain NFA)
    SHIFT_LEFT = "shift-left"  # classic Shift-And (LSB-first layout)
    SHIFT_RIGHT = "shift-right"  # Fig. 6 bit-serial datapath (MSB-first)


@dataclass(frozen=True)
class KernelProgram:
    """One bitset machine, ready for any :class:`~repro.core.kernel.
    StepKernel` to execute.

    Per input byte ``b`` at index ``i`` the step is::

        inject = inject_first if i == 0 else inject_always
        avail  = transition(states) | inject     # per ``kind``
        states = avail & labels[b]
        hits   = states & final                  # masked by
                                                 # ~end_anchored_finals
                                                 # unless i is the last

    where ``transition`` is the successor gather, a left shift masked by
    ``~clear_after_shift`` (packed multi-pattern layouts clear the bit
    that leaks across a start-anchored pattern's boundary), or a right
    shift.  Anchoring is encoded entirely in the masks: a start anchor
    zeroes the state's bit in ``inject_always``; an end anchor sets the
    final's bit in ``end_anchored_finals``.
    """

    kind: ProgramKind
    width: int  # state-vector bits
    labels: tuple[int, ...]  # per-byte state-matching masks (256 entries)
    inject_first: int  # injected on the first symbol
    inject_always: int  # injected on every later symbol
    final: int
    end_anchored_finals: int = 0  # finals that only report on the last symbol
    clear_after_shift: int = 0  # bits zeroed after the shift (SHIFT_LEFT)
    succ: tuple[int, ...] | None = None  # per-state successor masks (GATHER)
    # Whether kernels must account matched_states (the popcount of the
    # byte's label mask, the state-matching energy proxy).  Only the NFA
    # activity model consumes it; shift programs leave it off.
    track_matched: bool = False

    def __post_init__(self) -> None:
        if len(self.labels) != ALPHABET_SIZE:
            raise ValueError(
                f"labels must cover the byte alphabet, got {len(self.labels)}"
            )
        if self.kind is ProgramKind.GATHER:
            if self.succ is None or len(self.succ) != self.width:
                raise ValueError("GATHER programs need one succ mask per state")
        elif self.succ is not None:
            raise ValueError(f"{self.kind.value} programs take no succ table")
