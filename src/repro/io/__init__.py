"""Serialization of compiled programs.

The paper's artifact ships *pre-compiled* datasets (MNRL-format automata)
so experiments can skip compilation; this package plays the same role
with a JSON format: a compiled ruleset — automata with counter groups,
LNFA sequences, tile plans — round-trips losslessly through
:func:`save_ruleset` / :func:`load_ruleset`.
"""

from repro.io.serialize import (
    automaton_from_json,
    automaton_to_json,
    load_ruleset,
    loads_ruleset,
    ruleset_to_json,
    save_ruleset,
)

__all__ = [
    "automaton_from_json",
    "automaton_to_json",
    "load_ruleset",
    "loads_ruleset",
    "ruleset_to_json",
    "save_ruleset",
]
