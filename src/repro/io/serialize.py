"""JSON (de)serialization of compiled rulesets.

The format is versioned and self-describing; character classes serialize
as hex-encoded 256-bit masks, keeping the files compact and exact (no
round-trip through pattern syntax).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from pathlib import Path

from repro.automata.glushkov import (
    Automaton,
    CounterGroup,
    Edge,
    EdgeAction,
    Position,
    ReadKind,
)
from repro.automata.lnfa import LNFA
from repro.compiler.program import (
    CompiledMode,
    CompiledRegex,
    CompiledRuleset,
    TileRequest,
)
from repro.hardware.config import TileMode
from repro.regex.charclass import CharClass

FORMAT_NAME = "rap-repro-ruleset"
FORMAT_VERSION = 1


class SerializationError(ValueError):
    """Raised when a document cannot be decoded."""


# -- character classes ---------------------------------------------------------


def _cc_to_json(cc: CharClass) -> str:
    return f"{cc.mask:064x}"


def _cc_from_json(text: str) -> CharClass:
    try:
        return CharClass(int(text, 16))
    except ValueError as err:
        raise SerializationError(f"bad character-class mask: {text!r}") from err


# -- automata -----------------------------------------------------------------


def automaton_to_json(automaton: Automaton) -> dict:
    """Automaton -> JSON-ready dict."""
    return {
        "positions": [
            {"cc": _cc_to_json(p.cc), "group": p.group}
            for p in automaton.positions
        ],
        "edges": [
            [e.src, e.dst, e.action.value] for e in automaton.edges
        ],
        "groups": [
            {
                "width": g.width,
                "read": g.read.name,
                "read_bound": g.read_bound,
                "positions": list(g.positions),
            }
            for g in automaton.groups
        ],
        "initial": sorted(automaton.initial),
        "finals": sorted(automaton.finals),
        "nullable": automaton.nullable,
    }


def automaton_from_json(doc: dict) -> Automaton:
    """JSON dict -> validated Automaton."""
    try:
        positions = tuple(
            Position(pid=i, cc=_cc_from_json(p["cc"]), group=p["group"])
            for i, p in enumerate(doc["positions"])
        )
        edges = tuple(
            Edge(src, dst, EdgeAction(action))
            for src, dst, action in doc["edges"]
        )
        groups = tuple(
            CounterGroup(
                gid=gid,
                width=g["width"],
                read=ReadKind[g["read"]],
                read_bound=g["read_bound"],
                positions=tuple(g["positions"]),
            )
            for gid, g in enumerate(doc["groups"])
        )
        automaton = Automaton(
            positions=positions,
            edges=edges,
            groups=groups,
            initial=frozenset(doc["initial"]),
            finals=frozenset(doc["finals"]),
            nullable=doc["nullable"],
        )
    except (KeyError, TypeError, ValueError) as err:
        raise SerializationError(f"malformed automaton document: {err}") from err
    automaton.validate()
    return automaton


# -- tile requests ---------------------------------------------------------


def _tile_request_to_json(request: TileRequest) -> dict:
    return {
        "mode": request.mode.value,
        "states": request.states,
        "cc_columns": request.cc_columns,
        "bv_columns": request.bv_columns,
        "set1_columns": request.set1_columns,
        "depth": request.depth,
        "read": request.read.name if request.read else None,
        "global_ports": request.global_ports,
    }


def _tile_request_from_json(doc: dict) -> TileRequest:
    return TileRequest(
        mode=TileMode(doc["mode"]),
        states=doc["states"],
        cc_columns=doc["cc_columns"],
        bv_columns=doc["bv_columns"],
        set1_columns=doc["set1_columns"],
        depth=doc["depth"],
        read=ReadKind[doc["read"]] if doc["read"] else None,
        global_ports=doc["global_ports"],
    )


# -- compiled regexes ---------------------------------------------------------


def _regex_to_json(regex: CompiledRegex) -> dict:
    return {
        "regex_id": regex.regex_id,
        "pattern": regex.pattern,
        "mode": regex.mode.value,
        "automaton": (
            automaton_to_json(regex.automaton) if regex.automaton else None
        ),
        "lnfas": [
            [_cc_to_json(cc) for cc in lnfa.labels] for lnfa in regex.lnfas
        ],
        "lnfa_cam_eligible": list(regex.lnfa_cam_eligible),
        "tile_requests": [
            _tile_request_to_json(t) for t in regex.tile_requests
        ],
        "source_states": regex.source_states,
        "unfolded_states": regex.unfolded_states,
        "anchored_start": regex.anchored_start,
        "anchored_end": regex.anchored_end,
    }


def _regex_from_json(doc: dict) -> CompiledRegex:
    try:
        return CompiledRegex(
            regex_id=doc["regex_id"],
            pattern=doc["pattern"],
            mode=CompiledMode(doc["mode"]),
            automaton=(
                automaton_from_json(doc["automaton"])
                if doc["automaton"]
                else None
            ),
            lnfas=tuple(
                LNFA(tuple(_cc_from_json(cc) for cc in labels))
                for labels in doc["lnfas"]
            ),
            lnfa_cam_eligible=tuple(doc["lnfa_cam_eligible"]),
            tile_requests=tuple(
                _tile_request_from_json(t) for t in doc["tile_requests"]
            ),
            source_states=doc["source_states"],
            unfolded_states=doc["unfolded_states"],
            anchored_start=doc.get("anchored_start", False),
            anchored_end=doc.get("anchored_end", False),
        )
    except (KeyError, TypeError, ValueError) as err:
        raise SerializationError(f"malformed regex document: {err}") from err


# -- rulesets ---------------------------------------------------------------


def ruleset_to_json(ruleset: CompiledRuleset) -> dict:
    """CompiledRuleset -> versioned JSON document."""
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "regexes": [_regex_to_json(r) for r in ruleset.regexes],
        "rejected": [list(item) for item in ruleset.rejected],
    }


def ruleset_from_json(doc: dict) -> CompiledRuleset:
    """Versioned JSON document -> CompiledRuleset."""
    if doc.get("format") != FORMAT_NAME:
        raise SerializationError(
            f"not a {FORMAT_NAME} document (format={doc.get('format')!r})"
        )
    if doc.get("version") != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported version {doc.get('version')!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    return CompiledRuleset(
        regexes=tuple(_regex_from_json(r) for r in doc["regexes"]),
        rejected=tuple((p, reason) for p, reason in doc.get("rejected", [])),
    )


def save_ruleset(ruleset: CompiledRuleset, path: str | Path) -> Path:
    """Write a compiled ruleset to ``path`` as JSON."""
    path = Path(path)
    with open(path, "w") as f:
        json.dump(ruleset_to_json(ruleset), f)
    return path


def load_ruleset(path: str | Path) -> CompiledRuleset:
    """Read a compiled ruleset previously written by :func:`save_ruleset`."""
    with open(path) as f:
        doc = json.load(f)
    return ruleset_from_json(doc)


def loads_ruleset(text: str) -> CompiledRuleset:
    """Parse a ruleset from a JSON string."""
    return ruleset_from_json(json.loads(text))


def _fingerprint_default(value):
    if isinstance(value, enum.Enum):
        return value.value
    raise TypeError(f"unhashable fingerprint component: {value!r}")


def scan_fingerprint(
    ruleset,
    hw,
    bin_size: int | None = None,
    fused_layout: str | None = None,
    split_layout: str | None = None,
) -> str:
    """Content hash identifying one scan's execution semantics.

    Covers everything that determines a durable scan's behavior apart
    from the input bytes: the serialized ruleset, the full hardware
    config, the bin size, and this serializer's format version.
    ``fused_layout`` is the fused-ruleset signature (class map + lane
    layout) when the scan runs on the ``fused`` backend, ``None``
    otherwise — a checkpoint written under one fusion layout (or none)
    must never be resumed under another.  ``split_layout`` names the
    input-parallel chunking policy the same way (``None`` when serial);
    split feeds are bit-identical to serial ones, but a checkpoint still
    records the configuration that wrote it so resuming under another
    parallelism level is an explicit rebind, not a silent one.  Same
    idea as the compile-cache key, applied to mid-stream state instead
    of compiler output.  ``split_layout=None`` keeps pre-split
    fingerprints byte-stable.

    When the ruleset contains a DFA-mode regex the fingerprint also
    covers :data:`~repro.core.registry.DFA_FORMAT_VERSION` — a
    checkpoint carrying DFA scanner state must not be restored under a
    different subset-construction/table encoding.  Rulesets without a
    DFA regex keep their pre-DFA fingerprints byte-stable (same
    conditional-key pattern as ``split_layout``).
    """
    doc = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "ruleset": ruleset_to_json(ruleset),
        "hw": dataclasses.asdict(hw),
        "bin_size": bin_size,
        "fused_layout": fused_layout,
    }
    if split_layout is not None:
        doc["split_layout"] = split_layout
    if any(r.mode is CompiledMode.DFA for r in ruleset.regexes):
        from repro.core.registry import DFA_FORMAT_VERSION

        doc["dfa_format"] = DFA_FORMAT_VERSION
    canonical = json.dumps(
        doc,
        sort_keys=True,
        separators=(",", ":"),
        default=_fingerprint_default,
    )
    return hashlib.sha256(canonical.encode()).hexdigest()
