"""Bank-level I/O streaming simulation (Section 3.3).

The RAP bank streams input through a two-level buffer hierarchy:

* the 128-entry ping-pong **Bank Input Buffer** holds a sliding window of
  the stream filled by DMA;
* each array's 8-entry **input FIFO** decouples its consumption from its
  siblings — when one array stalls in a bit-vector-processing phase, the
  others keep draining their FIFOs (the "partially hide the latency
  across arrays" mechanism);
* a **polling arbiter** refills the FIFOs from the window when any array
  is in NBVA mode (otherwise the window is broadcast);
* matches flow through 2-entry **output FIFOs** onto a shared bus into
  the 64-entry ping-pong **Bank Output Buffer**; when it fills, an
  interrupt stalls the bank while the CPU drains it.

This simulator executes that protocol cycle by cycle given each array's
stall schedule and match schedule (both produced by the functional
engines), quantifying effective throughput, buffer occupancies,
DMA back-pressure, and output interrupts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.buffers import Fifo, PingPongBuffer
from repro.hardware.config import DEFAULT_CONFIG, HardwareConfig


@dataclass(frozen=True)
class ArrayStream:
    """One array's demand on the I/O system.

    ``stall_cycles`` maps input symbol index -> extra cycles the array
    spends before consuming the *next* symbol (the bit-vector phase);
    ``report_cycles`` is the set of symbol indices that produce a match
    report.
    """

    name: str
    stall_after: dict[int, int] = field(default_factory=dict)
    reports_at: frozenset[int] = frozenset()


@dataclass
class BankIoResult:
    """What the bank-level run measured."""

    input_symbols: int
    total_cycles: int
    dma_backpressure_cycles: int
    array_starved_cycles: dict[str, int]
    array_finish_cycles: dict[str, int]
    output_interrupts: int
    interrupt_stall_cycles: int
    reports_delivered: int
    mean_input_occupancy: float
    mean_output_occupancy: float

    @property
    def effective_throughput(self) -> float:
        """Symbols per cycle actually sustained by the whole bank."""
        return self.input_symbols / self.total_cycles if self.total_cycles else 0.0


class BankSimulator:
    """Cycle-level simulation of one bank's streaming protocol."""

    def __init__(
        self,
        hw: HardwareConfig = DEFAULT_CONFIG,
        *,
        dma_symbols_per_cycle: int = 4,
        interrupt_drain_cycles: int = 32,
        bus_reports_per_cycle: int = 1,
    ):
        self.hw = hw
        self.dma_symbols_per_cycle = dma_symbols_per_cycle
        self.interrupt_drain_cycles = interrupt_drain_cycles
        self.bus_reports_per_cycle = bus_reports_per_cycle

    def run(self, streams: list[ArrayStream], input_symbols: int) -> BankIoResult:
        """Stream ``input_symbols`` through the bank protocol."""
        if not streams:
            raise ValueError("a bank needs at least one array stream")
        if len(streams) > self.hw.arrays_per_bank:
            raise ValueError(
                f"{len(streams)} arrays exceed the bank's "
                f"{self.hw.arrays_per_bank}"
            )
        hw = self.hw
        # The Bank Input Buffer is a multi-reader sliding window over the
        # stream: every array reads each symbol, so a slot retires only
        # once the slowest array has passed it.  Model it as the interval
        # [min(fed), produced) bounded by the buffer capacity; the
        # ping-pong organisation means DMA refills in half-buffer bursts.
        window_capacity = hw.bank_input_buffer_entries
        window_occupancy_sum = 0
        out_buffer = PingPongBuffer(hw.bank_output_buffer_entries, "bank-out")
        in_fifos = {
            s.name: Fifo(hw.array_input_fifo_entries, f"{s.name}-in")
            for s in streams
        }
        out_fifos = {
            s.name: Fifo(hw.array_output_fifo_entries, f"{s.name}-out")
            for s in streams
        }

        produced = 0  # symbols DMA'd into the window so far
        fed = {s.name: 0 for s in streams}  # symbols moved into each FIFO
        consumed = {s.name: 0 for s in streams}
        stall_left = {s.name: 0 for s in streams}
        starved = {s.name: 0 for s in streams}
        finish = {s.name: 0 for s in streams}
        # The shared window can only advance past symbols every array has
        # read; we emulate that by bounding the fastest reader to the
        # window size ahead of the slowest.
        dma_backpressure = 0
        interrupts = 0
        interrupt_stall = 0
        drain_left = 0
        delivered = 0

        cycle = 0
        guard = (input_symbols + 1) * (
            4 + max(
                (max(s.stall_after.values()) if s.stall_after else 0)
                for s in streams
            )
        ) + self.interrupt_drain_cycles * (input_symbols + 8)
        while any(consumed[s.name] < input_symbols for s in streams):
            cycle += 1
            if cycle > guard:
                raise RuntimeError("bank simulation failed to make progress")

            # CPU interrupt drain freezes the whole bank.
            if drain_left > 0:
                drain_left -= 1
                interrupt_stall += 1
                out_buffer.observe()
                continue

            # 1. DMA refill of the sliding window, bounded so the fastest
            # array never outruns the slowest by more than the window.
            window_tail = min(fed.values())
            room = window_capacity - (produced - window_tail)
            allowed = min(
                self.dma_symbols_per_cycle,
                max(room, 0),
                input_symbols - produced,
            )
            if allowed > 0:
                produced += allowed
            elif produced < input_symbols and room <= 0:
                dma_backpressure += 1

            # 2. Polling arbiter: move symbols from the window into array
            # FIFOs (round-robin, one per array per cycle), each array
            # reading through its own cursor.
            for stream in streams:
                fifo = in_fifos[stream.name]
                if fifo.full:
                    continue
                if fed[stream.name] < produced:
                    fifo.push(fed[stream.name])
                    fed[stream.name] += 1

            # 3. Arrays consume one symbol per cycle unless stalled.
            for stream in streams:
                name = stream.name
                if consumed[name] >= input_symbols:
                    continue
                if stall_left[name] > 0:
                    stall_left[name] -= 1
                    continue
                fifo = in_fifos[name]
                if fifo.empty:
                    starved[name] += 1
                    continue
                index = fifo.peek()
                if index in stream.reports_at and out_fifos[name].full:
                    # report back-pressure: hold the symbol until the bus
                    # frees the output FIFO
                    out_fifos[name].stats.rejected += 1
                    continue
                fifo.pop()
                consumed[name] += 1
                if consumed[name] >= input_symbols:
                    finish[name] = cycle
                stall_left[name] = stream.stall_after.get(index, 0)
                if index in stream.reports_at:
                    out_fifos[name].push(index)

            # 4. Output bus: array FIFOs -> bank output buffer.
            moved = 0
            for stream in streams:
                fifo = out_fifos[stream.name]
                while not fifo.empty and moved < self.bus_reports_per_cycle:
                    if out_buffer.back_free == 0:
                        out_buffer.try_swap()
                    if out_buffer.back_free == 0:
                        break
                    out_buffer.fill([fifo.pop()])
                    moved += 1

            # 5. Interrupt when the output buffer can no longer absorb
            # reports: the filling half is full while the other half
            # still holds undrained data (a swap cannot help).
            out_buffer.try_swap()
            if out_buffer.back_free == 0 and out_buffer.front_available > 0:
                total_out = (
                    out_buffer.front_available + out_buffer.half_capacity
                )
                interrupts += 1
                drain_left = self.interrupt_drain_cycles
                delivered += total_out
                out_buffer = PingPongBuffer(
                    hw.bank_output_buffer_entries, "bank-out"
                )

            window_occupancy_sum += produced - min(fed.values())
            out_buffer.observe()
            for fifo in in_fifos.values():
                fifo.observe()

        # final drain of whatever reports remain buffered
        delivered += out_buffer.front_available + (
            out_buffer.half_capacity - out_buffer.back_free
        )
        delivered += sum(len(f) for f in out_fifos.values())

        return BankIoResult(
            input_symbols=input_symbols,
            total_cycles=cycle,
            dma_backpressure_cycles=dma_backpressure,
            array_starved_cycles=dict(starved),
            array_finish_cycles=dict(finish),
            output_interrupts=interrupts,
            interrupt_stall_cycles=interrupt_stall,
            reports_delivered=delivered,
            mean_input_occupancy=window_occupancy_sum / cycle if cycle else 0.0,
            mean_output_occupancy=out_buffer.stats.mean_occupancy,
        )


def streams_from_activities(
    names_and_activities, depth_of: dict[str, int]
) -> list[ArrayStream]:
    """Build :class:`ArrayStream` descriptors from regex activities.

    ``names_and_activities`` yields ``(array_name, [RegexActivity, ...])``;
    each array's stall schedule is the union of its regexes' bit-vector
    phases at its configured depth, and its report schedule the union of
    their match positions.
    """
    streams = []
    for name, activities in names_and_activities:
        depth = depth_of.get(name, 0)
        stalls: dict[int, int] = {}
        reports: set[int] = set()
        for activity in activities:
            for index in activity.bv_cycle_indices:
                stalls[index] = depth
            reports.update(activity.matches)
        streams.append(
            ArrayStream(
                name=name,
                stall_after=stalls,
                reports_at=frozenset(reports),
            )
        )
    return streams
