"""BVAP baseline simulator (Wen et al., ASPLOS 2024).

BVAP is the SotA accelerator dedicated to bounded repetitions: CAMA-style
tiles hold the control states, and fixed-size Bit Vector Modules (BVMs) —
dedicated BV SRAM plus a semi-parallel multi-bit routing switch (MFCB) —
execute the bit-vector actions.  Two structural differences against
RAP's NBVA mode drive the paper's comparison:

* **fixed allocation**: every BV occupies one or more fixed 256-bit slots
  and BVMs come in fixed 8-slot modules, so workloads with small or few
  bit vectors strand capacity (the area overhead of Table 2);
* **dedicated datapath**: the BVM pipeline is cheaper per BV update than
  RAP's repurposed CAM columns (the ~20% energy edge of Table 2), and its
  bit-vector phase has a fixed latency instead of RAP's chosen depth.

BVAP executes the same NBVA-compiled rulesets as RAP (it was the paper
whose compiler RAP inherits); plain-NFA regexes are also accepted and run
on the CAMA-style portion with the BVM idle — the underutilization the
reconfigurable design eliminates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.program import CompiledMode, CompiledRegex, CompiledRuleset
from repro.core.trace import ActivityTrace
from repro.hardware.circuits import BVAP_CLOCK_GHZ, TABLE1, CircuitLibrary
from repro.hardware.config import DEFAULT_CONFIG, HardwareConfig
from repro.hardware.encoding import codes_needed
from repro.hardware.energy import EnergyLedger
from repro.simulators.asic_base import cama_params, shared_trace
from repro.simulators.result import SimulationResult

# Fixed BVM provisioning (the inflexibility the paper contrasts with
# RAP's dynamic allocation): one module is physically attached per
# TILES_PER_BVM tiles whether or not the workload uses it, and extra
# modules are provisioned when counting demand exceeds the attached ones.
BV_SLOT_BITS = 256
SLOTS_PER_BVM = 8
TILES_PER_BVM = 1
BV_PHASE_CYCLES = 8  # fixed bit-vector-processing pipeline latency


@dataclass
class _BvapDemand:
    """Structural needs of one regex on BVAP.

    Control states pack into CAM columns shared across regexes (the
    CAMA packing); only the column count matters for placement.
    """

    cc_columns: int
    bv_slots: int


def bvap_demand(compiled: CompiledRegex, hw: HardwareConfig) -> _BvapDemand:
    """One regex's CAM-column and BV-slot needs on BVAP."""
    assert compiled.automaton is not None
    cc_columns = sum(
        codes_needed(pos.cc) for pos in compiled.automaton.positions
    )
    slots = 0
    for group in compiled.automaton.groups:
        per_position = -(-group.width // BV_SLOT_BITS)
        slots += per_position * len(group.positions)
    return _BvapDemand(cc_columns=cc_columns, bv_slots=slots)


class BVAPSimulator:
    """Cycle-level BVAP simulation."""

    def __init__(
        self,
        hw: HardwareConfig = DEFAULT_CONFIG,
        circuits: CircuitLibrary = TABLE1,
    ):
        import dataclasses

        self.hw = hw
        self.circuits = circuits
        # BVAP's control path sits between CAMA's single-mode sequencer
        # and RAP's reconfiguration controller: it manages the event-
        # driven bit-vector phase, its three-stage pipeline, and the
        # two-level input buffering (Section 2.2).
        base = cama_params(circuits)
        self.params = dataclasses.replace(
            base,
            name="BVAP",
            local_ctrl_pj=1.5,
            global_ctrl_pj=2.0,
            tile_area_um2=base.tile_area_um2 + 1200.0,
            tile_leak_uw=base.tile_leak_uw + 10.0,
        )
        # One BVM: BV SRAM bank + semi-parallel MFCB routing switch +
        # sequencing.  The MFCB is a multi-bit crossbar over the slots and
        # dominates the module (modeled as half a 256x256 FCB).
        self.bvm_area_um2 = (
            circuits.sram_128.area_um2 + circuits.sram_256.area_um2 * 0.5 + 500.0
        )
        self.bvm_leak_uw = (
            circuits.sram_128.leakage_ua + circuits.sram_256.leakage_ua * 0.5
        ) * 0.9
        self.bvm_idle_pj = 0.5  # per module per cycle (clocking/precharge)

    def run(
        self,
        ruleset: CompiledRuleset,
        data: bytes,
        trace: ActivityTrace | None = None,
    ) -> SimulationResult:
        """Simulate the ruleset on BVAP over ``data``.

        ``trace`` optionally shares functional scans with the other
        architectures' runs over the same input.
        """
        for regex in ruleset:
            if regex.mode is CompiledMode.LNFA:
                raise ValueError("BVAP has no LNFA mode; compile to NFA/NBVA")
        ledger = EnergyLedger()
        matches: dict[int, list[int]] = {}
        n = len(data)

        demands = {r.regex_id: bvap_demand(r, self.hw) for r in ruleset}
        trace = shared_trace(data, trace)
        activities = {
            r.regex_id: trace.regex_activity(r) for r in ruleset
        }
        for activity in activities.values():
            matches[activity.regex_id] = activity.matches

        # First-fit array packing by CAM-column demand (a regex stays in
        # one array); columns pool across regexes like CAMA tiles do.
        array_columns = self.hw.tiles_per_array * self.hw.cam_cols
        arrays: list[list[int]] = []
        room: list[int] = []
        order = sorted(ruleset, key=lambda r: -demands[r.regex_id].cc_columns)
        for regex in order:
            need = demands[regex.regex_id].cc_columns
            if need > array_columns:
                raise ValueError(
                    f"regex {regex.regex_id} needs {need} columns on BVAP"
                )
            for idx in range(len(arrays)):
                if room[idx] >= need:
                    arrays[idx].append(regex.regex_id)
                    room[idx] -= need
                    break
            else:
                arrays.append([regex.regex_id])
                room.append(array_columns - need)

        p = self.params
        worst_cycles = n
        total_stalls = 0
        compiled_by_id = {r.regex_id: r for r in ruleset}
        for members in arrays:
            columns = sum(demands[rid].cc_columns for rid in members)
            tiles = max(1, -(-columns // self.hw.cam_cols))
            slots = sum(demands[rid].bv_slots for rid in members)
            # Physically attached modules plus any demand overflow; idle
            # modules cost area and leakage but are power-gated.
            attached = -(-tiles // TILES_PER_BVM)
            modules = max(attached, -(-slots // SLOTS_PER_BVM) if slots else 0)
            active_modules = -(-slots // SLOTS_PER_BVM) if slots else 0

            overhead_units = tiles / self.hw.tiles_per_array
            ledger.add_area("tile", p.tile_area_um2, tiles)
            ledger.add_area(
                "array-overhead", p.array_overhead_um2, overhead_units
            )
            ledger.add_area("bvm", self.bvm_area_um2, modules)
            ledger.add_leakage("tile", p.tile_leak_uw, tiles)
            ledger.add_leakage(
                "array-overhead", p.array_leak_uw, overhead_units
            )
            ledger.add_leakage("bvm", self.bvm_leak_uw, modules)

            stall_cycles: set[int] = set()
            mean_act = 0.0
            total_states = 0
            for rid in members:
                activity = activities[rid]
                compiled = compiled_by_id[rid]
                mean_act += activity.mean_activity
                total_states += max(compiled.states, 1)
                # Dedicated BVM pipeline per triggering cycle.
                slot_frac = min(
                    1.0, demands[rid].bv_slots / SLOTS_PER_BVM
                ) if demands[rid].bv_slots else 0.0
                per_phase = BV_PHASE_CYCLES * (
                    2 * self.circuits.sram_128.energy(slot_frac * 0.3)
                    + self.circuits.sram_128.energy(slot_frac * 0.3)
                )
                ledger.charge("bv-processing", per_phase, activity.bv_phase_cycles)
                stall_cycles.update(activity.bv_cycle_indices)
            act = min(1.0, mean_act / total_states) if total_states else 0.0

            ledger.charge("state-matching", p.match_pj, n * tiles)
            ledger.charge("state-transition", p.switch_pj(act), n * tiles)
            ledger.charge("local-control", p.local_ctrl_pj, n * tiles)
            ledger.charge("global-control", p.global_ctrl_pj, n)
            ledger.charge("bvm-idle", self.bvm_idle_pj, n * active_modules)

            stalls = BV_PHASE_CYCLES * len(stall_cycles)
            total_stalls += stalls
            worst_cycles = max(worst_cycles, n + stalls)

        metrics = ledger.metrics(
            cycles=worst_cycles, input_symbols=n, clock_ghz=BVAP_CLOCK_GHZ
        )
        return SimulationResult(
            architecture="BVAP",
            metrics=metrics,
            matches=matches,
            energy_breakdown_pj=ledger.energy_breakdown(),
            area_breakdown_um2=ledger.area_breakdown(),
            stall_cycles=total_stalls,
            arrays=len(arrays),
            tiles=max(
                1,
                -(
                    -sum(d.cc_columns for d in demands.values())
                    // self.hw.cam_cols
                ),
            )
            if demands
            else 0,
        )
