"""Cache Automaton (CA) baseline simulator (Subramaniyan et al., MICRO'17).

CA repurposes last-level-cache slices: state matching reads 256-wide
sense-amplifier arrays and transitions traverse 256x256 switches.  Per
*state*, matching is cheaper than a CAM search (one wide read amortized
over twice as many states), but the full-size crossbars make CA the
largest design per state — the paper's tables show CA with the lowest
NFA energy of the baselines and the highest area.  CA clocks at
1.82 GHz.

CA's geometry differs from the CAM-based designs, so it compiles and
maps with its own :class:`HardwareConfig` (256-state tiles, 8 tiles per
array); :func:`ca_hardware_config` builds it.
"""

from __future__ import annotations

from repro.hardware.circuits import CA_CLOCK_GHZ, TABLE1, CircuitLibrary
from repro.hardware.config import HardwareConfig
from repro.simulators.asic_base import ApStyleSimulator, ArchParams


def ca_hardware_config() -> HardwareConfig:
    """CA's geometry: 256-state tiles, 8 per array, one global crossbar."""
    return HardwareConfig(
        cam_rows=256,
        cam_cols=256,
        local_switch_dim=256,
        tiles_per_array=8,
        global_switch_dim=256,
        clock_ghz=CA_CLOCK_GHZ,
    )


def ca_params(circuits: CircuitLibrary = TABLE1) -> ArchParams:
    # Matching: one 256-row sense-amp read per tile-cycle.  The energy is
    # a low-activity access of the 256x256 array (a single wordline).
    """CA's cost structure from the shared circuit library."""
    match_pj = circuits.sram_256.energy(0.05)
    # Switch: the full 256x256 crossbar; CA shares sense amplifiers and
    # drivers between the match array and the switch, which we reflect as
    # a half-array area charge for the switch (calibrated to the paper's
    # ~1.5x area vs CAMA).
    return ArchParams(
        name="CA",
        clock_ghz=CA_CLOCK_GHZ,
        match_pj=match_pj,
        switch_min_pj=circuits.sram_256.energy_min_pj,
        switch_max_pj=circuits.sram_256.energy_max_pj,
        local_ctrl_pj=0.5,
        global_ctrl_pj=1.0,
        tile_area_um2=circuits.sram_256.area_um2 * 1.5 + 500.0,
        array_overhead_um2=circuits.sram_256.area_um2 + 700.0,
        tile_leak_uw=circuits.sram_256.leakage_ua * 1.5 * 0.9,
        array_leak_uw=circuits.sram_256.leakage_ua * 0.9,
        gswitch_min_pj=circuits.sram_256.energy_min_pj,
        gswitch_max_pj=circuits.sram_256.energy_max_pj,
        wire_pj=circuits.global_wire_mm.energy() * 1.0,  # longer LLC wires
    )


class CASimulator(ApStyleSimulator):
    """NFA-only execution with CA's cost structure and geometry.

    Rulesets passed to :meth:`run` must have been compiled **and mapped**
    with :func:`ca_hardware_config` so tile requests match CA's 256-state
    tiles.
    """

    def __init__(self, circuits: CircuitLibrary = TABLE1):
        super().__init__(ca_params(circuits), ca_hardware_config())
