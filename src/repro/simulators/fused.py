"""Ruleset-wide fused execution of the functional collectors.

This is the simulator-layer half of the ``fused`` backend
(:mod:`repro.core.fused` is the machine itself).  Two entry points:

* :class:`FusedBinFeeder` steps *every* LNFA bin of a ruleset through
  one lane-packed machine per segment and folds the resulting activity
  back into the bins' ordinary
  :class:`~repro.simulators.activity.BinActivityCollector` objects.
  The feeder itself is stateless between feeds — it loads the packed
  word from the collectors' :class:`~repro.core.KernelState` and writes
  the continuation back — so durable-scan snapshot/restore documents
  are byte-identical to the unfused path and a SIGKILL-resume replays
  the same integer stream.
* :class:`FusedRun` reproduces
  :meth:`~repro.simulators.rap.RAPSimulator.collect_activities` for a
  whole run: the input is translated once through the shared alphabet
  classes, NFA-mode regexes scan as class-indexed mask stacks (deduped
  by functional fingerprint exactly like
  :class:`~repro.core.trace.ActivityTrace`), LNFA bins run through the
  feeder, and NBVA-mode regexes fall back to the exact pure scan (their
  counter dataflow is not a bitset program).

Import this module lazily, only after the backend registry has resolved
``fused`` — it requires NumPy.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.automata.nfa import NFASimulator
from repro.compiler.program import CompiledMode, CompiledRuleset
from repro.core.fused import (
    FusedRuleset,
    int_from_words,
    popcount_words,
    words_from_int,
)
from repro.core.state import KernelState
from repro.core.trace import regex_fingerprint
from repro.hardware.config import HardwareConfig, TileMode
from repro.mapping.mapper import Mapping
from repro.simulators.activity import (
    BinActivityCollector,
    RegexActivity,
    collect_regex_activity,
)
from repro.simulators.rap import RunActivity


class FusedBinFeeder:
    """Feed many bin collectors through one lane-packed machine.

    ``collectors`` are the ruleset's LNFA bins in a fixed order; their
    packed programs must equal ``fused.shift_programs`` (a bins-only
    :class:`FusedRuleset` is compiled when none is supplied).  Each
    :meth:`feed` accumulates, per bin, the exact deltas the collector's
    own ``feed`` would have produced for the same segment.
    """

    def __init__(
        self,
        collectors: list[BinActivityCollector],
        fused: FusedRuleset | None = None,
    ):
        self._collectors = list(collectors)
        programs = [c.layout.packed.program for c in self._collectors]
        if fused is None:
            fused = FusedRuleset(programs)
        self._fused = fused
        lanes = fused.lanes

        # Flattened (bin, tile) geometry: one full-width word mask per
        # tile, stacked into a 2-D lane matrix for the vectorized sink.
        owners: list[tuple[int, int]] = []
        words: list[np.ndarray] = []
        for j, collector in enumerate(self._collectors):
            base = fused.bases[j]
            for t, mask in enumerate(collector.layout.tile_masks):
                owners.append((j, t))
                words.append(words_from_int(mask << base, lanes))
        self._tile_owners = owners
        self._tile_words = (
            np.vstack(words)
            if words
            else np.zeros((0, max(lanes, 1)), dtype=np.uint64)
        )
        self._tile_starts: list[int] = []
        start = 0
        for collector in self._collectors:
            self._tile_starts.append(start)
            start += len(collector.layout.tile_masks)

        # Global final-bit → (bin, regex_id), for match decomposition.
        finals: dict[int, tuple[int, int]] = {}
        for j, collector in enumerate(self._collectors):
            base = fused.bases[j]
            for bit, rid in collector.layout.finals.items():
                finals[base + bit] = (j, rid)
        self._finals = finals
        self._final_words = words_from_int(fused.final, max(lanes, 1))
        self._end_anchored = fused.end_anchored

    @property
    def signature(self) -> str:
        """The fused compilation's layout digest (class map + lanes)."""
        return self._fused.signature

    def feed(self, segment: bytes, *, at_end: bool = True) -> None:
        """Consume the next stream segment on every bin at once."""
        if not segment:
            return
        collectors = self._collectors
        if not collectors:
            return
        offsets = {c.offset for c in collectors}
        if len(offsets) != 1:
            raise ValueError(
                "fused feeding requires all bins at one stream offset, "
                f"got {sorted(offsets)}"
            )
        stream_base = collectors[0].offset
        fused = self._fused
        n = len(segment)
        last = n - 1
        tile_words = self._tile_words
        tile_count = len(self._tile_owners)
        tile_cycles = [0] * tile_count
        tile_bits = [0] * tile_count
        matches: list[dict[int, list[int]]] = [{} for _ in collectors]
        finals = self._finals
        final_words = self._final_words
        end_anchored = self._end_anchored

        def sink(positions: np.ndarray, rows: np.ndarray) -> None:
            for m in range(tile_count):
                live = rows & tile_words[m]
                active = live.any(axis=1)
                count = int(active.sum())
                if not count:
                    continue
                tile_cycles[m] += count
                tile_bits[m] += int(popcount_words(live).sum())
            hits = rows & final_words
            for r in np.flatnonzero(hits.any(axis=1)):
                position = int(positions[r])
                word = int_from_words(hits[r])
                if not (at_end and position == last):
                    word &= ~end_anchored
                while word:
                    low = word & -word
                    word ^= low
                    j, rid = finals[low.bit_length() - 1]
                    matches[j].setdefault(rid, []).append(
                        stream_base + position
                    )

        packed = fused.pack([c.state.states for c in collectors])
        packed = fused.lane_feed(
            fused.translate(segment),
            packed,
            fresh=stream_base == 0,
            at_end=at_end,
            sink=sink,
        )

        for j, collector in enumerate(collectors):
            start = self._tile_starts[j]
            tiles = len(collector.layout.tile_masks)
            # Tile 0 is never power-gated: it accrues a cycle per input
            # symbol regardless of liveness (only its *bits* come from
            # live cycles) — the closed form of the per-cycle loop.
            cycles_delta = [n] + tile_cycles[start + 1 : start + tiles]
            bits_delta = tile_bits[start : start + tiles]
            collector.apply_segment(
                cycles=n,
                tile_cycles=cycles_delta,
                tile_bits=bits_delta,
                matches=matches[j],
                state=KernelState(
                    offset=stream_base + n,
                    states=fused.extract(packed, j),
                ),
            )


class FusedRun:
    """One-shot fused activity collection for a mapped ruleset."""

    def __init__(
        self, ruleset: CompiledRuleset, mapping: Mapping, hw: HardwareConfig
    ):
        self._ruleset = ruleset
        self._mapping = mapping
        self._hw = hw

    def collect(self, data: bytes) -> RunActivity:
        """The run's :class:`RunActivity`, bit-identical to the unfused
        :meth:`~repro.simulators.rap.RAPSimulator.collect_activities`."""
        ruleset = self._ruleset
        mapping = self._mapping

        bin_keys: list[tuple[int, int]] = []
        collectors: list[BinActivityCollector] = []
        for index, array in enumerate(mapping.arrays):
            if array.mode is not TileMode.LNFA:
                continue
            for bin_index, bin_obj in enumerate(array.bins):
                bin_keys.append((index, bin_index))
                collectors.append(BinActivityCollector(bin_obj, self._hw))

        # One scan per distinct functional fingerprint, exactly like
        # ActivityTrace: NFA regexes become GATHER units of the fused
        # compilation, NBVA regexes keep the exact pure-Python scan.
        nfa_unit_of: dict[object, int] = {}
        nfa_programs = []
        for compiled in ruleset:
            if compiled.mode is not CompiledMode.NFA:
                continue
            key = regex_fingerprint(compiled)
            if key in nfa_unit_of:
                continue
            nfa_unit_of[key] = len(nfa_programs)
            nfa_programs.append(
                NFASimulator(compiled.automaton).program(
                    anchored_start=compiled.anchored_start,
                    anchored_end=compiled.anchored_end,
                )
            )

        fused = FusedRuleset(
            [c.layout.packed.program for c in collectors], nfa_programs
        )
        tin = fused.translate(data)

        nfa_results = {
            key: fused.scan_unit(index, tin)
            for key, index in nfa_unit_of.items()
        }
        nbva_results: dict[object, RegexActivity] = {}
        regex: dict[int, RegexActivity] = {}
        for compiled in ruleset:
            if compiled.mode is CompiledMode.LNFA:
                continue
            key = regex_fingerprint(compiled)
            if compiled.mode is CompiledMode.NFA:
                events, stats = nfa_results[key]
                regex[compiled.regex_id] = RegexActivity(
                    regex_id=compiled.regex_id,
                    mode=compiled.mode,
                    cycles=stats.cycles,
                    matches=[i for i, _ in events],
                    active_state_cycles=stats.active_states,
                )
                continue
            found = nbva_results.get(key)
            if found is None:
                found = collect_regex_activity(compiled, data)
                nbva_results[key] = found
            regex[compiled.regex_id] = replace(
                found,
                regex_id=compiled.regex_id,
                matches=list(found.matches),
                bv_cycle_indices=list(found.bv_cycle_indices),
            )

        if collectors:
            FusedBinFeeder(collectors, fused).feed(data, at_end=True)
        lnfa_bins: dict[int, list] = {
            index: []
            for index, array in enumerate(mapping.arrays)
            if array.mode is TileMode.LNFA
        }
        for (index, _), collector in zip(bin_keys, collectors):
            lnfa_bins[index].append(collector.activity())
        return RunActivity(
            regex=regex, lnfa_bins=lnfa_bins, input_symbols=len(data)
        )
