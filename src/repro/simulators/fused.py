"""Ruleset-wide fused execution of the functional collectors.

This is the simulator-layer half of the ``fused`` backend
(:mod:`repro.core.fused` is the machine itself).  Three entry points:

* :class:`FusedLaneScanner` steps the lane-packed machine over one
  span of a stream and returns the per-bin activity deltas
  (:class:`LaneDelta`) plus the exit state.  Spans may start mid-stream
  from an explicit entry word or from a warm-up window, which is what
  both the durable feeder and the input-parallel split engine build on.
* :class:`FusedBinFeeder` steps *every* LNFA bin of a ruleset through
  one lane-packed machine per segment and folds the resulting activity
  back into the bins' ordinary
  :class:`~repro.simulators.activity.BinActivityCollector` objects.
  The feeder itself is stateless between feeds — it loads the packed
  word from the collectors' :class:`~repro.core.KernelState` and writes
  the continuation back — so durable-scan snapshot/restore documents
  are byte-identical to the unfused path and a SIGKILL-resume replays
  the same integer stream.  With ``input_jobs > 1`` each segment is
  split into warm-up-window chunks scanned in parallel; the folded
  deltas (and therefore every snapshot) stay byte-identical to the
  serial feed.
* :class:`FusedRun` reproduces
  :meth:`~repro.simulators.rap.RAPSimulator.collect_activities` for a
  whole run: the input is translated once through the shared alphabet
  classes, NFA-mode regexes scan as class-indexed mask stacks (deduped
  by functional fingerprint exactly like
  :class:`~repro.core.trace.ActivityTrace`), LNFA bins run through the
  feeder, and NBVA-mode regexes fall back to the exact pure scan (their
  counter dataflow is not a bitset program).

Import this module lazily, only after the backend registry has resolved
``fused`` — it requires NumPy.
"""

from __future__ import annotations

import logging
import pickle
from dataclasses import dataclass, replace

import numpy as np

from repro.automata.nfa import NFASimulator
from repro.compiler.program import CompiledMode, CompiledRuleset
from repro.core.fused import (
    FusedRuleset,
    int_from_words,
    popcount_words,
    words_from_int,
)
from repro.core.registry import NATIVE_FORMAT_VERSION, resolve_backend
from repro.core.state import KernelState
from repro.core.trace import regex_fingerprint
from repro.hardware.config import HardwareConfig, TileMode
from repro.mapping.mapper import Mapping
from repro.simulators.activity import (
    BinActivityCollector,
    RegexActivity,
    _BinLayout,
    collect_regex_activity,
)
from repro.simulators.rap import RunActivity

log = logging.getLogger(__name__)


@dataclass
class LaneDelta:
    """Per-bin activity deltas of one lane-machine span.

    Everything a :meth:`BinActivityCollector.apply_segment` fold needs,
    as plain integers and lists (picklable, mergeable in chunk order):
    owned cycle count, per-bin per-tile wake-ups (tile 0 already holds
    the never-gated owned count), per-bin global match positions, and
    the exit state continuing the stream.
    """

    cycles: int
    tile_cycles: list[list[int]]
    tile_bits: list[list[int]]
    matches: list[dict[int, list[int]]]
    exit_states: list[int]
    exit_packed: int


class FusedLaneScanner:
    """Scan spans of the lane-packed machine, producing per-bin deltas.

    Built from the bins' packed-machine layouts (in bin order); the
    fused compilation is shared with the caller's when supplied, so the
    alphabet classes and prefilter match the rest of the run.  The
    scanner is stateless and picklable — parallel chunk workers each
    scan their own span of the same machine.
    """

    def __init__(
        self, layouts: list[_BinLayout], fused: FusedRuleset | None = None
    ):
        self._layouts = list(layouts)
        programs = [layout.packed.program for layout in self._layouts]
        if fused is None:
            fused = FusedRuleset(programs)
        self._fused = fused
        lanes = fused.lanes

        # Flattened (bin, tile) geometry: one full-width word mask per
        # tile, stacked into a 2-D lane matrix for the vectorized sink.
        owners: list[tuple[int, int]] = []
        words: list[np.ndarray] = []
        for j, layout in enumerate(self._layouts):
            base = fused.bases[j]
            for t, mask in enumerate(layout.tile_masks):
                owners.append((j, t))
                words.append(words_from_int(mask << base, lanes))
        self._tile_owners = owners
        self._tile_words = (
            np.vstack(words)
            if words
            else np.zeros((0, max(lanes, 1)), dtype=np.uint64)
        )
        self._tile_starts: list[int] = []
        start = 0
        for layout in self._layouts:
            self._tile_starts.append(start)
            start += len(layout.tile_masks)

        # Global final-bit → (bin, regex_id), for match decomposition.
        finals: dict[int, tuple[int, int]] = {}
        for j, layout in enumerate(self._layouts):
            base = fused.bases[j]
            for bit, rid in layout.finals.items():
                finals[base + bit] = (j, rid)
        self._finals = finals
        self._final_words = words_from_int(fused.final, max(lanes, 1))
        self._end_anchored = fused.end_anchored

        # The warm-up window: a packed entry bit can only influence the
        # word while riding its own member's shift chain, so any state
        # is forgotten after the longest member's length.
        warm = 1
        for layout in self._layouts:
            for lnfa in layout.packed.patterns:
                warm = max(warm, len(lnfa))
        self.warm = warm

        # Native-codegen attachment: decided when the scanner is built
        # (workers inherit the decision through pickling), compiled and
        # loaded lazily on the first scan.  Build failures fall back to
        # the interpreted path with identical results.
        self._native_requested = (
            fused.lanes > 0 and resolve_backend() == "native"
        )
        self._native = None
        self._native_tried = False

    def __getstate__(self):
        # dlopen'd library handles are process-local; chunk workers
        # rebuild them from the on-disk shared-object cache.
        state = self.__dict__.copy()
        state["_native"] = None
        state["_native_tried"] = False
        return state

    def _native_scanner(self):
        if not self._native_requested:
            return None
        if not self._native_tried:
            self._native_tried = True
            try:
                from repro.core.native import NativeLaneScanner

                self._native = NativeLaneScanner(
                    self._fused, self._tile_words
                )
            except Exception as err:
                log.debug("native lane kernel unavailable: %s", err)
                self._native = None
        return self._native

    @property
    def native_active(self) -> bool:
        """Whether scans run the compiled lane kernel (builds lazily)."""
        return self._native_scanner() is not None

    @property
    def fused(self) -> FusedRuleset:
        """The shared fused compilation this scanner steps."""
        return self._fused

    @property
    def signature(self) -> str:
        """The fused compilation's layout digest (class map + lanes)."""
        return self._fused.signature

    @property
    def bin_count(self) -> int:
        """Number of bins packed into the lane machine."""
        return len(self._layouts)

    def empty_delta(self, entry: int = 0) -> LaneDelta:
        """The delta of a zero-length span (merge identity)."""
        fused = self._fused
        return LaneDelta(
            cycles=0,
            tile_cycles=[
                [0] * len(layout.tile_masks) for layout in self._layouts
            ],
            tile_bits=[
                [0] * len(layout.tile_masks) for layout in self._layouts
            ],
            matches=[{} for _ in self._layouts],
            exit_states=[
                fused.extract(entry, j) for j in range(len(self._layouts))
            ],
            exit_packed=entry,
        )

    def scan(
        self,
        segment: bytes,
        *,
        entry: int = 0,
        fresh: bool,
        at_end: bool,
        base: int = 0,
        stats_from: int = 0,
        tin=None,
    ) -> LaneDelta:
        """One span of the stream as its per-bin activity deltas.

        ``entry`` is the packed word entering the span (ignored when
        ``fresh``), ``base`` the span's global offset (match positions
        are globalized against it), and ``stats_from`` the span-local
        index of the first owned byte — the warm-up prefix drives the
        word but prices nothing.  ``at_end`` marks the true stream end
        (end-anchored finals fire nowhere else).
        """
        n = len(segment)
        if n == 0:
            return self.empty_delta(entry)
        fused = self._fused
        native = self._native_scanner()
        if native is not None:
            if tin is None:
                tin = fused.translate(segment)
            return self._assemble_native(
                native.scan(
                    tin.cls_bytes,
                    entry=entry,
                    fresh=fresh,
                    at_end=at_end,
                    stats_from=stats_from,
                ),
                n,
                base,
                stats_from,
            )
        last = n - 1
        tile_words = self._tile_words
        tile_count = len(self._tile_owners)
        tile_cycles = [0] * tile_count
        tile_bits = [0] * tile_count
        matches: list[dict[int, list[int]]] = [{} for _ in self._layouts]
        finals = self._finals
        final_words = self._final_words
        end_anchored = self._end_anchored

        def sink(positions: np.ndarray, rows: np.ndarray) -> None:
            for m in range(tile_count):
                live = rows & tile_words[m]
                active = live.any(axis=1)
                count = int(active.sum())
                if not count:
                    continue
                tile_cycles[m] += count
                tile_bits[m] += int(popcount_words(live).sum())
            hits = rows & final_words
            for r in np.flatnonzero(hits.any(axis=1)):
                position = int(positions[r])
                word = int_from_words(hits[r])
                if not (at_end and position == last):
                    word &= ~end_anchored
                while word:
                    low = word & -word
                    word ^= low
                    j, rid = finals[low.bit_length() - 1]
                    matches[j].setdefault(rid, []).append(base + position)

        if tin is None:
            tin = fused.translate(segment)
        packed = fused.lane_feed(
            tin,
            entry,
            fresh=fresh,
            at_end=at_end,
            sink=sink,
            stats_from=stats_from,
        )

        owned = n - max(0, stats_from)
        per_bin_cycles: list[list[int]] = []
        per_bin_bits: list[list[int]] = []
        for j, layout in enumerate(self._layouts):
            start = self._tile_starts[j]
            tiles = len(layout.tile_masks)
            # Tile 0 is never power-gated: it accrues a cycle per owned
            # input symbol regardless of liveness (only its *bits* come
            # from live cycles) — the closed form of the per-cycle loop.
            per_bin_cycles.append(
                [owned] + tile_cycles[start + 1 : start + tiles]
            )
            per_bin_bits.append(tile_bits[start : start + tiles])
        return LaneDelta(
            cycles=owned,
            tile_cycles=per_bin_cycles,
            tile_bits=per_bin_bits,
            matches=matches,
            exit_states=[
                fused.extract(packed, j) for j in range(len(self._layouts))
            ],
            exit_packed=packed,
        )

    def _assemble_native(
        self,
        raw: tuple,
        n: int,
        base: int,
        stats_from: int,
    ) -> LaneDelta:
        """One compiled-kernel result as the interpreted scan's delta.

        The C kernel hands back flattened per-tile counters and
        end-anchored-masked ``(position, packed-final-word)`` hit
        pairs; decomposition into per-bin matches and the tile-0
        owned-cycle closed form are the exact operations the
        interpreted sink performs, so the delta — and every snapshot
        built from it — is byte-identical (plain Python ints, same
        ordering).
        """
        tile_cycles, tile_bits, hits, packed = raw
        fused = self._fused
        finals = self._finals
        matches: list[dict[int, list[int]]] = [{} for _ in self._layouts]
        for position, word in hits:
            while word:
                low = word & -word
                word ^= low
                j, rid = finals[low.bit_length() - 1]
                matches[j].setdefault(rid, []).append(base + position)
        owned = n - max(0, stats_from)
        flat_cycles = tile_cycles.tolist()
        flat_bits = tile_bits.tolist()
        per_bin_cycles: list[list[int]] = []
        per_bin_bits: list[list[int]] = []
        for j, layout in enumerate(self._layouts):
            start = self._tile_starts[j]
            tiles = len(layout.tile_masks)
            per_bin_cycles.append(
                [owned] + flat_cycles[start + 1 : start + tiles]
            )
            per_bin_bits.append(flat_bits[start : start + tiles])
        return LaneDelta(
            cycles=owned,
            tile_cycles=per_bin_cycles,
            tile_bits=per_bin_bits,
            matches=matches,
            exit_states=[
                fused.extract(packed, j) for j in range(len(self._layouts))
            ],
            exit_packed=packed,
        )

    def merge_deltas(self, deltas: list[LaneDelta]) -> LaneDelta:
        """Fold chunk deltas, in chunk order, into one segment delta.

        Counters add, match lists concatenate (positions are global and
        ascending across chunks), and the exit state is the last
        chunk's — the associative composition the split engine rests
        on.
        """
        if not deltas:
            return self.empty_delta()
        merged = deltas[0]
        for delta in deltas[1:]:
            matches: list[dict[int, list[int]]] = []
            for j in range(len(self._layouts)):
                folded = {
                    rid: list(ends) for rid, ends in merged.matches[j].items()
                }
                for rid, ends in delta.matches[j].items():
                    folded.setdefault(rid, []).extend(ends)
                matches.append(folded)
            merged = LaneDelta(
                cycles=merged.cycles + delta.cycles,
                tile_cycles=[
                    [a + b for a, b in zip(ours, theirs)]
                    for ours, theirs in zip(
                        merged.tile_cycles, delta.tile_cycles
                    )
                ],
                tile_bits=[
                    [a + b for a, b in zip(ours, theirs)]
                    for ours, theirs in zip(merged.tile_bits, delta.tile_bits)
                ],
                matches=matches,
                exit_states=delta.exit_states,
                exit_packed=delta.exit_packed,
            )
        return merged


class FusedBinFeeder:
    """Feed many bin collectors through one lane-packed machine.

    ``collectors`` are the ruleset's LNFA bins in a fixed order; their
    packed programs must equal ``fused.shift_programs`` (a bins-only
    :class:`FusedRuleset` is compiled when none is supplied).  Each
    :meth:`feed` accumulates, per bin, the exact deltas the collector's
    own ``feed`` would have produced for the same segment.

    ``input_jobs > 1`` splits each segment into warm-up-window chunks
    scanned over worker processes (chunks shorter than
    ``min_chunk_bytes`` or the warm window are not worth forking for);
    the chunk deltas fold associatively, so the collectors — and any
    checkpoint snapshot taken between feeds — stay byte-identical to
    the serial feed.
    """

    def __init__(
        self,
        collectors: list[BinActivityCollector],
        fused: FusedRuleset | None = None,
        *,
        input_jobs: int = 1,
        min_chunk_bytes: int = 4096,
    ):
        self._collectors = list(collectors)
        self._scanner = FusedLaneScanner(
            [c.layout for c in self._collectors], fused
        )
        self._input_jobs = max(1, input_jobs)
        self._min_chunk_bytes = max(1, min_chunk_bytes)

    @property
    def signature(self) -> str:
        """The fused compilation's layout digest (class map + lanes).

        When the native backend's compiled lane kernel is attached the
        digest carries a ``:native<version>`` suffix, folding
        :data:`~repro.core.registry.NATIVE_FORMAT_VERSION` into every
        durable-scan fingerprint built from it — a checkpoint records
        the execution tier that wrote it.  A silent fallback (no
        compiler, build failure) leaves the plain fused digest, so
        fingerprints are unchanged whenever native does not actually
        run.
        """
        sig = self._scanner.signature
        if self._scanner.native_active:
            sig = f"{sig}:native{NATIVE_FORMAT_VERSION}"
        return sig

    @property
    def warm(self) -> int:
        """The lane machine's warm-up window, in bytes."""
        return self._scanner.warm

    @property
    def split_layout(self) -> str | None:
        """The input-parallel feed policy, or None when feeding serially.

        Deterministic from configuration alone, so it can be hashed
        into a durable scan's fingerprint.
        """
        if self._input_jobs <= 1:
            return None
        return (
            f"lane-split:v1:jobs={self._input_jobs}"
            f":min={self._min_chunk_bytes}:warm={self._scanner.warm}"
        )

    def feed(self, segment: bytes, *, at_end: bool = True) -> None:
        """Consume the next stream segment on every bin at once."""
        if not segment:
            return
        collectors = self._collectors
        if not collectors:
            return
        offsets = {c.offset for c in collectors}
        if len(offsets) != 1:
            raise ValueError(
                "fused feeding requires all bins at one stream offset, "
                f"got {sorted(offsets)}"
            )
        stream_base = collectors[0].offset
        scanner = self._scanner
        entry = scanner.fused.pack([c.state.states for c in collectors])
        delta = None
        if self._input_jobs > 1:
            delta = self._split_feed(segment, entry, stream_base, at_end)
        if delta is None:
            delta = scanner.scan(
                segment,
                entry=entry,
                fresh=stream_base == 0,
                at_end=at_end,
                base=stream_base,
            )
        n = len(segment)
        for j, collector in enumerate(collectors):
            collector.apply_segment(
                cycles=n,
                tile_cycles=delta.tile_cycles[j],
                tile_bits=delta.tile_bits[j],
                matches=delta.matches[j],
                state=KernelState(
                    offset=stream_base + n, states=delta.exit_states[j]
                ),
            )

    def _split_feed(
        self, segment: bytes, entry: int, stream_base: int, at_end: bool
    ) -> LaneDelta | None:
        """One segment scanned as parallel warm-up-window chunks.

        Returns None when the segment is too short to split — the
        caller falls back to the serial span.  Chunk 0 continues from
        the true entry word; later chunks warm up from zero over the
        preceding ``warm`` bytes, which forgets any entry state by
        construction (their owned start is at least ``warm`` bytes in).
        """
        from repro.engine.partition import plan_chunks
        from repro.engine.pool import parallel_map

        scanner = self._scanner
        warm = scanner.warm
        chunks = plan_chunks(
            len(segment),
            self._input_jobs,
            warm,
            min_owned=max(self._min_chunk_bytes, warm),
        )
        if len(chunks) <= 1:
            return None
        payload = pickle.dumps(
            (scanner, segment, entry, stream_base, at_end, len(chunks)),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        tasks = [
            (ci, chunk.start, chunk.end, chunk.warm_start)
            for ci, chunk in enumerate(chunks)
        ]
        deltas = parallel_map(
            _lane_chunk,
            tasks,
            jobs=self._input_jobs,
            initializer=_init_lane_worker,
            initargs=(payload,),
            finalizer=_reset_lane_worker,
        )
        return scanner.merge_deltas(deltas)


# -- lane-chunk worker functions (module level: picklable by the pool) ------

_LANE_WORKER: dict = {}


def _init_lane_worker(payload: bytes) -> None:
    """Seed one worker process with the segment's shared state."""
    scanner, segment, entry, stream_base, at_end, chunk_count = pickle.loads(
        payload
    )
    _LANE_WORKER["scanner"] = scanner
    _LANE_WORKER["segment"] = segment
    _LANE_WORKER["entry"] = entry
    _LANE_WORKER["stream_base"] = stream_base
    _LANE_WORKER["at_end"] = at_end
    _LANE_WORKER["chunk_count"] = chunk_count


def _reset_lane_worker() -> None:
    """Clear the worker globals (the in-process fallback seeds the
    parent, which must not pin the segment afterwards)."""
    _LANE_WORKER.clear()


def _lane_chunk(task: tuple) -> LaneDelta:
    """Scan one chunk of the seeded segment inside a worker."""
    ci, start, end, warm_start = task
    scanner = _LANE_WORKER["scanner"]
    segment = _LANE_WORKER["segment"]
    stream_base = _LANE_WORKER["stream_base"]
    first = ci == 0
    return scanner.scan(
        segment[warm_start:end],
        entry=_LANE_WORKER["entry"] if first else 0,
        fresh=stream_base == 0 and warm_start == 0,
        at_end=_LANE_WORKER["at_end"] and ci == _LANE_WORKER["chunk_count"] - 1,
        base=stream_base + warm_start,
        stats_from=start - warm_start,
    )


class FusedRun:
    """One-shot fused activity collection for a mapped ruleset."""

    def __init__(
        self, ruleset: CompiledRuleset, mapping: Mapping, hw: HardwareConfig
    ):
        self._ruleset = ruleset
        self._mapping = mapping
        self._hw = hw

    def collect(self, data: bytes) -> RunActivity:
        """The run's :class:`RunActivity`, bit-identical to the unfused
        :meth:`~repro.simulators.rap.RAPSimulator.collect_activities`."""
        ruleset = self._ruleset
        mapping = self._mapping

        bin_keys: list[tuple[int, int]] = []
        collectors: list[BinActivityCollector] = []
        for index, array in enumerate(mapping.arrays):
            if array.mode is not TileMode.LNFA:
                continue
            for bin_index, bin_obj in enumerate(array.bins):
                bin_keys.append((index, bin_index))
                collectors.append(BinActivityCollector(bin_obj, self._hw))

        # One scan per distinct functional fingerprint, exactly like
        # ActivityTrace: NFA regexes become GATHER units of the fused
        # compilation, DFA-mode regexes become subset-constructed table
        # units sharing the same class map and prefilter, and NBVA
        # regexes keep the exact pure-Python scan.
        nfa_unit_of: dict[object, int] = {}
        nfa_programs = []
        dfa_unit_of: dict[object, int] = {}
        dfa_programs = []
        for compiled in ruleset:
            if compiled.mode is CompiledMode.NFA:
                unit_of, programs = nfa_unit_of, nfa_programs
            elif compiled.mode is CompiledMode.DFA:
                unit_of, programs = dfa_unit_of, dfa_programs
            else:
                continue
            key = regex_fingerprint(compiled)
            if key in unit_of:
                continue
            unit_of[key] = len(programs)
            programs.append(
                NFASimulator(compiled.automaton).program(
                    anchored_start=compiled.anchored_start,
                    anchored_end=compiled.anchored_end,
                )
            )

        fused = FusedRuleset(
            [c.layout.packed.program for c in collectors],
            nfa_programs,
            dfa_programs,
        )
        tin = fused.translate(data)

        nfa_results = {
            key: fused.scan_unit(index, tin)
            for key, index in nfa_unit_of.items()
        }
        dfa_results = {
            key: fused.scan_dfa_unit(index, tin)
            for key, index in dfa_unit_of.items()
        }
        nbva_results: dict[object, RegexActivity] = {}
        regex: dict[int, RegexActivity] = {}
        for compiled in ruleset:
            if compiled.mode is CompiledMode.LNFA:
                continue
            key = regex_fingerprint(compiled)
            if compiled.mode in (CompiledMode.NFA, CompiledMode.DFA):
                events, stats = (
                    nfa_results[key]
                    if compiled.mode is CompiledMode.NFA
                    else dfa_results[key]
                )
                regex[compiled.regex_id] = RegexActivity(
                    regex_id=compiled.regex_id,
                    mode=compiled.mode,
                    cycles=stats.cycles,
                    matches=[i for i, _ in events],
                    active_state_cycles=stats.active_states,
                )
                continue
            found = nbva_results.get(key)
            if found is None:
                found = collect_regex_activity(compiled, data)
                nbva_results[key] = found
            regex[compiled.regex_id] = replace(
                found,
                regex_id=compiled.regex_id,
                matches=list(found.matches),
                bv_cycle_indices=list(found.bv_cycle_indices),
            )

        if collectors:
            FusedBinFeeder(collectors, fused).feed(data, at_end=True)
        lnfa_bins: dict[int, list] = {
            index: []
            for index, array in enumerate(mapping.arrays)
            if array.mode is TileMode.LNFA
        }
        for (index, _), collector in zip(bin_keys, collectors):
            lnfa_bins[index].append(collector.activity())
        return RunActivity(
            regex=regex, lnfa_bins=lnfa_bins, input_symbols=len(data)
        )
