"""Simulation results: metrics plus per-component breakdowns."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.energy import Metrics


@dataclass(frozen=True)
class ArrayReport:
    """Per-array outcome of one run (drives workload-sharing decisions)."""

    mode: str
    tiles: int
    cycles: int
    stalls: int
    throughput_gchps: float


@dataclass(frozen=True)
class SimulationResult:
    """Everything one simulated run reports.

    ``matches`` maps ``regex_id -> list of match end positions`` so that
    correctness can be asserted against the reference oracle; the metric
    properties mirror the paper's Section 5.2 definitions.
    """

    architecture: str
    metrics: Metrics
    matches: dict[int, list[int]] = field(default_factory=dict)
    energy_breakdown_pj: dict[str, float] = field(default_factory=dict)
    area_breakdown_um2: dict[str, float] = field(default_factory=dict)
    stall_cycles: int = 0
    arrays: int = 0
    tiles: int = 0
    array_reports: tuple[ArrayReport, ...] = ()

    @property
    def energy_uj(self) -> float:
        """Total dynamic energy in microjoules."""
        return self.metrics.energy_uj

    @property
    def area_mm2(self) -> float:
        """Total area in square millimetres."""
        return self.metrics.area_mm2

    @property
    def throughput_gchps(self) -> float:
        """Sustained gigacharacters per second."""
        return self.metrics.throughput_gchps

    @property
    def power_w(self) -> float:
        """Average power in watts (dynamic + leakage)."""
        return self.metrics.power_w

    @property
    def energy_efficiency(self) -> float:
        """Throughput per watt (Gch/J)."""
        return self.metrics.energy_efficiency_gch_per_j

    @property
    def compute_density(self) -> float:
        """Throughput per square millimetre."""
        return self.metrics.compute_density_gchps_per_mm2

    @property
    def match_count(self) -> int:
        """Total matches across all regexes."""
        return sum(len(v) for v in self.matches.values())

    def summary(self) -> str:
        """One-line human-readable result summary."""
        return (
            f"{self.architecture}: energy={self.energy_uj:.2f}uJ "
            f"area={self.area_mm2:.3f}mm2 "
            f"throughput={self.throughput_gchps:.2f}Gch/s "
            f"power={self.power_w:.3f}W "
            f"matches={self.match_count}"
        )

    def merge(self, other: "SimulationResult") -> "SimulationResult":
        """Associative combination of two shards of one batch.

        Both shards must come from the same architecture; the merged
        record models the same hardware having processed both inputs:
        energy, cycles, input symbols, and stalls accumulate, the
        hardware footprint (area, arrays, tiles) takes the larger shard,
        matches union per regex (sorted, deduplicated), and per-array
        reports concatenate.  Replaces the ad-hoc aggregation experiment
        scripts used to do by hand.
        """
        if self.architecture != other.architecture:
            raise ValueError(
                f"cannot merge results from different architectures "
                f"({self.architecture!r} vs {other.architecture!r})"
            )
        matches = {
            rid: sorted(
                set(self.matches.get(rid, ())) | set(other.matches.get(rid, ()))
            )
            for rid in sorted(set(self.matches) | set(other.matches))
        }
        energy = dict(self.energy_breakdown_pj)
        for comp, pj in other.energy_breakdown_pj.items():
            energy[comp] = energy.get(comp, 0.0) + pj
        area = dict(self.area_breakdown_um2)
        for comp, um2 in other.area_breakdown_um2.items():
            area[comp] = max(area.get(comp, 0.0), um2)
        return SimulationResult(
            architecture=self.architecture,
            metrics=self.metrics.merge(other.metrics),
            matches=matches,
            energy_breakdown_pj=energy,
            area_breakdown_um2=area,
            stall_cycles=self.stall_cycles + other.stall_cycles,
            arrays=max(self.arrays, other.arrays),
            tiles=max(self.tiles, other.tiles),
            array_reports=self.array_reports + other.array_reports,
        )

    __add__ = merge
