"""CAMA baseline simulator (Huang et al., HPCA 2022).

CAMA is the CAM-based automata processor RAP adopts for basic NFA
processing (Section 3): 8T-CAM state matching, FCB local switches, and a
conventional AP control path.  It executes every regex as a fully
unfolded NFA — bounded repetitions cost one STE per unfolded position —
at a 2.14 GHz clock.  Relative to RAP's NFA mode it saves the
reconfiguration controller's energy and area, which is exactly the
overhead the paper charges RAP on NFA-dominant workloads (RegexLib).
"""

from __future__ import annotations

from repro.hardware.circuits import TABLE1, CircuitLibrary
from repro.hardware.config import DEFAULT_CONFIG, HardwareConfig
from repro.simulators.asic_base import ApStyleSimulator, cama_params


class CAMASimulator(ApStyleSimulator):
    """NFA-only execution with CAMA's cost structure."""

    def __init__(
        self,
        hw: HardwareConfig = DEFAULT_CONFIG,
        circuits: CircuitLibrary = TABLE1,
    ):
        super().__init__(cama_params(circuits), hw)
