"""Workload sharing across arrays/banks (Sections 3.3 and 5.5).

NBVA-mode arrays lose throughput to bit-vector-processing stalls.  The
paper's remedy: "To reduce the throughput discrepancy between NBVA mode
and NFA/LNFA mode, multiple RAP banks can be configured to share the
workload of low throughput banks", operationalized in Section 5.5 as —
if an NBVA array's throughput is below 2 Gch/s, assign additional arrays
to the same regexes so each processes a slice of the input stream.

:func:`plan_workload_sharing` turns a run's per-array reports into a
replication plan: how many copies each slow array needs, the resulting
system throughput, and the extra area the copies cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.circuits import RAP_CLOCK_GHZ
from repro.simulators.result import ArrayReport


@dataclass(frozen=True)
class SharingPlan:
    """The replication decision for one workload."""

    replicas: tuple[int, ...]  # total copies per array (1 = not shared)
    array_throughputs: tuple[float, ...]  # after sharing
    system_throughput: float
    extra_tiles: int

    @property
    def total_copies(self) -> int:
        """Total array instances including replicas."""
        return sum(self.replicas)

    @property
    def shared_arrays(self) -> int:
        """How many arrays received extra copies."""
        return sum(1 for r in self.replicas if r > 1)


def plan_workload_sharing(
    reports: list[ArrayReport] | tuple[ArrayReport, ...],
    *,
    floor_gchps: float = 2.0,
    clock_ghz: float = RAP_CLOCK_GHZ,
    max_replicas: int = 4,
) -> SharingPlan:
    """Replicate slow NBVA arrays until they clear ``floor_gchps``.

    ``k`` copies of an array each see ``1/k`` of the stream, so the
    array's effective rate scales by ``k`` (capped at the clock).  Arrays
    already at the floor, and NFA/LNFA arrays (which never stall), keep a
    single copy.  ``max_replicas`` bounds the area an extremely stalled
    array may claim — beyond it the workload simply stays slow, which is
    what the paper reports for ClamAV-class suites.
    """
    if floor_gchps <= 0:
        raise ValueError("floor must be positive")
    replicas: list[int] = []
    throughputs: list[float] = []
    extra_tiles = 0
    for report in reports:
        base = report.throughput_gchps
        k = 1
        if report.mode == "nbva" and 0 < base < floor_gchps:
            while k < max_replicas and min(base * k, clock_ghz) < floor_gchps:
                k += 1
        effective = min(base * k, clock_ghz) if base else 0.0
        replicas.append(k)
        throughputs.append(effective)
        extra_tiles += (k - 1) * report.tiles
    system = min(throughputs) if throughputs else 0.0
    return SharingPlan(
        replicas=tuple(replicas),
        array_throughputs=tuple(throughputs),
        system_throughput=system,
        extra_tiles=extra_tiles,
    )
