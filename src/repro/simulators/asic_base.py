"""Shared machinery for AP-style in-memory automata processor simulators.

Every architecture in the evaluation (RAP, CAMA, CA, BVAP) executes the
same two-phase loop — state matching against a memory of character
classes, state transition through routing switches (Section 2.2) — and is
priced with the same Table 1 circuit models (Section 5.2: "all other
automata processor architectures ... are simulated with the same circuit
model and simulator").  What differs is the microarchitectural cost
structure: per-tile match energy, switch geometry, controller overheads,
clock frequency, and mode support.  :class:`ArchParams` captures those
differences; :class:`ApStyleSimulator` implements the common flow for
plain NFA execution, which CAMA and CA use directly and RAP/BVAP extend.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.program import CompiledMode, CompiledRuleset
from repro.core.trace import ActivityTrace
from repro.hardware.circuits import TABLE1, CircuitLibrary
from repro.hardware.config import DEFAULT_CONFIG, HardwareConfig
from repro.hardware.energy import EnergyLedger
from repro.mapping.mapper import Mapping, map_ruleset
from repro.mapping.resources import ArrayBuilder, PhysicalTile
from repro.simulators.activity import RegexActivity
from repro.simulators.result import SimulationResult


def shared_trace(data: bytes, trace: ActivityTrace | None) -> ActivityTrace:
    """The trace to collect activity through: the caller's shared one
    (validated against ``data``) or a fresh private one."""
    if trace is None:
        return ActivityTrace(data)
    if trace.data is not data and trace.data != data:
        raise ValueError("shared ActivityTrace was built over different data")
    return trace


@dataclass(frozen=True)
class ArchParams:
    """Cost structure of one AP-style architecture."""

    name: str
    clock_ghz: float
    # state matching: energy per tile per cycle at full column enablement
    match_pj: float
    # local switch access energy bounds (activity-interpolated)
    switch_min_pj: float
    switch_max_pj: float
    # controllers
    local_ctrl_pj: float
    global_ctrl_pj: float
    # area per tile and per array (um^2)
    tile_area_um2: float
    array_overhead_um2: float
    # leakage per tile and per array (uW)
    tile_leak_uw: float
    array_leak_uw: float
    # global switch access bounds per array-cycle
    gswitch_min_pj: float
    gswitch_max_pj: float
    # wire energy charged per cross-tile signal event
    wire_pj: float

    def switch_pj(self, activity: float) -> float:
        """Local-switch access energy at an activity level."""
        activity = min(max(activity, 0.0), 1.0)
        return self.switch_min_pj + (self.switch_max_pj - self.switch_min_pj) * activity

    def gswitch_pj(self, activity: float) -> float:
        """Global-switch access energy at an activity level."""
        activity = min(max(activity, 0.0), 1.0)
        return self.gswitch_min_pj + (
            self.gswitch_max_pj - self.gswitch_min_pj
        ) * activity


def rap_tile_area(circuits: CircuitLibrary = TABLE1) -> float:
    """A RAP tile: 32x128 CAM + 128x128 FCB + full local controller."""
    return (
        circuits.cam.area_um2
        + circuits.sram_128.area_um2
        + circuits.local_controller.area_um2
    )


def cama_params(circuits: CircuitLibrary = TABLE1) -> ArchParams:
    """CAMA: the CAM-based baseline RAP builds on.

    Same CAM and switch fabric as a RAP tile but with a far simpler,
    single-mode controller (the paper attributes RAP's NFA-mode overhead
    to its reconfiguration controller).
    """
    from repro.hardware.circuits import CAMA_CLOCK_GHZ

    simple_ctrl_area = 1000.0  # single-mode sequencing only
    return ArchParams(
        name="CAMA",
        clock_ghz=CAMA_CLOCK_GHZ,
        match_pj=circuits.cam.energy(),
        switch_min_pj=circuits.sram_128.energy_min_pj,
        switch_max_pj=circuits.sram_128.energy_max_pj,
        local_ctrl_pj=0.5,
        global_ctrl_pj=1.0,
        tile_area_um2=circuits.cam.area_um2
        + circuits.sram_128.area_um2
        + simple_ctrl_area,
        array_overhead_um2=circuits.sram_256.area_um2 + 700.0,
        tile_leak_uw=(circuits.cam.leakage_ua + circuits.sram_128.leakage_ua)
        * 0.9,
        array_leak_uw=circuits.sram_256.leakage_ua * 0.9,
        gswitch_min_pj=circuits.sram_256.energy_min_pj,
        gswitch_max_pj=circuits.sram_256.energy_max_pj,
        wire_pj=circuits.global_wire_mm.energy() * 0.5,
    )


def rap_nfa_params(circuits: CircuitLibrary = TABLE1) -> ArchParams:
    """RAP running plain NFAs: CAMA's loop plus the reconfigurable
    controllers (the source of the RegexLib regression in Fig. 12)."""
    from repro.hardware.circuits import RAP_CLOCK_GHZ

    return ArchParams(
        name="RAP-NFA",
        clock_ghz=RAP_CLOCK_GHZ,
        match_pj=circuits.cam.energy(),
        switch_min_pj=circuits.sram_128.energy_min_pj,
        switch_max_pj=circuits.sram_128.energy_max_pj,
        local_ctrl_pj=circuits.local_controller.energy(),
        global_ctrl_pj=circuits.global_controller.energy(),
        tile_area_um2=rap_tile_area(circuits),
        array_overhead_um2=circuits.sram_256.area_um2
        + circuits.global_controller.area_um2,
        tile_leak_uw=(
            circuits.cam.leakage_ua
            + circuits.sram_128.leakage_ua
            + circuits.local_controller.leakage_ua
        )
        * 0.9,
        array_leak_uw=(
            circuits.sram_256.leakage_ua + circuits.global_controller.leakage_ua
        )
        * 0.9,
        gswitch_min_pj=circuits.sram_256.energy_min_pj,
        gswitch_max_pj=circuits.sram_256.energy_max_pj,
        wire_pj=circuits.global_wire_mm.energy() * 0.5,
    )


class ApStyleSimulator:
    """Common NFA-execution flow for AP-style architectures."""

    def __init__(
        self,
        params: ArchParams,
        hw: HardwareConfig = DEFAULT_CONFIG,
    ):
        self.params = params
        self.hw = hw

    # -- public API --------------------------------------------------------

    def run(
        self,
        ruleset: CompiledRuleset,
        data: bytes,
        mapping: Mapping | None = None,
        trace: ActivityTrace | None = None,
    ) -> SimulationResult:
        """Simulate a pure-NFA ruleset (CAMA / CA usage).

        ``trace`` optionally shares one :class:`ActivityTrace` across
        architectures so the functional scan runs once and every design
        is priced from the same events (the fig12 flow).
        """
        for regex in ruleset:
            if regex.mode is not CompiledMode.NFA:
                raise ValueError(
                    f"{self.params.name} executes NFAs only; regex "
                    f"{regex.regex_id} is {regex.mode.value}"
                )
        mapping = mapping or map_ruleset(ruleset, self.hw)
        ledger = EnergyLedger()
        matches: dict[int, list[int]] = {}
        trace = shared_trace(data, trace)
        activities = {
            regex.regex_id: trace.regex_activity(regex) for regex in ruleset
        }
        compiled_by_id = {r.regex_id: r for r in ruleset}
        for activity in activities.values():
            matches[activity.regex_id] = activity.matches
        cycles = len(data)
        for array in mapping.arrays:
            self.charge_array_structure(ledger, array, include_overhead=False)
            self.charge_nfa_array_energy(
                ledger, array, activities, compiled_by_id, cycles
            )
        self.charge_overhead_units(ledger, mapping.total_tiles)
        metrics = ledger.metrics(
            cycles=cycles, input_symbols=len(data), clock_ghz=self.params.clock_ghz
        )
        return SimulationResult(
            architecture=self.params.name,
            metrics=metrics,
            matches=matches,
            energy_breakdown_pj=ledger.energy_breakdown(),
            area_breakdown_um2=ledger.area_breakdown(),
            arrays=mapping.total_arrays,
            tiles=mapping.total_tiles,
        )

    # -- shared charging helpers -------------------------------------------

    def charge_array_structure(
        self,
        ledger: EnergyLedger,
        array: ArrayBuilder,
        *,
        include_overhead: bool = True,
    ) -> None:
        """Charge one array's tiles (and optionally overhead)."""
        p = self.params
        tiles = array.tiles_used
        ledger.add_area("tile", p.tile_area_um2, tiles)
        ledger.add_leakage("tile", p.tile_leak_uw, tiles)
        if include_overhead:
            ledger.add_area("array-overhead", p.array_overhead_um2, 1)
            ledger.add_leakage("array-overhead", p.array_leak_uw, 1)

    def charge_overhead_units(self, ledger: EnergyLedger, tiles: int) -> None:
        """Array-level structures (global switch, controller, wiring),
        charged proportionally to the tiles actually occupied.

        The paper reports fractional per-workload areas (e.g. 0.63 mm^2,
        not a multiple of a full array), i.e. it accounts the resources a
        workload occupies rather than whole provisioned arrays; we do the
        same so small workloads are not dominated by array granularity.
        """
        p = self.params
        units = tiles / self.hw.tiles_per_array
        ledger.add_area("array-overhead", p.array_overhead_um2, units)
        ledger.add_leakage("array-overhead", p.array_leak_uw, units)

    def tile_switch_activity(
        self,
        tile: PhysicalTile,
        activities: dict[int, RegexActivity],
        compiled_by_id,
    ) -> float:
        """Mean fraction of this tile's switch rows driven per cycle."""
        driven = 0.0
        for regex_id, request in tile.occupants:
            activity = activities[regex_id]
            total_states = max(compiled_by_id[regex_id].states, 1)
            share = request.states / total_states
            driven += activity.mean_activity * share
        return driven / self.hw.local_switch_dim

    def charge_nfa_array_energy(
        self,
        ledger: EnergyLedger,
        array: ArrayBuilder,
        activities: dict[int, RegexActivity],
        compiled_by_id,
        cycles: int,
        *,
        charge_gctrl: bool = True,
    ) -> None:
        """Per-cycle matching/transition/control energy of one NFA array."""
        p = self.params
        ports_used = 0
        for tile in array.tiles:
            act = self.tile_switch_activity(tile, activities, compiled_by_id)
            ledger.charge("state-matching", p.match_pj, cycles)
            ledger.charge("state-transition", p.switch_pj(act), cycles)
            ledger.charge("local-control", p.local_ctrl_pj, cycles)
            ports_used += tile.ports
        if charge_gctrl:
            ledger.charge("global-control", p.global_ctrl_pj, cycles)
        if ports_used:
            port_frac = ports_used / self.hw.global_switch_dim
            mean_act = _array_mean_activity(array, activities, compiled_by_id)
            ledger.charge(
                "global-switch", p.gswitch_pj(port_frac * mean_act), cycles
            )
            ledger.charge(
                "global-wire", p.wire_pj * ports_used * mean_act, cycles
            )


def _array_mean_activity(
    array: ArrayBuilder,
    activities: dict[int, RegexActivity],
    compiled_by_id,
) -> float:
    """Mean per-state activity across the regexes in one array."""
    total_states = 0
    weighted = 0.0
    for rid in array.regex_ids:
        states = max(compiled_by_id[rid].states, 1)
        weighted += activities[rid].mean_activity
        total_states += states
    return min(1.0, weighted / total_states) if total_states else 0.0
