"""Analytical CPU / GPU / FPGA comparators (Fig. 13 and Table 4).

The paper measures Hyperscan on an i9-12900K (Intel SoC Watch for socket
power), HybridSA's GPU engine on an RTX 4060 Ti (NVML power sampling at
50 Hz), and quotes hAP's published FPGA numbers.  Absent that hardware,
we encode the published operating points and scale them with the workload
statistics the way the measurements respond in practice:

* CPU (Hyperscan): SIMD Shift-And over packed patterns; throughput falls
  with the number of state-vector words the pattern set needs (cache and
  instruction pressure) and with the density of matches (reporting
  overhead).  Socket power is effectively workload-independent at
  saturation.
* GPU (HybridSA): massive bit-parallelism hides pattern count until the
  state vectors exceed the register budget; baseline throughput is an
  order of magnitude under the ASICs because each symbol crosses the
  memory hierarchy.
* FPGA (hAP): a spatial design with a published per-benchmark operating
  point around 0.15-0.18 Gch/s; power scales mildly with utilization.

These models feed only the cross-platform comparison; every ASIC number
comes from the cycle-level simulators.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.program import CompiledRuleset


@dataclass(frozen=True)
class SoftwarePoint:
    """A published operating point: sustained throughput and power."""

    name: str
    throughput_gchps: float
    power_w: float

    @property
    def energy_efficiency_gch_per_j(self) -> float:
        """Throughput per watt (Gch/J)."""
        return self.throughput_gchps / self.power_w

    def energy_uj(self, input_symbols: int) -> float:
        """Total dynamic energy in microjoules."""
        seconds = input_symbols / (self.throughput_gchps * 1e9)
        return self.power_w * seconds * 1e6


# Published baselines (Section 5.5): the GPU engine consumes ~16x RAP's
# power at ~1/9.8 of its throughput; the CPU runs at ~60x lower
# throughput with a ~90 W socket.
_CPU_BASE_GCHPS = 0.035
_CPU_SOCKET_W = 90.0
_GPU_BASE_GCHPS = 0.21
_GPU_BOARD_W = 55.0


class CPUModel:
    """Hyperscan-like multi-pattern matcher on a desktop CPU."""

    name = "CPU-Hyperscan"

    def __init__(
        self,
        base_gchps: float = _CPU_BASE_GCHPS,
        socket_w: float = _CPU_SOCKET_W,
        simd_bits: int = 512,
    ):
        self.base_gchps = base_gchps
        self.socket_w = socket_w
        self.simd_bits = simd_bits

    def operating_point(self, ruleset: CompiledRuleset) -> SoftwarePoint:
        """The published/derived throughput-power point."""
        states = max(ruleset.total_states, 1)
        # Shift-And words the pattern set needs; throughput degrades
        # sub-linearly as the working set outgrows one SIMD register set.
        words = max(1, -(-states // self.simd_bits))
        slowdown = words ** 0.35
        return SoftwarePoint(
            name=self.name,
            throughput_gchps=self.base_gchps / slowdown,
            power_w=self.socket_w,
        )


class GPUModel:
    """HybridSA-like GPU bit-parallel matcher."""

    name = "GPU-HybridSA"

    def __init__(
        self,
        base_gchps: float = _GPU_BASE_GCHPS,
        board_w: float = _GPU_BOARD_W,
        register_budget_states: int = 1 << 16,
    ):
        self.base_gchps = base_gchps
        self.board_w = board_w
        self.register_budget_states = register_budget_states

    def operating_point(self, ruleset: CompiledRuleset) -> SoftwarePoint:
        """The published/derived throughput-power point."""
        states = max(ruleset.total_states, 1)
        # Throughput holds until the packed state vectors spill out of
        # the register file, then degrades gently with occupancy loss.
        pressure = max(1.0, states / self.register_budget_states)
        slowdown = pressure ** 0.5
        return SoftwarePoint(
            name=self.name,
            throughput_gchps=self.base_gchps / slowdown,
            power_w=self.board_w,
        )


class FPGAModel:
    """hAP-like spatial/von-Neumann FPGA automata processor (Table 4)."""

    name = "FPGA-hAP"

    # Published per-ANMLZoo-benchmark operating points (Table 4).
    PUBLISHED = {
        "Brill": SoftwarePoint("FPGA-hAP", 0.18, 1.56),
        "ClamAV": SoftwarePoint("FPGA-hAP", 0.18, 1.42),
        "Dotstar": SoftwarePoint("FPGA-hAP", 0.18, 1.47),
        "PowerEN": SoftwarePoint("FPGA-hAP", 0.18, 1.52),
        "Snort": SoftwarePoint("FPGA-hAP", 0.15, 1.41),
    }

    def operating_point(
        self, benchmark: str, ruleset: CompiledRuleset | None = None
    ) -> SoftwarePoint:
        """The published/derived throughput-power point."""
        if benchmark in self.PUBLISHED:
            return self.PUBLISHED[benchmark]
        # Unlisted benchmark: interpolate from utilization.
        states = max(ruleset.total_states, 1) if ruleset else 1
        power = 1.4 + min(0.2, states / 1e6)
        return SoftwarePoint(self.name, 0.17, power)
