"""Functional execution of compiled regexes, collecting activity events.

The paper's simulator "uses the actual dataflow to emulate the
cycle-accurate hardware behavior" (Section 5.2): energy is a function of
which states are active, which bit vectors update, and which tiles wake up
on each input symbol.  This module runs the functional engines over the
input once per compiled regex (or per LNFA bin) and returns exactly those
event counts; the architecture-specific simulators then price the events
with the Table 1 circuit models.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.automata.dfa import DFAScanner
from repro.automata.nbva import NBVASimulator, NBVAStats
from repro.automata.nfa import NFASimulator, StepStats
from repro.automata.shift_and import MultiShiftAnd
from repro.compiler.program import CompiledMode, CompiledRegex
from repro.core.state import KernelState, iter_states_from
from repro.hardware.config import HardwareConfig
from repro.mapping.binning import Bin, states_per_tile


@dataclass
class RegexActivity:
    """Event counts from running one compiled regex over the input."""

    regex_id: int
    mode: CompiledMode
    cycles: int
    matches: list[int]
    active_state_cycles: int = 0  # sum over cycles of active state count
    bv_phase_cycles: int = 0
    bv_cycle_indices: list[int] = field(default_factory=list)
    bv_updates: int = 0
    set1_events: int = 0
    shift_events: int = 0
    copy_events: int = 0

    @property
    def mean_activity(self) -> float:
        """Average active states per cycle."""
        return self.active_state_cycles / self.cycles if self.cycles else 0.0

    def merge(self, other: "RegexActivity") -> "RegexActivity":
        """Associative combination of two disjoint slices of one run.

        Every field is an integer counter or a list of global indices, so
        the merge is exact: folding per-chunk activities in chunk order
        reproduces the whole-stream activity bit for bit (the invariant
        the parallel engine's energy accounting rests on).
        """
        if (self.regex_id, self.mode) != (other.regex_id, other.mode):
            raise ValueError("cannot merge activities of different regexes")
        return RegexActivity(
            regex_id=self.regex_id,
            mode=self.mode,
            cycles=self.cycles + other.cycles,
            matches=self.matches + other.matches,
            active_state_cycles=(
                self.active_state_cycles + other.active_state_cycles
            ),
            bv_phase_cycles=self.bv_phase_cycles + other.bv_phase_cycles,
            bv_cycle_indices=self.bv_cycle_indices + other.bv_cycle_indices,
            bv_updates=self.bv_updates + other.bv_updates,
            set1_events=self.set1_events + other.set1_events,
            shift_events=self.shift_events + other.shift_events,
            copy_events=self.copy_events + other.copy_events,
        )


@dataclass
class BinActivity:
    """Per-tile wake-up statistics from running one LNFA bin."""

    bin: Bin
    cycles: int
    matches: dict[int, list[int]]  # regex_id -> end positions
    tile_active_cycles: list[int] = field(default_factory=list)
    tile_active_bits: list[int] = field(default_factory=list)

    @property
    def woken_tile_cycles(self) -> int:
        """Total tile-cycles that could not be power-gated."""
        return sum(self.tile_active_cycles)

    def merge(self, other: "BinActivity") -> "BinActivity":
        """Associative combination of two disjoint slices of one run
        (same exactness guarantee as :meth:`RegexActivity.merge`)."""
        if self.bin is not other.bin and self.bin != other.bin:
            raise ValueError("cannot merge activities of different bins")
        matches = {rid: list(ends) for rid, ends in self.matches.items()}
        for rid, ends in other.matches.items():
            matches.setdefault(rid, []).extend(ends)
        return BinActivity(
            bin=self.bin,
            cycles=self.cycles + other.cycles,
            matches=matches,
            tile_active_cycles=[
                a + b
                for a, b in zip(self.tile_active_cycles, other.tile_active_cycles)
            ],
            tile_active_bits=[
                a + b
                for a, b in zip(self.tile_active_bits, other.tile_active_bits)
            ],
        )


def collect_regex_activity(
    compiled: CompiledRegex,
    data: bytes,
    *,
    base: int = 0,
    stats_from: int = 0,
) -> RegexActivity:
    """Run one NFA- or NBVA-mode regex and harvest its event counts.

    ``data`` may be a slice of a longer stream starting at global offset
    ``base``: reported match positions and BV cycle indices are globally
    offset.  ``stats_from`` marks the first slice-local index that this
    chunk owns; earlier bytes only warm the active set up (the parallel
    engine's overlap window) and contribute nothing to the counters.
    Warm-up is only sound for window-bounded regexes — see
    :func:`repro.engine.partition.required_overlap` — and is not
    supported for NBVA-mode regexes (their counter vectors carry
    unbounded history).
    """
    if compiled.mode is CompiledMode.LNFA:
        raise ValueError("LNFA regexes are executed per bin; see collect_bin_activity")
    assert compiled.automaton is not None
    anchors = dict(
        anchored_start=compiled.anchored_start,
        anchored_end=compiled.anchored_end,
    )
    if compiled.mode is CompiledMode.NFA:
        stats = StepStats()
        matches = NFASimulator(compiled.automaton).find_matches(
            data, stats, stats_from=stats_from, **anchors
        )
        return RegexActivity(
            regex_id=compiled.regex_id,
            mode=compiled.mode,
            cycles=stats.cycles,
            matches=[base + m for m in matches] if base else matches,
            active_state_cycles=stats.active_states,
        )
    if compiled.mode is CompiledMode.DFA:
        if compiled.anchored_start or compiled.anchored_end:
            raise ValueError("DFA-mode regexes are unanchored by eligibility")
        stats = StepStats()
        matches = DFAScanner(compiled.automaton).find_matches(
            data, stats, stats_from=stats_from
        )
        return RegexActivity(
            regex_id=compiled.regex_id,
            mode=compiled.mode,
            cycles=stats.cycles,
            matches=[base + m for m in matches] if base else matches,
            active_state_cycles=stats.active_states,
        )
    if stats_from:
        raise ValueError("NBVA regexes cannot be chunk-windowed")
    stats = NBVAStats(bv_cycle_indices=[])
    matches = NBVASimulator(compiled.automaton).find_matches(
        data, stats, **anchors
    )
    bv_indices = stats.bv_cycle_indices or []
    return RegexActivity(
        regex_id=compiled.regex_id,
        mode=compiled.mode,
        cycles=stats.cycles,
        matches=[base + m for m in matches] if base else matches,
        active_state_cycles=stats.active_states,
        bv_phase_cycles=stats.bv_phase_cycles,
        bv_cycle_indices=[base + i for i in bv_indices] if base else bv_indices,
        bv_updates=stats.bv_updates,
        set1_events=stats.set1_events,
        shift_events=stats.shift_events,
        copy_events=stats.copy_events,
    )


@dataclass(frozen=True)
class _BinLayout:
    """Precomputed packed-machine geometry of one LNFA bin."""

    packed: MultiShiftAnd
    tile_masks: tuple[int, ...]  # packed-bit mask per tile
    finals: dict[int, int]  # final bit -> regex_id
    final_mask: int
    end_anchored_mask: int


def _bin_layout(bin_obj: Bin, hw: HardwareConfig) -> _BinLayout:
    """Pack a bin's LNFAs and map its bits to tiles and regexes.

    The bin's LNFAs are mapped regex-sliced: tile ``t`` holds states
    ``[t * region, (t + 1) * region)`` of every member, where ``region``
    is the per-LNFA share of the tile's capacity.
    """
    lnfas = [item.lnfa for item in bin_obj.items]
    anchors = [
        (item.anchored_start, item.anchored_end) for item in bin_obj.items
    ]
    packed = MultiShiftAnd(lnfas, anchors=anchors)
    region = states_per_tile(bin_obj.kind, hw) // bin_obj.size

    tile_masks = [0] * bin_obj.tiles
    offset = 0
    for lnfa in lnfas:
        for state in range(len(lnfa)):
            tile_masks[state // region] |= 1 << (offset + state)
        offset += len(lnfa)

    finals: dict[int, int] = {}
    end_anchored_mask = 0
    offset = 0
    for item, lnfa in zip(bin_obj.items, lnfas):
        final_bit = offset + len(lnfa) - 1
        finals[final_bit] = item.regex_id
        if item.anchored_end:
            end_anchored_mask |= 1 << final_bit
        offset += len(lnfa)
    final_mask = 0
    for bit in finals:
        final_mask |= 1 << bit
    return _BinLayout(
        packed=packed,
        tile_masks=tuple(tile_masks),
        finals=finals,
        final_mask=final_mask,
        end_anchored_mask=end_anchored_mask,
    )


def collect_bin_activity(
    bin_obj: Bin,
    data: bytes,
    hw: HardwareConfig,
    *,
    base: int = 0,
    stats_from: int = 0,
) -> BinActivity:
    """Run one LNFA bin, tracking which of its tiles wake up each cycle.

    ``base``/``stats_from`` have the same chunk-windowing semantics as in
    :func:`collect_regex_activity`: the slice's first ``stats_from``
    bytes warm up the shift registers without being counted, and match
    positions are offset to the global stream.

    The bin's LNFAs are mapped regex-sliced: tile ``t`` holds states
    ``[t * region, (t + 1) * region)`` of every member, where ``region``
    is the per-LNFA share of the tile's capacity.  Tile 0 holds all the
    initial states, so it is awake every cycle; later tiles are awake only
    on cycles where they hold at least one active state (Fig. 7's power
    gating).
    """
    layout = _bin_layout(bin_obj, hw)
    packed = layout.packed
    tile_masks = layout.tile_masks
    tile_count = len(tile_masks)
    finals = layout.finals
    final_mask = layout.final_mask
    end_anchored_mask = layout.end_anchored_mask

    matches: dict[int, list[int]] = {item.regex_id: [] for item in bin_obj.items}
    tile_active_cycles = [0] * tile_count
    tile_active_bits = [0] * tile_count
    cycles = 0
    last = len(data) - 1
    for i, states in packed.iter_states(data):
        if i < stats_from:
            continue
        cycles += 1
        tile_active_cycles[0] += 1  # initial tile is never gated
        tile_active_bits[0] += (states & tile_masks[0]).bit_count()
        for t in range(1, tile_count):
            live = states & tile_masks[t]
            if live:
                tile_active_cycles[t] += 1
                tile_active_bits[t] += live.bit_count()
        hits = states & final_mask
        if i != last:
            hits &= ~end_anchored_mask
        while hits:
            low = hits & -hits
            hits ^= low
            matches[finals[low.bit_length() - 1]].append(base + i)
    return BinActivity(
        bin=bin_obj,
        cycles=cycles,
        matches=matches,
        tile_active_cycles=tile_active_cycles,
        tile_active_bits=tile_active_bits,
    )


class RegexActivityCollector:
    """Stateful, snapshotable counterpart of :func:`collect_regex_activity`.

    Feed the stream one segment at a time; :meth:`activity` returns the
    same :class:`RegexActivity` (bit for bit) that one whole-stream
    ``collect_regex_activity`` call would have produced.  The collector's
    full state — scanner frontier, accumulated counters, match list —
    round-trips through :meth:`snapshot`/:meth:`restore` as plain JSON,
    which is what the durable-scan checkpoints serialize.
    """

    def __init__(self, compiled: CompiledRegex):
        if compiled.mode is CompiledMode.LNFA:
            raise ValueError(
                "LNFA regexes are executed per bin; see BinActivityCollector"
            )
        assert compiled.automaton is not None
        self._compiled = compiled
        anchors = dict(
            anchored_start=compiled.anchored_start,
            anchored_end=compiled.anchored_end,
        )
        self._nbva = compiled.mode is CompiledMode.NBVA
        if self._nbva:
            self._scanner = NBVASimulator(compiled.automaton).scanner(**anchors)
            self._stats = NBVAStats(bv_cycle_indices=[])
        elif compiled.mode is CompiledMode.DFA:
            if compiled.anchored_start or compiled.anchored_end:
                raise ValueError(
                    "DFA-mode regexes are unanchored by eligibility"
                )
            # Same feed/snapshot/restore surface and bit-identical
            # counters as the NFA scanner — including the serialized
            # KernelState documents, so checkpoints stay byte-identical
            # across the two modes.
            self._scanner = DFAScanner(compiled.automaton)
            self._stats = StepStats()
        else:
            self._scanner = NFASimulator(compiled.automaton).scanner(**anchors)
            self._stats = StepStats()
        self._matches: list[int] = []

    @property
    def offset(self) -> int:
        """Global stream position: bytes consumed so far."""
        return self._scanner.offset

    @property
    def matches(self) -> list[int]:
        """The accumulated match end positions — the live, append-only
        list (read-only to callers; slice it for incremental diffs)."""
        return self._matches

    def feed(self, segment: bytes, *, at_end: bool = True) -> None:
        """Consume the next segment of the stream."""
        self._matches.extend(
            self._scanner.feed(segment, self._stats, at_end=at_end)
        )

    def activity(self) -> RegexActivity:
        """The accumulated activity, as :func:`collect_regex_activity`
        would report it for the bytes consumed so far."""
        compiled = self._compiled
        stats = self._stats
        if not self._nbva:
            return RegexActivity(
                regex_id=compiled.regex_id,
                mode=compiled.mode,
                cycles=stats.cycles,
                matches=list(self._matches),
                active_state_cycles=stats.active_states,
            )
        return RegexActivity(
            regex_id=compiled.regex_id,
            mode=compiled.mode,
            cycles=stats.cycles,
            matches=list(self._matches),
            active_state_cycles=stats.active_states,
            bv_phase_cycles=stats.bv_phase_cycles,
            bv_cycle_indices=list(stats.bv_cycle_indices or []),
            bv_updates=stats.bv_updates,
            set1_events=stats.set1_events,
            shift_events=stats.shift_events,
            copy_events=stats.copy_events,
        )

    def snapshot(self) -> dict:
        """JSON-ready collector state."""
        return {
            "scanner": self._scanner.snapshot(),
            "stats": asdict(self._stats),
            "matches": list(self._matches),
        }

    def restore(self, doc: dict) -> None:
        """Adopt a state produced by :meth:`snapshot`."""
        try:
            self._scanner.restore(doc["scanner"])
            stats_doc = dict(doc["stats"])
            self._stats = (
                NBVAStats(**stats_doc) if self._nbva else StepStats(**stats_doc)
            )
            self._matches = [int(m) for m in doc["matches"]]
        except (KeyError, TypeError) as err:
            raise ValueError(
                f"malformed regex-collector document: {err}"
            ) from err


class BinActivityCollector:
    """Stateful, snapshotable counterpart of :func:`collect_bin_activity`.

    Same contract as :class:`RegexActivityCollector`, for one LNFA bin:
    segment feeds accumulate per-tile wake-up counters and global match
    positions, and :meth:`activity` reproduces the whole-stream
    :class:`BinActivity` exactly.
    """

    def __init__(self, bin_obj: Bin, hw: HardwareConfig):
        self._bin = bin_obj
        self._layout = _bin_layout(bin_obj, hw)
        self._state = KernelState()
        self._cycles = 0
        self._matches: dict[int, list[int]] = {
            item.regex_id: [] for item in bin_obj.items
        }
        tile_count = len(self._layout.tile_masks)
        self._tile_active_cycles = [0] * tile_count
        self._tile_active_bits = [0] * tile_count

    @property
    def offset(self) -> int:
        """Global stream position: bytes consumed so far."""
        return self._state.offset

    @property
    def matches(self) -> dict[int, list[int]]:
        """Accumulated per-regex match end positions — the live,
        append-only containers (read-only to callers)."""
        return self._matches

    @property
    def layout(self) -> _BinLayout:
        """The bin's packed-machine geometry (program, tiles, finals)."""
        return self._layout

    @property
    def state(self) -> KernelState:
        """The packed machine's mid-stream kernel state."""
        return self._state

    def apply_segment(
        self,
        *,
        cycles: int,
        tile_cycles: list[int],
        tile_bits: list[int],
        matches: dict[int, list[int]],
        state: KernelState,
    ) -> None:
        """Fold one segment's precomputed activity into the collector.

        The fused ruleset scanner steps every bin of a ruleset in one
        pass and hands each collector the exact deltas its own
        :meth:`feed` would have accumulated for the same segment —
        counters, per-tile wake-ups, global match positions, and the
        continuation state.  Callers own the exactness contract.
        """
        self._cycles += cycles
        for t, count in enumerate(tile_cycles):
            self._tile_active_cycles[t] += count
        for t, bits in enumerate(tile_bits):
            self._tile_active_bits[t] += bits
        for rid, ends in matches.items():
            self._matches[rid].extend(ends)
        self._state = state

    def feed(self, segment: bytes, *, at_end: bool = True) -> None:
        """Consume the next segment of the stream."""
        if not segment:
            return
        layout = self._layout
        program = layout.packed.program
        tile_masks = layout.tile_masks
        tile_count = len(tile_masks)
        finals = layout.finals
        final_mask = layout.final_mask
        end_anchored_mask = layout.end_anchored_mask
        tile_active_cycles = self._tile_active_cycles
        tile_active_bits = self._tile_active_bits
        matches = self._matches
        base = self._state.offset
        last = len(segment) - 1
        states = self._state.states
        for i, states in iter_states_from(program, segment, self._state):
            self._cycles += 1
            tile_active_cycles[0] += 1  # initial tile is never gated
            tile_active_bits[0] += (states & tile_masks[0]).bit_count()
            for t in range(1, tile_count):
                live = states & tile_masks[t]
                if live:
                    tile_active_cycles[t] += 1
                    tile_active_bits[t] += live.bit_count()
            hits = states & final_mask
            if not (at_end and i == last):
                hits &= ~end_anchored_mask
            while hits:
                low = hits & -hits
                hits ^= low
                matches[finals[low.bit_length() - 1]].append(base + i)
        self._state = KernelState(offset=base + len(segment), states=states)

    def activity(self) -> BinActivity:
        """The accumulated activity, as :func:`collect_bin_activity`
        would report it for the bytes consumed so far."""
        return BinActivity(
            bin=self._bin,
            cycles=self._cycles,
            matches={rid: list(ends) for rid, ends in self._matches.items()},
            tile_active_cycles=list(self._tile_active_cycles),
            tile_active_bits=list(self._tile_active_bits),
        )

    def snapshot(self) -> dict:
        """JSON-ready collector state (matches keyed in sorted regex-id
        order for deterministic serialized bytes)."""
        return {
            "state": self._state.to_json(),
            "cycles": self._cycles,
            "matches": [
                [rid, list(ends)]
                for rid, ends in sorted(self._matches.items())
            ],
            "tile_active_cycles": list(self._tile_active_cycles),
            "tile_active_bits": list(self._tile_active_bits),
        }

    def restore(self, doc: dict) -> None:
        """Adopt a state produced by :meth:`snapshot`."""
        try:
            state = KernelState.from_json(doc["state"])
            cycles = int(doc["cycles"])
            matches = {
                int(rid): [int(e) for e in ends]
                for rid, ends in doc["matches"]
            }
            tile_active_cycles = [int(c) for c in doc["tile_active_cycles"]]
            tile_active_bits = [int(c) for c in doc["tile_active_bits"]]
        except (KeyError, TypeError) as err:
            raise ValueError(
                f"malformed bin-collector document: {err}"
            ) from err
        for item in self._bin.items:
            matches.setdefault(item.regex_id, [])
        self._state = state
        self._cycles = cycles
        self._matches = matches
        self._tile_active_cycles = tile_active_cycles
        self._tile_active_bits = tile_active_bits
