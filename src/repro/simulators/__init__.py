"""Cycle-level simulators of RAP and the baseline platforms.

* :mod:`repro.simulators.activity` — functional execution of compiled
  regexes/bins, producing the event counts every energy model consumes.
* :mod:`repro.simulators.rap` — the RAP simulator (NFA / NBVA / LNFA tile
  modes, bit-vector-phase stalls, bin power gating).
* :mod:`repro.simulators.cama`, :mod:`repro.simulators.ca`,
  :mod:`repro.simulators.bvap` — the three SotA ASIC baselines of the
  evaluation, sharing the functional engines and Table 1 circuit models
  but with their own microarchitectural cost structures.
* :mod:`repro.simulators.sw_models` — analytical CPU (Hyperscan), GPU
  (HybridSA), and FPGA (hAP) comparators built on published operating
  points.
"""

from repro.simulators.bvap import BVAPSimulator
from repro.simulators.ca import CASimulator, ca_hardware_config
from repro.simulators.cama import CAMASimulator
from repro.simulators.rap import RAPSimulator
from repro.simulators.result import SimulationResult
from repro.simulators.sw_models import (
    CPUModel,
    FPGAModel,
    GPUModel,
    SoftwarePoint,
)

__all__ = [
    "BVAPSimulator",
    "CAMASimulator",
    "CASimulator",
    "CPUModel",
    "FPGAModel",
    "GPUModel",
    "RAPSimulator",
    "SimulationResult",
    "SoftwarePoint",
    "ca_hardware_config",
]
