"""The RAP simulator (Section 3): three tile modes, stalls, power gating.

The simulator executes a mapped ruleset over an input stream:

* **NFA-mode tiles** run the CAMA-style two-phase loop plus RAP's
  reconfiguration controllers.
* **NBVA-mode tiles** activate only the CAM columns holding character
  classes during state matching; when a BV-STE fires, the array enters
  the bit-vector-processing phase for ``depth`` cycles (read / route /
  update of every BV word), stalling the other tiles of the array (whose
  CAM and switch are disabled meanwhile).  Array throughput is derived
  from the union of stall cycles across the array's regexes.
* **LNFA-mode tiles** execute bins with the bit-serial Shift-And path:
  the active vector gates CAM columns, the local switch (CAM bins) or
  CAM (switch bins) is power-gated, and non-initial tiles of a bin wake
  up only on cycles where they hold a live state (Fig. 7).

Areas and leakage come from the Table 1 components; the global switch of
an LNFA array is present (area, leakage) but never accessed (power-gated,
replaced by the ring network).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.program import CompiledMode, CompiledRuleset
from repro.core.registry import resolve_backend
from repro.core.trace import ActivityTrace
from repro.hardware.circuits import TABLE1, CircuitLibrary
from repro.hardware.config import DEFAULT_CONFIG, HardwareConfig, TileMode
from repro.hardware.energy import EnergyLedger
from repro.mapping.binning import BinKind
from repro.mapping.mapper import Mapping, map_ruleset
from repro.mapping.resources import ArrayBuilder
from repro.simulators.activity import BinActivity, RegexActivity
from repro.simulators.asic_base import (
    ApStyleSimulator,
    rap_nfa_params,
    shared_trace,
)
from repro.simulators.result import ArrayReport, SimulationResult


@dataclass
class _ArrayOutcome:
    cycles: int
    stalls: int


@dataclass
class RunActivity:
    """All functional activity of one run over one input stream.

    This is the integer-exact intermediate the parallel engine merges:
    ``regex`` holds per-regex event counts for NFA/NBVA modes, and
    ``lnfa_bins`` the per-bin wake-up statistics of every LNFA array,
    keyed by the array's index in the mapping.  Pricing a merged
    ``RunActivity`` performs the same float operations as pricing a
    sequential run, so parallel results are bit-identical.
    """

    regex: dict[int, RegexActivity]
    lnfa_bins: dict[int, list[BinActivity]]
    input_symbols: int


class RAPSimulator(ApStyleSimulator):
    """Cycle-level simulation of the full reconfigurable design."""

    def __init__(
        self,
        hw: HardwareConfig = DEFAULT_CONFIG,
        circuits: CircuitLibrary = TABLE1,
    ):
        import dataclasses

        super().__init__(rap_nfa_params(circuits), hw)
        self.circuits = circuits
        self.params = dataclasses.replace(self.params, name="RAP")

    def build_mapping(
        self, ruleset: CompiledRuleset, bin_size: int | None = None
    ) -> Mapping:
        """The deterministic tile/array mapping of a ruleset."""
        return map_ruleset(ruleset, self.hw, bin_size=bin_size)

    def collect_activities(
        self,
        ruleset: CompiledRuleset,
        data: bytes,
        mapping: Mapping,
        trace: ActivityTrace | None = None,
    ) -> RunActivity:
        """Phase 1: run the functional engines and count every event.

        With a shared ``trace``, scans memoized by another architecture's
        collection over the same input are reused instead of re-run.
        Without one, the ``fused`` backend collects the whole ruleset in
        a single lockstep pass (bit-identical by contract); a shared
        trace keeps the per-unit path so its memoized scans stay
        reusable across architectures.
        """
        if trace is None and resolve_backend() in ("fused", "native"):
            from repro.simulators.fused import FusedRun

            return FusedRun(ruleset, mapping, self.hw).collect(data)
        trace = shared_trace(data, trace)
        regex = {
            r.regex_id: trace.regex_activity(r)
            for r in ruleset
            if r.mode is not CompiledMode.LNFA
        }
        lnfa_bins = {
            index: [
                trace.bin_activity(bin_obj, self.hw)
                for bin_obj in array.bins
            ]
            for index, array in enumerate(mapping.arrays)
            if array.mode is TileMode.LNFA
        }
        return RunActivity(
            regex=regex, lnfa_bins=lnfa_bins, input_symbols=len(data)
        )

    def run(
        self,
        ruleset: CompiledRuleset,
        data: bytes,
        mapping: Mapping | None = None,
        bin_size: int | None = None,
        trace: ActivityTrace | None = None,
    ) -> SimulationResult:
        """Simulate the mapped ruleset on RAP over ``data``."""
        if mapping is None:
            mapping = self.build_mapping(ruleset, bin_size=bin_size)
        activity = self.collect_activities(ruleset, data, mapping, trace)
        return self.run_from_activity(ruleset, activity, mapping)

    def run_from_activity(
        self,
        ruleset: CompiledRuleset,
        activity: RunActivity,
        mapping: Mapping,
    ) -> SimulationResult:
        """Phase 2: price a run's collected activity with the Table 1
        circuit models.  Deterministic given ``activity`` — the parallel
        engine merges per-chunk activities and prices them here once."""
        ledger = EnergyLedger()
        matches: dict[int, list[int]] = {}
        compiled_by_id = {r.regex_id: r for r in ruleset}
        activities = activity.regex
        for regex_activity in activities.values():
            matches[regex_activity.regex_id] = regex_activity.matches
        for r in ruleset:
            if r.mode is CompiledMode.LNFA:
                matches[r.regex_id] = []

        n = activity.input_symbols
        total_stalls = 0
        worst_cycles = n if n else 0
        array_reports: list[ArrayReport] = []
        for index, array in enumerate(mapping.arrays):
            if array.mode is TileMode.LNFA:
                # structure charged inside, with leakage scaled by the
                # measured power-gating duty cycle (Fig. 7)
                self._charge_lnfa_array(
                    ledger, array, activity.lnfa_bins[index], n, matches
                )
                outcome = _ArrayOutcome(cycles=n, stalls=0)
                total_stalls += outcome.stalls
                worst_cycles = max(worst_cycles, outcome.cycles)
                array_reports.append(
                    ArrayReport(
                        mode=array.mode.value,
                        tiles=array.tiles_used,
                        cycles=outcome.cycles,
                        stalls=0,
                        throughput_gchps=(
                            self.params.clock_ghz if n else 0.0
                        ),
                    )
                )
                continue
            self.charge_array_structure(ledger, array, include_overhead=False)
            if array.mode is TileMode.NBVA:
                outcome = self._charge_nbva_array(
                    ledger, array, activities, compiled_by_id, n
                )
            else:
                self.charge_nfa_array_energy(
                    ledger,
                    array,
                    activities,
                    compiled_by_id,
                    n,
                    charge_gctrl=False,
                )
                outcome = _ArrayOutcome(cycles=n, stalls=0)
            total_stalls += outcome.stalls
            worst_cycles = max(worst_cycles, outcome.cycles)
            array_reports.append(
                ArrayReport(
                    mode=array.mode.value,
                    tiles=array.tiles_used,
                    cycles=outcome.cycles,
                    stalls=outcome.stalls,
                    throughput_gchps=(
                        n / outcome.cycles * self.params.clock_ghz
                        if outcome.cycles
                        else 0.0
                    ),
                )
            )
        # Array-level structures: area/leakage proportional to occupied
        # tiles; one global controller runs per physical array (NFA and
        # LNFA tiles consolidate into shared arrays per Section 3.3,
        # NBVA arrays stay dedicated because their stalls are array-wide).
        self.charge_overhead_units(ledger, mapping.total_tiles)
        groups = mapping.physical_arrays()
        if n:
            ledger.charge(
                "global-control", self.params.global_ctrl_pj, n * groups
            )

        metrics = ledger.metrics(
            cycles=worst_cycles,
            input_symbols=n,
            clock_ghz=self.params.clock_ghz,
        )
        return SimulationResult(
            architecture=self.params.name,
            metrics=metrics,
            matches=merge_lnfa_matches(matches),
            energy_breakdown_pj=ledger.energy_breakdown(),
            area_breakdown_um2=ledger.area_breakdown(),
            stall_cycles=total_stalls,
            arrays=mapping.total_arrays,
            tiles=mapping.total_tiles,
            array_reports=tuple(array_reports),
        )

    # -- NBVA arrays --------------------------------------------------------

    def _charge_nbva_array(
        self,
        ledger: EnergyLedger,
        array: ArrayBuilder,
        activities,
        compiled_by_id,
        cycles: int,
    ) -> _ArrayOutcome:
        p = self.params
        cam_cols = self.hw.cam_cols
        stall_cycles: set[int] = set()
        depth = None
        for tile in array.tiles:
            act = self.tile_switch_activity(tile, activities, compiled_by_id)
            # State matching activates only the columns that hold CCs (and
            # the set1 columns routed during transitions).
            cc_frac = (tile.columns - tile.bv_columns) / cam_cols
            ledger.charge("state-matching", p.match_pj * cc_frac, cycles)
            ledger.charge("state-transition", p.switch_pj(act), cycles)
            ledger.charge("local-control", p.local_ctrl_pj, cycles)
            if tile.depth is not None:
                depth = tile.depth

        ports_used = sum(t.ports for t in array.tiles)
        if ports_used:
            from repro.simulators.asic_base import _array_mean_activity

            port_frac = ports_used / self.hw.global_switch_dim
            mean_act = _array_mean_activity(array, activities, compiled_by_id)
            ledger.charge(
                "global-switch", p.gswitch_pj(port_frac * mean_act), cycles
            )
            ledger.charge("global-wire", p.wire_pj * ports_used * mean_act, cycles)

        # Bit-vector-processing phase: depth pipeline iterations of
        # BV-word read, switch routing, and write-back per triggering
        # cycle, for each regex with live counters.
        for rid in array.regex_ids:
            activity = activities[rid]
            compiled = compiled_by_id[rid]
            regex_depth = depth or self.hw.bv_depth_choices[0]
            bv_cols = sum(t.bv_columns for t in compiled.tile_requests)
            bv_frac = min(1.0, bv_cols / cam_cols)
            per_phase = regex_depth * (
                2 * p.match_pj * bv_frac  # CAM word read + write-back
                + p.switch_pj(bv_frac)  # routing and BV actions
                + p.local_ctrl_pj
            )
            ledger.charge("bv-processing", per_phase, activity.bv_phase_cycles)
            stall_cycles.update(activity.bv_cycle_indices)

        stalls = (depth or 0) * len(stall_cycles)
        return _ArrayOutcome(cycles=cycles + stalls, stalls=stalls)

    # -- LNFA arrays ---------------------------------------------------------

    def _charge_lnfa_array(
        self,
        ledger: EnergyLedger,
        array: ArrayBuilder,
        activities: list[BinActivity],
        cycles: int,
        matches: dict[int, list[int]],
    ) -> None:
        p = self.params
        # Tile area is physical; tile leakage follows the power-gating
        # duty cycle (a gated tile retains its configuration at ~10% of
        # active leakage).
        tiles = array.tiles_used
        ledger.add_area("tile", p.tile_area_um2, tiles)
        possible = sum(a.bin.tiles for a in activities) * cycles
        woken = sum(a.woken_tile_cycles for a in activities)
        duty = min(1.0, woken / possible) if possible else 1.0
        retention = 0.1
        effective_leak = p.tile_leak_uw * (retention + (1 - retention) * duty)
        ledger.add_leakage("tile", effective_leak, tiles)
        for bin_obj, activity in zip(array.bins, activities):
            for rid, ends in activity.matches.items():
                if ends:
                    merged = matches.setdefault(rid, [])
                    merged.extend(ends)
            capacity = (
                self.hw.cam_cols
                if bin_obj.kind is BinKind.CAM
                else self.hw.local_switch_dim // 2
            )
            # Bins share physical tiles at region granularity, so this
            # bin owns only a fraction of each tile it touches — its
            # controller/sequencing charge scales with that share.
            tile_share = min(
                1.0,
                bin_obj.footprint_columns
                / (bin_obj.tiles * self.hw.cam_cols),
            )
            for t in range(bin_obj.tiles):
                active_cycles = activity.tile_active_cycles[t]
                if not active_cycles:
                    continue
                # Enabled columns follow the active vector; the initial
                # column of tile 0 is always enabled.
                enabled = activity.tile_active_bits[t] + active_cycles
                col_frac = min(1.0, enabled / (active_cycles * capacity))
                if bin_obj.kind is BinKind.CAM:
                    ledger.charge(
                        "state-matching", p.match_pj * col_frac, active_cycles
                    )
                else:
                    ledger.charge(
                        "state-matching", p.switch_pj(col_frac), active_cycles
                    )
                ledger.charge(
                    "local-control",
                    p.local_ctrl_pj * tile_share,
                    active_cycles,
                )
            # Ring network: one short hop per tile boundary per cycle the
            # downstream tile is awake.
            boundary_hops = sum(activity.tile_active_cycles[1:])
            ring_pj = (
                self.circuits.global_wire_mm.energy()
                * self.hw.ring_hop_wire_mm
                * bin_obj.size
            )
            ledger.charge("ring-network", ring_pj, boundary_hops)
        # Ring wiring area: ring_width wires linking adjacent tiles.
        ring_area = (
            self.hw.ring_width_bits
            * self.hw.ring_hop_wire_mm
            * self.circuits.global_wire_mm.area_um2
            * max(array.tiles_used - 1, 0)
        )
        ledger.add_area("ring-network", ring_area, 1)

    # -- post-run dedup -----------------------------------------------------


def merge_lnfa_matches(matches: dict[int, list[int]]) -> dict[int, list[int]]:
    """Sort and deduplicate per-regex match lists (bins may report the
    same end position via several union members)."""
    return {rid: sorted(set(ends)) for rid, ends in matches.items()}
