"""The end-to-end compilation pipeline.

``compile_ruleset`` takes raw pattern strings, parses them, runs the
Fig. 9 decision graph per regex, dispatches to the mode-specific
backends, and returns a :class:`~repro.compiler.program.CompiledRuleset`.
Patterns outside the supported fragment (or exceeding hardware limits)
are collected as rejections rather than aborting the whole workload —
matching how real rule-set deployments handle stragglers.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.compiler.costmodel import (
    DEFAULT_BV_DEPTH,
    DEFAULT_LNFA_BLOWUP,
    DEFAULT_MAX_LNFA_SEQUENCES,
    DEFAULT_UNFOLD_THRESHOLD,
    DFA_STATE_BUDGET,
    DecisionTrace,
)
from repro.compiler.decision import decide
from repro.compiler.lnfa_compiler import compile_lnfa
from repro.compiler.nbva_compiler import compile_nbva
from repro.compiler.nfa_compiler import compile_nfa
from repro.compiler.program import (
    CompiledMode,
    CompiledRegex,
    CompiledRuleset,
    CompileError,
)
from repro.hardware.config import DEFAULT_CONFIG, HardwareConfig
from repro.regex.ast import Regex
from repro.regex.parser import RegexSyntaxError, parse_anchored


@dataclass(frozen=True)
class CompilerConfig:
    """User-controlled compilation parameters.

    ``unfold_threshold`` and ``bv_depth`` are the two knobs the paper's
    design-space exploration tunes per workload (Section 5.3);
    ``forced_mode`` lets experiments compile everything to one mode (the
    Table 2/3 methodology unfolds all regexes to basic NFAs for the NFA-
    mode columns) and raises on ineligible regexes.  ``mode_override``
    is the *soft* preference behind ``--mode`` / ``RAP_MODE``: the
    requested mode wins when a regex is eligible for it and the normal
    cost-model selection applies otherwise.  ``dfa_state_budget`` caps
    subset construction for the DFA tier.  Defaults are re-homed in
    :mod:`repro.compiler.costmodel`.
    """

    unfold_threshold: int = DEFAULT_UNFOLD_THRESHOLD
    bv_depth: int = DEFAULT_BV_DEPTH
    lnfa_blowup: float = DEFAULT_LNFA_BLOWUP
    word_align_exact: bool = True
    max_lnfa_sequences: int = DEFAULT_MAX_LNFA_SEQUENCES
    forced_mode: CompiledMode | None = None
    mode_override: CompiledMode | None = None
    dfa_state_budget: int = DFA_STATE_BUDGET
    hw: HardwareConfig = field(default_factory=lambda: DEFAULT_CONFIG)

    def with_depth(self, depth: int) -> "CompilerConfig":
        """A copy of this config with another BV depth."""
        return dataclasses.replace(self, bv_depth=depth)

    def with_forced_mode(self, mode: CompiledMode | None) -> "CompilerConfig":
        """A copy of this config forcing one mode."""
        return dataclasses.replace(self, forced_mode=mode)

    def with_mode_override(
        self, mode: CompiledMode | None
    ) -> "CompilerConfig":
        """A copy of this config with a soft mode preference."""
        return dataclasses.replace(self, mode_override=mode)


def compile_pattern(
    pattern: str | Regex,
    regex_id: int = 0,
    config: CompilerConfig | None = None,
) -> CompiledRegex:
    """Compile one pattern; raises :class:`CompileError` on failure."""
    config = config or CompilerConfig()
    anchored_start = anchored_end = False
    if isinstance(pattern, str):
        try:
            parsed = parse_anchored(pattern)
        except RegexSyntaxError as err:
            raise CompileError(str(err)) from err
        regex = parsed.regex
        anchored_start = parsed.anchored_start
        anchored_end = parsed.anchored_end
        text = pattern
    else:
        regex = pattern
        text = regex.to_pattern()

    if config.forced_mode is not None:
        compiled = _compile_forced(
            regex_id,
            text,
            regex,
            config,
            anchored=anchored_start or anchored_end,
        )
        return _with_anchors(compiled, anchored_start, anchored_end)

    decision = decide(
        regex,
        unfold_threshold=config.unfold_threshold,
        lnfa_blowup=config.lnfa_blowup,
        max_lnfa_sequences=config.max_lnfa_sequences,
        dfa_state_budget=config.dfa_state_budget,
        mode_override=config.mode_override,
        anchored_start=anchored_start,
        anchored_end=anchored_end,
    )
    anchors = (anchored_start, anchored_end)
    if decision.mode is CompiledMode.NFA:
        return _with_anchors(
            compile_nfa(regex_id, text, regex, config.hw), *anchors
        )
    if decision.mode is CompiledMode.DFA:
        return _with_anchors(_compile_dfa(regex_id, text, regex, config), *anchors)
    if decision.mode is CompiledMode.NBVA:
        compiled = compile_nbva(
            regex_id,
            text,
            regex,
            unfold_threshold=config.unfold_threshold,
            depth=config.bv_depth,
            hw=config.hw,
            word_align_exact=config.word_align_exact,
        )
        if compiled is not None:
            return _with_anchors(compiled, *anchors)
        # Counting degenerated (e.g. everything word-aligned away): fall
        # through the rest of the decision graph.
    if decision.lnfa_eligible:
        compiled = compile_lnfa(
            regex_id,
            text,
            regex,
            lnfa_blowup=config.lnfa_blowup,
            hw=config.hw,
            max_sequences=config.max_lnfa_sequences,
        )
        if compiled is not None:
            return _with_anchors(compiled, *anchors)
    return _with_anchors(
        compile_nfa(regex_id, text, regex, config.hw), *anchors
    )


def _with_anchors(
    compiled: CompiledRegex, anchored_start: bool, anchored_end: bool
) -> CompiledRegex:
    if not (anchored_start or anchored_end):
        return compiled
    import dataclasses

    return dataclasses.replace(
        compiled, anchored_start=anchored_start, anchored_end=anchored_end
    )


def _compile_dfa(
    regex_id: int, text: str, regex: Regex, config: CompilerConfig
) -> CompiledRegex:
    """DFA mode shares the NFA structural plan — same Glushkov automaton,
    same tile requests (it occupies NFA-mode tiles) — and the mode tag
    routes execution to the subset-constructed table."""
    compiled = compile_nfa(regex_id, text, regex, config.hw)
    return dataclasses.replace(compiled, mode=CompiledMode.DFA)


def _compile_forced(
    regex_id: int,
    text: str,
    regex: Regex,
    config: CompilerConfig,
    anchored: bool = False,
) -> CompiledRegex:
    """Compile to a specific mode (experiment methodology support).

    NBVA/LNFA/DFA forcing raises if the regex is ineligible — the
    Table 2/3 experiments only include regexes the decision graph sent to
    that mode, so ineligibility there is a bug, not a fallback case.
    (The soft ``mode_override`` is the degrade-gracefully variant.)
    """
    if regex.nullable():
        raise CompileError("nullable regex")
    if config.forced_mode is CompiledMode.NFA:
        return compile_nfa(regex_id, text, regex, config.hw)
    if config.forced_mode is CompiledMode.DFA:
        from repro.compiler.costmodel import dfa_state_count

        states = dfa_state_count(
            regex, anchored=anchored, dfa_state_budget=config.dfa_state_budget
        )
        if states is None:
            raise CompileError(
                f"regex is not DFA-eligible (anchored or past the "
                f"{config.dfa_state_budget}-state budget): {text!r}"
            )
        return _compile_dfa(regex_id, text, regex, config)
    if config.forced_mode is CompiledMode.NBVA:
        compiled = compile_nbva(
            regex_id,
            text,
            regex,
            unfold_threshold=config.unfold_threshold,
            depth=config.bv_depth,
            hw=config.hw,
            word_align_exact=config.word_align_exact,
        )
        if compiled is None:
            raise CompileError(f"regex has no countable repetition: {text!r}")
        return compiled
    assert config.forced_mode is CompiledMode.LNFA
    compiled = compile_lnfa(
        regex_id,
        text,
        regex,
        lnfa_blowup=config.lnfa_blowup,
        hw=config.hw,
        max_sequences=config.max_lnfa_sequences,
    )
    if compiled is None:
        raise CompileError(f"regex is not linearizable within budget: {text!r}")
    return compiled


@dataclass(frozen=True)
class ExplainEntry:
    """One pattern's mode decision as ``--explain`` reports it."""

    pattern: str
    trace: DecisionTrace | None
    error: str | None = None


def explain_patterns(
    patterns: Iterable[str | Regex],
    config: CompilerConfig | None = None,
) -> list[ExplainEntry]:
    """The cost-model decision trace of every pattern, without compiling.

    Runs exactly the feature extraction and scoring ``compile_ruleset``
    would (``forced_mode`` is shown as the soft preference it overrides
    with), so the reported mode matches what a compile of the same
    config chooses.  Unparseable or degenerate patterns come back as
    entries with ``error`` set instead of aborting the report.
    """
    config = config or CompilerConfig()
    entries: list[ExplainEntry] = []
    for pattern in patterns:
        text = pattern if isinstance(pattern, str) else pattern.to_pattern()
        anchored_start = anchored_end = False
        try:
            if isinstance(pattern, str):
                parsed = parse_anchored(pattern)
                regex = parsed.regex
                anchored_start = parsed.anchored_start
                anchored_end = parsed.anchored_end
            else:
                regex = pattern
            decision = decide(
                regex,
                unfold_threshold=config.unfold_threshold,
                lnfa_blowup=config.lnfa_blowup,
                max_lnfa_sequences=config.max_lnfa_sequences,
                dfa_state_budget=config.dfa_state_budget,
                mode_override=config.forced_mode or config.mode_override,
                anchored_start=anchored_start,
                anchored_end=anchored_end,
            )
        except (RegexSyntaxError, CompileError) as err:
            entries.append(ExplainEntry(pattern=text, trace=None, error=str(err)))
            continue
        entries.append(ExplainEntry(pattern=text, trace=decision.trace))
    return entries


def compile_ruleset(
    patterns: Iterable[str | Regex],
    config: CompilerConfig | None = None,
) -> CompiledRuleset:
    """Compile a workload; failures become rejections, not exceptions."""
    config = config or CompilerConfig()
    compiled: list[CompiledRegex] = []
    rejected: list[tuple[str, str]] = []
    errors: list[CompileError] = []
    for index, pattern in enumerate(patterns):
        text = pattern if isinstance(pattern, str) else pattern.to_pattern()
        try:
            compiled.append(compile_pattern(pattern, len(compiled), config))
        except CompileError as err:
            err.pattern = text
            err.pattern_index = index
            err.phase = "compile"
            rejected.append((text, str(err)))
            errors.append(err)
    return CompiledRuleset(
        regexes=tuple(compiled),
        rejected=tuple(rejected),
        rejected_errors=tuple(errors),
    )
