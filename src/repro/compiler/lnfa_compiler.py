"""LNFA-mode compilation (Section 4.2).

Linearization rewrites the regex into a union of fixed-length
character-class sequences (distributing union over concatenation and
unfolding small bounded repetitions, Example 4.4); each sequence becomes
one hardware LNFA executed with Shift-And.  Per Fig. 9, the rewriting is
accepted only if it does not grow the state count beyond the blowup
allowance (2x by default).

Each LNFA is additionally classified by *where* it can run (Section 3.2):
in the CAM when every character class fits a single 32-bit multi-zero
prefix code (84% of LNFAs in the paper's corpus), otherwise in the local
switch with two one-hot columns per state.  Tile occupation is decided
later, by the binning pass of the mapper.
"""

from __future__ import annotations


from repro.automata.lnfa import LNFA
from repro.compiler.program import CapacityError, CompiledMode, CompiledRegex
from repro.hardware.config import HardwareConfig
from repro.hardware.encoding import lnfa_cam_eligible
from repro.regex.ast import Regex
from repro.regex.rewrite import linearize


def compile_lnfa(
    regex_id: int,
    pattern: str,
    regex: Regex,
    *,
    lnfa_blowup: float,
    hw: HardwareConfig,
    max_sequences: int = 4096,
) -> CompiledRegex | None:
    """Compile for LNFA mode; ``None`` when linearization is not worth it."""
    base_states = max(regex.unfolded_size(), 1)
    lin = linearize(
        regex,
        max_states=int(base_states * lnfa_blowup),
        max_sequences=max_sequences,
    )
    if lin is None:
        return None
    if any(len(seq) > hw.max_regex_states for seq in lin.sequences):
        raise CapacityError(
            f"an LNFA of this regex exceeds {hw.max_regex_states} states "
            "(one array)"
        )
    lnfas = tuple(LNFA(seq) for seq in lin.sequences)
    eligibility = tuple(lnfa_cam_eligible(lnfa.labels) for lnfa in lnfas)
    return CompiledRegex(
        regex_id=regex_id,
        pattern=pattern,
        mode=CompiledMode.LNFA,
        lnfas=lnfas,
        lnfa_cam_eligible=eligibility,
        source_states=regex.literal_count(),
        unfolded_states=regex.unfolded_size(),
    )
