"""Compiled-program intermediate representation.

A :class:`CompiledRegex` carries two coupled views of one regex:

* the **functional** view — the automaton (NFA/NBVA modes) or the union of
  LNFAs (LNFA mode) that the simulators execute to get exact match
  positions and activity statistics;
* the **structural** view — a sequence of :class:`TileRequest` records
  describing the hardware resources the regex occupies (CAM columns for
  character classes and bit vectors, set1 columns, read kinds, global
  ports).  The mapper packs these requests into arrays and the energy
  model prices them.

Keeping the functional automaton whole (rather than physically splitting
it per tile) does not change any observable behaviour — the split-tile
hardware computes the same transition relation — while the structural
plan preserves the per-tile activity accounting the energy model needs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.automata.glushkov import Automaton, ReadKind
from repro.automata.lnfa import LNFA

# Re-exported from the repo-wide taxonomy: CompileError moved to
# repro.errors so the execution layer can classify failures without
# importing the compiler; existing `from repro.compiler.program import
# CompileError` call sites keep working.
from repro.errors import CapacityError, CompileError
from repro.hardware.config import TileMode


class CompiledMode(enum.Enum):
    """Which RAP execution mode the cost-model pipeline chose for a regex."""

    NFA = "NFA"
    NBVA = "NBVA"
    LNFA = "LNFA"
    # Subset-constructed DFA tier: executes as one table lookup per byte
    # on the fused backend, but occupies NFA-mode tiles on the hardware
    # (the DFA is a software execution strategy for the same automaton).
    DFA = "DFA"

    @property
    def tile_mode(self) -> TileMode:
        """The TileMode this compiled mode configures."""
        if self is CompiledMode.DFA:
            return TileMode.NFA
        return TileMode(self.value.lower())


@dataclass(frozen=True)
class TileRequest:
    """Hardware resources one regex needs from one tile.

    Column accounting follows Section 3.1 / Example 4.3: each state costs
    its character-class code columns; a counted state additionally costs
    its bit-vector width in columns plus one ``set1`` (initial vector)
    column.  ``read`` records the read action of the BVs in this tile —
    the hardware forbids mixing ``r(m)`` and ``rAll`` within a tile.
    """

    mode: TileMode
    states: int
    cc_columns: int
    bv_columns: int = 0
    set1_columns: int = 0
    depth: int | None = None
    read: ReadKind | None = None
    global_ports: int = 0

    @property
    def total_columns(self) -> int:
        """CAM columns consumed in total."""
        return self.cc_columns + self.bv_columns + self.set1_columns

    def validate(self, cam_cols: int) -> None:
        """Check the request against the tile capacity."""
        if self.total_columns > cam_cols:
            raise CapacityError(
                f"tile request needs {self.total_columns} columns "
                f"(capacity {cam_cols})"
            )
        if self.states < 0 or min(
            self.cc_columns, self.bv_columns, self.set1_columns
        ) < 0:
            raise CompileError("negative resource request")
        if self.bv_columns and self.depth is None:
            raise CompileError("BV columns allocated without a depth")


@dataclass(frozen=True)
class CompiledRegex:
    """One regex after compilation: functional model + structural plan."""

    regex_id: int
    pattern: str
    mode: CompiledMode
    automaton: Automaton | None = None
    lnfas: tuple[LNFA, ...] = ()
    lnfa_cam_eligible: tuple[bool, ...] = ()
    tile_requests: tuple[TileRequest, ...] = ()
    source_states: int = 0  # Glushkov positions of the regex as written
    unfolded_states: int = 0  # positions after full unfolding
    # ^ / $ anchors (start-of-data STEs and end-of-data reporting)
    anchored_start: bool = False
    anchored_end: bool = False

    def __post_init__(self) -> None:
        if self.mode is CompiledMode.LNFA:
            if not self.lnfas:
                raise CompileError("LNFA-mode regex without sequences")
            if len(self.lnfas) != len(self.lnfa_cam_eligible):
                raise CompileError("LNFA eligibility flags out of sync")
        elif self.automaton is None:
            raise CompileError(f"{self.mode.value}-mode regex without automaton")

    @property
    def states(self) -> int:
        """States actually programmed on the hardware in the chosen mode."""
        if self.mode is CompiledMode.LNFA:
            return sum(len(l) for l in self.lnfas)
        assert self.automaton is not None
        return self.automaton.state_count

    @property
    def total_columns(self) -> int:
        """CAM columns consumed in total."""
        return sum(t.total_columns for t in self.tile_requests)

    @property
    def tiles_needed(self) -> int:
        """Number of tile requests."""
        return len(self.tile_requests)

    @property
    def bv_bits(self) -> int:
        """Total bit-vector storage in bits."""
        if self.automaton is None:
            return 0
        return sum(
            g.width * len(g.positions) for g in self.automaton.groups
        )


@dataclass(frozen=True)
class CompiledRuleset:
    """All regexes of a workload, compiled, plus ruleset-level statistics."""

    regexes: tuple[CompiledRegex, ...]
    rejected: tuple[tuple[str, str], ...] = ()  # (pattern, reason)
    # The exception objects behind `rejected`, aligned index-for-index,
    # so the execution layer can classify failures (CapacityError vs
    # plain CompileError) without re-parsing reason strings.  Excluded
    # from equality and not serialized: a cache round trip drops them,
    # in which case classification falls back to CompileError.
    rejected_errors: tuple[CompileError, ...] = field(
        default=(), compare=False, repr=False
    )

    def __len__(self) -> int:
        return len(self.regexes)

    def __iter__(self):
        return iter(self.regexes)

    def by_mode(self, mode: CompiledMode) -> tuple[CompiledRegex, ...]:
        """The regexes compiled to one mode."""
        return tuple(r for r in self.regexes if r.mode is mode)

    def mode_counts(self) -> dict[CompiledMode, int]:
        """Number of regexes per compiled mode."""
        counts = {mode: 0 for mode in CompiledMode}
        for regex in self.regexes:
            counts[regex.mode] += 1
        return counts

    def mode_fractions(self) -> dict[CompiledMode, float]:
        """Fraction of regexes per compiled mode."""
        counts = self.mode_counts()
        total = max(len(self.regexes), 1)
        return {mode: count / total for mode, count in counts.items()}

    @property
    def total_states(self) -> int:
        """Hardware states across the whole ruleset."""
        return sum(r.states for r in self.regexes)
