"""The compilation decision graph, driven by the cost model.

For each regex the compiler picks the execution mode that minimizes
space and energy cost:

1. reject degenerate patterns (nullable: they match the empty string at
   every offset, which no pattern-matching deployment wants);
2. if, after the unfolding and counting-compatibility rewritings, at
   least one bounded repetition survives with a bit-vector-trackable
   shape, choose **NBVA** — counting compresses the repetition by a
   factor of its bound;
3. otherwise, if linearization succeeds without growing the state count
   beyond the blowup allowance (2x by default, reflecting LNFA mode's
   smaller per-state footprint), choose **LNFA**;
4. otherwise compare the calibrated per-byte costs of the **NFA** mask
   stack against a subset-constructed **DFA** (state-budget-capped) and
   take the cheaper one.

The feature extraction, the per-mode cost formulas, and every threshold
constant live in :mod:`repro.compiler.costmodel`; this module is the
thin adapter the pipeline calls, returning a :class:`Decision` that now
carries the structured :class:`~repro.compiler.costmodel.DecisionTrace`
instead of ad-hoc strings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.costmodel import (
    DecisionTrace,
    nbva_eligible,
    plan_mode,
)
from repro.compiler.program import CompiledMode

__all__ = ["Decision", "decide", "nbva_eligible"]


@dataclass(frozen=True)
class Decision:
    """The chosen mode plus the eligibility facts behind it (Fig. 1 data)."""

    mode: CompiledMode
    nbva_eligible: bool
    lnfa_eligible: bool
    dfa_eligible: bool = False
    trace: DecisionTrace | None = None


def decide(
    regex,
    *,
    unfold_threshold: int,
    lnfa_blowup: float = 2.0,
    max_lnfa_sequences: int = 4096,
    dfa_state_budget: int | None = None,
    mode_override: CompiledMode | None = None,
    anchored_start: bool = False,
    anchored_end: bool = False,
) -> Decision:
    """Run the cost-model decision graph on one parsed regex."""
    from repro.compiler.costmodel import DFA_STATE_BUDGET

    plan = plan_mode(
        regex,
        unfold_threshold=unfold_threshold,
        lnfa_blowup=lnfa_blowup,
        max_lnfa_sequences=max_lnfa_sequences,
        dfa_state_budget=(
            DFA_STATE_BUDGET if dfa_state_budget is None else dfa_state_budget
        ),
        mode_override=mode_override,
        anchored_start=anchored_start,
        anchored_end=anchored_end,
    )
    features = plan.trace.features
    return Decision(
        mode=plan.mode,
        nbva_eligible=features.nbva_eligible,
        lnfa_eligible=features.lnfa_eligible,
        dfa_eligible=features.dfa_eligible,
        trace=plan.trace,
    )
