"""The Fig. 9 compilation decision graph.

For each regex the compiler picks the RAP mode that minimizes space and
energy cost:

1. reject degenerate patterns (nullable: they match the empty string at
   every offset, which no pattern-matching deployment wants);
2. if, after the unfolding and counting-compatibility rewritings, at
   least one bounded repetition survives with a bit-vector-trackable
   shape, choose **NBVA** — counting compresses the repetition by a
   factor of its bound;
3. otherwise, if linearization succeeds without growing the state count
   beyond the blowup allowance (2x by default, reflecting LNFA mode's
   smaller per-state footprint), choose **LNFA**;
4. otherwise fall back to **NFA**.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.program import CompiledMode, CompileError
from repro.regex.ast import Regex, Repeat
from repro.regex.rewrite import (
    RewriteError,
    linearize,
    make_countable,
    unfold,
)


@dataclass(frozen=True)
class Decision:
    """The chosen mode plus the eligibility facts behind it (Fig. 1 data)."""

    mode: CompiledMode
    nbva_eligible: bool
    lnfa_eligible: bool


def decide(
    regex: Regex,
    *,
    unfold_threshold: int,
    lnfa_blowup: float = 2.0,
    max_lnfa_sequences: int = 4096,
) -> Decision:
    """Run the decision graph on one parsed regex."""
    if regex.nullable():
        raise CompileError(
            "nullable regex matches the empty string everywhere; "
            "not a meaningful hardware pattern"
        )
    nbva = nbva_eligible(regex, unfold_threshold=unfold_threshold)
    base_states = max(regex.unfolded_size(), 1)
    lnfa = (
        linearize(
            regex,
            max_states=int(base_states * lnfa_blowup),
            max_sequences=max_lnfa_sequences,
        )
        is not None
    )
    if nbva:
        mode = CompiledMode.NBVA
    elif lnfa:
        mode = CompiledMode.LNFA
    else:
        mode = CompiledMode.NFA
    return Decision(mode=mode, nbva_eligible=nbva, lnfa_eligible=lnfa)


def nbva_eligible(regex: Regex, *, unfold_threshold: int) -> bool:
    """Does at least one countable repetition survive the rewritings?"""
    try:
        prepared = make_countable(unfold(regex, unfold_threshold))
    except RewriteError:
        return False
    return any(isinstance(node, Repeat) for node in prepared.walk())
